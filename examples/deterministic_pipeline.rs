//! The deterministic pipeline (§5): soft hitting sets, deterministic
//! emulator, deterministic (2+ε)-APSP — bit-for-bit reproducible.
//!
//! Run with: `cargo run --release --example deterministic_pipeline`

use congested_clique::derand::soft_hitting::{soft_hitting_set, SoftHittingInstance};
use congested_clique::emulator::deterministic;
use congested_clique::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The derandomization primitive: a soft hitting set (Definition 42).
    let universe = 512;
    let delta = 16;
    let sets: Vec<Vec<usize>> = (0..160)
        .map(|i| {
            (0..delta + i % 8)
                .map(|j| (i * 13 + j * 29) % universe)
                .collect::<Vec<_>>()
        })
        .map(|mut s| {
            s.sort_unstable();
            s.dedup();
            while s.len() < delta {
                let c = (s.last().copied().unwrap_or(0) + 1) % universe;
                if !s.contains(&c) {
                    s.push(c);
                    s.sort_unstable();
                }
            }
            s
        })
        .collect();
    let inst = SoftHittingInstance::new(universe, delta, sets)?;
    let mut ledger = RoundLedger::new(universe);
    let z = soft_hitting_set(&inst, &mut ledger);
    println!(
        "soft hitting set: |Z| = {} (≤ 3N/Δ = {}), un-hit mass = {} (≤ 3Δ|L| = {})",
        z.set.len(),
        3 * universe / delta,
        z.unhit_mass,
        3 * delta * inst.sets().len()
    );
    assert!(z.verify(&inst, 3.0));

    // 2. The deterministic emulator (Thm 50): no RNG anywhere.
    let g = generators::caveman(10, 8);
    let cfg = CliqueEmulatorConfig::scaled(EmulatorParams::new(g.n(), 0.25, 2)?);
    let mut l1 = RoundLedger::new(g.n());
    let emu1 = deterministic::build(&g, &cfg, &mut l1);
    let mut l2 = RoundLedger::new(g.n());
    let emu2 = deterministic::build(&g, &cfg, &mut l2);
    assert_eq!(emu1.graph, emu2.graph, "deterministic build must reproduce");
    println!(
        "\ndeterministic emulator: {} edges (bound ~ r·n^(1+1/2^r) = {:.0}), rounds = {}",
        emu1.m(),
        cfg.params.size_bound(),
        l1.total_rounds()
    );

    // 3. Deterministic (2+ε)-APSP (Thm 53) through a deterministic Solver
    //    session: two sessions must agree bit-for-bit.
    let mut solver = SolverBuilder::new(g.clone())
        .eps(0.5)
        .execution(Execution::Deterministic)
        .build()?;
    let out = solver.apsp_2eps()?;
    let mut solver2 = SolverBuilder::new(g.clone())
        .eps(0.5)
        .execution(Execution::Deterministic)
        .build()?;
    assert_eq!(
        out.estimates,
        solver2.apsp_2eps()?.estimates,
        "deterministic sessions must reproduce"
    );
    let exact = bfs::apsp_exact(&g);
    let report = stretch::evaluate_range(&exact, out.estimates.as_fn(), 0.0, 1, out.t);
    println!(
        "deterministic (2+eps)-APSP: max stretch {:.3} (guarantee {:.1}), rounds = {}",
        report.max_multiplicative,
        out.short_range_guarantee,
        solver.total_rounds()
    );
    assert!(report.max_multiplicative <= out.short_range_guarantee);

    // 4. Persist the solved session: freeze → snapshot → reload. The
    //    snapshot is a versioned little-endian binary format (DESIGN.md
    //    §2.2), so a fresh process can serve the estimates without
    //    re-running a single round of the pipeline.
    let oracle = solver.freeze()?;
    let path = std::env::temp_dir().join("deterministic_pipeline_oracle.snap");
    oracle.save_to_path(&path)?;
    let served = DistOracle::load_from_path(&path)?;
    let snapshot_bytes = std::fs::metadata(&path)?.len();
    std::fs::remove_file(&path).ok();
    assert_eq!(served, oracle, "snapshot round trip must be bit-identical");
    let probe = served.dist(0, g.n() - 1).expect("frozen estimate");
    println!(
        "\nsnapshot: {snapshot_bytes} bytes ({} layout); reloaded oracle answers \
         d(0, {}) = {} under {}",
        served.storage_kind().label(),
        g.n() - 1,
        probe.dist,
        probe.guarantee
    );
    Ok(())
}
