//! The message-level Congested Clique engine in action.
//!
//! Everything in this example is a *real* distributed program: per-node
//! state machines exchanging bounded messages under the engine's bandwidth
//! enforcement — the substrate that grounds the cost constants used by the
//! algorithm-level round ledger.
//!
//! Run with: `cargo run --release --example distributed_engine`

use congested_clique::clique::programs::{
    Broadcast, DistributedBfs, MinAggregate, RoutedWord, TwoPhaseRouting,
};
use congested_clique::clique::{Engine, NodeId};
use congested_clique::core::oracle::{DistOracle, Guarantee};
use congested_clique::graphs::{bfs, generators, Dist, DistStorage, INF};

fn main() {
    let n = 64;

    // 1. Broadcast: one round, n−1 messages.
    let nodes = (0..n)
        .map(|i| Broadcast::new(NodeId::new(i), NodeId::new(5), 0xC0FFEE))
        .collect();
    let mut engine = Engine::new(nodes);
    let stats = engine.run().expect("broadcast respects the model");
    println!(
        "broadcast:   rounds = {}, messages = {}, everyone informed = {}",
        stats.rounds,
        stats.messages,
        engine
            .nodes()
            .iter()
            .all(|p| p.received() == Some(0xC0FFEE))
    );

    // 2. Min aggregation: two rounds via a root node.
    let nodes = (0..n)
        .map(|i| MinAggregate::new(NodeId::new(i), 1000 - i as u64))
        .collect();
    let mut engine = Engine::new(nodes);
    let stats = engine.run().expect("aggregation respects the model");
    println!(
        "min-agg:     rounds = {}, global min = {:?}",
        stats.rounds,
        engine.nodes()[0].result()
    );

    // 3. Distributed BFS on an embedded grid: rounds track eccentricity —
    //    the hop-by-hop slowness the paper's bounded tools avoid.
    let g = generators::grid(8, 8);
    let nodes: Vec<DistributedBfs> = (0..g.n())
        .map(|v| {
            DistributedBfs::new(
                NodeId::new(v),
                NodeId::new(0),
                g.neighbors(v)
                    .iter()
                    .map(|&u| NodeId::new(u as usize))
                    .collect(),
                None,
            )
        })
        .collect();
    let mut engine = Engine::new(nodes);
    let stats = engine.run().expect("BFS respects the model");
    let exact = bfs::sssp(&g, 0);
    let all_match = (0..g.n()).all(|v| engine.nodes()[v].distance() == Some(exact[v] as u64));
    println!(
        "distributed BFS: rounds = {} (eccentricity {}), matches centralized BFS = {}",
        stats.rounds,
        bfs::eccentricity(&g, 0),
        all_match
    );

    //    The engine's output is itself servable: freeze the one computed
    //    BFS row into a row-sparse oracle (|S|·n = 1·n entries). BFS is
    //    exact, so the answers carry a (1+0)·d guarantee.
    let row: Vec<Dist> = (0..g.n())
        .map(|v| engine.nodes()[v].distance().map_or(INF, |d| d as Dist))
        .collect();
    let oracle = DistOracle::from_storage(
        DistStorage::row_sparse(g.n(), vec![0], row),
        Guarantee::mssp(0.0),
    );
    let est = oracle.dist(g.n() - 1, 0).expect("grid is connected");
    println!(
        "frozen BFS row ({} bytes): d({}, 0) = {} under {}",
        oracle.storage_bytes(),
        g.n() - 1,
        est.dist,
        est.guarantee
    );

    // 4. Two-phase routing: an all-to-all permutation delivered in O(1)
    //    rounds — Lenzen's routing constant in the flesh.
    let nodes: Vec<TwoPhaseRouting> = (0..n)
        .map(|i| {
            let words = (0..n)
                .filter(|&j| j != i)
                .map(|j| RoutedWord {
                    dest: NodeId::new(j),
                    payload: (i * n + j) as u64,
                })
                .collect();
            TwoPhaseRouting::new(NodeId::new(i), n, words, 42)
        })
        .collect();
    let mut engine = Engine::new(nodes);
    let stats = engine.run().expect("routing respects the model");
    println!(
        "routing:     rounds = {} for {} messages (load = n per node)",
        stats.rounds, stats.messages
    );
}
