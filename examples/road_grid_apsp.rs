//! Near-additive APSP on a road-like grid: where (1+ε, β) beats (2+ε).
//!
//! On large-diameter graphs (grids, road networks) most pairs are *far*
//! apart, and there the near-additive guarantee `(1+ε)d + β` approaches a
//! pure `(1+ε)` — much better than a multiplicative `(2+ε)`. This example
//! reproduces that crossover (the paper's motivation for Question 2) by
//! bucketing approximation quality by true distance. Both pipelines run in
//! one `Solver` session, so the `(2+ε)` query reuses the emulator the
//! near-additive query already built.
//!
//! Run with: `cargo run --release --example road_grid_apsp`

use congested_clique::prelude::*;

fn main() -> Result<(), CcError> {
    let g = generators::grid(24, 24);
    println!(
        "road grid: n = {}, m = {}, diameter = {}",
        g.n(),
        g.m(),
        bfs::diameter(&g)
    );
    let exact = bfs::apsp_exact(&g);

    let mut solver = SolverBuilder::new(g.clone())
        .eps(0.25)
        .execution(Execution::Seeded(7))
        .build()?;

    // Near-additive (1+ε, β)-APSP, then multiplicative (2+ε)-APSP through
    // the same session — the emulator is constructed exactly once.
    let additive = solver.apsp_near_additive()?;
    let rounds_additive = solver.total_rounds();
    let multiplicative = solver.apsp_2eps()?;
    let rounds_both = solver.total_rounds();

    println!("\n  distance bucket | additive mean stretch | (2+eps) mean stretch");
    let add_buckets = stretch::bucketed_profile(&exact, additive.estimates.as_fn());
    let mul_buckets = stretch::bucketed_profile(&exact, multiplicative.estimates.as_fn());
    for (a, m) in add_buckets.iter().zip(mul_buckets.iter()) {
        if a.pairs == 0 {
            continue;
        }
        println!(
            "  [{:>3}, {:>3}]      | {:>17.4}     | {:>16.4}",
            a.lo, a.hi, a.mean_ratio, m.mean_ratio
        );
    }
    println!(
        "\nadditive APSP rounds: {rounds_additive}   (2+eps) on top (emulator reused): {}",
        rounds_both - rounds_additive
    );
    println!(
        "additive guarantee: (1+{:.2})·d + {:.0}",
        additive.multiplicative_bound - 1.0,
        additive.additive_bound
    );

    // Freeze both pipelines into one oracle: each frozen entry keeps the
    // provenance of the pipeline that actually won it, so we can count who
    // serves which pairs instead of losing that in a pointwise min.
    let oracle = solver.freeze()?;
    let (mut by_additive, mut by_mult) = (0usize, 0usize);
    for u in 0..g.n() {
        for v in (u + 1)..g.n() {
            match oracle
                .dist(u, v)
                .expect("grid fully covered")
                .guarantee
                .kind
            {
                GuaranteeKind::NearAdditive => by_additive += 1,
                _ => by_mult += 1,
            }
        }
    }
    println!(
        "\nfrozen oracle ({} layout, {} bytes): {} pairs served under the \
         near-additive bound, {} under (2+eps)",
        oracle.storage_kind().label(),
        oracle.storage_bytes(),
        by_additive,
        by_mult
    );

    println!("\nper-phase cost:\n{}", solver.ledger().report());
    Ok(())
}
