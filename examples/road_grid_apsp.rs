//! Near-additive APSP on a road-like grid: where (1+ε, β) beats (2+ε).
//!
//! On large-diameter graphs (grids, road networks) most pairs are *far*
//! apart, and there the near-additive guarantee `(1+ε)d + β` approaches a
//! pure `(1+ε)` — much better than a multiplicative `(2+ε)`. This example
//! reproduces that crossover (the paper's motivation for Question 2) by
//! bucketing approximation quality by true distance.
//!
//! Run with: `cargo run --release --example road_grid_apsp`

use congested_clique::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = generators::grid(24, 24);
    println!(
        "road grid: n = {}, m = {}, diameter = {}",
        g.n(),
        g.m(),
        bfs::diameter(&g)
    );
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let exact = bfs::apsp_exact(&g);

    // Near-additive (1+ε, β)-APSP.
    let add_cfg = AdditiveApspConfig::scaled(g.n(), 0.25)?;
    let mut add_ledger = RoundLedger::new(g.n());
    let additive = apsp_additive::run(&g, &add_cfg, &mut rng, &mut add_ledger);

    // Multiplicative (2+ε)-APSP.
    let mul_cfg = Apsp2Config::scaled(g.n(), 0.25)?;
    let mut mul_ledger = RoundLedger::new(g.n());
    let multiplicative = apsp2::run(&g, &mul_cfg, &mut rng, &mut mul_ledger);

    println!("\n  distance bucket | additive mean stretch | (2+eps) mean stretch");
    let add_buckets = stretch::bucketed_profile(&exact, additive.estimates.as_fn());
    let mul_buckets = stretch::bucketed_profile(&exact, multiplicative.estimates.as_fn());
    for (a, m) in add_buckets.iter().zip(mul_buckets.iter()) {
        if a.pairs == 0 {
            continue;
        }
        println!(
            "  [{:>3}, {:>3}]      | {:>17.4}     | {:>16.4}",
            a.lo, a.hi, a.mean_ratio, m.mean_ratio
        );
    }
    println!(
        "\nadditive APSP rounds: {}   (2+eps) APSP rounds: {}",
        add_ledger.total_rounds(),
        mul_ledger.total_rounds()
    );
    println!(
        "additive guarantee: (1+{:.2})·d + {:.0}",
        additive.multiplicative_bound - 1.0,
        additive.additive_bound
    );
    Ok(())
}
