#![allow(clippy::needless_range_loop)]
//! Landmark distances in a social network: (1+ε)-MSSP from O(√n) sources.
//!
//! A preferential-attachment graph stands in for a social network (heavy
//! hubs, small diameter). A √n-sized set of "landmark" vertices — the use
//! case the paper's MSSP theorem targets — learns (1+ε)-approximate
//! distances to everyone in poly(log log n) simulated rounds. A second
//! landmark batch through the same `Solver` session reuses the emulator and
//! hopset the first batch built.
//!
//! Run with: `cargo run --release --example social_network_mssp`

use congested_clique::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), CcError> {
    let n = 600;
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let g = generators::preferential_attachment(n, 3, &mut rng);
    println!(
        "social graph: n = {}, m = {}, max degree = {}",
        g.n(),
        g.m(),
        g.max_degree()
    );

    // Landmarks: the ⌈√n⌉ highest-degree vertices (hubs).
    let mut by_degree: Vec<usize> = (0..n).collect();
    by_degree.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    let landmarks: Vec<usize> = by_degree
        .iter()
        .copied()
        .take((n as f64).sqrt().ceil() as usize)
        .collect();
    println!("landmarks: {} hubs", landmarks.len());

    let mut solver = SolverBuilder::new(g.clone())
        .eps(0.25)
        .execution(Execution::Seeded(99))
        .build()?;
    let out = solver.mssp(&landmarks)?;
    let rounds_first = solver.total_rounds();

    // Validate against exact BFS for every landmark.
    let mut worst: f64 = 1.0;
    let mut checked = 0usize;
    for (i, &s) in out.sources.iter().enumerate() {
        let exact = bfs::sssp(&g, s);
        for v in 0..n {
            if exact[v] == 0 || exact[v] >= INF {
                continue;
            }
            let est = out.dist(i, v);
            assert!(est >= exact[v], "estimate below true distance");
            worst = worst.max(est as f64 / exact[v] as f64);
            checked += 1;
        }
    }
    println!(
        "checked {checked} landmark-vertex pairs: worst stretch {:.4} (short-range guarantee 1+ε = {:.2})",
        worst,
        1.0 + solver.eps()
    );

    // A fresh landmark batch (the next ⌈√n⌉ hubs) reuses the substrates:
    // only the per-query source detection charges new rounds.
    let second_batch: Vec<usize> = by_degree
        .iter()
        .copied()
        .skip(landmarks.len())
        .take(landmarks.len())
        .collect();
    let _ = solver.mssp(&second_batch)?;
    println!(
        "second landmark batch: {} new rounds (first batch cost {rounds_first})",
        solver.total_rounds() - rounds_first
    );

    // Freeze the first batch alone into a row-sparse oracle: |S|·n entries
    // instead of n², the natural serving shape for landmark workloads.
    // Point queries answer both orientations of a landmark pair.
    let oracle = out.into_oracle();
    let full_bytes = n * n * std::mem::size_of::<Dist>();
    println!(
        "\nrow-sparse oracle: {} bytes vs {} for a square table ({:.1}%)",
        oracle.storage_bytes(),
        full_bytes,
        100.0 * oracle.storage_bytes() as f64 / full_bytes as f64
    );
    let probe = 3 * n / 4;
    if let Some(est) = oracle.dist(probe, landmarks[0]) {
        println!(
            "d({probe}, hub {}) = {} under {}",
            landmarks[0], est.dist, est.guarantee
        );
    }
    let near = oracle.k_nearest(probe, 3);
    println!("three nearest landmarks of {probe}: {near:?}");

    println!(
        "\nsimulated Congested Clique cost:\n{}",
        solver.ledger().report()
    );
    Ok(())
}
