//! Quickstart: a `Solver` session answering (2+ε)-APSP and point queries,
//! then frozen into an `Arc`-shareable oracle for concurrent serving.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;

use congested_clique::prelude::*;

fn main() -> Result<(), CcError> {
    // A "caveman" graph: 12 cliques of 8 vertices in a ring — dense local
    // neighborhoods, large diameter. The kind of input where both the
    // short-range tool-kit and the emulator earn their keep.
    let g = generators::caveman(12, 8);
    println!(
        "graph: n = {}, m = {}, diameter = {}",
        g.n(),
        g.m(),
        bfs::diameter(&g)
    );

    // One session: configured once, substrates cached across queries.
    let mut solver = SolverBuilder::new(g.clone())
        .eps(0.5)
        .execution(Execution::Seeded(2020))
        .build()?;

    let result = solver.apsp_2eps()?;

    // Compare against exact ground truth.
    let exact = bfs::apsp_exact(&g);
    let report = stretch::evaluate(&exact, result.estimates.as_fn(), 0.0);
    println!(
        "pairs evaluated: {}, max stretch: {:.3}, mean stretch: {:.3}",
        report.pairs, report.max_multiplicative, report.mean_multiplicative
    );
    println!(
        "guarantee for d ≤ t = {}: {:.2}; lower-bound violations: {}",
        result.t, result.short_range_guarantee, report.lower_violations
    );
    assert_eq!(report.lower_violations, 0);

    // Point queries over the cached estimates are free — no further rounds —
    // and every answer names the guarantee it is proven under.
    let rounds_after_apsp = solver.total_rounds();
    let answer = solver.estimate(0, g.n() - 1).expect("estimate cached");
    assert_eq!(solver.total_rounds(), rounds_after_apsp);
    println!(
        "cached point query d(0, {}) = {} under {}",
        g.n() - 1,
        answer.dist,
        answer.guarantee
    );

    // A second identical query is also free (memoized result).
    let _ = solver.apsp_2eps()?;
    assert_eq!(solver.total_rounds(), rounds_after_apsp);

    // Freeze the read side: an immutable oracle in the compact
    // symmetric-packed layout, shared lock-free across query threads.
    let oracle = Arc::new(solver.freeze()?);
    println!(
        "\nfrozen oracle: {} layout, {} bytes, {} finite pairs",
        oracle.storage_kind().label(),
        oracle.storage_bytes(),
        oracle.finite_pairs()
    );
    let totals: Vec<u64> = std::thread::scope(|scope| {
        (0..4u64)
            .map(|t| {
                let oracle = Arc::clone(&oracle);
                scope.spawn(move || {
                    let n = oracle.n();
                    let pairs: Vec<(usize, usize)> =
                        (0..n).map(|v| ((t as usize * 31 + v) % n, v)).collect();
                    oracle
                        .dist_batch(&pairs)
                        .into_iter()
                        .flatten()
                        .map(|est| est.dist as u64)
                        .sum()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("query thread"))
            .collect()
    });
    println!("4 serving threads answered batches (checksums {totals:?})");

    println!(
        "\nsimulated Congested Clique cost:\n{}",
        solver.ledger().report()
    );
    Ok(())
}
