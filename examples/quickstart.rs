//! Quickstart: (2+ε)-approximate APSP on a clustered graph.
//!
//! Run with: `cargo run --release --example quickstart`

use congested_clique::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A "caveman" graph: 12 cliques of 8 vertices in a ring — dense local
    // neighborhoods, large diameter. The kind of input where both the
    // short-range tool-kit and the emulator earn their keep.
    let g = generators::caveman(12, 8);
    println!(
        "graph: n = {}, m = {}, diameter = {}",
        g.n(),
        g.m(),
        bfs::diameter(&g)
    );

    let mut rng = ChaCha8Rng::seed_from_u64(2020);
    let mut ledger = RoundLedger::new(g.n());

    let cfg = Apsp2Config::scaled(g.n(), 0.5)?;
    let result = apsp2::run(&g, &cfg, &mut rng, &mut ledger);

    // Compare against exact ground truth.
    let exact = bfs::apsp_exact(&g);
    let report = stretch::evaluate(&exact, result.estimates.as_fn(), 0.0);
    println!(
        "pairs evaluated: {}, max stretch: {:.3}, mean stretch: {:.3}",
        report.pairs, report.max_multiplicative, report.mean_multiplicative
    );
    println!(
        "guarantee for d ≤ t = {}: {:.2}; lower-bound violations: {}",
        result.t, result.short_range_guarantee, report.lower_violations
    );
    assert_eq!(report.lower_violations, 0);

    println!("\nsimulated Congested Clique cost:\n{}", ledger.report());
    Ok(())
}
