//! Offline stand-in for the [`rand`](https://docs.rs/rand/0.8) crate.
//!
//! The build environment for this workspace has no network access, so the
//! handful of `rand 0.8` APIs the algorithms use are vendored here as a
//! self-contained implementation: [`RngCore`], [`Rng`], [`SeedableRng`],
//! [`rngs::StdRng`] and [`seq::SliceRandom`].
//!
//! The generators are deterministic, seedable, high-quality *non-
//! cryptographic* PRNGs (splitmix64-seeded xoshiro256++). Streams are **not**
//! bit-compatible with upstream `rand`; everything in this workspace only
//! relies on determinism-per-seed and statistical uniformity, both of which
//! hold.

#![forbid(unsafe_code)]

/// The core pseudorandom number generator interface.
pub trait RngCore {
    /// Next 32 uniform random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator ([`Rng::gen`]).
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_unsigned_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                // Unbiased-enough widening multiply (Lemire reduction without
                // the rejection step; bias is < 2^-64 per draw).
                let v = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start + v
            }
        }
    )*};
}

impl_unsigned_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64, isize);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool requires p in [0,1], got {p}"
        );
        f64::sample(self) < p
    }

    /// Uniform draw from a half-open range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Shared deterministic engines (also used by the vendored `rand_chacha`).
#[doc(hidden)]
pub mod engine {
    /// splitmix64 — used to expand a 64-bit seed into generator state.
    #[derive(Clone, Debug)]
    pub struct SplitMix64(pub u64);

    impl SplitMix64 {
        /// Next 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// xoshiro256++ — the workhorse generator behind `StdRng` and the
    /// vendored `ChaCha8Rng`.
    #[derive(Clone, Debug)]
    pub struct Xoshiro256PlusPlus {
        s: [u64; 4],
    }

    impl Xoshiro256PlusPlus {
        /// Seeds all 256 bits of state from a 64-bit seed via splitmix64.
        pub fn seed_from_u64(seed: u64) -> Self {
            let mut sm = SplitMix64(seed);
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = sm.next_u64();
            }
            // All-zero state is a fixed point; splitmix64 cannot produce it
            // from any seed, but keep the guard for clarity.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Xoshiro256PlusPlus { s }
        }

        /// Next 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Standard generators.
pub mod rngs {
    use super::engine::Xoshiro256PlusPlus;
    use super::{RngCore, SeedableRng};

    /// The default generator (deterministic xoshiro256++ in this vendored
    /// build — upstream's block-cipher generator is not reproduced).
    #[derive(Clone, Debug)]
    pub struct StdRng(Xoshiro256PlusPlus);

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.0.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.0.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng(Xoshiro256PlusPlus::seed_from_u64(state))
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Extension methods on slices (`shuffle`, `choose`).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// One uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..i + 1).sample_single(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_single(rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..10);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "got {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn dyn_rng_core_works_through_reborrows() {
        fn sample(rng: &mut impl Rng) -> usize {
            rng.gen_range(0usize..5)
        }
        let mut rng = StdRng::seed_from_u64(4);
        let mut dyn_rng: &mut dyn RngCore = &mut rng;
        let v = sample(&mut dyn_rng);
        assert!(v < 5);
    }

    #[test]
    fn fill_bytes_fills_every_byte_eventually() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 33];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
