//! Offline stand-in for the [`proptest`](https://docs.rs/proptest/1) crate.
//!
//! Implements the slice of the proptest API this workspace's property tests
//! use: the [`proptest!`] macro, [`Strategy`] with [`Strategy::prop_map`],
//! range and tuple strategies, [`collection::vec`], [`ProptestConfig`] and
//! the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (derived from the test name and case index), failures are
//! plain `panic!`s and there is **no shrinking** — a failing case prints its
//! seed context via the standard assertion message instead.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of cases each property runs when no config is given.
pub const DEFAULT_CASES: u32 = 32;

/// Per-property configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: DEFAULT_CASES,
        }
    }
}

/// The generator handed to strategies.
#[derive(Debug)]
pub struct TestRunner(StdRng);

impl TestRunner {
    /// Deterministic runner for (test name, case index).
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRunner(StdRng::seed_from_u64(
            h ^ ((case as u64) << 32 | case as u64),
        ))
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.generate(runner))
    }
}

/// Constant strategy (upstream `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(runner),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRunner};
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Vector of `element`-generated values, length in `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let n = runner.rng().gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(runner)).collect()
        }
    }
}

/// The property-test macro. Each `fn name(PAT in STRATEGY) { .. }` item
/// expands to a `#[test]` that runs the body for `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])* fn $name:ident($pat:tt in $strat:expr) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategy = $strat;
                for case in 0..config.cases {
                    let mut runner =
                        $crate::TestRunner::for_case(stringify!($name), case);
                    let $pat = $crate::Strategy::generate(&strategy, &mut runner);
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Skips the current case when the assumption fails. Only valid directly
/// inside a `proptest!` body (it expands to `continue`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds((a, b) in (0usize..10, 5u32..9)) {
            prop_assert!(a < 10);
            prop_assert!((5..9).contains(&b));
        }

        #[test]
        fn map_applies(v in (1usize..5).prop_map(|x| x * 2)) {
            prop_assert!(v % 2 == 0 && (2..10).contains(&v));
        }

        #[test]
        fn vec_lengths_respected(v in collection::vec(0usize..3, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 3));
        }

        #[test]
        fn assume_skips(v in 0usize..10) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }
    }

    #[test]
    fn runner_is_deterministic_per_case() {
        use crate::Strategy;
        let s = 0usize..1000;
        let a = s.generate(&mut crate::TestRunner::for_case("t", 3));
        let b = s.generate(&mut crate::TestRunner::for_case("t", 3));
        assert_eq!(a, b);
        let c = s.generate(&mut crate::TestRunner::for_case("t", 4));
        assert!(c < 1000);
    }
}
