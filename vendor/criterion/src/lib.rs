//! Offline stand-in for the [`criterion`](https://docs.rs/criterion/0.5)
//! benchmark harness.
//!
//! Provides the API slice this workspace's benches use — [`Criterion`],
//! [`BenchmarkId`], benchmark groups, [`Bencher::iter`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros — backed by a simple
//! median-of-samples wall-clock timer that prints one line per benchmark.
//! No statistics, plots, or baselines; enough to run `cargo bench` and to
//! keep bench targets compiling offline.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs a single standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }
}

/// A named group of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` with `input`, labeled by `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Benchmarks `f`, labeled by `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifier for one parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one sample of `routine` (called once per sample by the runner).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    let mut b = Bencher::default();
    // One warm-up call, then the timed samples.
    f(&mut b);
    b.samples.clear();
    for _ in 0..samples {
        f(&mut b);
    }
    if b.samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let best = b.samples[0];
    println!(
        "{label:<48} median {:>12?}  best {:>12?}  ({} samples)",
        median,
        best,
        b.samples.len()
    );
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &x| {
            b.iter(|| x * x)
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        demo(&mut c);
    }
}
