//! Offline stand-in for the [`rand_chacha`](https://docs.rs/rand_chacha/0.3)
//! crate.
//!
//! Exposes [`ChaCha8Rng`], [`ChaCha12Rng`] and [`ChaCha20Rng`] with the
//! `SeedableRng::seed_from_u64` constructor this workspace uses. The vendored
//! implementation is a deterministic xoshiro256++ stream (domain-separated per
//! variant), **not** the ChaCha cipher: nothing here needs cryptographic
//! strength, only per-seed determinism and statistical uniformity. Streams
//! are not bit-compatible with upstream.

#![forbid(unsafe_code)]

use rand::engine::Xoshiro256PlusPlus;
use rand::{RngCore, SeedableRng};

macro_rules! chacha_stand_in {
    ($(#[$doc:meta] $name:ident, $tag:expr;)*) => {$(
        #[$doc]
        #[derive(Clone, Debug)]
        pub struct $name(Xoshiro256PlusPlus);

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                (self.0.next_u64() >> 32) as u32
            }

            fn next_u64(&mut self) -> u64 {
                self.0.next_u64()
            }

            fn fill_bytes(&mut self, dest: &mut [u8]) {
                for chunk in dest.chunks_mut(8) {
                    let word = self.0.next_u64().to_le_bytes();
                    chunk.copy_from_slice(&word[..chunk.len()]);
                }
            }
        }

        impl SeedableRng for $name {
            fn seed_from_u64(state: u64) -> Self {
                // Domain-separate the variants so equal seeds give distinct
                // streams, mirroring upstream behavior.
                $name(Xoshiro256PlusPlus::seed_from_u64(
                    state ^ ($tag as u64).wrapping_mul(0xA076_1D64_78BD_642F),
                ))
            }
        }
    )*};
}

chacha_stand_in! {
    /// Stand-in for the 8-round ChaCha generator.
    ChaCha8Rng, 8;
    /// Stand-in for the 12-round ChaCha generator.
    ChaCha12Rng, 12;
    /// Stand-in for the 20-round ChaCha generator.
    ChaCha20Rng, 20;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn variants_are_domain_separated() {
        let a = ChaCha8Rng::seed_from_u64(1).next_u64();
        let b = ChaCha20Rng::seed_from_u64(1).next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn usable_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let v = rng.gen_range(0usize..100);
        assert!(v < 100);
        let _: u64 = rng.gen();
    }
}
