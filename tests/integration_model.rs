#![allow(clippy::needless_range_loop)]
//! Model-level integration: the message engine agrees with centralized
//! reference algorithms, and the cost model is internally consistent.

use congested_clique::clique::cost::model;
use congested_clique::clique::programs::{Broadcast, DistributedBfs, MinAggregate};
use congested_clique::clique::{Engine, EngineConfig, NodeId};
use congested_clique::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn distributed_bfs_matches_centralized_on_random_graphs() {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    for seed in 0..3u64 {
        let g = generators::connected_gnp(40, 0.08, &mut rng);
        let src = (seed as usize * 13) % g.n();
        let nodes: Vec<DistributedBfs> = (0..g.n())
            .map(|v| {
                DistributedBfs::new(
                    NodeId::new(v),
                    NodeId::new(src),
                    g.neighbors(v)
                        .iter()
                        .map(|&u| NodeId::new(u as usize))
                        .collect(),
                    None,
                )
            })
            .collect();
        let mut engine = Engine::new(nodes);
        let stats = engine.run().expect("BFS respects the model");
        let exact = bfs::sssp(&g, src);
        for v in 0..g.n() {
            let got = engine.nodes()[v].distance();
            if exact[v] >= INF {
                assert_eq!(got, None, "v{v}");
            } else {
                assert_eq!(got, Some(exact[v] as u64), "v{v}");
            }
        }
        // Rounds track eccentricity, not n.
        let ecc = bfs::eccentricity(&g, src) as u64;
        assert!(
            stats.rounds <= ecc + 4,
            "rounds {} ecc {}",
            stats.rounds,
            ecc
        );
    }
}

#[test]
fn broadcast_cost_constant_grounded_by_engine() {
    // The ledger charges 1 round per broadcast and the engine reports
    // exactly that: `RunStats::rounds` counts communication rounds, with
    // the trailing drain step free (local computation).
    let n = 32;
    let nodes = (0..n)
        .map(|i| Broadcast::new(NodeId::new(i), NodeId::new(0), 7))
        .collect();
    let mut engine = Engine::new(nodes);
    let stats = engine.run().unwrap();
    assert_eq!(stats.rounds, model::broadcast_one());
    assert_eq!(stats.messages as usize, n - 1);
}

#[test]
fn aggregation_uses_receive_parallelism() {
    // One node can receive n−1 messages in a single round — the property
    // Lenzen routing and the gather primitives rely on.
    let n = 50;
    let nodes = (0..n)
        .map(|i| MinAggregate::new(NodeId::new(i), (n - i) as u64))
        .collect();
    let mut engine = Engine::new(nodes);
    let stats = engine.run().unwrap();
    assert!(stats.max_in_degree >= (n - 1) as u64);
    assert!(stats.rounds <= 4);
    assert!(engine.nodes().iter().all(|p| p.result() == Some(1)));
}

#[test]
fn sharded_execution_matches_serial_on_bfs() {
    // The flat-mailbox engine's sharded mode must be bit-identical to
    // serial execution: same RunStats, same program outputs.
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let g = generators::connected_gnp(60, 0.07, &mut rng);
    let build = || -> Vec<DistributedBfs> {
        (0..g.n())
            .map(|v| {
                DistributedBfs::new(
                    NodeId::new(v),
                    NodeId::new(3),
                    g.neighbors(v)
                        .iter()
                        .map(|&u| NodeId::new(u as usize))
                        .collect(),
                    None,
                )
            })
            .collect()
    };
    let mut serial = Engine::new(build());
    let serial_stats = serial.run().expect("serial BFS");
    for threads in [2, 4] {
        let mut sharded = Engine::with_config(build(), EngineConfig::threaded(threads));
        let stats = sharded.run().expect("sharded BFS");
        assert_eq!(stats, serial_stats, "threads = {threads}");
        for (a, b) in serial.nodes().iter().zip(sharded.nodes()) {
            assert_eq!(a.distance(), b.distance());
        }
    }
}

#[test]
fn round_limit_protects_against_nontermination() {
    struct Forever;
    impl congested_clique::clique::NodeProgram for Forever {
        fn on_round(&mut self, _ctx: &mut congested_clique::clique::RoundCtx<'_>) {}
        fn is_done(&self) -> bool {
            false
        }
    }
    let mut engine = Engine::with_config(
        vec![Forever, Forever],
        EngineConfig {
            max_rounds: 5,
            ..EngineConfig::default()
        },
    );
    assert!(engine.run().is_err());
}

#[test]
fn cost_model_orderings_hold() {
    // The asymptotic orderings the paper relies on, at concrete sizes:
    let n = 1u64 << 12;
    // 1. distance-sensitive beats unbounded: log²t ≪ log²n for t ≪ n.
    assert!(model::log2_ceil(32).pow(2) < model::log2_ceil(n).pow(2));
    // 2. sparse products at √n density are constant-round.
    assert!(model::sparse_minplus(64, 64, n, n) <= 3);
    // 3. dense products are polynomial.
    assert!(model::dense_minplus(n) >= 16);
    // 4. learn-all of n log log n words is O(log log n) rounds.
    let loglog = model::log2_ceil(model::log2_ceil(n));
    assert!(model::learn_all(n * loglog, n) <= 2 * loglog + 2);
    // 5. conditional expectation rounds are poly(log log n).
    let r = model::conditional_expectation_rounds(n, n);
    assert!(r >= loglog.pow(3) / 2 && r <= 4 * loglog.pow(3) + 4);
}

#[test]
fn ledger_breakdown_is_complete() {
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let g = generators::caveman(6, 6);
    let cfg = Apsp2Config::new(g.n(), 0.5, 2).expect("valid");
    let mut ledger = RoundLedger::new(g.n());
    let _ = apsp2::run(&g, &cfg, &mut rng, &mut ledger).expect("apsp2");
    let by_phase: u64 = ledger.by_phase().values().sum();
    assert_eq!(by_phase, ledger.total_rounds());
    assert!(ledger.report().contains("apsp2"));
}
