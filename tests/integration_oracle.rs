#![allow(clippy::needless_range_loop)]
//! End-to-end tests of the frozen `DistOracle` query layer: lock-free
//! concurrent reads, per-answer stretch guarantees against exact Dijkstra
//! ground truth across all three storage layouts, and the versioned
//! snapshot format (including checked-in golden files).

use std::path::PathBuf;
use std::sync::Arc;

use congested_clique::core::oracle::{DistOracle, Guarantee};
use congested_clique::graphs::dijkstra;
use congested_clique::prelude::*;
use proptest::prelude::*;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Pseudo-random query pairs for thread `t` — reproducible, so a serial
/// replay can regenerate exactly the same stream.
fn query_stream(t: u64, n: usize, batches: usize, batch: usize) -> Vec<Vec<(usize, usize)>> {
    let mut rng = ChaCha8Rng::seed_from_u64(0xC0FFEE ^ t);
    (0..batches)
        .map(|_| {
            (0..batch)
                .map(|_| (rng.gen_range(0..n + 2), rng.gen_range(0..n + 2)))
                .collect()
        })
        .collect()
}

/// ≥ 8 threads hammer one `Arc<DistOracle>` with randomized batches; every
/// answer stream must be bit-identical to a serial replay of the same
/// stream (values *and* provenance tags).
#[test]
fn concurrent_batches_are_bit_identical_to_serial_replay() {
    let g = generators::caveman(8, 8);
    let mut solver = SolverBuilder::new(g.clone())
        .eps(0.5)
        .execution(Execution::Seeded(42))
        .build()
        .expect("valid configuration");
    solver.apsp_2eps().expect("apsp2");
    solver.mssp(&[0, 9, 18, 27]).expect("mssp");
    let oracle = Arc::new(solver.freeze().expect("estimates computed"));
    let n = oracle.n();

    const THREADS: u64 = 8;
    const BATCHES: usize = 64;
    const BATCH: usize = 33;

    // Serial replay first: point queries, one at a time.
    let expected: Vec<Vec<Option<PointEstimate>>> = (0..THREADS)
        .map(|t| {
            query_stream(t, n, BATCHES, BATCH)
                .iter()
                .flat_map(|batch| batch.iter().map(|&(u, v)| oracle.dist(u, v)))
                .collect()
        })
        .collect();

    let answers: Vec<Vec<Option<PointEstimate>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let oracle = Arc::clone(&oracle);
                scope.spawn(move || {
                    query_stream(t, n, BATCHES, BATCH)
                        .iter()
                        .flat_map(|batch| oracle.dist_batch(batch))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("query thread"))
            .collect()
    });
    for (t, (got, want)) in answers.iter().zip(&expected).enumerate() {
        assert_eq!(got, want, "thread {t} diverged from the serial replay");
    }

    // Row and k-nearest queries are deterministic across threads too.
    let (a, b) = std::thread::scope(|scope| {
        let o1 = Arc::clone(&oracle);
        let o2 = Arc::clone(&oracle);
        let h1 = scope.spawn(move || {
            (0..o1.n())
                .map(|u| (o1.dists_from(u).into_owned(), o1.k_nearest(u, 5)))
                .collect::<Vec<_>>()
        });
        let h2 = scope.spawn(move || {
            (0..o2.n())
                .map(|u| (o2.dists_from(u).into_owned(), o2.k_nearest(u, 5)))
                .collect::<Vec<_>>()
        });
        (h1.join().expect("rows"), h2.join().expect("rows"))
    });
    assert_eq!(a, b);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// On random connected graphs, every frozen answer satisfies the
    /// stretch bound of the guarantee it is tagged with, against exact
    /// Dijkstra distances — in all three storage layouts, which must also
    /// agree with each other bit-for-bit.
    #[test]
    fn frozen_answers_satisfy_their_tagged_guarantee(
        (n, p_mill, seed) in (24usize..48, 60u64..140, 0u64..500)
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generators::connected_gnp(n, p_mill as f64 / 1000.0, &mut rng);
        let mut solver = SolverBuilder::new(g.clone())
            .eps(0.5)
            .execution(Execution::Seeded(seed))
            .build()
            .unwrap();
        solver.apsp_near_additive().unwrap();
        solver.mssp(&[0, n / 2]).unwrap();
        let frozen = solver.freeze().unwrap();

        let wg = WeightedGraph::from_unweighted(&g);
        let exact: Vec<Vec<Dist>> = (0..n).map(|v| dijkstra::sssp(&wg, v)).collect();

        for kind in [
            StorageKind::Full,
            StorageKind::SymmetricPacked,
            StorageKind::RowSparse,
        ] {
            let oracle = frozen.with_layout(kind);
            prop_assert_eq!(oracle.storage_kind(), kind);
            for u in 0..n {
                for v in 0..n {
                    let answer = oracle.dist(u, v);
                    prop_assert_eq!(answer, frozen.dist(u, v), "layouts disagree");
                    let est = answer.expect("near-additive APSP covers every pair");
                    prop_assert!(
                        est.dist >= exact[u][v],
                        "undercut at ({},{}): {} < {}", u, v, est.dist, exact[u][v]
                    );
                    prop_assert!(
                        (est.dist as f64) <= est.guarantee.bound(exact[u][v]) + 1e-9,
                        "({},{}): estimate {} exceeds {} at d = {}",
                        u, v, est.dist, est.guarantee, exact[u][v]
                    );
                }
            }
        }
    }
}

// ── Snapshot format golden files ─────────────────────────────────────────
//
// The three checked-in `tests/golden/oracle_*_v1.snap` files gate the wire
// format: `load` must reproduce the reference oracle bit-for-bit and
// `save` must reproduce the files byte-for-byte. The reference is
// hand-constructed (not pipeline output), so these only change when the
// *format* changes — which requires a version bump and fresh goldens
// (regenerate with `cargo test --test integration_oracle -- --ignored`).

/// Deterministic hand-built reference estimates (n = 12).
fn reference_matrix() -> DistanceMatrix {
    let mut m = DistanceMatrix::new(12);
    for u in 0..12 {
        for v in (u + 1)..12 {
            if (u * 7 + v * 3) % 5 != 0 {
                m.improve(u, v, ((u + v) % 9 + 1) as Dist);
            }
        }
    }
    m
}

/// The reference oracle for each golden layout, with a distinct guarantee
/// kind per file so all wire-encoded kinds are covered.
fn reference_oracles() -> Vec<(&'static str, DistOracle)> {
    let m = reference_matrix();
    let full = DistOracle::from_matrix(&m, Guarantee::mult2(0.5), StorageKind::Full);
    let sym = DistOracle::from_matrix(
        &m,
        Guarantee::near_additive(0.25, 4.0),
        StorageKind::SymmetricPacked,
    );
    let sparse = DistOracle::from_storage(
        DistStorage::row_sparse(12, vec![1, 4, 7], {
            let mut rows = Vec::new();
            for s in [1usize, 4, 7] {
                rows.extend_from_slice(m.row(s));
            }
            rows
        }),
        Guarantee::mssp(0.1),
    );
    vec![("full", full), ("symmetric", sym), ("rowsparse", sparse)]
}

fn golden_path(label: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("oracle_{label}_v1.snap"))
}

fn golden_v2_path(label: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("oracle_{label}_v2.snap"))
}

#[test]
fn golden_snapshots_round_trip_bit_identically() {
    for (label, reference) in reference_oracles() {
        let path = golden_path(label);
        let bytes = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("missing golden file {path:?} ({e}); regenerate with `cargo test --test integration_oracle -- --ignored`"));
        let loaded = DistOracle::load(&mut &bytes[..])
            .unwrap_or_else(|e| panic!("{label}: golden no longer parses: {e}"));
        assert_eq!(loaded, reference, "{label}: loaded oracle differs");
        let mut resaved = Vec::new();
        reference.save(&mut resaved).expect("save to memory");
        assert_eq!(
            resaved, bytes,
            "{label}: save() output changed — snapshot format v1 is frozen; \
             bump the version instead"
        );
        // The loaded oracle must answer identically to the reference.
        for u in 0..reference.n() {
            for v in 0..reference.n() {
                assert_eq!(loaded.dist(u, v), reference.dist(u, v));
            }
        }
    }
}

/// The v2 goldens gate the aligned-section format the same way: bit-exact
/// load, byte-exact re-save. The same references back both versions, so
/// these files also pin the v1 → v2 upgrade result.
#[test]
fn golden_v2_snapshots_round_trip_bit_identically() {
    for (label, reference) in reference_oracles() {
        let path = golden_v2_path(label);
        let bytes = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("missing golden file {path:?} ({e}); regenerate with `cargo test --test integration_oracle -- --ignored`"));
        let loaded = DistOracle::load(&mut &bytes[..])
            .unwrap_or_else(|e| panic!("{label}: v2 golden no longer parses: {e}"));
        assert_eq!(loaded, reference, "{label}: loaded oracle differs");
        let mut resaved = Vec::new();
        reference.save_v2(&mut resaved).expect("save to memory");
        assert_eq!(
            resaved, bytes,
            "{label}: save_v2() output changed — snapshot format v2 is \
             frozen; bump the version instead"
        );
        for u in 0..reference.n() {
            for v in 0..reference.n() {
                assert_eq!(loaded.dist(u, v), reference.dist(u, v));
            }
        }
        // Upgrading the v1 golden must land byte-exactly on the v2 golden.
        let v1_bytes = std::fs::read(golden_path(label)).expect("v1 golden present");
        let upgraded = DistOracle::load(&mut &v1_bytes[..]).expect("v1 parses");
        let mut as_v2 = Vec::new();
        upgraded.save_v2(&mut as_v2).expect("save to memory");
        assert_eq!(as_v2, bytes, "{label}: v1 -> v2 upgrade drifted");
    }
}

/// Regenerates the golden files. Only run deliberately (after a format
/// version bump): `cargo test --test integration_oracle -- --ignored`.
#[test]
#[ignore = "writes tests/golden; run only to regenerate after a format bump"]
fn regenerate_golden_snapshots() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    std::fs::create_dir_all(&dir).expect("create tests/golden");
    for (label, reference) in reference_oracles() {
        reference
            .save_to_path(golden_path(label))
            .expect("write golden");
        reference
            .save_v2_to_path(golden_v2_path(label))
            .expect("write v2 golden");
    }
}

/// Snapshots survive a filesystem round trip in every layout, for a
/// multi-guarantee (tagged) oracle frozen from a real session.
#[test]
fn tagged_session_snapshot_round_trips_on_disk() {
    let g = generators::caveman(6, 6);
    let mut solver = SolverBuilder::new(g)
        .eps(0.5)
        .execution(Execution::Seeded(3))
        .build()
        .unwrap();
    solver.apsp_3eps().unwrap();
    solver.mssp(&[0, 12, 24]).unwrap();
    let frozen = solver.freeze().unwrap();
    assert!(
        frozen.guarantees().len() > 1,
        "session with two pipelines must freeze a tagged oracle"
    );
    let dir = std::env::temp_dir();
    for kind in [
        StorageKind::Full,
        StorageKind::SymmetricPacked,
        StorageKind::RowSparse,
    ] {
        let oracle = frozen.with_layout(kind);
        let path = dir.join(format!("cc_oracle_rt_{}.snap", kind.label()));
        oracle.save_to_path(&path).expect("save");
        let back = DistOracle::load_from_path(&path).expect("load");
        std::fs::remove_file(&path).ok();
        assert_eq!(back, oracle, "{kind:?}");
    }
}
