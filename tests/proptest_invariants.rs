#![allow(clippy::needless_range_loop)]
//! Property-based tests (proptest) for the core invariants:
//!
//! * emulator stretch `(1+ε̂)d + β̂` on random graphs and parameters,
//! * hopset guarantee `d^β_{G∪H} ≤ (1+ε)d` for `d ≤ t`,
//! * `(k,d)`-nearest: filtered squaring ≡ truncated BFS,
//! * soft hitting sets satisfy Definition 42 on arbitrary instances,
//! * distance-estimate matrices never undercut and stay symmetric.

use congested_clique::derand::soft_hitting::{soft_hitting_set, SoftHittingInstance};
use congested_clique::emulator::ideal;
use congested_clique::prelude::*;
use congested_clique::toolkit::hopset::{self, HopsetParams};
use congested_clique::toolkit::knearest::{KNearest, Strategy as KnStrategy};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A random connected graph described by (n, extra edge density seed).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (6usize..40, 0u64..1000).prop_map(|(n, seed)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        generators::connected_gnp(n, 2.5 / n as f64, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn emulator_stretch_bound((g, eps_m, r, seed) in (arb_graph(), 1u32..4, 2usize..4, 0u64..500)) {
        let eps = eps_m as f64 * 0.1 + 0.05;
        let params = EmulatorParams::new(g.n(), eps, r).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let emu = ideal::build(&g, &params, &mut rng);
        let report = emu.verify(&g, &params);
        prop_assert!(report.within_bounds, "{report:?}");
    }

    #[test]
    fn emulator_weights_exact((g, seed) in (arb_graph(), 0u64..500)) {
        let params = EmulatorParams::new(g.n(), 0.3, 2).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let emu = ideal::build(&g, &params, &mut rng);
        let exact = bfs::apsp_exact(&g);
        for (u, v, w) in emu.graph.edges() {
            prop_assert_eq!(w, exact[u][v]);
        }
    }

    #[test]
    fn knearest_strategies_equivalent((g, k, d) in (arb_graph(), 1usize..20, 1u32..8)) {
        let mut l1 = RoundLedger::new(g.n());
        let mut l2 = RoundLedger::new(g.n());
        let a = KNearest::compute(&g, k, d, KnStrategy::TruncatedBfs, &mut l1);
        let b = KNearest::compute(&g, k, d, KnStrategy::Filtered, &mut l2);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn knearest_is_prefix_of_ball((g, k, d) in (arb_graph(), 1usize..16, 1u32..6)) {
        let mut ledger = RoundLedger::new(g.n());
        let kn = KNearest::compute(&g, k, d, KnStrategy::TruncatedBfs, &mut ledger);
        for v in 0..g.n() {
            let ball = bfs::ball(&g, v, d);
            let want: Vec<(u32, Dist)> = ball.into_iter().take(k).collect();
            prop_assert_eq!(kn.list(v), &want[..]);
        }
    }

    #[test]
    fn hopset_guarantee((g, t, seed) in (arb_graph(), 2u32..8, 0u64..200)) {
        let eps = 0.5;
        let params = HopsetParams::scaled(g.n(), t, eps);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ledger = RoundLedger::new(g.n());
        let hs = hopset::build_randomized(&g, params, &mut rng, &mut ledger);
        let samples: Vec<usize> = (0..g.n()).step_by(3).collect();
        let worst = hs.verify_from(&g, &samples);
        prop_assert!(worst <= 1.0 + eps + 1e-9, "worst = {worst}");
    }

    #[test]
    fn soft_hitting_definition((universe, delta_pow, l, seed) in (32usize..300, 1u32..5, 1usize..60, 0u64..500)) {
        let delta = 1usize << delta_pow;
        prop_assume!(delta * 2 <= universe);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        use rand::Rng;
        let sets: Vec<Vec<usize>> = (0..l)
            .map(|_| {
                let mut s = Vec::new();
                while s.len() < delta {
                    let e = rng.gen_range(0..universe);
                    if !s.contains(&e) {
                        s.push(e);
                    }
                }
                s
            })
            .collect();
        let inst = SoftHittingInstance::new(universe, delta, sets).unwrap();
        let mut ledger = RoundLedger::new(universe);
        let z = soft_hitting_set(&inst, &mut ledger);
        prop_assert!(z.verify(&inst, 3.0), "|Z|={} unhit={}", z.set.len(), z.unhit_mass);
    }

    #[test]
    fn additive_apsp_never_undercuts((g, seed) in (arb_graph(), 0u64..300)) {
        let cfg = AdditiveApspConfig::new(g.n(), 0.3, 2).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ledger = RoundLedger::new(g.n());
        let out = apsp_additive::run(&g, &cfg, &mut rng, &mut ledger);
        let exact = bfs::apsp_exact(&g);
        for u in 0..g.n() {
            for v in 0..g.n() {
                prop_assert!(out.estimates.get(u, v) >= exact[u][v]);
                prop_assert_eq!(out.estimates.get(u, v), out.estimates.get(v, u));
            }
        }
    }

    #[test]
    fn warmup_emulator_stretch((g, seed) in (arb_graph(), 0u64..300)) {
        use congested_clique::emulator::warmup::{self, WarmupParams};
        let params = WarmupParams::paper(g.n(), 0.34);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let emu = warmup::build(&g, &params, &mut rng);
        let report = emu.verify_with_bounds(
            &g,
            params.multiplicative_bound(),
            params.additive_bound(),
            f64::INFINITY,
        );
        prop_assert!(report.within_bounds, "{report:?}");
    }

    #[test]
    fn allgather_conserves_words(word_counts in proptest::collection::vec(0usize..5, 2..12)) {
        use congested_clique::clique::programs::AllGather;
        use congested_clique::clique::{Engine, NodeId};
        let mut next = 0u64;
        let nodes: Vec<AllGather> = word_counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let words: Vec<u64> = (0..c).map(|_| {
                    next += 1;
                    next
                }).collect();
                AllGather::new(NodeId::new(i), words)
            })
            .collect();
        let total: usize = word_counts.iter().sum();
        let mut engine = Engine::new(nodes);
        engine.run().expect("all-gather respects the model");
        for p in engine.nodes() {
            let mut got = p.collected().to_vec();
            got.sort_unstable();
            got.dedup();
            prop_assert_eq!(got.len(), total);
        }
    }

    #[test]
    fn spanner_stretch_property((g, k, seed) in (arb_graph(), 1usize..4, 0u64..200)) {
        use congested_clique::baselines::spanner;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ledger = RoundLedger::new(g.n());
        let (d, s) = spanner::apsp(&g, k, &mut rng, &mut ledger);
        let exact = bfs::apsp_exact(&g);
        for u in 0..g.n() {
            for v in 0..g.n() {
                prop_assert!(d[u][v] >= exact[u][v]);
                prop_assert!(d[u][v] <= exact[u][v].saturating_mul(2 * s.k as Dist - 1));
            }
        }
    }

    #[test]
    fn union_graph_distances_monotone((g, seed) in (arb_graph(), 0u64..300)) {
        // Adding (weight-safe) hopset edges never increases distances below
        // the true G-distance.
        let params = HopsetParams::scaled(g.n(), 4, 0.5);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ledger = RoundLedger::new(g.n());
        let hs = hopset::build_randomized(&g, params, &mut rng, &mut ledger);
        let union = hs.union_with(&g);
        let exact = bfs::apsp_exact(&g);
        let d0 = congested_clique::graphs::dijkstra::sssp(&union, 0);
        for v in 0..g.n() {
            prop_assert!(d0[v] >= exact[0][v]);
            prop_assert!(d0[v] <= exact[0][v].max(1) * 2 || d0[v] == exact[0][v]);
        }
    }
}
