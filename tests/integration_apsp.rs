#![allow(clippy::needless_range_loop)]
//! End-to-end integration tests: every APSP variant against exact ground
//! truth, across graph families, in randomized and deterministic modes.

use congested_clique::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn families(seed: u64) -> Vec<(&'static str, Graph)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    vec![
        ("cycle", generators::cycle(48)),
        ("grid", generators::grid(7, 7)),
        ("caveman", generators::caveman(7, 7)),
        ("gnp", generators::connected_gnp(64, 0.07, &mut rng)),
        ("tree", generators::random_tree(48, &mut rng)),
        (
            "pref-attach",
            generators::preferential_attachment(64, 2, &mut rng),
        ),
    ]
}

#[test]
fn additive_apsp_respects_bounds_everywhere() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    for (name, g) in families(10) {
        let cfg = AdditiveApspConfig::new(g.n(), 0.25, 2).expect("valid");
        let mut ledger = RoundLedger::new(g.n());
        let out = apsp_additive::run(&g, &cfg, &mut rng, &mut ledger);
        let exact = bfs::apsp_exact(&g);
        let report = stretch::evaluate(
            &exact,
            out.estimates.as_fn(),
            out.multiplicative_bound - 1.0,
        );
        assert!(
            report.satisfies(out.multiplicative_bound - 1.0, out.additive_bound),
            "{name}: {report:?}"
        );
    }
}

#[test]
fn two_plus_eps_short_range_everywhere() {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    for (name, g) in families(20) {
        let cfg = Apsp2Config::new(g.n(), 0.5, 2).expect("valid");
        let mut ledger = RoundLedger::new(g.n());
        let out = apsp2::run(&g, &cfg, &mut rng, &mut ledger).expect("apsp2");
        let exact = bfs::apsp_exact(&g);
        let report = stretch::evaluate_range(&exact, out.estimates.as_fn(), 0.0, 1, out.t);
        assert_eq!(report.lower_violations, 0, "{name}");
        assert_eq!(report.missed, 0, "{name}");
        assert!(
            report.max_multiplicative <= out.short_range_guarantee + 1e-9,
            "{name}: {} > {}",
            report.max_multiplicative,
            out.short_range_guarantee
        );
    }
}

#[test]
fn deterministic_variants_agree_with_bounds_and_reproduce() {
    for (name, g) in families(30) {
        let cfg = Apsp2Config::new(g.n(), 0.5, 2).expect("valid");
        let mut l1 = RoundLedger::new(g.n());
        let a = apsp2::run_deterministic(&g, &cfg, &mut l1).expect("apsp2 det");
        let mut l2 = RoundLedger::new(g.n());
        let b = apsp2::run_deterministic(&g, &cfg, &mut l2).expect("apsp2 det");
        assert_eq!(a.estimates, b.estimates, "{name}: determinism violated");
        assert_eq!(l1.total_rounds(), l2.total_rounds(), "{name}");
        let exact = bfs::apsp_exact(&g);
        let report = stretch::evaluate_range(&exact, a.estimates.as_fn(), 0.0, 1, a.t);
        assert!(
            report.max_multiplicative <= a.short_range_guarantee + 1e-9,
            "{name}: {}",
            report.max_multiplicative
        );
    }
}

#[test]
fn three_plus_eps_is_weaker_but_valid() {
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    for (name, g) in families(40) {
        let cfg = Apsp3Config::new(g.n(), 0.5, 2).expect("valid");
        let mut ledger = RoundLedger::new(g.n());
        let out = apsp3::run(&g, &cfg, &mut rng, &mut ledger).expect("apsp3");
        let exact = bfs::apsp_exact(&g);
        let report = stretch::evaluate_range(&exact, out.estimates.as_fn(), 0.0, 1, out.t);
        assert_eq!(report.lower_violations, 0, "{name}");
        assert!(
            report.max_multiplicative <= out.short_range_guarantee + 1e-9,
            "{name}: {}",
            report.max_multiplicative
        );
    }
}

#[test]
fn estimates_obey_triangle_inequality_through_merges() {
    // δ(u,v) values produced by the pipelines are path lengths in G, so
    // δ(u,v) ≤ δ(u,w) + δ(w,v) need not hold exactly — but the *exact lower
    // bound* d ≤ δ must, and δ must be symmetric. Check both.
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let g = generators::caveman(6, 6);
    let cfg = Apsp2Config::new(g.n(), 0.5, 2).expect("valid");
    let mut ledger = RoundLedger::new(g.n());
    let out = apsp2::run(&g, &cfg, &mut rng, &mut ledger).expect("apsp2");
    let exact = bfs::apsp_exact(&g);
    for u in 0..g.n() {
        for v in 0..g.n() {
            assert_eq!(out.estimates.get(u, v), out.estimates.get(v, u));
            if u != v {
                assert!(out.estimates.get(u, v) >= exact[u][v]);
            }
        }
    }
}

#[test]
fn baselines_sanity_against_exact() {
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let g = generators::connected_gnp(48, 0.1, &mut rng);
    let exact = bfs::apsp_exact(&g);

    let mut l1 = RoundLedger::new(g.n());
    assert_eq!(
        congested_clique::baselines::full_gather::apsp(&g, &mut l1),
        exact
    );

    let mut l2 = RoundLedger::new(g.n());
    assert_eq!(
        congested_clique::baselines::matrix_squaring::apsp_rows(&g, &mut l2),
        exact
    );
    // Algebraic rounds must exceed gather rounds on sparse inputs, and both
    // must be consistent with their formulas.
    assert!(l2.total_rounds() > l1.total_rounds());
}
