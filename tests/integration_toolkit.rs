#![allow(clippy::needless_range_loop)]
//! Cross-crate toolkit integration: the distance-sensitive tools composed
//! the way the applications compose them.

use congested_clique::prelude::*;
use congested_clique::toolkit::hopset::{self, HopsetParams};
use congested_clique::toolkit::knearest::{KNearest, Strategy};
use congested_clique::toolkit::source_detection::SourceDetection;
use congested_clique::toolkit::through_sets::distance_through_sets;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The MSSP inner loop: hopset + source detection gives (1+ε) for pairs
/// within t, across families and both hopset modes.
#[test]
fn hopset_plus_source_detection_is_one_plus_eps() {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let eps = 0.5;
    let t = 8u32;
    for (name, g) in [
        ("cycle", generators::cycle(50)),
        ("grid", generators::grid(7, 7)),
        ("caveman", generators::caveman(6, 6)),
        ("ws", generators::watts_strogatz(48, 4, 0.1, &mut rng)),
        ("hypercube", generators::hypercube(5)),
    ] {
        for deterministic in [false, true] {
            let params = HopsetParams::paper(g.n(), t, eps);
            let mut ledger = RoundLedger::new(g.n());
            let hs = if deterministic {
                hopset::build_deterministic(&g, params, &mut ledger)
            } else {
                hopset::build_randomized(&g, params, &mut rng, &mut ledger)
            };
            let union = hs.union_with(&g);
            let sources = [0usize, g.n() / 2];
            let sd = SourceDetection::run(&union, &sources, hs.beta, &mut ledger);
            for &s in &sources {
                let exact = bfs::sssp(&g, s);
                for v in 0..g.n() {
                    if exact[v] == 0 || exact[v] > t {
                        continue;
                    }
                    let est = sd.dist_to(v, s).unwrap();
                    assert!(est >= exact[v], "{name}/det={deterministic}: undercut");
                    assert!(
                        (est as f64) <= (1.0 + eps) * exact[v] as f64 + 1e-9,
                        "{name}/det={deterministic}: ({s},{v}) est {est} d {}",
                        exact[v]
                    );
                }
            }
        }
    }
}

/// The (3+ε) inner loop: k-nearest + through-sets recovers every pair whose
/// shortest path midpoint lies in both lists (Case 1 of §4.3).
#[test]
fn knearest_through_sets_covers_case_one() {
    let g = generators::grid(6, 6);
    let n = g.n();
    let exact = bfs::apsp_exact(&g);
    let mut ledger = RoundLedger::new(n);
    let k = 12;
    let t = 6;
    let kn = KNearest::compute(&g, k, t, Strategy::TruncatedBfs, &mut ledger);
    let sets: Vec<Vec<usize>> = (0..n)
        .map(|u| kn.list(u).iter().map(|&(v, _)| v as usize).collect())
        .collect();
    let rows = distance_through_sets(n, &sets, |u, w| kn.dist(u, w).unwrap_or(INF), &mut ledger);
    for u in 0..n {
        for v in 0..n {
            if u == v {
                continue;
            }
            // Pairs whose distance is at most the sum of both radii and
            // whose path midpoint is shared get an exact answer; at minimum
            // the result is a valid upper bound.
            if rows[u][v] < INF {
                assert!(rows[u][v] >= exact[u][v], "({u},{v})");
            }
            if kn.dist(u, v).is_some() {
                // v in u's list: through-sets with w = v is exact.
                assert!(rows[u][v] <= exact[u][v] + exact[v][v], "({u},{v})");
            }
        }
    }
}

/// The (S,d,k) generalization composes with hopsets: nearest_sources gives
/// the k closest pivots, in order.
#[test]
fn sdk_variant_orders_pivots() {
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let g = generators::caveman(8, 6);
    let params = HopsetParams::scaled(g.n(), 8, 0.5);
    let mut ledger = RoundLedger::new(g.n());
    let hs = hopset::build_randomized(&g, params, &mut rng, &mut ledger);
    let union = hs.union_with(&g);
    let pivots: Vec<usize> = (0..g.n()).step_by(7).collect();
    let sd = SourceDetection::run(&union, &pivots, hs.beta, &mut ledger);
    for v in 0..g.n() {
        let top3 = sd.nearest_sources(v, 3);
        assert!(top3.len() <= 3);
        // Sorted by distance.
        assert!(top3.windows(2).all(|w| w[0].1 <= w[1].1));
        // Distances are valid upper bounds.
        let exact = bfs::sssp(&g, v);
        for &(s, d) in &top3 {
            assert!(d >= exact[s], "v={v} s={s}");
        }
    }
}

/// Mixed pipeline over the new generators: (2+ε)-APSP on small worlds and
/// hypercubes (low diameter — everything short-range).
#[test]
fn apsp2_on_small_world_and_hypercube() {
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    for (name, g) in [
        ("ws", generators::watts_strogatz(64, 6, 0.2, &mut rng)),
        ("hypercube", generators::hypercube(6)),
        ("bipartite", generators::complete_bipartite(20, 30)),
    ] {
        if !g.is_connected() {
            continue;
        }
        let cfg = Apsp2Config::new(g.n(), 0.5, 2).expect("valid");
        let mut ledger = RoundLedger::new(g.n());
        let out = apsp2::run(&g, &cfg, &mut rng, &mut ledger).expect("apsp2");
        let exact = bfs::apsp_exact(&g);
        let report = stretch::evaluate_range(&exact, out.estimates.as_fn(), 0.0, 1, out.t);
        assert_eq!(report.lower_violations, 0, "{name}");
        assert!(
            report.max_multiplicative <= out.short_range_guarantee + 1e-9,
            "{name}: {}",
            report.max_multiplicative
        );
    }
}
