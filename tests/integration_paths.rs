#![allow(clippy::needless_range_loop)]
//! End-to-end tests of the route-serving subsystem: every reconstructed
//! route is verified edge-by-edge against the input graph, weight-checked
//! against both the frozen estimate and the tagged guarantee (with
//! `dijkstra::sssp_tree` as the exact reference), served lock-free from
//! concurrent threads, and round-tripped through the versioned `CCRO`
//! snapshot format (including checked-in golden files).

use std::path::PathBuf;
use std::sync::Arc;

use congested_clique::core::oracle::{DistOracle, SnapshotError};
use congested_clique::core::path_oracle::PathProvider;
use congested_clique::graphs::dijkstra;
use congested_clique::prelude::*;
use congested_clique::routes::{PathStore, RowStore};
use proptest::prelude::*;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Checks one route end-to-end: a real chained walk in `g` from `u` to `v`,
/// `weight` equal to the walk's exact weight in `G`, bounded by the tagged
/// estimate, and within the tagged guarantee of the exact distance (from the
/// shortest-path-tree reference).
fn assert_route(g: &Graph, tree: &dijkstra::ShortestPathTree, route: &Route, est: PointEstimate) {
    let (u, v) = (route.src as usize, route.dst as usize);
    assert_eq!(tree.src(), u, "caller passes the tree rooted at src");
    if u == v {
        assert!(route.edges.is_empty());
        assert_eq!(route.weight, 0);
        return;
    }
    assert_eq!(route.edges[0].0 as usize, u, "walk starts at src");
    assert_eq!(route.edges[route.edges.len() - 1].1 as usize, v);
    for w in route.edges.windows(2) {
        assert_eq!(w[0].1, w[1].0, "consecutive edges share their vertex");
    }
    for &(x, y) in &route.edges {
        assert!(
            g.has_edge(x as usize, y as usize),
            "({x},{y}) is not an edge of G"
        );
    }
    // Unweighted G: the exact weight of the walk is its edge count.
    assert_eq!(route.weight, route.edges.len() as Dist, "weight is exact");
    let exact = tree.dist(v);
    assert!(route.weight >= exact, "a real walk cannot undercut d_G");
    assert!(route.weight <= est.dist, "route heavier than its estimate");
    assert!(
        (route.weight as f64) <= est.guarantee.bound(exact) + 1e-9,
        "route at ({u},{v}) breaks its tagged guarantee: weight {} vs bound {}",
        route.weight,
        est.guarantee.bound(exact)
    );
    assert_eq!(route.guarantee, est.guarantee, "route and dist tags agree");
}

/// Routes from a full multi-pipeline session are verified pair-by-pair.
#[test]
fn session_routes_are_verified_against_dijkstra() {
    let g = generators::caveman(7, 7);
    let mut solver = SolverBuilder::new(g.clone())
        .eps(0.5)
        .execution(Execution::Seeded(21))
        .record_paths(true)
        .build()
        .expect("valid configuration");
    solver.apsp_2eps().expect("apsp2");
    solver.apsp_near_additive().expect("additive");
    solver.mssp(&[0, 13, 26, 39]).expect("mssp");
    let oracle = solver.freeze_with_paths().expect("paths recorded");
    let wg = WeightedGraph::from_unweighted(&g);
    for u in 0..g.n() {
        let tree = dijkstra::sssp_tree(&wg, u);
        for v in 0..g.n() {
            let est = oracle.dist(u, v);
            let route = oracle.path(u, v);
            assert_eq!(est.is_some(), route.is_some(), "coverage at ({u},{v})");
            if let (Some(route), Some(est)) = (route, est) {
                assert_route(&g, &tree, &route, est);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Over random gnp / grid / caveman graphs and both execution modes:
    /// every `PathOracle::path(u, v)` is a real walk in G whose exact
    /// weight equals `Route::weight`, is ≤ the tagged `PointEstimate`, and
    /// satisfies the tagged guarantee vs the Dijkstra reference.
    #[test]
    fn every_route_is_a_real_guaranteed_walk(
        (family, size, seed, det) in (0usize..3, 0usize..4, 0u64..1 << 16, 0u8..2)
    ) {
        let deterministic = det == 1;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = match family {
            0 => generators::connected_gnp(24 + 6 * size, 0.09, &mut rng),
            1 => generators::grid(4 + size, 5),
            _ => generators::caveman(3 + size, 5),
        };
        let execution = if deterministic {
            Execution::Deterministic
        } else {
            Execution::Seeded(seed)
        };
        let mut solver = SolverBuilder::new(g.clone())
            .eps(0.5)
            .execution(execution)
            .record_paths(true)
            .build()
            .expect("valid configuration");
        // Alternate which pipelines feed the oracle.
        match seed % 3 {
            0 => {
                solver.apsp_3eps().expect("apsp3");
            }
            1 => {
                solver.apsp_2eps().expect("apsp2");
                solver.mssp(&[0, g.n() / 2]).expect("mssp");
            }
            _ => {
                solver.apsp_near_additive().expect("additive");
                solver.mssp(&[1, g.n() - 1]).expect("mssp");
            }
        }
        let oracle = solver.freeze_with_paths().expect("paths recorded");
        let wg = WeightedGraph::from_unweighted(&g);
        for u in 0..g.n() {
            let tree = dijkstra::sssp_tree(&wg, u);
            for v in 0..g.n() {
                let est = oracle.dist(u, v);
                let route = oracle.path(u, v);
                prop_assert_eq!(est.is_some(), route.is_some(), "coverage ({},{})", u, v);
                if let (Some(route), Some(est)) = (route, est) {
                    assert_route(&g, &tree, &route, est);
                }
            }
        }
    }
}

/// Pseudo-random query pairs for thread `t` — reproducible, so a serial
/// replay regenerates exactly the same stream.
fn query_stream(t: u64, n: usize, queries: usize) -> Vec<(usize, usize)> {
    let mut rng = ChaCha8Rng::seed_from_u64(0xB0A7 ^ t);
    (0..queries)
        .map(|_| (rng.gen_range(0..n + 2), rng.gen_range(0..n + 2)))
        .collect()
}

/// 8 threads hammer one `Arc<PathOracle>`; every answer stream (routes and
/// distances) must be bit-identical to a serial replay.
#[test]
fn concurrent_route_serving_is_bit_identical_to_serial_replay() {
    let g = generators::caveman(6, 6);
    let mut solver = SolverBuilder::new(g)
        .eps(0.5)
        .execution(Execution::Seeded(17))
        .record_paths(true)
        .build()
        .expect("valid configuration");
    solver.apsp_3eps().expect("apsp3");
    solver.mssp(&[0, 18]).expect("mssp");
    let oracle = Arc::new(solver.freeze_with_paths().expect("paths recorded"));
    let n = oracle.n();
    let threads = 8u64;
    let queries = 300;
    let concurrent: Vec<Vec<Option<Route>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let oracle = Arc::clone(&oracle);
                scope.spawn(move || oracle.path_batch(&query_stream(t, n, queries)))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (t, got) in concurrent.into_iter().enumerate() {
        let want = oracle.path_batch(&query_stream(t as u64, n, queries));
        assert_eq!(got, want, "thread {t} diverged from the serial replay");
    }
}

// ── Snapshot format golden files ─────────────────────────────────────────
//
// `tests/golden/paths_v1.snap` gates the CCRO wire format the same way the
// `oracle_*_v1.snap` files gate CCDO: `load` must reproduce the reference
// oracle and `save` must reproduce the file byte-for-byte. The reference is
// hand-constructed (not pipeline output), so it only changes when the
// *format* changes — which requires a version bump and fresh goldens
// (regenerate with `cargo test --test integration_paths -- --ignored`).

/// Deterministic hand-built reference: a 10-path with one pair store and
/// one row store, exercising every wire tag (None/Rec/Rec-rev/Via, row
/// None/Some, Edge/Cat/Rev nodes).
fn reference_path_oracle() -> PathOracle {
    let n = 10;
    let g = generators::path(n);
    let mut pairs = PathStore::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if (u, v) == (0, 9) {
                continue; // witnessed below via a midpoint instead
            }
            let verts: Vec<u32> = (u as u32..=v as u32).collect();
            pairs.offer_walk(&g, (v - u) as Dist, &verts);
        }
    }
    // Pin the Via wire tag: (0,9) decomposes through 4, whose two halves
    // are already witnessed.
    pairs.offer_via(0, 9, 9, 4);
    let mut rows = RowStore::new(n, &[3, 8]);
    for (i, s) in [3usize, 8].into_iter().enumerate() {
        for v in 0..n {
            if v == s {
                continue;
            }
            let verts: Vec<u32> = if v > s {
                (s as u32..=v as u32).collect()
            } else {
                (v as u32..=s as u32).rev().collect()
            };
            // Leave one cell unwitnessed per row to pin the None tag.
            if v != 9 - i {
                rows.offer_walk(&g, i, v.abs_diff(s) as Dist, &verts);
            }
        }
    }
    let mut m = DistanceMatrix::new(n);
    for u in 0..n {
        for v in 0..n {
            if u != v {
                m.improve(u, v, u.abs_diff(v) as Dist);
            }
        }
    }
    let dist = DistOracle::from_matrix(&m, Guarantee::mult2(0.5), StorageKind::SymmetricPacked);
    // Pairs serve everything except the rows of source 3, which the row
    // store serves (provider 1).
    let mut origins = vec![0u8; n * (n + 1) / 2];
    for v in 0..n {
        if v != 3 && v != 6 {
            origins[DistStorage::packed_index(n, 3, v)] = 1;
        }
    }
    PathOracle::new(
        dist,
        origins,
        vec![
            PathProvider::Pairs(Arc::new(pairs)),
            PathProvider::Rows(Arc::new(rows)),
        ],
    )
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

#[test]
fn golden_ccro_snapshot_round_trips_bit_identically() {
    let reference = reference_path_oracle();
    let path = golden_dir().join("paths_v1.snap");
    let bytes = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {path:?} ({e}); regenerate with \
             `cargo test --test integration_paths -- --ignored`"
        )
    });
    let loaded = PathOracle::load(&mut &bytes[..]).expect("golden parses");
    assert_eq!(loaded, reference, "loaded oracle differs from reference");
    let mut resaved = Vec::new();
    reference.save(&mut resaved).expect("save to memory");
    assert_eq!(
        resaved, bytes,
        "save() output changed — snapshot format CCRO v1 is frozen; bump \
         the version instead"
    );
    for u in 0..reference.n() {
        for v in 0..reference.n() {
            assert_eq!(loaded.path(u, v), reference.path(u, v), "({u},{v})");
        }
    }
}

/// The crafted v255 `CCDO` golden: a future-version snapshot must be turned
/// away as `UnsupportedVersion` with the pinned message — never reported as
/// a checksum mismatch (the old loader verified the checksum first and
/// produced exactly that misleading error).
#[test]
fn golden_v255_snapshot_reports_unsupported_version() {
    let path = golden_dir().join("oracle_v255.snap");
    let bytes = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {path:?} ({e}); regenerate with \
             `cargo test --test integration_paths -- --ignored`"
        )
    });
    let err = DistOracle::load(&mut &bytes[..]).expect_err("v255 must not load");
    assert!(
        matches!(err, SnapshotError::UnsupportedVersion(255)),
        "got {err:?}"
    );
    assert_eq!(err.to_string(), "unsupported snapshot version 255");
    // The CCRO loader applies the same order.
    let mut ccro = bytes.clone();
    ccro[..4].copy_from_slice(b"CCRO");
    let err = PathOracle::load(&mut &ccro[..]).expect_err("v255 must not load");
    assert!(matches!(err, SnapshotError::UnsupportedVersion(255)));
}

/// The crafted v255 bytes: valid magic, version 255, an arbitrary body and
/// a trailing checksum a *future* format might or might not use — this
/// build must reject on version before ever looking at it.
fn crafted_v255_bytes() -> Vec<u8> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"CCDO");
    bytes.extend_from_slice(&255u16.to_le_bytes());
    bytes.extend_from_slice(&[0x5A; 24]);
    bytes.extend_from_slice(&0xDEAD_BEEF_u64.to_le_bytes());
    bytes
}

/// The CCRO v2 golden: bit-exact load, byte-exact re-save, and a pinned
/// v1 → v2 upgrade result (the same reference backs both versions).
#[test]
fn golden_ccro_v2_snapshot_round_trips_bit_identically() {
    let reference = reference_path_oracle();
    let path = golden_dir().join("paths_v2.snap");
    let bytes = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {path:?} ({e}); regenerate with \
             `cargo test --test integration_paths -- --ignored`"
        )
    });
    let loaded = PathOracle::load(&mut &bytes[..]).expect("v2 golden parses");
    assert_eq!(loaded, reference, "loaded oracle differs from reference");
    let mut resaved = Vec::new();
    reference.save_v2(&mut resaved).expect("save to memory");
    assert_eq!(
        resaved, bytes,
        "save_v2() output changed — snapshot format CCRO v2 is frozen; \
         bump the version instead"
    );
    for u in 0..reference.n() {
        for v in 0..reference.n() {
            assert_eq!(loaded.path(u, v), reference.path(u, v), "({u},{v})");
        }
    }
    // Upgrading the v1 golden must land byte-exactly on the v2 golden.
    let v1_bytes = std::fs::read(golden_dir().join("paths_v1.snap")).expect("v1 golden");
    let upgraded = PathOracle::load(&mut &v1_bytes[..]).expect("v1 parses");
    let mut as_v2 = Vec::new();
    upgraded.save_v2(&mut as_v2).expect("save to memory");
    assert_eq!(as_v2, bytes, "v1 -> v2 upgrade drifted");
}

/// Regenerates the golden files. Only run deliberately (after a format
/// version bump): `cargo test --test integration_paths -- --ignored`.
#[test]
#[ignore = "writes tests/golden; run only to regenerate after a format bump"]
fn regenerate_golden_paths_snapshots() {
    let dir = golden_dir();
    std::fs::create_dir_all(&dir).expect("create tests/golden");
    let reference = reference_path_oracle();
    reference
        .save_to_path(dir.join("paths_v1.snap"))
        .expect("write golden");
    reference
        .save_v2_to_path(dir.join("paths_v2.snap"))
        .expect("write v2 golden");
    std::fs::write(dir.join("oracle_v255.snap"), crafted_v255_bytes()).expect("write golden");
}

/// CCRO snapshots survive a filesystem round trip for a real recorded
/// session (multi-pipeline, tagged).
#[test]
fn session_ccro_snapshot_round_trips_on_disk() {
    let g = generators::caveman(5, 5);
    let mut solver = SolverBuilder::new(g)
        .eps(0.5)
        .execution(Execution::Seeded(4))
        .record_paths(true)
        .build()
        .unwrap();
    solver.apsp_2eps().unwrap();
    solver.mssp(&[0, 12]).unwrap();
    let oracle = solver.freeze_with_paths().unwrap();
    let path = std::env::temp_dir().join(format!("ccro_roundtrip_{}.snap", std::process::id()));
    oracle.save_to_path(&path).expect("write snapshot");
    let back = PathOracle::load_from_path(&path).expect("read snapshot");
    std::fs::remove_file(&path).ok();
    assert_eq!(back, oracle);
    for u in (0..back.n()).step_by(2) {
        for v in (0..back.n()).step_by(3) {
            assert_eq!(back.path(u, v), oracle.path(u, v), "({u},{v})");
        }
    }
}
