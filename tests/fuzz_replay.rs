//! Replays the frozen fuzz corpus in `tests/fuzz_corpus/`.
//!
//! Each case is a deterministic abuse of a golden snapshot (truncation,
//! magic/version/checksum tampering, v2 directory corruption — see
//! `cc_analyze::fuzz::emit_corpus`), and `MANIFEST.tsv` pins the *exact*
//! typed error it must produce. A drift in any loader's rejection behavior
//! — a new panic, a weaker error, or a case that suddenly loads — fails
//! here with the case name. `proto__*.bin` cases are corrupt `ccd` wire
//! bursts (length-prefix lies, truncated batches, req_id collisions)
//! replayed through the framing validator instead of the snapshot
//! loaders. Regenerate intentionally with:
//! `cargo run -p cc-analyze -- fuzz --emit-corpus tests/fuzz_corpus`.

use std::path::Path;

use cc_core::{DistOracle, PathOracle, SnapshotError};

fn load_any(bytes: &[u8]) -> Result<(), SnapshotError> {
    match bytes.get(..4) {
        Some(b"CCRO") => PathOracle::from_snapshot_bytes(bytes).map(|_| ()),
        _ => DistOracle::from_snapshot_bytes(bytes).map(|_| ()),
    }
}

#[test]
fn every_frozen_case_reproduces_its_pinned_error() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fuzz_corpus");
    let manifest =
        std::fs::read_to_string(dir.join("MANIFEST.tsv")).expect("tests/fuzz_corpus/MANIFEST.tsv");

    let mut cases = 0;
    let mut proto_cases = 0;
    for line in manifest.lines().filter(|l| !l.trim().is_empty()) {
        let (file, expected) = line
            .split_once('\t')
            .unwrap_or_else(|| panic!("malformed manifest line: {line:?}"));
        let bytes = std::fs::read(dir.join(file)).unwrap_or_else(|e| panic!("{file}: {e}"));

        if file.starts_with("proto__") {
            match std::panic::catch_unwind(|| cc_analyze::fuzz::check_frames(&bytes)) {
                Ok(Err(e)) => assert_eq!(
                    e, expected,
                    "{file}: diagnostic drifted from the pinned manifest entry"
                ),
                Ok(Ok(n)) => panic!("{file}: corrupt burst parsed cleanly ({n} frames)"),
                Err(_) => panic!("{file}: framing validator panicked"),
            }
            cases += 1;
            proto_cases += 1;
            continue;
        }

        let got = std::panic::catch_unwind(|| load_any(&bytes));
        match got {
            Ok(Err(e)) => assert_eq!(
                e.to_string(),
                expected,
                "{file}: error drifted from the pinned manifest entry"
            ),
            Ok(Ok(())) => panic!("{file}: corrupt snapshot loaded cleanly"),
            Err(_) => panic!("{file}: loader panicked instead of returning a typed error"),
        }
        cases += 1;
    }
    assert!(
        cases >= 50,
        "corpus went missing: only {cases} cases replayed"
    );
    assert!(
        proto_cases >= 6,
        "protocol corpus went missing: only {proto_cases} proto cases replayed"
    );
}

#[test]
fn golden_snapshots_still_load_cleanly() {
    // The inverse guard: the corpus generator's bases must stay valid, or
    // the abuse cases above are testing mutations of garbage.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let mut loaded = 0;
    for entry in std::fs::read_dir(&dir).expect("tests/golden") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "snap") {
            let bytes = std::fs::read(&path).expect("read golden");
            // v255 is the deliberate future-version fixture; it must be
            // rejected, not loaded.
            if path.to_string_lossy().contains("v255") {
                assert!(load_any(&bytes).is_err());
            } else {
                load_any(&bytes).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
                loaded += 1;
            }
        }
    }
    assert!(loaded >= 8, "golden corpus went missing: {loaded} loaded");
}
