#![allow(clippy::needless_range_loop)]
//! Every APSP-class algorithm in the workspace — the paper's pipelines and
//! all four baselines — driven through the shared `Algorithm` interface.

use congested_clique::baselines::{FullGather, MatrixSquaring, PolylogApsp, SpannerApsp};
use congested_clique::core::algorithm::{NearAdditiveApsp, ThreePlusEpsApsp, TwoPlusEpsApsp};
use congested_clique::prelude::*;

fn portfolio() -> Vec<Box<dyn Algorithm>> {
    vec![
        Box::new(NearAdditiveApsp { eps: 0.25 }),
        Box::new(TwoPlusEpsApsp { eps: 0.5 }),
        Box::new(ThreePlusEpsApsp { eps: 0.5 }),
        Box::new(FullGather),
        Box::new(MatrixSquaring),
        Box::new(SpannerApsp { k: 2 }),
        Box::new(PolylogApsp { eps: 0.5 }),
    ]
}

#[test]
fn every_algorithm_upper_bounds_true_distances() {
    let g = generators::caveman(6, 6);
    let exact = bfs::apsp_exact(&g);
    for alg in portfolio() {
        let mut ledger = RoundLedger::new(g.n());
        let out = alg
            .run(&g, Execution::Seeded(17), &mut ledger)
            .unwrap_or_else(|e| panic!("{}: {e}", alg.name()));
        assert_eq!(out.estimates.len(), g.n(), "{}", alg.name());
        assert!(ledger.total_rounds() > 0, "{}", alg.name());
        for u in 0..g.n() {
            for v in 0..g.n() {
                assert!(
                    out.estimates[u][v] >= exact[u][v],
                    "{} undercuts at ({u},{v})",
                    alg.name()
                );
            }
        }
    }
}

#[test]
fn guarantees_are_honest_on_connected_inputs() {
    // For each algorithm, measured error never exceeds the declared
    // (mult, add) guarantee on the pairs it covers. The multiplicative
    // pipelines' guarantee applies to their short range; the cycle's small
    // diameter at this size keeps every pair in range except for the
    // long-range emulator regime, which the additive slack absorbs.
    let g = generators::caveman(5, 5);
    let exact = bfs::apsp_exact(&g);
    for alg in portfolio() {
        let mut ledger = RoundLedger::new(g.n());
        let out = alg.run(&g, Execution::Seeded(3), &mut ledger).unwrap();
        let (mult, add) = out.guarantee;
        assert!(mult >= 1.0 && add >= 0.0, "{}", alg.name());
        for u in 0..g.n() {
            for v in 0..g.n() {
                if u == v {
                    continue;
                }
                let est = out.estimates[u][v] as f64;
                let d = exact[u][v] as f64;
                assert!(
                    est <= mult * d + add + 1e-9,
                    "{}: δ({u},{v}) = {est} exceeds {mult}·{d} + {add}",
                    alg.name()
                );
            }
        }
    }
}

#[test]
fn exact_algorithms_agree_with_each_other() {
    let g = generators::grid(6, 6);
    let mut l1 = RoundLedger::new(g.n());
    let a = FullGather
        .run(&g, Execution::Deterministic, &mut l1)
        .unwrap();
    let mut l2 = RoundLedger::new(g.n());
    let b = MatrixSquaring
        .run(&g, Execution::Deterministic, &mut l2)
        .unwrap();
    assert_eq!(a.estimates, b.estimates);
}
