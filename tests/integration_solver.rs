#![allow(clippy::needless_range_loop)]
//! End-to-end tests of the `Solver` session API: substrate reuse across
//! queries, builder validation, the unified error type, and equivalence
//! with the direct per-algorithm entry points for equal seeds.

use congested_clique::core::mssp::{self, MsspConfig, MsspError};
use congested_clique::core::{apsp2, CcError};
use congested_clique::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Ledger entries whose label marks emulator construction/distribution.
fn emulator_collections(solver: &Solver) -> usize {
    solver
        .ledger()
        .entries()
        .iter()
        .filter(|e| e.label.contains("collect emulator"))
        .count()
}

/// The acceptance-criterion workload: `apsp_2eps()` then `mssp()` through
/// one `Solver` must construct and distribute the emulator exactly once.
#[test]
fn two_query_workload_builds_the_emulator_once() {
    let g = generators::caveman(8, 8);
    let mut solver = SolverBuilder::new(g.clone())
        .eps(0.5)
        .execution(Execution::Seeded(42))
        .build()
        .expect("valid configuration");

    let apsp = solver.apsp_2eps().expect("apsp2");
    assert_eq!(emulator_collections(&solver), 1, "first query builds it");
    let rounds_after_apsp = solver.total_rounds();

    let sources: Vec<usize> = (0..g.n()).step_by(9).collect();
    let landmarks = solver.mssp(&sources).expect("mssp");
    assert_eq!(
        emulator_collections(&solver),
        1,
        "the MSSP query must reuse the cached emulator"
    );
    assert!(
        solver.total_rounds() > rounds_after_apsp,
        "MSSP still charges its per-query stages"
    );

    // Both results are real: validate against ground truth.
    let exact = bfs::apsp_exact(&g);
    for u in 0..g.n() {
        for v in 0..g.n() {
            assert!(apsp.estimates.get(u, v) >= exact[u][v]);
        }
    }
    for (i, &s) in landmarks.sources.iter().enumerate() {
        for v in 0..g.n() {
            assert!(landmarks.dist(i, v) >= exact[s][v]);
        }
    }
}

/// A repeated `apsp_2eps()` charges strictly fewer new rounds than the
/// first (the memoized result makes it free).
#[test]
fn second_apsp_query_charges_strictly_fewer_rounds() {
    let g = generators::grid(8, 8);
    let mut solver = SolverBuilder::new(g)
        .eps(0.5)
        .execution(Execution::Seeded(7))
        .build()
        .expect("valid configuration");
    solver.apsp_2eps().expect("apsp2");
    let first_cost = solver.total_rounds();
    assert!(first_cost > 0);
    solver.apsp_2eps().expect("apsp2");
    let second_cost = solver.total_rounds() - first_cost;
    assert!(
        second_cost < first_cost,
        "second query charged {second_cost}, first charged {first_cost}"
    );
}

/// Mixed-pipeline reuse: near-additive after (2+ε) rides on the same
/// emulator, so its marginal cost is far below a cold run.
#[test]
fn near_additive_after_apsp2_is_nearly_free() {
    let g = generators::caveman(7, 7);
    let cold = {
        let mut solver = SolverBuilder::new(g.clone())
            .eps(0.5)
            .execution(Execution::Seeded(5))
            .build()
            .unwrap();
        solver.apsp_near_additive().unwrap();
        solver.total_rounds()
    };
    let mut solver = SolverBuilder::new(g)
        .eps(0.5)
        .execution(Execution::Seeded(5))
        .build()
        .unwrap();
    solver.apsp_2eps().unwrap();
    let before = solver.total_rounds();
    solver.apsp_near_additive().unwrap();
    let marginal = solver.total_rounds() - before;
    assert!(
        marginal < cold,
        "marginal near-additive cost {marginal} should undercut cold cost {cold}"
    );
    assert_eq!(emulator_collections(&solver), 1);
}

#[test]
fn builder_validation_surfaces_unified_errors() {
    let g = generators::cycle(16);
    for bad_eps in [0.0, 1.0, 2.0, -0.25] {
        let err = SolverBuilder::new(g.clone())
            .eps(bad_eps)
            .build()
            .unwrap_err();
        assert!(
            matches!(err, CcError::Params(_)),
            "eps {bad_eps} must be rejected as a parameter error, got {err}"
        );
    }
    let err = SolverBuilder::new(g.clone())
        .profile(ParamProfile::Paper { levels: 0 })
        .build()
        .unwrap_err();
    assert!(matches!(err, CcError::Params(_)));

    // Query-level validation: invalid MSSP source sets.
    let mut solver = SolverBuilder::new(g).build().unwrap();
    let err = solver.mssp(&[]).unwrap_err();
    assert!(matches!(err, CcError::Mssp(MsspError::NoSources)));
    let err = solver.mssp(&[999]).unwrap_err();
    assert!(matches!(
        err,
        CcError::Mssp(MsspError::SourceOutOfRange { .. })
    ));
    let too_many: Vec<usize> = (0..16).chain(0..16).chain(0..16).collect();
    let err = solver.mssp(&too_many).unwrap_err();
    assert!(matches!(
        err,
        CcError::Mssp(MsspError::TooManySources { .. })
    ));
}

/// The serving workflow: freeze a session, share the oracle via `Arc`, and
/// answer tagged point queries that agree with `Solver::estimate` (and with
/// the deprecated untagged `query` shim) everywhere.
#[test]
fn frozen_session_serves_tagged_answers() {
    let g = generators::caveman(7, 7);
    let mut solver = SolverBuilder::new(g.clone())
        .eps(0.5)
        .execution(Execution::Seeded(17))
        .build()
        .unwrap();
    solver.apsp_2eps().unwrap();
    solver.mssp(&[0, 13, 26]).unwrap();
    let oracle = std::sync::Arc::new(solver.freeze().unwrap());
    assert_eq!(oracle.n(), g.n());
    assert_eq!(
        oracle.storage_kind(),
        StorageKind::SymmetricPacked,
        "session freeze picks the compact symmetric layout"
    );
    for u in 0..g.n() {
        for v in 0..g.n() {
            let frozen = oracle.dist(u, v);
            assert_eq!(frozen, solver.estimate(u, v), "({u},{v})");
            #[allow(deprecated)]
            let legacy = solver.query(u, v);
            assert_eq!(legacy, frozen.map(|e| e.dist), "({u},{v})");
        }
    }
    // k-nearest answers come back sorted and respect the frozen estimates.
    let near = oracle.k_nearest(0, 8);
    assert!(near.len() <= 8);
    assert!(near
        .windows(2)
        .all(|w| (w[0].1, w[0].0) <= (w[1].1, w[1].0)));
    for &(v, d) in &near {
        assert_eq!(oracle.dist(0, v as usize).unwrap().dist, d);
    }
}

#[test]
fn errors_format_and_chain() {
    let g = generators::cycle(8);
    let err = SolverBuilder::new(g).eps(3.0).build().unwrap_err();
    assert!(err.to_string().contains("invalid parameters"));
    assert!(std::error::Error::source(&err).is_some());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A fresh seeded `Solver` produces exactly the estimates of the direct
    /// `apsp2::run` call with the same seed and the scaled profile.
    #[test]
    fn solver_apsp2_matches_direct_run((n_factor, seed) in (2usize..5, 0u64..200)) {
        let g = generators::caveman(n_factor + 3, 6);
        let n = g.n();
        let mut solver = SolverBuilder::new(g.clone())
            .eps(0.5)
            .execution(Execution::Seeded(seed))
            .build()
            .unwrap();
        let via_solver = solver.apsp_2eps().unwrap();

        let cfg = Apsp2Config::scaled(n, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ledger = RoundLedger::new(n);
        let direct = apsp2::run(&g, &cfg, &mut rng, &mut ledger).unwrap();

        prop_assert_eq!(&via_solver.estimates, &direct.estimates);
        prop_assert_eq!(via_solver.t, direct.t);
        prop_assert_eq!(solver.total_rounds(), ledger.total_rounds());
    }

    /// Same equivalence for MSSP.
    #[test]
    fn solver_mssp_matches_direct_run((step, seed) in (3usize..9, 0u64..200)) {
        let g = generators::grid(7, 7);
        let n = g.n();
        let sources: Vec<usize> = (0..n).step_by(step).collect();
        let mut solver = SolverBuilder::new(g.clone())
            .eps(0.5)
            .execution(Execution::Seeded(seed))
            .build()
            .unwrap();
        let via_solver = solver.mssp(&sources).unwrap();

        let cfg = MsspConfig::scaled(n, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ledger = RoundLedger::new(n);
        let direct = mssp::run(&g, &sources, &cfg, &mut rng, &mut ledger).unwrap();

        prop_assert_eq!(&via_solver.estimates, &direct.estimates);
        prop_assert_eq!(via_solver.t, direct.t);
    }

    /// Deterministic sessions match the deterministic free functions.
    #[test]
    fn deterministic_solver_matches_direct_run(n_factor in 2usize..6) {
        let g = generators::caveman(n_factor + 3, 5);
        let n = g.n();
        let mut solver = SolverBuilder::new(g.clone())
            .eps(0.5)
            .execution(Execution::Deterministic)
            .build()
            .unwrap();
        let via_solver = solver.apsp_2eps().unwrap();

        let cfg = Apsp2Config::scaled(n, 0.5).unwrap();
        let mut ledger = RoundLedger::new(n);
        let direct = apsp2::run_deterministic(&g, &cfg, &mut ledger).unwrap();
        prop_assert_eq!(&via_solver.estimates, &direct.estimates);
    }
}
