//! Cross-construction emulator tests: ideal (§3.2), clique (§3.5), w.h.p.
//! (Thm 31) and deterministic (§5.1) agree on guarantees and structure.

use congested_clique::emulator::{clique, deterministic, ideal, whp};
use congested_clique::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn graph_suite(seed: u64) -> Vec<(&'static str, Graph)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    vec![
        ("grid", generators::grid(8, 8)),
        ("caveman", generators::caveman(8, 8)),
        ("gnp", generators::connected_gnp(72, 0.06, &mut rng)),
        ("barbell", generators::barbell(10, 20)),
    ]
}

#[test]
fn all_four_constructions_meet_their_bounds() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    for (name, g) in graph_suite(7) {
        let params = EmulatorParams::new(g.n(), 0.25, 2).expect("valid");
        let cfg = CliqueEmulatorConfig::paper(params.clone());
        let mult = params.clique_multiplicative_bound(cfg.eps_prime);
        let add = params.clique_additive_bound(cfg.eps_prime);

        let emu_ideal = ideal::build(&g, &params, &mut rng);
        assert!(emu_ideal.verify(&g, &params).within_bounds, "{name}: ideal");

        let mut ledger = RoundLedger::new(g.n());
        let emu_clique = clique::build(&g, &cfg, &mut rng, &mut ledger);
        assert!(
            emu_clique
                .verify_with_bounds(&g, mult, add, params.size_bound())
                .within_bounds,
            "{name}: clique"
        );

        let mut ledger = RoundLedger::new(g.n());
        let (emu_whp, stats) = whp::build(&g, &cfg, &mut rng, &mut ledger);
        assert!(
            emu_whp
                .verify_with_bounds(&g, mult, add, params.size_bound())
                .within_bounds,
            "{name}: whp"
        );
        assert!(stats.qualifying_runs > 0, "{name}: no qualifying whp run");

        let mut ledger = RoundLedger::new(g.n());
        let emu_det = deterministic::build(&g, &cfg, &mut ledger);
        assert!(
            emu_det
                .verify_with_bounds(&g, mult, add, params.size_bound())
                .within_bounds,
            "{name}: deterministic"
        );
    }
}

#[test]
fn emulator_distances_upper_bound_and_connect() {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let g = generators::caveman(10, 6);
    let params = EmulatorParams::new(g.n(), 0.25, 2).expect("valid");
    let emu = ideal::build(&g, &params, &mut rng);
    let exact = bfs::apsp_exact(&g);
    let through = emu.apsp();
    for u in 0..g.n() {
        for v in 0..g.n() {
            assert!(through[u][v] >= exact[u][v], "({u},{v})");
            assert!(through[u][v] < INF, "({u},{v}) disconnected in emulator");
        }
    }
}

#[test]
fn higher_r_trades_size_for_additive_error() {
    // More levels → sparser emulator (smaller n^{1/2^r} factor) but larger β.
    let g = generators::caveman(16, 8);
    let mut sizes = Vec::new();
    for r in [2usize, 3] {
        let params = EmulatorParams::new(g.n(), 0.25, r).expect("valid");
        let mut total = 0usize;
        for seed in 0..6 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            total += ideal::build(&g, &params, &mut rng).m();
        }
        sizes.push((r, total as f64 / 6.0, params.additive_bound()));
    }
    let (_, m2, b2) = sizes[0];
    let (_, m3, b3) = sizes[1];
    assert!(b3 > b2, "β must grow with r: {b2} vs {b3}");
    // Size bound shrinks with r; measured sizes are close at this scale, so
    // only assert the bound ordering (measured sizes are noisy).
    let p2 = EmulatorParams::new(g.n(), 0.25, 2).unwrap().size_bound();
    let p3 = EmulatorParams::new(g.n(), 0.25, 3).unwrap().size_bound();
    assert!(p3 < p2 * 2.0);
    assert!(m2 > 0.0 && m3 > 0.0);
}

#[test]
fn collection_cost_matches_size() {
    // Thm 32's collection step: learning K words costs 2⌈K/n⌉+2 rounds.
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let g = generators::grid(10, 10);
    let params = EmulatorParams::new(g.n(), 0.25, 2).expect("valid");
    let emu = ideal::build(&g, &params, &mut rng);
    let mut ledger = RoundLedger::new(g.n());
    ledger.charge_learn_all("collect", emu.m() as u64);
    let expect = congested_clique::clique::cost::model::learn_all(emu.m() as u64, g.n() as u64);
    assert_eq!(ledger.total_rounds(), expect);
}
