#![allow(clippy::needless_range_loop)]
//! End-to-end MSSP integration tests (Thm 3/33 and Thm 52).

use congested_clique::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn check_short_range(g: &Graph, out: &congested_clique::core::mssp::Mssp, eps: f64, label: &str) {
    for (i, &s) in out.sources.iter().enumerate() {
        let exact = bfs::sssp(g, s);
        for v in 0..g.n() {
            if exact[v] == 0 || exact[v] >= INF || exact[v] > out.t {
                continue;
            }
            let est = out.dist(i, v);
            assert!(est >= exact[v], "{label}: undercut ({s},{v})");
            assert!(
                (est as f64) <= (1.0 + eps) * exact[v] as f64 + 1e-9,
                "{label}: ({s},{v}) est {est} d {}",
                exact[v]
            );
        }
    }
}

#[test]
fn mssp_one_plus_eps_across_families_and_source_patterns() {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let graphs = vec![
        ("grid", generators::grid(8, 8)),
        ("caveman", generators::caveman(8, 8)),
        ("gnp", generators::connected_gnp(72, 0.05, &mut rng)),
    ];
    for (name, g) in graphs {
        let n = g.n();
        let cfg = MsspConfig::new(n, 0.5, 2).expect("valid");
        // Three source patterns: spread, clustered, single.
        let patterns: Vec<Vec<usize>> =
            vec![(0..n).step_by(9).collect(), (0..6).collect(), vec![n / 2]];
        for (pi, sources) in patterns.iter().enumerate() {
            let mut ledger = RoundLedger::new(n);
            let out = mssp::run(&g, sources, &cfg, &mut rng, &mut ledger)
                .unwrap_or_else(|e| panic!("{name}/{pi}: {e}"));
            check_short_range(&g, &out, cfg.eps, &format!("{name}/{pi}"));
        }
    }
}

#[test]
fn deterministic_mssp_reproduces_and_satisfies() {
    let g = generators::caveman(7, 7);
    let cfg = MsspConfig::new(g.n(), 0.5, 2).expect("valid");
    let sources = [0usize, 13, 26, 39];
    let mut l1 = RoundLedger::new(g.n());
    let a = mssp::run_deterministic(&g, &sources, &cfg, &mut l1).unwrap();
    let mut l2 = RoundLedger::new(g.n());
    let b = mssp::run_deterministic(&g, &sources, &cfg, &mut l2).unwrap();
    assert_eq!(a.estimates, b.estimates);
    check_short_range(&g, &a, cfg.eps, "det");
}

#[test]
fn single_source_is_a_special_case() {
    // SSSP = MSSP with one source; the paper notes even this case had no
    // sub-logarithmic solution before.
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let g = generators::grid(9, 9);
    let cfg = MsspConfig::new(g.n(), 0.25, 2).expect("valid");
    let mut ledger = RoundLedger::new(g.n());
    let out = mssp::run(&g, &[40], &cfg, &mut rng, &mut ledger).unwrap();
    check_short_range(&g, &out, cfg.eps, "sssp");
}

#[test]
fn estimates_cover_all_vertices_on_connected_input() {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let g = generators::caveman(10, 5);
    let cfg = MsspConfig::new(g.n(), 0.5, 2).expect("valid");
    let sources = [0usize, 25];
    let mut ledger = RoundLedger::new(g.n());
    let out = mssp::run(&g, &sources, &cfg, &mut rng, &mut ledger).unwrap();
    for i in 0..sources.len() {
        for v in 0..g.n() {
            assert!(out.dist(i, v) < INF, "source {i} missing vertex {v}");
        }
    }
}
