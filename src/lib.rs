//! # congested-clique
//!
//! A faithful, fully-tested reproduction of **Dory & Parter, “Exponentially
//! Faster Shortest Paths in the Congested Clique” (PODC 2020)** —
//! `poly(log log n)`-round algorithms for approximate shortest paths in
//! unweighted undirected graphs:
//!
//! * `(1+ε)`-approximate **multi-source shortest paths** from `O(√n)`
//!   sources ([`core::mssp`], Thm 3),
//! * `(2+ε)`-approximate **APSP** ([`core::apsp2`], Thm 4),
//! * `(1+ε, β)`-approximate **APSP** ([`core::apsp_additive`], Thm 5),
//!
//! plus every substrate they stand on: a Congested Clique simulator with
//! round accounting ([`clique`]), near-additive emulators ([`emulator`]),
//! the distance-sensitive tool-kit ([`toolkit`]), min-plus matrix machinery
//! ([`matrix`]), soft-hitting-set derandomization ([`derand`]), reference
//! graph algorithms ([`graphs`]) and baselines ([`baselines`]).
//!
//! See `README.md` for a tour, `DESIGN.md` for the architecture and
//! simulation methodology, and `EXPERIMENTS.md` for the experiment index.
//!
//! ## Quickstart
//!
//! The [`core::Solver`] session API is the front door: configure a session
//! once, then issue queries that share the cached emulator and hopsets.
//!
//! ```
//! use congested_clique::prelude::*;
//!
//! // A graph with dense local clusters and a large diameter.
//! let g = generators::caveman(8, 8);
//! let mut solver = SolverBuilder::new(g.clone())
//!     .eps(0.5)
//!     .execution(Execution::Seeded(7))
//!     .build()?;
//!
//! // (2+ε)-approximate all-pairs shortest paths, ε = 0.5.
//! let apsp = solver.apsp_2eps()?;
//! let exact = bfs::apsp_exact(&g);
//! let est = apsp.estimates.get(0, 40);
//! assert!(est >= exact[0][40]);
//! assert!(est as f64 <= 2.5 * exact[0][40] as f64);
//!
//! // Follow-up queries reuse the substrates; point lookups are free and
//! // carry the guarantee of the pipeline that produced them.
//! let landmarks = solver.mssp(&[0, 16, 32])?;
//! assert_eq!(landmarks.dist(0, 0), 0);
//! let answer = solver.estimate(0, 40).expect("estimate cached");
//! println!("d(0,40) ≤ {} under {}", answer.dist, answer.guarantee);
//!
//! // Freeze the read side into an Arc-shareable oracle for serving.
//! let oracle = std::sync::Arc::new(solver.freeze()?);
//! assert_eq!(oracle.dist(0, 40).map(|e| e.dist), Some(answer.dist));
//! println!("simulated rounds: {}", solver.total_rounds());
//! # Ok::<(), congested_clique::core::CcError>(())
//! ```

#![forbid(unsafe_code)]
// Index-based loops are the clearest idiom for the dense adjacency/matrix
// code in this workspace.
#![allow(clippy::needless_range_loop)]

pub use cc_baselines as baselines;
pub use cc_clique as clique;
pub use cc_core as core;
pub use cc_derand as derand;
pub use cc_emulator as emulator;
pub use cc_graphs as graphs;
pub use cc_matrix as matrix;
pub use cc_routes as routes;
pub use cc_toolkit as toolkit;

/// One-stop imports for the common workflow.
pub mod prelude {
    pub use cc_clique::RoundLedger;
    pub use cc_core::apsp2::{self, Apsp2Config};
    pub use cc_core::apsp3::{self, Apsp3Config};
    pub use cc_core::apsp_additive::{self, AdditiveApspConfig};
    pub use cc_core::mssp::{self, MsspConfig};
    pub use cc_core::{
        Algorithm, AlgorithmOutput, CcError, DistOracle, DistanceMatrix, Execution, Guarantee,
        GuaranteeKind, ParamProfile, PathOracle, PointEstimate, Route, SnapshotError, Solver,
        SolverBuilder,
    };
    pub use cc_emulator::clique::CliqueEmulatorConfig;
    pub use cc_emulator::{Emulator, EmulatorParams};
    pub use cc_graphs::{
        bfs, generators, stretch, Dist, DistStorage, Graph, StorageKind, WeightedGraph, INF,
    };
}
