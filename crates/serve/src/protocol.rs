//! The `ccd` wire protocol: length-prefixed binary frames over TCP.
//!
//! Everything is little-endian. A frame is a `u32` body length followed by
//! the body (capped at [`MAX_FRAME`] — oversized frames are a protocol
//! error, not an allocation):
//!
//! ```text
//! request   req_id u64 | op u8 | flags u8 | deadline_ms u32 |
//!           count u32 | count × (u u32, v u32)
//! response  req_id u64 | status u8 | op u8 | count u32 | payload
//! ```
//!
//! Ops: `0` ping, `1` dist, `2` path, `3` stats, `4` reload (admin),
//! `5` version, `6` metrics, `7` trace. Response payloads:
//!
//! * **dist** — per pair: `present u8`, then (when present) `dist u32`,
//!   `kind u8`, `eps f64`, `additive f64`. The guarantee travels bit-exact
//!   so a served answer compares `==` against a local
//!   [`cc_core::PointEstimate`].
//! * **path** — per pair: `present u8`, then `dist u32`, `kind u8`,
//!   `eps f64`, `additive f64`, `edge_count u32`, `edge_count × (u32, u32)`.
//! * **stats** — `served u64 | shed u64 | deadline_missed u64 |
//!   malformed u64 | queue_depth u64 | generation u64 | reloads_ok u64 |
//!   reloads_rejected u64 | worker_panics u64 | slow_disconnects u64`.
//! * **metrics / trace** — `count` UTF-8 bytes (`count` is the byte
//!   length): the full metrics text exposition, or one `span …` line per
//!   drained trace-ring event for this connection.
//! * **version / reload** — `generation u64 | n u64`: the snapshot
//!   generation now serving (after the swap, for a successful reload) and
//!   its vertex count. A refused reload answers
//!   [`Status::ReloadRejected`] with an empty payload; the previous
//!   generation keeps serving.
//!
//! `deadline_ms` is the client's patience budget: `0` means the server
//! default. A request the scheduler dequeues after the deadline answers
//! [`Status::DeadlineExceeded`] without touching the oracle.

use std::io::{Read, Write};

use cc_core::{Guarantee, GuaranteeKind, PointEstimate, Route};

/// The largest frame either side will read (16 MiB).
pub const MAX_FRAME: usize = 16 << 20;

/// Request operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Op {
    /// Liveness probe; empty response payload.
    Ping,
    /// Batched point distance queries.
    Dist,
    /// Batched route queries.
    Path,
    /// Server counters.
    Stats,
    /// Admin: reload the serving snapshot from its configured path. The
    /// server answers with the post-swap [`VersionInfo`] on success, or
    /// [`Status::ReloadRejected`] (old snapshot keeps serving) on refusal.
    Reload,
    /// The serving snapshot's generation and vertex count.
    Version,
    /// The full metrics text exposition (counters, gauges, request
    /// lifecycle histograms) from the server's `cc_obs` registry.
    Metrics,
    /// Drains this connection's trace ring: one `span …` text line per
    /// recorded request (oldest first). Draining consumes the events.
    Trace,
}

impl Op {
    pub(crate) fn wire(self) -> u8 {
        match self {
            Op::Ping => 0,
            Op::Dist => 1,
            Op::Path => 2,
            Op::Stats => 3,
            Op::Reload => 4,
            Op::Version => 5,
            Op::Metrics => 6,
            Op::Trace => 7,
        }
    }

    fn from_wire(b: u8) -> Option<Self> {
        Some(match b {
            0 => Op::Ping,
            1 => Op::Dist,
            2 => Op::Path,
            3 => Op::Stats,
            4 => Op::Reload,
            5 => Op::Version,
            6 => Op::Metrics,
            7 => Op::Trace,
            _ => return None,
        })
    }
}

/// Response status.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Status {
    /// Served.
    Ok,
    /// Admission control shed the request: the bounded queue was full.
    /// Explicit — the client knows to back off; nothing is silently
    /// dropped.
    Overloaded,
    /// Dequeued after its deadline; not computed.
    DeadlineExceeded,
    /// The request could not be decoded or asked for out-of-range work.
    Malformed,
    /// The server is draining; no new work is admitted.
    ShuttingDown,
    /// A worker panicked while computing this batch. The request was not
    /// served, but the connection and the server survive; the panic is
    /// counted in `stats` and the worker respawns.
    Internal,
    /// A reload was refused (corrupt file, dimension mismatch, or reload
    /// not configured); the previous snapshot generation keeps serving.
    ReloadRejected,
}

impl Status {
    pub(crate) fn wire(self) -> u8 {
        match self {
            Status::Ok => 0,
            Status::Overloaded => 1,
            Status::DeadlineExceeded => 2,
            Status::Malformed => 3,
            Status::ShuttingDown => 4,
            Status::Internal => 5,
            Status::ReloadRejected => 6,
        }
    }

    fn from_wire(b: u8) -> Option<Self> {
        Some(match b {
            0 => Status::Ok,
            1 => Status::Overloaded,
            2 => Status::DeadlineExceeded,
            3 => Status::Malformed,
            4 => Status::ShuttingDown,
            5 => Status::Internal,
            6 => Status::ReloadRejected,
            _ => return None,
        })
    }
}

/// A decoded request.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Request {
    /// Client-chosen id echoed on the response.
    pub req_id: u64,
    /// What to do.
    pub op: Op,
    /// Patience in milliseconds; `0` = server default.
    pub deadline_ms: u32,
    /// Query pairs (empty for ping/stats).
    pub pairs: Vec<(u32, u32)>,
}

/// Encodes a collection count for the wire. Counts are `u32`; any
/// saturated (impossibly large) count produces a body that
/// [`write_frame`]'s `MAX_FRAME` bound rejects, so a lying frame is never
/// emitted.
pub(crate) fn wire_count(n: usize) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

impl Request {
    /// Encodes the request body (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(18 + 8 * self.pairs.len());
        b.extend_from_slice(&self.req_id.to_le_bytes());
        b.push(self.op.wire());
        b.push(0); // flags, reserved
        b.extend_from_slice(&self.deadline_ms.to_le_bytes());
        b.extend_from_slice(&wire_count(self.pairs.len()).to_le_bytes());
        for &(u, v) in &self.pairs {
            b.extend_from_slice(&u.to_le_bytes());
            b.extend_from_slice(&v.to_le_bytes());
        }
        b
    }

    /// Decodes a request body. `None` on any structural violation — the
    /// server answers [`Status::Malformed`] (when it can recover the id)
    /// rather than dropping the connection.
    pub fn decode(body: &[u8]) -> Option<Request> {
        let mut c = Dec::new(body);
        let req_id = c.u64()?;
        let op = Op::from_wire(c.u8()?)?;
        let _flags = c.u8()?;
        let deadline_ms = c.u32()?;
        let count = c.u32()? as usize;
        // Body length bounds the claimed count before the allocation.
        if c.remaining() != count.checked_mul(8)? {
            return None;
        }
        let mut pairs = Vec::with_capacity(count);
        for _ in 0..count {
            pairs.push((c.u32()?, c.u32()?));
        }
        Some(Request {
            req_id,
            op,
            deadline_ms,
            pairs,
        })
    }
}

/// One served route answer: `(weight, guarantee, edges)`.
pub type PathItem = (u32, Guarantee, Vec<(u32, u32)>);

/// A decoded response payload.
#[derive(Clone, PartialEq, Debug)]
pub enum Payload {
    /// Ping / error responses: nothing.
    Empty,
    /// Per-pair distance answers.
    Dists(Vec<Option<PointEstimate>>),
    /// Per-pair route answers.
    Paths(Vec<Option<PathItem>>),
    /// Server counters.
    Stats(StatsSnapshot),
    /// Snapshot generation facts ([`Op::Version`], successful
    /// [`Op::Reload`]).
    Version(VersionInfo),
    /// UTF-8 text ([`Op::Metrics`] exposition, [`Op::Trace`] span lines).
    Text(String),
}

/// What [`Op::Version`] (and a successful [`Op::Reload`]) reports about
/// the serving snapshot.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct VersionInfo {
    /// Monotonic snapshot generation: `1` at boot, `+1` per successful
    /// hot reload. A rejected reload does not advance it.
    pub generation: u64,
    /// Vertex count of the serving snapshot.
    pub n: u64,
}

/// The counters a `stats` request returns.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct StatsSnapshot {
    /// Requests answered `Ok`.
    pub served: u64,
    /// Requests answered `Overloaded` (queue full).
    pub shed: u64,
    /// Requests answered `DeadlineExceeded`.
    pub deadline_missed: u64,
    /// Requests answered `Malformed`.
    pub malformed: u64,
    /// Queue depth at snapshot time.
    pub queue_depth: u64,
    /// Serving snapshot generation (`1` at boot; `+1` per hot reload).
    pub generation: u64,
    /// Hot reloads that validated and swapped in.
    pub reloads_ok: u64,
    /// Hot reloads refused (corrupt file, dimension mismatch); the
    /// previous generation kept serving.
    pub reloads_rejected: u64,
    /// Worker panics contained by `catch_unwind` (each answered its batch
    /// with [`Status::Internal`] and the worker respawned).
    pub worker_panics: u64,
    /// Connections dropped for reading too slowly (outbox overflow or
    /// write timeout) instead of blocking workers.
    pub slow_disconnects: u64,
}

/// A decoded response.
#[derive(Clone, PartialEq, Debug)]
pub struct Response {
    /// Echo of [`Request::req_id`].
    pub req_id: u64,
    /// Outcome.
    pub status: Status,
    /// Echo of the request op.
    pub op: Op,
    /// The answers (meaningful for [`Status::Ok`] only).
    pub payload: Payload,
}

fn encode_guarantee(b: &mut Vec<u8>, g: Guarantee) {
    b.push(guarantee_kind_wire(g.kind));
    b.extend_from_slice(&g.eps.to_bits().to_le_bytes());
    b.extend_from_slice(&g.additive.to_bits().to_le_bytes());
}

fn decode_guarantee(c: &mut Dec<'_>) -> Option<Guarantee> {
    let kind = guarantee_kind_from_wire(c.u8()?)?;
    let eps = f64::from_bits(c.u64()?);
    let additive = f64::from_bits(c.u64()?);
    Some(Guarantee {
        kind,
        eps,
        additive,
    })
}

pub(crate) fn guarantee_kind_wire(k: GuaranteeKind) -> u8 {
    match k {
        GuaranteeKind::Mult2Eps => 0,
        GuaranteeKind::Mult3Eps => 1,
        GuaranteeKind::NearAdditive => 2,
        GuaranteeKind::Mssp => 3,
    }
}

fn guarantee_kind_from_wire(b: u8) -> Option<GuaranteeKind> {
    Some(match b {
        0 => GuaranteeKind::Mult2Eps,
        1 => GuaranteeKind::Mult3Eps,
        2 => GuaranteeKind::NearAdditive,
        3 => GuaranteeKind::Mssp,
        _ => return None,
    })
}

impl Response {
    /// An error response (no payload).
    pub fn error(req_id: u64, op: Op, status: Status) -> Response {
        Response {
            req_id,
            status,
            op,
            payload: Payload::Empty,
        }
    }

    /// Encodes the response body (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(32);
        b.extend_from_slice(&self.req_id.to_le_bytes());
        b.push(self.status.wire());
        b.push(self.op.wire());
        match &self.payload {
            Payload::Empty => b.extend_from_slice(&0u32.to_le_bytes()),
            Payload::Dists(items) => {
                b.extend_from_slice(&wire_count(items.len()).to_le_bytes());
                for item in items {
                    match item {
                        None => b.push(0),
                        Some(est) => {
                            b.push(1);
                            b.extend_from_slice(&est.dist.to_le_bytes());
                            encode_guarantee(&mut b, est.guarantee);
                        }
                    }
                }
            }
            Payload::Paths(items) => {
                b.extend_from_slice(&wire_count(items.len()).to_le_bytes());
                for item in items {
                    match item {
                        None => b.push(0),
                        Some((weight, g, edges)) => {
                            b.push(1);
                            b.extend_from_slice(&weight.to_le_bytes());
                            encode_guarantee(&mut b, *g);
                            b.extend_from_slice(&wire_count(edges.len()).to_le_bytes());
                            for &(x, y) in edges {
                                b.extend_from_slice(&x.to_le_bytes());
                                b.extend_from_slice(&y.to_le_bytes());
                            }
                        }
                    }
                }
            }
            Payload::Stats(s) => {
                b.extend_from_slice(&10u32.to_le_bytes());
                for v in [
                    s.served,
                    s.shed,
                    s.deadline_missed,
                    s.malformed,
                    s.queue_depth,
                    s.generation,
                    s.reloads_ok,
                    s.reloads_rejected,
                    s.worker_panics,
                    s.slow_disconnects,
                ] {
                    b.extend_from_slice(&v.to_le_bytes());
                }
            }
            Payload::Version(v) => {
                b.extend_from_slice(&2u32.to_le_bytes());
                b.extend_from_slice(&v.generation.to_le_bytes());
                b.extend_from_slice(&v.n.to_le_bytes());
            }
            Payload::Text(t) => {
                b.extend_from_slice(&wire_count(t.len()).to_le_bytes());
                b.extend_from_slice(t.as_bytes());
            }
        }
        b
    }

    /// Decodes a response body.
    pub fn decode(body: &[u8]) -> Option<Response> {
        let mut c = Dec::new(body);
        let req_id = c.u64()?;
        let status = Status::from_wire(c.u8()?)?;
        let op = Op::from_wire(c.u8()?)?;
        let count = c.u32()? as usize;
        let payload = if status != Status::Ok {
            Payload::Empty
        } else {
            match op {
                Op::Ping => Payload::Empty,
                Op::Dist => {
                    let mut items = Vec::with_capacity(count.min(MAX_FRAME / 8));
                    for _ in 0..count {
                        items.push(match c.u8()? {
                            0 => None,
                            1 => Some(PointEstimate {
                                dist: c.u32()?,
                                guarantee: decode_guarantee(&mut c)?,
                            }),
                            _ => return None,
                        });
                    }
                    Payload::Dists(items)
                }
                Op::Path => {
                    let mut items = Vec::with_capacity(count.min(MAX_FRAME / 8));
                    for _ in 0..count {
                        items.push(match c.u8()? {
                            0 => None,
                            1 => {
                                let weight = c.u32()?;
                                let g = decode_guarantee(&mut c)?;
                                let edge_count = c.u32()? as usize;
                                if c.remaining() < edge_count.checked_mul(8)? {
                                    return None;
                                }
                                let mut edges = Vec::with_capacity(edge_count);
                                for _ in 0..edge_count {
                                    edges.push((c.u32()?, c.u32()?));
                                }
                                Some((weight, g, edges))
                            }
                            _ => return None,
                        });
                    }
                    Payload::Paths(items)
                }
                Op::Stats => {
                    if count != 10 {
                        return None;
                    }
                    Payload::Stats(StatsSnapshot {
                        served: c.u64()?,
                        shed: c.u64()?,
                        deadline_missed: c.u64()?,
                        malformed: c.u64()?,
                        queue_depth: c.u64()?,
                        generation: c.u64()?,
                        reloads_ok: c.u64()?,
                        reloads_rejected: c.u64()?,
                        worker_panics: c.u64()?,
                        slow_disconnects: c.u64()?,
                    })
                }
                Op::Reload | Op::Version => {
                    if count != 2 {
                        return None;
                    }
                    Payload::Version(VersionInfo {
                        generation: c.u64()?,
                        n: c.u64()?,
                    })
                }
                Op::Metrics | Op::Trace => {
                    // For text payloads `count` is the byte length.
                    let bytes = c.take(count)?;
                    Payload::Text(String::from_utf8(bytes.to_vec()).ok()?)
                }
            }
        };
        if !c.at_end() {
            return None;
        }
        Some(Response {
            req_id,
            status,
            op,
            payload,
        })
    }

    /// Converts an `Ok` path payload item into a [`Route`] for comparison
    /// with local [`cc_core::PathOracle::path`] output.
    pub fn to_route(src: u32, dst: u32, item: &PathItem) -> Route {
        Route {
            src,
            dst,
            edges: item.2.clone(),
            weight: item.0,
            guarantee: item.1,
        }
    }
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O errors; rejects oversized bodies.
pub fn write_frame<W: Write>(w: &mut W, body: &[u8]) -> std::io::Result<()> {
    if body.len() > MAX_FRAME {
        return Err(std::io::Error::other("frame exceeds MAX_FRAME"));
    }
    let len =
        u32::try_from(body.len()).map_err(|_| std::io::Error::other("frame length exceeds u32"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(body)
}

/// Reads one length-prefixed frame. `Ok(None)` on clean EOF at a frame
/// boundary.
///
/// # Errors
///
/// Propagates I/O errors; rejects frames over [`MAX_FRAME`].
pub fn read_frame<R: Read>(r: &mut R) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::other("frame exceeds MAX_FRAME"));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

/// Minimal little-endian slice reader.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1)?.first().copied()
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let r = Request {
            req_id: 42,
            op: Op::Dist,
            deadline_ms: 250,
            pairs: vec![(0, 1), (7, 3)],
        };
        assert_eq!(Request::decode(&r.encode()), Some(r.clone()));
        // Truncated and over-counted bodies are rejected.
        let enc = r.encode();
        assert_eq!(Request::decode(&enc[..enc.len() - 1]), None);
        let mut padded = enc.clone();
        padded.push(0);
        assert_eq!(Request::decode(&padded), None);
        let mut bad_op = enc;
        bad_op[8] = 9;
        assert_eq!(Request::decode(&bad_op), None);
    }

    #[test]
    fn responses_round_trip() {
        let g = Guarantee {
            kind: GuaranteeKind::NearAdditive,
            eps: 0.25,
            additive: 6.0,
        };
        let resp = Response {
            req_id: 7,
            status: Status::Ok,
            op: Op::Path,
            payload: Payload::Paths(vec![None, Some((3, g, vec![(0, 1), (1, 2), (2, 3)]))]),
        };
        assert_eq!(Response::decode(&resp.encode()), Some(resp.clone()));

        let dists = Response {
            req_id: 8,
            status: Status::Ok,
            op: Op::Dist,
            payload: Payload::Dists(vec![
                Some(PointEstimate {
                    dist: 5,
                    guarantee: g,
                }),
                None,
            ]),
        };
        assert_eq!(Response::decode(&dists.encode()), Some(dists));

        let err = Response::error(9, Op::Dist, Status::Overloaded);
        assert_eq!(Response::decode(&err.encode()), Some(err));

        let stats = Response {
            req_id: 10,
            status: Status::Ok,
            op: Op::Stats,
            payload: Payload::Stats(StatsSnapshot {
                served: 1,
                shed: 2,
                deadline_missed: 3,
                malformed: 4,
                queue_depth: 5,
                generation: 6,
                reloads_ok: 7,
                reloads_rejected: 8,
                worker_panics: 9,
                slow_disconnects: 10,
            }),
        };
        assert_eq!(Response::decode(&stats.encode()), Some(stats));
    }

    #[test]
    fn admin_ops_and_fault_statuses_round_trip() {
        for op in [Op::Reload, Op::Version] {
            let resp = Response {
                req_id: 11,
                status: Status::Ok,
                op,
                payload: Payload::Version(VersionInfo {
                    generation: 3,
                    n: 96,
                }),
            };
            assert_eq!(Response::decode(&resp.encode()), Some(resp.clone()));
            let req = Request {
                req_id: 12,
                op,
                deadline_ms: 0,
                pairs: vec![],
            };
            assert_eq!(Request::decode(&req.encode()), Some(req));
        }
        for status in [Status::Internal, Status::ReloadRejected] {
            let resp = Response::error(13, Op::Reload, status);
            assert_eq!(Response::decode(&resp.encode()), Some(resp));
        }
        // A truncated version payload is rejected, not misread.
        let good = Response {
            req_id: 14,
            status: Status::Ok,
            op: Op::Version,
            payload: Payload::Version(VersionInfo::default()),
        }
        .encode();
        assert_eq!(Response::decode(&good[..good.len() - 1]), None);
    }

    #[test]
    fn text_payloads_round_trip() {
        for op in [Op::Metrics, Op::Trace] {
            let resp = Response {
                req_id: 15,
                status: Status::Ok,
                op,
                payload: Payload::Text("ccd_served_total 5\nspan req_id=1\n".to_string()),
            };
            assert_eq!(Response::decode(&resp.encode()), Some(resp.clone()));
            let req = Request {
                req_id: 16,
                op,
                deadline_ms: 0,
                pairs: vec![],
            };
            assert_eq!(Request::decode(&req.encode()), Some(req));
            // Truncated text is rejected, not misread.
            let enc = resp.encode();
            assert_eq!(Response::decode(&enc[..enc.len() - 1]), None);
            // Invalid UTF-8 is rejected.
            let mut bad = enc;
            let last = bad.len() - 1;
            bad[last] = 0xff;
            assert_eq!(Response::decode(&bad), None);
        }
        let empty = Response {
            req_id: 17,
            status: Status::Ok,
            op: Op::Metrics,
            payload: Payload::Text(String::new()),
        };
        assert_eq!(Response::decode(&empty.encode()), Some(empty));
    }

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).unwrap(), None);

        let huge = (MAX_FRAME as u32 + 1).to_le_bytes();
        let mut r = &huge[..];
        assert!(read_frame(&mut r).is_err());
    }
}
