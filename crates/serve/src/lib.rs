//! Oracle serving: a TCP daemon over frozen [`cc_core`] oracles.
//!
//! The research pipeline ends with a frozen [`cc_core::DistOracle`] /
//! [`cc_core::PathOracle`] snapshot on disk. This crate turns one of those
//! files into a network service, `ccd`:
//!
//! * [`snapshot`] opens files — format v2 is served **zero-copy**: the
//!   file is `mmap`'d ([`mmap`]) and the oracle's hot tables (distance
//!   entries, guarantee tags, route arenas) are typed views straight into
//!   the mapping, no deserialization. v1 files still load (decoded), and
//!   [`snapshot::upgrade`] rewrites them as v2.
//! * [`server`] is the daemon: per-connection reader threads feed a
//!   bounded queue; worker threads drain it in batches, coalescing
//!   co-arriving queries into single oracle batch calls over per-worker
//!   scratch. Admission control is explicit — a full queue answers
//!   `Overloaded`, deadlines expire to `DeadlineExceeded`, shutdown drains
//!   admitted work and answers `ShuttingDown` to the rest.
//! * [`slot`] is the hot-reload swap point: workers pin a snapshot
//!   generation per batch, so `SIGHUP` / `Op::Reload` swaps in a new
//!   (validated — [`snapshot::open_quarantining`]) file while in-flight
//!   batches finish on the old one.
//! * [`fault`] is a seeded, replayable fault-injection plan threaded
//!   through test-only seams — worker panics, connection resets, torn
//!   frames — for the chaos suite.
//! * [`protocol`] is the length-prefixed little-endian wire format, and
//!   [`client`] a blocking client (with bounded reconnect-retry for
//!   idempotent ops) for tests and benches.
//! * `metrics` (internal) backs every served counter and the request-lifecycle
//!   histograms (queue wait, batch size, oracle sweep, outbox write) with
//!   one `cc_obs` registry. `Op::Metrics` renders it as integer text
//!   exposition; `Op::Trace` drains the connection's span-event ring.
//!
//! ```no_run
//! use cc_serve::{server, snapshot};
//!
//! let opened = snapshot::open("oracle.ccro")?;
//! let handle = server::serve(opened.oracles, "127.0.0.1:0", Default::default())?;
//! println!("serving on {}", handle.addr());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// `unsafe` is confined to the mmap module (raw mmap/munmap and the
// mapping-backed slice view); everything else is checked Rust.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod fault;
pub(crate) mod metrics;
pub mod mmap;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod slot;
pub mod snapshot;

pub use client::{Client, ClientError, RetryPolicy};
pub use fault::{FaultPlan, FaultSite};
pub use protocol::{Op, PathItem, Payload, Request, Response, StatsSnapshot, Status, VersionInfo};
pub use server::{serve, ReloadConfig, ReloadError, ServerConfig, ServerHandle};
pub use snapshot::{open, open_quarantining, upgrade, OpenError, OpenedSnapshot, Oracles};
