//! `ccd` — the oracle serving daemon.
//!
//! ```text
//! ccd serve --snapshot FILE [--addr 127.0.0.1:7411] [--threads N]
//!           [--queue-cap N] [--batch-max N] [--deadline-ms N]
//!           [--write-timeout-ms N] [--outbox-cap-bytes N]
//!           [--reload-on sighup|admin|both] [--allow-resize]
//!           [--max-secs S]
//! ccd snapshot upgrade IN OUT      # rewrite any snapshot as format v2
//! ccd snapshot info FILE           # frame, sections, dimensions
//! ccd metrics [--addr 127.0.0.1:7411]   # dump the daemon's metrics text
//! ccd trace [--addr 127.0.0.1:7411]     # drain this connection's span ring
//! ```
//!
//! `serve` loads the snapshot (v2 files are memory-mapped and served
//! zero-copy), binds, prints one status line, and runs until killed — or
//! for `--max-secs`, then drains gracefully.
//!
//! With `--reload-on`, the daemon hot-reloads the snapshot *file path* it
//! was started with: publish a new file at that path (atomically — the
//! save helpers already write temp-then-rename), then send `SIGHUP`
//! (`--reload-on sighup|both`) or the wire `reload` op (`admin|both`).
//! In-flight batches finish on the old snapshot; a file that fails
//! validation is renamed aside to `<path>.quarantined` and the old
//! generation keeps serving.

#![forbid(unsafe_code)]

use std::process::ExitCode;
use std::time::Duration;

use cc_serve::{server, snapshot, ReloadConfig, ServerConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  ccd serve --snapshot FILE [--addr A] [--threads N] [--queue-cap N]\n            [--batch-max N] [--deadline-ms N] [--write-timeout-ms N]\n            [--outbox-cap-bytes N] [--reload-on sighup|admin|both]\n            [--allow-resize] [--max-secs S]\n  ccd snapshot upgrade IN OUT\n  ccd snapshot info FILE\n  ccd metrics [--addr A]\n  ccd trace [--addr A]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("snapshot") => match args.get(1).map(String::as_str) {
            Some("upgrade") => cmd_upgrade(&args[2..]),
            Some("info") => cmd_info(&args[2..]),
            _ => usage(),
        },
        Some("metrics") => cmd_text_op(&args[1..], TextOp::Metrics),
        Some("trace") => cmd_text_op(&args[1..], TextOp::Trace),
        _ => usage(),
    }
}

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, String> {
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    let value = args
        .get(pos + 1)
        .ok_or_else(|| format!("{flag} needs a value"))?;
    value
        .parse()
        .map(Some)
        .map_err(|_| format!("bad value for {flag}: {value}"))
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let parsed = (|| -> Result<_, String> {
        let snapshot_path: String = parse_flag(args, "--snapshot")?
            .ok_or_else(|| "--snapshot FILE is required".to_string())?;
        let addr: String =
            parse_flag(args, "--addr")?.unwrap_or_else(|| "127.0.0.1:7411".to_string());
        let mut config = ServerConfig::default();
        if let Some(t) = parse_flag(args, "--threads")? {
            config.threads = t;
        }
        if let Some(c) = parse_flag(args, "--queue-cap")? {
            config.queue_capacity = c;
        }
        if let Some(b) = parse_flag(args, "--batch-max")? {
            config.batch_max = b;
        }
        if let Some(d) = parse_flag(args, "--deadline-ms")? {
            config.default_deadline_ms = d;
        }
        if let Some(w) = parse_flag(args, "--write-timeout-ms")? {
            config.write_timeout_ms = w;
        }
        if let Some(o) = parse_flag(args, "--outbox-cap-bytes")? {
            config.outbox_cap_bytes = o;
        }
        if let Some(mode) = parse_flag::<String>(args, "--reload-on")? {
            let on_sighup = match mode.as_str() {
                "sighup" | "both" => true,
                "admin" => false,
                other => return Err(format!("bad value for --reload-on: {other}")),
            };
            config.reload = Some(ReloadConfig {
                path: snapshot_path.clone().into(),
                allow_resize: args.iter().any(|a| a == "--allow-resize"),
                on_sighup,
            });
        }
        let max_secs: Option<u64> = parse_flag(args, "--max-secs")?;
        Ok((snapshot_path, addr, config, max_secs))
    })();
    let (snapshot_path, addr, config, max_secs) = match parsed {
        Ok(p) => p,
        Err(e) => {
            eprintln!("ccd: {e}");
            return usage();
        }
    };

    let opened = match snapshot::open(&snapshot_path) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("ccd: cannot open {snapshot_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let n = opened.oracles.n();
    let routes = opened.oracles.paths().is_some();
    let (version, mapped) = (opened.version, opened.mapped);
    let handle = match server::serve(opened.oracles, &addr, config.clone()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("ccd: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "ccd: serving {snapshot_path} (v{version}, n={n}, routes={routes}, mapped={mapped}) on {} with {} workers",
        handle.addr(),
        config.threads
    );
    match max_secs {
        Some(secs) => std::thread::sleep(Duration::from_secs(secs)),
        None => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
    }
    let stats = handle.stats();
    handle.shutdown();
    println!(
        "ccd: drained; served={} shed={} deadline_missed={} malformed={} generation={} reloads_ok={} reloads_rejected={} worker_panics={} slow_disconnects={}",
        stats.served,
        stats.shed,
        stats.deadline_missed,
        stats.malformed,
        stats.generation,
        stats.reloads_ok,
        stats.reloads_rejected,
        stats.worker_panics,
        stats.slow_disconnects
    );
    ExitCode::SUCCESS
}

enum TextOp {
    Metrics,
    Trace,
}

fn cmd_text_op(args: &[String], which: TextOp) -> ExitCode {
    let addr = match parse_flag::<String>(args, "--addr") {
        Ok(a) => a.unwrap_or_else(|| "127.0.0.1:7411".to_string()),
        Err(e) => {
            eprintln!("ccd: {e}");
            return usage();
        }
    };
    let mut client = match cc_serve::Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("ccd: cannot connect {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let text = match which {
        TextOp::Metrics => client.metrics(),
        TextOp::Trace => client.trace(),
    };
    match text {
        Ok(t) => {
            print!("{t}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ccd: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_upgrade(args: &[String]) -> ExitCode {
    let [input, output] = args else {
        return usage();
    };
    match snapshot::upgrade(input, output) {
        Ok(report) => {
            println!(
                "ccd: upgraded {input} (v{}, {} bytes) -> {output} (v2, {} bytes)",
                report.from_version, report.input_bytes, report.output_bytes
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ccd: upgrade failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_info(args: &[String]) -> ExitCode {
    let [path] = args else {
        return usage();
    };
    match snapshot::describe(path) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ccd: {e}");
            ExitCode::FAILURE
        }
    }
}
