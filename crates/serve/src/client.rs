//! A blocking client for the `ccd` protocol — one request in flight per
//! connection. The integration tests and the `t17_serve` bench drive the
//! server through this.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use cc_core::PointEstimate;

use crate::protocol::{
    read_frame, write_frame, Op, Payload, Request, Response, StatsSnapshot, Status,
};

/// A connected client.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    next_id: u64,
}

/// A client-side failure: transport trouble or a protocol violation.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server's bytes did not decode, or answered the wrong request.
    Protocol(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client I/O error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl Client {
    /// Connects (with `TCP_NODELAY` — the protocol is request/response).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream, next_id: 1 })
    }

    /// Sets the receive timeout (`None` blocks forever).
    ///
    /// # Errors
    ///
    /// Propagates the socket option failure.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut &self.stream, &req.encode())?;
        let body = read_frame(&mut &self.stream)?
            .ok_or(ClientError::Protocol("connection closed mid-request"))?;
        let resp = Response::decode(&body).ok_or(ClientError::Protocol("undecodable response"))?;
        if resp.req_id != req.req_id {
            return Err(ClientError::Protocol("response id mismatch"));
        }
        Ok(resp)
    }

    fn next_request(&mut self, op: Op, deadline_ms: u32, pairs: Vec<(u32, u32)>) -> Request {
        let req_id = self.next_id;
        self.next_id += 1;
        Request {
            req_id,
            op,
            deadline_ms,
            pairs,
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport or protocol failures.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let req = self.next_request(Op::Ping, 0, Vec::new());
        let resp = self.roundtrip(&req)?;
        if resp.status == Status::Ok {
            Ok(())
        } else {
            Err(ClientError::Protocol("ping refused"))
        }
    }

    /// Batched point distances. On [`Status::Ok`] the answers align with
    /// `pairs`; any other status returns the raw response for the caller
    /// to interpret (back-off on `Overloaded`, …).
    ///
    /// # Errors
    ///
    /// Transport or protocol failures.
    pub fn dist_batch(
        &mut self,
        pairs: &[(u32, u32)],
        deadline_ms: u32,
    ) -> Result<Result<Vec<Option<PointEstimate>>, Status>, ClientError> {
        let req = self.next_request(Op::Dist, deadline_ms, pairs.to_vec());
        let resp = self.roundtrip(&req)?;
        match (resp.status, resp.payload) {
            (Status::Ok, Payload::Dists(items)) => {
                if items.len() != pairs.len() {
                    return Err(ClientError::Protocol("answer count mismatch"));
                }
                Ok(Ok(items))
            }
            (Status::Ok, _) => Err(ClientError::Protocol("wrong payload kind")),
            (status, _) => Ok(Err(status)),
        }
    }

    /// Batched routes; items are `(weight, guarantee, edges)`.
    ///
    /// # Errors
    ///
    /// Transport or protocol failures.
    pub fn path_batch(
        &mut self,
        pairs: &[(u32, u32)],
        deadline_ms: u32,
    ) -> Result<Result<Vec<Option<crate::protocol::PathItem>>, Status>, ClientError> {
        let req = self.next_request(Op::Path, deadline_ms, pairs.to_vec());
        let resp = self.roundtrip(&req)?;
        match (resp.status, resp.payload) {
            (Status::Ok, Payload::Paths(items)) => {
                if items.len() != pairs.len() {
                    return Err(ClientError::Protocol("answer count mismatch"));
                }
                Ok(Ok(items))
            }
            (Status::Ok, _) => Err(ClientError::Protocol("wrong payload kind")),
            (status, _) => Ok(Err(status)),
        }
    }

    /// Server counters.
    ///
    /// # Errors
    ///
    /// Transport or protocol failures.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        let req = self.next_request(Op::Stats, 0, Vec::new());
        let resp = self.roundtrip(&req)?;
        match (resp.status, resp.payload) {
            (Status::Ok, Payload::Stats(s)) => Ok(s),
            _ => Err(ClientError::Protocol("stats refused")),
        }
    }
}
