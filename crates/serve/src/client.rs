//! A blocking client for the `ccd` protocol — one request in flight per
//! connection. The integration tests and the `t17_serve`/`t18_reload`
//! benches drive the server through this.
//!
//! ## Failure semantics
//!
//! [`ClientError`] separates *retryable* failures (connect refused, send
//! failed before any response byte arrived, clean disconnect at a frame
//! boundary) from *fatal* ones (an error mid-response, a protocol
//! violation). The distinction carries the exactly-once discipline: a
//! request whose response was partially read may or may not have executed,
//! so the client never blind-retries it — [`ClientError::is_retryable`]
//! is `false` and the retrying helpers give up.
//!
//! [`Client::dist_batch_retry`] / [`Client::path_batch_retry`] reconnect
//! and retry **idempotent** queries under a [`RetryPolicy`] (bounded
//! attempts, exponential backoff, deterministic jitter). Admin ops —
//! `reload` in particular — are never retried by this module: a reload
//! may have been applied even when its response was lost.

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use cc_core::PointEstimate;

use crate::fault::{FaultPlan, FaultSite};
use crate::protocol::{
    read_frame, write_frame, Op, Payload, Request, Response, StatsSnapshot, Status, VersionInfo,
};

/// A connected client.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    addr: SocketAddr,
    next_id: u64,
    read_timeout: Option<Duration>,
    fault: Option<Arc<FaultPlan>>,
}

/// A client-side failure, split by *what it implies about the request*.
#[derive(Debug)]
pub enum ClientError {
    /// Could not (re)connect. Retryable — nothing was sent.
    Connect(std::io::Error),
    /// The request failed to send. Retryable for idempotent ops: the
    /// server may have received it, but re-asking a pure query is safe.
    Send(std::io::Error),
    /// The connection closed cleanly before any response byte. Retryable
    /// for idempotent ops, same reasoning as [`ClientError::Send`].
    Disconnected,
    /// I/O failed *mid-response* (torn frame, timeout after partial
    /// read). **Fatal**: the request's outcome is unknown and the stream
    /// position is lost; never blind-retried.
    Recv(std::io::Error),
    /// The server's bytes did not decode, or answered the wrong request.
    /// Fatal.
    Protocol(&'static str),
}

impl ClientError {
    /// Whether a *pure, idempotent* request that failed this way is safe
    /// to retry on a fresh connection.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ClientError::Connect(_) | ClientError::Send(_) | ClientError::Disconnected
        )
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "connect failed: {e}"),
            ClientError::Send(e) => write!(f, "send failed: {e}"),
            ClientError::Disconnected => write!(f, "connection closed before a response"),
            ClientError::Recv(e) => write!(f, "receive failed mid-response: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Bounded reconnect-and-retry for idempotent queries: exponential
/// backoff from [`RetryPolicy::base_delay`] capped at
/// [`RetryPolicy::max_delay`], with deterministic jitter drawn from
/// [`RetryPolicy::jitter_seed`] — two clients with different seeds spread
/// their retries instead of stampeding in lockstep, and a test replays a
/// schedule exactly from the seed.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Retries after the first attempt (`3` ⇒ up to 4 attempts).
    pub max_retries: u32,
    /// First backoff; doubles per retry.
    pub base_delay: Duration,
    /// Backoff cap.
    pub max_delay: Duration,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            jitter_seed: 0x5eed,
        }
    }
}

/// SplitMix64 finalizer (same mix as [`crate::fault`]).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// The backoff before retry `attempt` (0-based): `base * 2^attempt`
    /// capped at `max_delay`, then jittered to 50–100% of that value.
    fn backoff(&self, attempt: u32) -> Duration {
        let exp = self.base_delay.saturating_mul(1u32 << attempt.min(16));
        let capped = exp.min(self.max_delay);
        let nanos = capped.as_nanos().min(u128::from(u64::MAX)) as u64;
        let jittered = nanos / 2 + mix(self.jitter_seed ^ u64::from(attempt)) % (nanos / 2 + 1);
        Duration::from_nanos(jittered)
    }
}

impl Client {
    /// Connects (with `TCP_NODELAY` — the protocol is request/response).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let addr = stream.peer_addr()?;
        Ok(Client {
            stream,
            addr,
            next_id: 1,
            read_timeout: None,
            fault: None,
        })
    }

    /// [`Client::connect`], retried under `policy` with a liveness ping
    /// per attempt — rides out a server restart or a reload-storm accept
    /// hiccup.
    ///
    /// # Errors
    ///
    /// The last attempt's [`ClientError`] once retries are exhausted.
    pub fn connect_with_retry<A: ToSocketAddrs>(
        addr: A,
        policy: &RetryPolicy,
    ) -> Result<Client, ClientError> {
        let mut attempt = 0;
        loop {
            match Client::connect(&addr) {
                Ok(mut c) => match c.ping() {
                    Ok(()) => return Ok(c),
                    Err(e) if e.is_retryable() && attempt < policy.max_retries => {}
                    Err(e) => return Err(e),
                },
                Err(e) => {
                    if attempt >= policy.max_retries {
                        return Err(ClientError::Connect(e));
                    }
                }
            }
            std::thread::sleep(policy.backoff(attempt));
            attempt += 1;
        }
    }

    /// Drops the current socket and dials the same address again. Request
    /// ids keep counting up, so responses from the old connection can
    /// never be confused with the new one's.
    ///
    /// # Errors
    ///
    /// [`ClientError::Connect`] when the dial fails.
    pub fn reconnect(&mut self) -> Result<(), ClientError> {
        let stream = TcpStream::connect(self.addr).map_err(ClientError::Connect)?;
        stream.set_nodelay(true).map_err(ClientError::Connect)?;
        stream
            .set_read_timeout(self.read_timeout)
            .map_err(ClientError::Connect)?;
        self.stream = stream;
        Ok(())
    }

    /// Sets the receive timeout (`None` blocks forever); remembered
    /// across [`Client::reconnect`].
    ///
    /// # Errors
    ///
    /// Propagates the socket option failure.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.read_timeout = timeout;
        Ok(())
    }

    /// Arms the client-side fault seam (torn request writes). Tests only.
    pub fn set_fault(&mut self, fault: Arc<FaultPlan>) {
        self.fault = Some(fault);
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Response, ClientError> {
        let body = req.encode();
        if self
            .fault
            .as_ref()
            .is_some_and(|f| f.fire(FaultSite::ClientTornWrite))
        {
            // Write a deliberately torn frame and drop the connection:
            // the server's reader must shrug off the mid-stream EOF.
            let mut frame = Vec::with_capacity(4 + body.len());
            frame.extend_from_slice(&crate::protocol::wire_count(body.len()).to_le_bytes());
            frame.extend_from_slice(&body);
            let torn = frame.len() / 2;
            use std::io::Write;
            let _ = (&self.stream).write_all(frame.get(..torn).unwrap_or_default());
            let _ = self.stream.shutdown(std::net::Shutdown::Both);
            return Err(ClientError::Send(std::io::Error::other(
                "injected torn request write",
            )));
        }
        write_frame(&mut &self.stream, &body).map_err(ClientError::Send)?;
        let body = read_frame(&mut &self.stream)
            .map_err(ClientError::Recv)?
            .ok_or(ClientError::Disconnected)?;
        let resp = Response::decode(&body).ok_or(ClientError::Protocol("undecodable response"))?;
        if resp.req_id != req.req_id {
            return Err(ClientError::Protocol("response id mismatch"));
        }
        Ok(resp)
    }

    fn next_request(&mut self, op: Op, deadline_ms: u32, pairs: Vec<(u32, u32)>) -> Request {
        let req_id = self.next_id;
        self.next_id += 1;
        Request {
            req_id,
            op,
            deadline_ms,
            pairs,
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport or protocol failures.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let req = self.next_request(Op::Ping, 0, Vec::new());
        let resp = self.roundtrip(&req)?;
        if resp.status == Status::Ok {
            Ok(())
        } else {
            Err(ClientError::Protocol("ping refused"))
        }
    }

    /// Batched point distances. On [`Status::Ok`] the answers align with
    /// `pairs`; any other status returns the raw response for the caller
    /// to interpret (back-off on `Overloaded`, …).
    ///
    /// # Errors
    ///
    /// Transport or protocol failures.
    pub fn dist_batch(
        &mut self,
        pairs: &[(u32, u32)],
        deadline_ms: u32,
    ) -> Result<Result<Vec<Option<PointEstimate>>, Status>, ClientError> {
        let req = self.next_request(Op::Dist, deadline_ms, pairs.to_vec());
        let resp = self.roundtrip(&req)?;
        match (resp.status, resp.payload) {
            (Status::Ok, Payload::Dists(items)) => {
                if items.len() != pairs.len() {
                    return Err(ClientError::Protocol("answer count mismatch"));
                }
                Ok(Ok(items))
            }
            (Status::Ok, _) => Err(ClientError::Protocol("wrong payload kind")),
            (status, _) => Ok(Err(status)),
        }
    }

    /// [`Client::dist_batch`] with reconnect-and-retry on retryable
    /// failures — safe because a distance query is pure.
    ///
    /// # Errors
    ///
    /// The final attempt's error once retries are exhausted, or the first
    /// non-retryable error immediately.
    pub fn dist_batch_retry(
        &mut self,
        pairs: &[(u32, u32)],
        deadline_ms: u32,
        policy: &RetryPolicy,
    ) -> Result<Result<Vec<Option<PointEstimate>>, Status>, ClientError> {
        self.retry_idempotent(policy, |c| c.dist_batch(pairs, deadline_ms))
    }

    /// Batched routes; items are `(weight, guarantee, edges)`.
    ///
    /// # Errors
    ///
    /// Transport or protocol failures.
    pub fn path_batch(
        &mut self,
        pairs: &[(u32, u32)],
        deadline_ms: u32,
    ) -> Result<Result<Vec<Option<crate::protocol::PathItem>>, Status>, ClientError> {
        let req = self.next_request(Op::Path, deadline_ms, pairs.to_vec());
        let resp = self.roundtrip(&req)?;
        match (resp.status, resp.payload) {
            (Status::Ok, Payload::Paths(items)) => {
                if items.len() != pairs.len() {
                    return Err(ClientError::Protocol("answer count mismatch"));
                }
                Ok(Ok(items))
            }
            (Status::Ok, _) => Err(ClientError::Protocol("wrong payload kind")),
            (status, _) => Ok(Err(status)),
        }
    }

    /// [`Client::path_batch`] with reconnect-and-retry on retryable
    /// failures.
    ///
    /// # Errors
    ///
    /// The final attempt's error once retries are exhausted, or the first
    /// non-retryable error immediately.
    pub fn path_batch_retry(
        &mut self,
        pairs: &[(u32, u32)],
        deadline_ms: u32,
        policy: &RetryPolicy,
    ) -> Result<Result<Vec<Option<crate::protocol::PathItem>>, Status>, ClientError> {
        self.retry_idempotent(policy, |c| c.path_batch(pairs, deadline_ms))
    }

    /// The retry loop shared by the idempotent query helpers: on a
    /// retryable error, back off, reconnect, re-ask; on anything else —
    /// including an error after response bytes arrived — give up at once.
    fn retry_idempotent<T>(
        &mut self,
        policy: &RetryPolicy,
        mut op: impl FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let mut attempt = 0;
        loop {
            match op(self) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_retryable() && attempt < policy.max_retries => {
                    std::thread::sleep(policy.backoff(attempt));
                    attempt += 1;
                    // A failed reconnect consumes this attempt; keep the
                    // old (dead) socket and let the next lap try again.
                    let _ = self.reconnect();
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Server counters.
    ///
    /// # Errors
    ///
    /// Transport or protocol failures.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        let req = self.next_request(Op::Stats, 0, Vec::new());
        let resp = self.roundtrip(&req)?;
        match (resp.status, resp.payload) {
            (Status::Ok, Payload::Stats(s)) => Ok(s),
            _ => Err(ClientError::Protocol("stats refused")),
        }
    }

    /// The full metrics text exposition (counters, gauges, request
    /// lifecycle histograms) — parseable with `cc_obs::parse_exposition`.
    ///
    /// # Errors
    ///
    /// Transport or protocol failures.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let req = self.next_request(Op::Metrics, 0, Vec::new());
        let resp = self.roundtrip(&req)?;
        match (resp.status, resp.payload) {
            (Status::Ok, Payload::Text(t)) => Ok(t),
            _ => Err(ClientError::Protocol("metrics refused")),
        }
    }

    /// Drains this connection's trace ring: one `span …` line per
    /// recorded request, oldest first. Draining consumes the events.
    ///
    /// # Errors
    ///
    /// Transport or protocol failures.
    pub fn trace(&mut self) -> Result<String, ClientError> {
        let req = self.next_request(Op::Trace, 0, Vec::new());
        let resp = self.roundtrip(&req)?;
        match (resp.status, resp.payload) {
            (Status::Ok, Payload::Text(t)) => Ok(t),
            _ => Err(ClientError::Protocol("trace refused")),
        }
    }

    /// The serving snapshot generation and vertex count.
    ///
    /// # Errors
    ///
    /// Transport or protocol failures.
    pub fn version(&mut self) -> Result<VersionInfo, ClientError> {
        let req = self.next_request(Op::Version, 0, Vec::new());
        let resp = self.roundtrip(&req)?;
        match (resp.status, resp.payload) {
            (Status::Ok, Payload::Version(v)) => Ok(v),
            _ => Err(ClientError::Protocol("version refused")),
        }
    }

    /// Asks the server to hot-reload its snapshot file. `Ok(Ok(info))`:
    /// the new generation is serving. `Ok(Err(status))`: the server
    /// refused (`ReloadRejected` — bad file, dimension change, reload not
    /// configured) and the previous generation keeps serving.
    ///
    /// Never retried by this module: a lost response leaves the reload's
    /// outcome unknown, and re-asking could double-apply.
    ///
    /// # Errors
    ///
    /// Transport or protocol failures.
    pub fn reload(&mut self) -> Result<Result<VersionInfo, Status>, ClientError> {
        let req = self.next_request(Op::Reload, 0, Vec::new());
        let resp = self.roundtrip(&req)?;
        match (resp.status, resp.payload) {
            (Status::Ok, Payload::Version(v)) => Ok(Ok(v)),
            (Status::Ok, _) => Err(ClientError::Protocol("wrong payload kind")),
            (status, _) => Ok(Err(status)),
        }
    }
}
