//! The hot-reload slot: an epoch-counted [`Oracles`] swap.
//!
//! [`SnapshotSlot`] holds the serving snapshot behind a narrow mutex that
//! is held only long enough to clone or replace one `Arc` — never across
//! an oracle call, a file open, or any I/O. Workers [`pin`] the current
//! generation once per batch and answer the whole batch against that
//! pinned `Arc`, so a reload that lands mid-batch is invisible to the
//! batch: in-flight work finishes against generation *k* while new
//! batches pin *k+1*. The old snapshot's backing (an `mmap`, via
//! `Arc<dyn ByteOwner>` inside the oracle) is unmapped when the last
//! pinned batch drops its `Arc` — no reader ever observes a torn or
//! unmapped table.
//!
//! Validation (checksum, dimension checks, quarantine) happens *before*
//! [`swap`] in the server's reload path ([`crate::server`]), under the
//! dedicated reload lock — this type only publishes an already-validated
//! snapshot.
//!
//! [`pin`]: SnapshotSlot::pin
//! [`swap`]: SnapshotSlot::swap

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::snapshot::Oracles;

/// One published snapshot: the oracles plus the generation that swapped
/// them in.
#[derive(Debug)]
pub struct Generation {
    /// The serving oracle(s).
    pub oracles: Oracles,
    /// Monotonic: `1` at boot, `+1` per successful reload.
    pub generation: u64,
}

/// The swap point between the reload path and the workers.
#[derive(Debug)]
pub struct SnapshotSlot {
    /// The narrow lock: held only to clone or replace the `Arc`.
    slot: Mutex<Arc<Generation>>,
    /// Mirror of the published generation, readable without the lock
    /// (stats, version answers).
    generation: AtomicU64,
}

/// Locks recovering from poison: the slot holds a plain `Arc`, valid
/// after any interrupted operation, so a panicked holder must not take
/// the serving path down.
fn lock_recovering<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl SnapshotSlot {
    /// Publishes the boot snapshot as generation 1.
    pub fn new(oracles: Oracles) -> Self {
        SnapshotSlot {
            slot: Mutex::new(Arc::new(Generation {
                oracles,
                generation: 1,
            })),
            generation: AtomicU64::new(1),
        }
    }

    /// Clones the current generation's `Arc`. Workers call this once per
    /// batch; the batch then runs entirely against the pinned snapshot,
    /// immune to concurrent swaps.
    pub fn pin(&self) -> Arc<Generation> {
        Arc::clone(&lock_recovering(&self.slot))
    }

    /// The published generation number, lock-free.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Publishes `oracles` as the next generation and returns its number.
    /// The caller (the server's reload path) has already validated the
    /// snapshot; this only swaps the `Arc`.
    pub fn swap(&self, oracles: Oracles) -> u64 {
        let mut slot = lock_recovering(&self.slot);
        let next = slot.generation.wrapping_add(1);
        *slot = Arc::new(Generation {
            oracles,
            generation: next,
        });
        drop(slot);
        self.generation.store(next, Ordering::Release);
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_core::{DistOracle, DistanceMatrix, Guarantee};
    use cc_graphs::StorageKind;

    fn oracle(n: usize, scale: u32) -> Oracles {
        let mut m = DistanceMatrix::new(n);
        for u in 0..n {
            for v in 0..n {
                let d = u.abs_diff(v) as u32 * scale;
                m.improve(u, v, d);
            }
        }
        Oracles::DistOnly(Arc::new(DistOracle::from_matrix(
            &m,
            Guarantee::mult2(0.25),
            StorageKind::Full,
        )))
    }

    #[test]
    fn pins_survive_swaps_and_generations_advance() {
        let slot = SnapshotSlot::new(oracle(8, 1));
        assert_eq!(slot.generation(), 1);
        let pinned = slot.pin();
        assert_eq!(pinned.generation, 1);

        assert_eq!(slot.swap(oracle(8, 2)), 2);
        assert_eq!(slot.generation(), 2);
        // The pre-swap pin still answers against generation 1's tables.
        let d = pinned.oracles.dist().dist(0, 5).map(|e| e.dist);
        assert_eq!(d, Some(5));
        let d2 = slot.pin().oracles.dist().dist(0, 5).map(|e| e.dist);
        assert_eq!(d2, Some(10));
    }

    #[test]
    fn concurrent_pinners_always_see_a_whole_generation() {
        let slot = Arc::new(SnapshotSlot::new(oracle(16, 1)));
        std::thread::scope(|scope| {
            let swapper = {
                let slot = Arc::clone(&slot);
                scope.spawn(move || {
                    for round in 0..50u32 {
                        slot.swap(oracle(16, 1 + (round % 3)));
                    }
                })
            };
            for _ in 0..4 {
                let slot = Arc::clone(&slot);
                scope.spawn(move || {
                    for _ in 0..200 {
                        let pinned = slot.pin();
                        // Whatever generation we pinned, its answers are
                        // internally consistent: dist(0, v) = v * scale.
                        let one = pinned.oracles.dist().dist(0, 1).map(|e| e.dist);
                        let five = pinned.oracles.dist().dist(0, 5).map(|e| e.dist);
                        match (one, five) {
                            (Some(s), Some(f)) => assert_eq!(f, s * 5),
                            other => panic!("absent answers: {other:?}"),
                        }
                    }
                });
            }
            swapper.join().expect("swapper");
        });
        assert_eq!(slot.generation(), 51);
    }
}
