//! Memory-mapped snapshot files.
//!
//! [`MappedFile`] maps a file read-only with `mmap(2)` and implements
//! [`ByteOwner`], so a v2 snapshot's hot tables can be served directly out
//! of the page cache — the kernel pages data in on first touch and the
//! process never materializes a second copy. `mmap` returns page-aligned
//! addresses (≥ 4096), so every 64-byte-aligned v2 section offset is valid
//! for the typed views [`cc_graphs::SharedSlice`] hands out.
//!
//! On non-Unix targets — or whenever the map fails — [`read_owner`] falls
//! back to reading the file into an [`AlignedBytes`] buffer. Callers only
//! ever see an `Arc<dyn ByteOwner>`; the fallback changes memory behavior,
//! not results.
//!
//! This is the one module in the serving crate that needs `unsafe`: the
//! raw `mmap`/`munmap` calls (no new dependencies — `std` already links
//! libc) and the pointer-to-slice view, whose validity is exactly the
//! mapping's lifetime, which [`MappedFile`] owns.

#![allow(unsafe_code)]

use std::fs::File;
use std::io::Read;
use std::path::Path;
use std::sync::Arc;

use cc_graphs::{AlignedBytes, ByteOwner};

#[cfg(all(unix, not(miri)))]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    pub fn map_failed() -> *mut c_void {
        usize::MAX as *mut c_void
    }

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// A read-only, whole-file memory map. The mapping lives as long as this
/// value; [`ByteOwner`] hands out views into it.
#[cfg(all(unix, not(miri)))]
#[derive(Debug)]
pub struct MappedFile {
    ptr: *mut std::os::raw::c_void,
    len: usize,
}

#[cfg(all(unix, not(miri)))]
impl MappedFile {
    /// Maps `file` read-only. Fails on empty files (zero-length maps are
    /// an `EINVAL`) and whenever the kernel refuses the map.
    pub fn map(file: &File) -> std::io::Result<MappedFile> {
        use std::os::unix::io::AsRawFd;

        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| std::io::Error::other("snapshot larger than the address space"))?;
        if len == 0 {
            return Err(std::io::Error::other("cannot map an empty file"));
        }
        // SAFETY: a fresh private read-only mapping over a file descriptor
        // we hold open for the duration of the call; the kernel validates
        // the fd and length. The returned region stays valid until the
        // munmap in Drop — MappedFile owns it and never re-maps.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::map_failed() {
            return Err(std::io::Error::last_os_error());
        }
        Ok(MappedFile { ptr, len })
    }

    /// The mapped length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty (never true — empty files do not map).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

// SAFETY: the mapping is read-only and file-backed; moving ownership to
// another thread moves nothing but the pointer/len pair.
#[cfg(all(unix, not(miri)))]
unsafe impl Send for MappedFile {}
// SAFETY: concurrent reads of a PROT_READ mapping are safe from any
// thread, and the pointer is never handed out mutably.
#[cfg(all(unix, not(miri)))]
unsafe impl Sync for MappedFile {}

#[cfg(all(unix, not(miri)))]
impl Drop for MappedFile {
    fn drop(&mut self) {
        // SAFETY: `ptr`/`len` are exactly what mmap returned, unmapped
        // once — after this the owner is gone, and ByteOwner's contract
        // means no views outlive it.
        unsafe {
            sys::munmap(self.ptr, self.len);
        }
    }
}

// SAFETY: the backing store is an owned mapping that is unmapped only in
// Drop; the bytes it hands out are stable for the owner's whole lifetime,
// which is the ByteOwner contract.
#[cfg(all(unix, not(miri)))]
unsafe impl ByteOwner for MappedFile {
    fn bytes(&self) -> &[u8] {
        // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
        // bytes, 64-aligned (page-aligned) and never written through.
        unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
    }
}

/// Opens `path` as a [`ByteOwner`]: memory-mapped where the platform
/// allows, read into an [`AlignedBytes`] copy otherwise. Returns the owner
/// and whether it is a real map.
pub fn open_owner<P: AsRef<Path>>(path: P) -> std::io::Result<(Arc<dyn ByteOwner>, bool)> {
    let file = File::open(path.as_ref())?;
    // Under Miri there is no mmap; the AlignedBytes fallback keeps the
    // whole load path exercisable by `cargo miri test`.
    #[cfg(all(unix, not(miri)))]
    {
        if let Ok(mapped) = MappedFile::map(&file) {
            return Ok((Arc::new(mapped), true));
        }
    }
    read_owner(file)
}

/// The portable fallback: reads the whole file into an aligned buffer.
pub fn read_owner(mut file: File) -> std::io::Result<(Arc<dyn ByteOwner>, bool)> {
    let mut buf = Vec::new();
    file.read_to_end(&mut buf)?;
    Ok((Arc::new(AlignedBytes::copy_from(&buf)), false))
}

/// The flag a `SIGHUP` sets. First call installs the handler (Unix,
/// non-Miri); the server's acceptor polls and clears the flag, running a
/// hot reload when it finds it set. Elsewhere the flag simply never
/// fires.
///
/// This lives here — not in `server.rs` — because registering a signal
/// handler is the crate's only other unavoidable `unsafe`, and the audit
/// confines `unsafe` to this module.
#[cfg(all(unix, not(miri)))]
pub fn sighup_flag() -> &'static std::sync::atomic::AtomicBool {
    use std::os::raw::c_int;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Once;

    static FLAG: AtomicBool = AtomicBool::new(false);
    static INSTALL: Once = Once::new();
    const SIGHUP: c_int = 1;

    extern "C" {
        fn signal(signum: c_int, handler: extern "C" fn(c_int)) -> usize;
    }
    extern "C" fn on_sighup(_signum: c_int) {
        // A relaxed store to a static AtomicBool is async-signal-safe:
        // no allocation, no locking, no reentrancy.
        FLAG.store(true, Ordering::Relaxed);
    }

    INSTALL.call_once(|| {
        // SAFETY: `signal(2)` with a handler that only stores to an
        // atomic; registered once, for the process lifetime, so the
        // handler pointer never dangles. `std` already links libc.
        unsafe {
            signal(SIGHUP, on_sighup);
        }
    });
    &FLAG
}

/// Non-Unix / Miri stand-in: a flag nothing ever sets, so the acceptor's
/// poll compiles everywhere and `--reload-on sighup` degrades to admin
/// reloads only.
#[cfg(not(all(unix, not(miri))))]
pub fn sighup_flag() -> &'static std::sync::atomic::AtomicBool {
    static FLAG: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);
    &FLAG
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn mapping_serves_file_bytes() {
        let dir = std::env::temp_dir().join(format!("cc_serve_mmap_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("probe.bin");
        let payload: Vec<u8> = (0..=255u8).cycle().take(12_345).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();

        let (owner, mapped) = open_owner(&path).unwrap();
        assert_eq!(owner.bytes(), &payload[..]);
        assert!(mapped || !cfg!(unix) || cfg!(miri));
        // Page alignment covers the section alignment requirement.
        if mapped {
            assert_eq!(owner.bytes().as_ptr() as usize % 64, 0);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_files_fall_back_to_copies() {
        let dir = std::env::temp_dir().join(format!("cc_serve_mmap_e_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.bin");
        std::fs::File::create(&path).unwrap();
        let (owner, mapped) = open_owner(&path).unwrap();
        assert!(owner.bytes().is_empty());
        assert!(!mapped);
        std::fs::remove_file(&path).ok();
    }
}
