//! The daemon's metric set: every counter the old hand-rolled `Stats`
//! struct carried, re-backed by the `cc_obs` registry, plus the
//! request-lifecycle histograms.
//!
//! One accounting substrate: `Op::Stats` snapshots read the *same*
//! atomics the `Op::Metrics` exposition renders, so the two can never
//! disagree (the chaos suite asserts exact reconciliation). Handles are
//! registered once at server construction — nothing on the serving hot
//! path ever touches the registry's name map.

use cc_obs::{Counter, Gauge, Histogram, Registry};

/// Capacity of each connection's trace ring (span events kept for
/// `Op::Trace`).
pub(crate) const TRACE_RING_CAPACITY: usize = 64;

/// Registry-backed server metrics, shared by readers, writers, workers.
#[derive(Debug)]
pub(crate) struct ServeMetrics {
    /// The registry that owns every handle below; renders the exposition.
    pub registry: Registry,
    /// Requests answered `Ok`.
    pub served: Counter,
    /// Requests answered `Overloaded` (queue full).
    pub shed: Counter,
    /// Requests answered `DeadlineExceeded`.
    pub deadline_missed: Counter,
    /// Requests answered `Malformed`.
    pub malformed: Counter,
    /// Hot reloads that validated and swapped in.
    pub reloads_ok: Counter,
    /// Hot reloads refused.
    pub reloads_rejected: Counter,
    /// Worker panics contained by `catch_unwind`.
    pub worker_panics: Counter,
    /// Connections dropped for reading too slowly.
    pub slow_disconnects: Counter,
    /// Queue depth at exposition time.
    pub queue_depth: Gauge,
    /// Serving snapshot generation at exposition time.
    pub generation: Gauge,
    /// Nanoseconds a job waited queued before a worker picked it up.
    pub queue_wait_ns: Histogram,
    /// Jobs coalesced per worker batch.
    pub batch_jobs: Histogram,
    /// Nanoseconds per coalesced `dist_batch_into` oracle sweep.
    pub oracle_batch_ns: Histogram,
    /// Nanoseconds per response frame write (outbox drain to socket).
    pub outbox_write_ns: Histogram,
}

impl ServeMetrics {
    pub(crate) fn new() -> ServeMetrics {
        let registry = Registry::new();
        ServeMetrics {
            served: registry.counter("ccd_served_total"),
            shed: registry.counter("ccd_shed_total"),
            deadline_missed: registry.counter("ccd_deadline_missed_total"),
            malformed: registry.counter("ccd_malformed_total"),
            reloads_ok: registry.counter("ccd_reloads_ok_total"),
            reloads_rejected: registry.counter("ccd_reloads_rejected_total"),
            worker_panics: registry.counter("ccd_worker_panics_total"),
            slow_disconnects: registry.counter("ccd_slow_disconnects_total"),
            queue_depth: registry.gauge("ccd_queue_depth"),
            generation: registry.gauge("ccd_generation"),
            queue_wait_ns: registry.histogram("ccd_queue_wait_ns"),
            batch_jobs: registry.histogram("ccd_batch_jobs"),
            oracle_batch_ns: registry.histogram("ccd_oracle_batch_ns"),
            outbox_write_ns: registry.histogram("ccd_outbox_write_ns"),
            registry,
        }
    }
}

/// Elapsed nanoseconds since `start`, saturating into `u64`.
pub(crate) fn elapsed_ns(start: std::time::Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}
