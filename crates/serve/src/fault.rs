//! Deterministic fault injection for the serving plane.
//!
//! A [`FaultPlan`] is a seeded schedule of induced failures, threaded
//! through test-only seams in the server ([`crate::server`]) and client
//! ([`crate::client`]): worker panics, connection resets, torn
//! (partially-written) frames on either side. Every decision is a pure
//! function of `(seed, site, draw index)` — the same xorshift
//! replay-coordinates discipline as `cc-analyze schedule` — so a chaos
//! run that fails prints one seed and replays exactly, per site. (Thread
//! interleaving still varies across runs; what is deterministic is the
//! sequence of decisions each site sees, which is what the exactly-once
//! and bit-identity assertions depend on.)
//!
//! Rates are per-mille per draw, and each site has a *draw window*: after
//! `window` draws the site goes quiet. A chaos test sizes windows so the
//! system self-quiesces — faults stop firing, traffic drains cleanly, and
//! the final accounting phase can assert exact request/response
//! reconciliation with no fault in flight.
//!
//! The production path never constructs a plan; `ServerConfig::fault`
//! defaults to `None` and every seam is a cheap `Option` check.

use std::sync::atomic::{AtomicU64, Ordering};

/// Where a fault can be injected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultSite {
    /// A worker panics at the top of a batch; containment must answer the
    /// batch `Internal` and keep the worker pool alive.
    WorkerPanic,
    /// The server resets a connection between frames; the client sees a
    /// disconnect and must reconnect (retryable).
    ConnReset,
    /// The server writes a torn response frame, then kills the
    /// connection; the client must treat the torn tail as fatal for that
    /// request (never blind-retry a partially-read response).
    PartialWrite,
    /// The client writes a torn request frame, then drops the connection;
    /// the server's reader must survive the mid-stream EOF.
    ClientTornWrite,
}

const SITE_COUNT: usize = 4;

impl FaultSite {
    /// Every site, for iteration in summaries.
    pub const ALL: [FaultSite; SITE_COUNT] = [
        FaultSite::WorkerPanic,
        FaultSite::ConnReset,
        FaultSite::PartialWrite,
        FaultSite::ClientTornWrite,
    ];

    fn idx(self) -> usize {
        match self {
            FaultSite::WorkerPanic => 0,
            FaultSite::ConnReset => 1,
            FaultSite::PartialWrite => 2,
            FaultSite::ClientTornWrite => 3,
        }
    }

    /// A per-site salt so sites draw independent streams from one seed.
    fn salt(self) -> u64 {
        match self {
            FaultSite::WorkerPanic => 0x9e37_79b9_7f4a_7c15,
            FaultSite::ConnReset => 0xbf58_476d_1ce4_e5b9,
            FaultSite::PartialWrite => 0x94d0_49bb_1331_11eb,
            FaultSite::ClientTornWrite => 0xd6e8_feb8_6659_fd93,
        }
    }
}

/// One site's schedule: fire at `per_mille`/1000 per draw, for the first
/// `window` draws only.
#[derive(Clone, Copy, Debug, Default)]
struct SiteRate {
    per_mille: u32,
    window: u64,
}

/// A seeded, replayable fault schedule. Cheap to share (`Arc`) and to
/// consult (one atomic increment + one hash per draw).
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    rates: [SiteRate; SITE_COUNT],
    draws: [AtomicU64; SITE_COUNT],
    fired: [AtomicU64; SITE_COUNT],
}

/// SplitMix64 finalizer: a well-mixed pure function of the input.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// A plan with every site quiet; arm sites with
    /// [`FaultPlan::with_site`].
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rates: [SiteRate::default(); SITE_COUNT],
            draws: std::array::from_fn(|_| AtomicU64::new(0)),
            fired: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Arms `site` at `per_mille`/1000 per draw for its first `window`
    /// draws (after which the site is quiet — the self-quiesce contract).
    #[must_use]
    pub fn with_site(mut self, site: FaultSite, per_mille: u32, window: u64) -> Self {
        if let Some(rate) = self.rates.get_mut(site.idx()) {
            *rate = SiteRate { per_mille, window };
        }
        self
    }

    /// The replay seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Draws one decision for `site`. Deterministic per `(seed, site,
    /// draw index)` — calling sites consume their own draw streams.
    pub fn fire(&self, site: FaultSite) -> bool {
        let i = site.idx();
        let Some(draws) = self.draws.get(i) else {
            return false;
        };
        let k = draws.fetch_add(1, Ordering::Relaxed);
        let rate = self.rates.get(i).copied().unwrap_or_default();
        if rate.per_mille == 0 || k >= rate.window {
            return false;
        }
        let hit = mix(self.seed ^ site.salt() ^ k) % 1000 < u64::from(rate.per_mille);
        if hit {
            if let Some(f) = self.fired.get(i) {
                f.fetch_add(1, Ordering::Relaxed);
            }
        }
        hit
    }

    /// How many times `site` actually fired so far.
    pub fn fires(&self, site: FaultSite) -> u64 {
        self.fired
            .get(site.idx())
            .map_or(0, |f| f.load(Ordering::Relaxed))
    }

    /// Whether every armed site has exhausted its draw window — the
    /// system has self-quiesced and exact accounting is safe.
    pub fn quiesced(&self) -> bool {
        FaultSite::ALL.iter().all(|&site| {
            let rate = self.rates.get(site.idx()).copied().unwrap_or_default();
            rate.per_mille == 0
                || self
                    .draws
                    .get(site.idx())
                    .is_some_and(|d| d.load(Ordering::Relaxed) >= rate.window)
        })
    }

    /// One-line replay coordinates for failure messages.
    pub fn coordinates(&self) -> String {
        format!("fault plan seed {:#018x}", self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_per_seed_and_draw() {
        let a = FaultPlan::new(7).with_site(FaultSite::WorkerPanic, 300, 64);
        let b = FaultPlan::new(7).with_site(FaultSite::WorkerPanic, 300, 64);
        let fires_a: Vec<bool> = (0..64).map(|_| a.fire(FaultSite::WorkerPanic)).collect();
        let fires_b: Vec<bool> = (0..64).map(|_| b.fire(FaultSite::WorkerPanic)).collect();
        assert_eq!(fires_a, fires_b);
        assert!(fires_a.iter().any(|&f| f), "rate 0.3 over 64 draws fires");
        assert_eq!(
            a.fires(FaultSite::WorkerPanic),
            b.fires(FaultSite::WorkerPanic)
        );
        // A different seed draws a different stream (overwhelmingly).
        let c = FaultPlan::new(8).with_site(FaultSite::WorkerPanic, 300, 64);
        let fires_c: Vec<bool> = (0..64).map(|_| c.fire(FaultSite::WorkerPanic)).collect();
        assert_ne!(fires_a, fires_c);
    }

    #[test]
    fn windows_quiesce_and_unarmed_sites_stay_quiet() {
        let plan = FaultPlan::new(3).with_site(FaultSite::ConnReset, 1000, 5);
        assert!(!plan.quiesced());
        for k in 0..5 {
            assert!(plan.fire(FaultSite::ConnReset), "draw {k} at rate 1000");
        }
        assert!(plan.quiesced());
        assert!(!plan.fire(FaultSite::ConnReset), "window exhausted");
        assert_eq!(plan.fires(FaultSite::ConnReset), 5);
        assert!(!plan.fire(FaultSite::WorkerPanic), "unarmed site");
        assert_eq!(plan.fires(FaultSite::WorkerPanic), 0);
    }
}
