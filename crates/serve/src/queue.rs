//! The admission-control queue: bounded, non-blocking intake, blocking
//! batched drain.
//!
//! Readers call [`BoundedQueue::try_push`], which never blocks — a full
//! queue is the shedding signal (the caller answers `Overloaded`), and a
//! closed queue means shutdown (`ShuttingDown`). Workers call
//! [`BoundedQueue::pop_batch`], which blocks until work arrives and then
//! drains up to a batch of it in one lock hold, so co-arriving requests
//! coalesce into one oracle batch call.
//!
//! Close semantics are drain-friendly: [`BoundedQueue::close`] rejects new
//! pushes immediately but lets workers keep popping until the queue is
//! empty — in-flight requests complete, new ones are refused. That is the
//! graceful-shutdown contract.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Locks `m`, recovering the guard from a poisoned mutex instead of
/// panicking: queue state is a `VecDeque` plus a flag, both valid after any
/// interrupted operation, so a worker that panicked mid-hold must not take
/// the whole intake path down with it.
fn lock_recovering<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Why a push was refused.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PushError {
    /// The queue is at capacity — shed the request.
    Full,
    /// The queue is closed — the server is draining.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue with batched, blocking consumption.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Non-blocking push.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`]; the item comes back with the error.
    pub fn try_push(&self, item: T) -> Result<(), (T, PushError)> {
        let mut inner = lock_recovering(&self.inner);
        if inner.closed {
            return Err((item, PushError::Closed));
        }
        if inner.items.len() >= self.capacity {
            return Err((item, PushError::Full));
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until work is available, then drains up to `max` items in
    /// arrival order. Returns an empty vec only when the queue is closed
    /// *and* fully drained — the worker's exit signal.
    pub fn pop_batch(&self, max: usize, out: &mut Vec<T>) {
        out.clear();
        let mut inner = lock_recovering(&self.inner);
        loop {
            if !inner.items.is_empty() {
                let take = inner.items.len().min(max.max(1));
                out.extend(inner.items.drain(..take));
                // More left? Wake a sibling worker.
                let more = !inner.items.is_empty();
                drop(inner);
                if more {
                    self.ready.notify_one();
                }
                return;
            }
            if inner.closed {
                return;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Closes intake. Pending items remain poppable; blocked workers wake.
    pub fn close(&self) {
        lock_recovering(&self.inner).closed = true;
        self.ready.notify_all();
    }

    /// Current depth (racy snapshot — for stats).
    pub fn depth(&self) -> usize {
        lock_recovering(&self.inner).items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_shed_and_close() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3).unwrap_err(), (3, PushError::Full));
        assert_eq!(q.depth(), 2);

        let mut batch = Vec::new();
        q.pop_batch(10, &mut batch);
        assert_eq!(batch, vec![1, 2]);

        q.close();
        assert_eq!(q.try_push(4).unwrap_err(), (4, PushError::Closed));
        q.pop_batch(10, &mut batch);
        assert!(batch.is_empty(), "closed + drained");
    }

    #[test]
    fn close_drains_pending_items_first() {
        let q = BoundedQueue::new(8);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        let mut batch = Vec::new();
        q.pop_batch(1, &mut batch);
        assert_eq!(batch, vec![1]);
        q.pop_batch(1, &mut batch);
        assert_eq!(batch, vec![2]);
        q.pop_batch(1, &mut batch);
        assert!(batch.is_empty());
    }

    #[test]
    fn blocked_workers_wake_on_push_and_close() {
        let q = Arc::new(BoundedQueue::new(4));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut total = 0u64;
                    let mut batch = Vec::new();
                    loop {
                        q.pop_batch(4, &mut batch);
                        if batch.is_empty() {
                            return total;
                        }
                        total += batch.drain(..).sum::<u64>();
                    }
                })
            })
            .collect();
        for i in 1..=100u64 {
            loop {
                match q.try_push(i) {
                    Ok(()) => break,
                    Err((_, PushError::Full)) => std::thread::yield_now(),
                    Err((_, PushError::Closed)) => unreachable!(),
                }
            }
        }
        q.close();
        let grand: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(grand, 5050);
    }
}
