//! The serving daemon: threaded TCP front-end, batching scheduler,
//! admission control, hot snapshot reload, and fault containment.
//!
//! Per connection, a reader thread decodes frames and classifies them:
//! `ping`/`stats`/`version`/`reload`/`metrics`/`trace` are answered
//! inline; `dist`/`path` become jobs on the bounded [`BoundedQueue`]. A
//! full queue answers
//! [`Status::Overloaded`] immediately — the load-shedding contract is
//! *explicit refusal*, never a silent drop or an unbounded backlog.
//!
//! Worker threads drain the queue in batches ([`ServerConfig::batch_max`]
//! jobs per lock hold), so queries that arrive together — from any mix of
//! connections — coalesce into single [`cc_core::DistOracle::dist_batch_into`] /
//! [`cc_core::PathOracle::path_into`] sweeps over per-worker scratch buffers.
//!
//! **Hot reload** ([`crate::slot::SnapshotSlot`]): each batch pins the
//! current snapshot generation once and answers entirely against it, so
//! an `Op::Reload` (or `SIGHUP`, when configured) that swaps in
//! generation *k+1* is invisible to in-flight batches — they finish on
//! *k*, whose mapping stays alive until the last pin drops. The reload
//! path validates the new file first ([`crate::snapshot::open_quarantining`]:
//! checksum via the loaders, dimension check here) under a dedicated
//! reload lock; a refused reload answers [`Status::ReloadRejected`] and
//! the old generation keeps serving.
//!
//! **Containment**: workers run each batch under `catch_unwind` — a
//! panic answers the batch's unanswered requests with
//! [`Status::Internal`], the panic is counted, and the worker continues
//! with fresh scratch (a respawn without the thread churn). Responses
//! are not written by workers at all: each connection has a bounded
//! byte-capped outbox drained by a dedicated writer thread with a write
//! timeout, so a slow-reading client overflows its outbox (or times out)
//! and is disconnected — counted in `stats` — instead of wedging a
//! worker. Reader threads treat a torn frame as that connection's
//! problem only.
//!
//! Deadlines are checked at dequeue: a job that waited past its budget
//! answers [`Status::DeadlineExceeded`] without touching the oracle, so a
//! backlog burns off at queue speed instead of compute speed.
//!
//! Shutdown ([`ServerHandle::shutdown`]) is drain-first: intake closes
//! (new requests answer [`Status::ShuttingDown`]), workers finish every
//! admitted job, writers flush every queued response, then all threads
//! join.
//!
//! **Observability** (`ServeMetrics`, internal): every counter
//! behind `Op::Stats` and the request-lifecycle histograms (queue wait,
//! batch size, oracle sweep time, outbox write time) live in one `cc_obs`
//! registry, rendered by `Op::Metrics`. Each connection additionally
//! keeps a bounded trace ring of span events — pushed *before* the
//! response frame is enqueued, so a client that has its answer can always
//! drain its own span via `Op::Trace`.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cc_core::PointEstimate;
use cc_obs::{SpanEvent, TraceRing};

use crate::fault::{FaultPlan, FaultSite};
use crate::metrics::{elapsed_ns, ServeMetrics, TRACE_RING_CAPACITY};
use crate::protocol::{
    guarantee_kind_wire, wire_count, Op, Payload, Request, Response, StatsSnapshot, Status,
    VersionInfo, MAX_FRAME,
};
use crate::queue::{BoundedQueue, PushError};
use crate::slot::SnapshotSlot;
use crate::snapshot::{open_quarantining, OpenError, Oracles};

/// Tuning knobs for [`serve`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker (scheduler) threads.
    pub threads: usize,
    /// Bounded queue capacity, in requests; beyond it, requests shed.
    pub queue_capacity: usize,
    /// Max jobs one worker drains per batch.
    pub batch_max: usize,
    /// Default per-request deadline when the client sends `0`; `0` here
    /// means "no deadline".
    pub default_deadline_ms: u32,
    /// Per-connection socket write timeout in milliseconds; a response
    /// write that stalls past it disconnects the slow client. `0`
    /// disables the timeout.
    pub write_timeout_ms: u32,
    /// Per-connection outbox byte cap: queued-but-unwritten response
    /// bytes beyond it disconnect the slow client instead of buffering
    /// without bound or blocking a worker.
    pub outbox_cap_bytes: usize,
    /// Hot-reload configuration; `None` rejects `Op::Reload`.
    pub reload: Option<ReloadConfig>,
    /// Deterministic fault injection (tests only); `None` in production.
    pub fault: Option<Arc<FaultPlan>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 2,
            queue_capacity: 1024,
            batch_max: 64,
            default_deadline_ms: 0,
            write_timeout_ms: 2_000,
            outbox_cap_bytes: 8 << 20,
            reload: None,
            fault: None,
        }
    }
}

/// Where and how hot reloads happen.
#[derive(Clone, Debug)]
pub struct ReloadConfig {
    /// The snapshot path reloads re-open. Publishing a new snapshot means
    /// atomically replacing this file ([`cc_core::snapshot::write_atomic`])
    /// and then triggering a reload.
    pub path: PathBuf,
    /// Accept a snapshot whose vertex count differs from the serving one.
    /// Off by default: a dimension change is usually a deploy mistake.
    pub allow_resize: bool,
    /// Also reload on `SIGHUP` (Unix; polled by the acceptor).
    pub on_sighup: bool,
}

impl ReloadConfig {
    /// Reload-on-admin-op config for `path` with the safe defaults.
    pub fn at<P: Into<PathBuf>>(path: P) -> Self {
        ReloadConfig {
            path: path.into(),
            allow_resize: false,
            on_sighup: false,
        }
    }
}

/// Why a reload was refused. The previous generation keeps serving in
/// every case.
#[derive(Debug)]
pub enum ReloadError {
    /// The server was started without a [`ReloadConfig`].
    NotConfigured,
    /// The new file failed to open or validate (validation failures are
    /// quarantined — see [`OpenError`]).
    Open(OpenError),
    /// The new snapshot's vertex count differs and
    /// [`ReloadConfig::allow_resize`] is off.
    Resize {
        /// Serving snapshot's vertex count.
        current: usize,
        /// Refused snapshot's vertex count.
        new: usize,
    },
}

impl std::fmt::Display for ReloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReloadError::NotConfigured => write!(f, "reload is not configured"),
            ReloadError::Open(e) => write!(f, "reload refused: {e}"),
            ReloadError::Resize { current, new } => write!(
                f,
                "reload refused: snapshot is n={new} but serving n={current} \
                 (pass --allow-resize to accept)"
            ),
        }
    }
}

impl std::error::Error for ReloadError {}

/// Locks recovering from poison: every mutex in this module guards state
/// that is valid after any interrupted operation (queues of owned frames,
/// an `Arc` slot, a config struct), so a panicked holder must not take
/// the serving path down with it.
fn lock_recovering<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Everything the server's threads share.
struct Shared {
    slot: SnapshotSlot,
    queue: BoundedQueue<Job>,
    metrics: ServeMetrics,
    shutdown: AtomicBool,
    reload_ctl: Option<ReloadCtl>,
    fault: Option<Arc<FaultPlan>>,
    default_deadline_ms: u32,
    write_timeout: Option<Duration>,
    outbox_cap: usize,
}

/// Serializes reloads: the open/validate/swap sequence runs under this
/// lock (file I/O included — never under the slot lock, which stays
/// narrow).
struct ReloadCtl {
    reload: Mutex<ReloadConfig>,
}

impl Shared {
    fn fault_fires(&self, site: FaultSite) -> bool {
        self.fault.as_ref().is_some_and(|f| f.fire(site))
    }

    fn fault_coordinates(&self) -> String {
        self.fault
            .as_ref()
            .map_or_else(String::new, |f| f.coordinates())
    }
}

/// The validated hot-reload path: open the configured file (quarantining
/// a corrupt one), check dimensions against the serving snapshot, swap.
/// Serialized by the reload lock; concurrent callers queue up and each
/// gets a definite outcome.
fn try_reload(shared: &Shared) -> Result<VersionInfo, ReloadError> {
    let outcome = (|| {
        let Some(ctl) = &shared.reload_ctl else {
            return Err(ReloadError::NotConfigured);
        };
        let reload = lock_recovering(&ctl.reload);
        let opened = open_quarantining(&reload.path).map_err(ReloadError::Open)?;
        let new_n = opened.oracles.n();
        let current_n = shared.slot.pin().oracles.n();
        if new_n != current_n && !reload.allow_resize {
            return Err(ReloadError::Resize {
                current: current_n,
                new: new_n,
            });
        }
        let generation = shared.slot.swap(opened.oracles);
        drop(reload);
        Ok(VersionInfo {
            generation,
            n: new_n as u64,
        })
    })();
    match &outcome {
        Ok(_) => shared.metrics.reloads_ok.inc(),
        Err(_) => shared.metrics.reloads_rejected.inc(),
    };
    outcome
}

/// The `Op::Stats` answer, read from the same `cc_obs` counters the
/// `Op::Metrics` exposition renders — one accounting substrate, so the
/// two views reconcile exactly.
fn stats_snapshot(shared: &Shared) -> StatsSnapshot {
    let m = &shared.metrics;
    StatsSnapshot {
        served: m.served.get(),
        shed: m.shed.get(),
        deadline_missed: m.deadline_missed.get(),
        malformed: m.malformed.get(),
        queue_depth: shared.queue.depth() as u64,
        generation: shared.slot.generation(),
        reloads_ok: m.reloads_ok.get(),
        reloads_rejected: m.reloads_rejected.get(),
        worker_panics: m.worker_panics.get(),
        slow_disconnects: m.slow_disconnects.get(),
    }
}

/// The `Op::Metrics` answer: refresh the point-in-time gauges, then
/// render the whole registry as integer text exposition.
fn metrics_text(shared: &Shared) -> String {
    let m = &shared.metrics;
    m.queue_depth.set(shared.queue.depth() as u64);
    m.generation.set(shared.slot.generation());
    m.registry.render()
}

/// Queued-but-unwritten response frames for one connection.
#[derive(Debug, Default)]
struct OutboxState {
    frames: VecDeque<Vec<u8>>,
    bytes: usize,
}

/// One accepted connection. The reader thread pulls frames; workers and
/// the reader enqueue whole encoded response frames into the bounded
/// outbox; a dedicated writer thread drains it to the socket. Nothing but
/// the writer ever blocks on this socket's send side.
#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    outbox: Mutex<OutboxState>,
    outbox_ready: Condvar,
    /// Torn down (peer dead, slow-client kill, injected reset): writes
    /// and enqueues become no-ops.
    dead: AtomicBool,
    /// The reader has exited; once in-flight jobs drain to zero the
    /// writer flushes and exits too.
    reader_done: AtomicBool,
    /// Jobs admitted for this connection and not yet answered.
    inflight: AtomicU64,
    /// Span events for this connection's last requests, drained by
    /// `Op::Trace`. Events are pushed before the response frame is
    /// enqueued, so an answered request's span is always drainable.
    trace: TraceRing,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            outbox: Mutex::new(OutboxState::default()),
            outbox_ready: Condvar::new(),
            dead: AtomicBool::new(false),
            reader_done: AtomicBool::new(false),
            inflight: AtomicU64::new(0),
            trace: TraceRing::new(TRACE_RING_CAPACITY),
        }
    }

    /// Queues one encoded response frame for the writer. `false` when the
    /// connection is dead or the frame would overflow the outbox cap — in
    /// which case the client is disconnected (slow-reader containment),
    /// never blocked on.
    fn enqueue_frame(&self, body: &[u8], cap: usize, metrics: &ServeMetrics) -> bool {
        if self.dead.load(Ordering::Relaxed) {
            return false;
        }
        let mut outbox = lock_recovering(&self.outbox);
        if outbox.bytes.saturating_add(body.len()) > cap {
            drop(outbox);
            metrics.slow_disconnects.inc();
            self.kill();
            return false;
        }
        outbox.bytes = outbox.bytes.saturating_add(body.len());
        outbox.frames.push_back(body.to_vec());
        drop(outbox);
        self.outbox_ready.notify_one();
        true
    }

    fn enqueue_response(&self, resp: &Response, cap: usize, metrics: &ServeMetrics) -> bool {
        self.enqueue_frame(&resp.encode(), cap, metrics)
    }

    /// Tears the connection down: both socket halves shut (unblocking the
    /// reader), the writer woken to exit. Idempotent.
    fn kill(&self) {
        self.dead.store(true, Ordering::Relaxed);
        let _ = self.stream.shutdown(Shutdown::Both);
        // Take-and-drop the outbox lock so a writer mid-condition-check
        // cannot miss the wakeup (classic lost-notify fence).
        drop(lock_recovering(&self.outbox));
        self.outbox_ready.notify_all();
    }

    /// One admitted job finished (answered or refused); the writer
    /// re-evaluates its exit condition.
    fn job_done(&self) {
        self.inflight.fetch_sub(1, Ordering::Relaxed);
        drop(lock_recovering(&self.outbox));
        self.outbox_ready.notify_all();
    }

    /// The reader exited; the writer drains what remains and then exits.
    fn reader_finished(&self) {
        self.reader_done.store(true, Ordering::Relaxed);
        drop(lock_recovering(&self.outbox));
        self.outbox_ready.notify_all();
    }
}

/// A queued query batch (one request).
struct Job {
    conn: Arc<Conn>,
    req_id: u64,
    op: Op,
    deadline: Option<Instant>,
    /// When the reader admitted the job — the queue-wait histogram
    /// measures from here to batch pickup.
    enqueued_at: Instant,
    pairs: Vec<(u32, u32)>,
}

impl Job {
    /// The span event recorded for this job's outcome (trace ring).
    fn span(&self, status: Status, wait_ns: u64, batch: u64) -> SpanEvent {
        SpanEvent {
            req_id: self.req_id,
            op: self.op.wire(),
            status: status.wire(),
            wait_ns,
            batch,
        }
    }
}

/// A running server. Dropping the handle shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (useful with port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A racy snapshot of the server counters.
    pub fn stats(&self) -> StatsSnapshot {
        stats_snapshot(&self.shared)
    }

    /// The serving snapshot generation (`1` at boot, `+1` per reload).
    pub fn generation(&self) -> u64 {
        self.shared.slot.generation()
    }

    /// Runs the hot-reload path in the caller's thread — what `SIGHUP`
    /// and `Op::Reload` trigger, callable directly (tests, embedding).
    ///
    /// # Errors
    ///
    /// [`ReloadError`] when the reload is refused; the previous snapshot
    /// generation keeps serving.
    pub fn trigger_reload(&self) -> Result<VersionInfo, ReloadError> {
        try_reload(&self.shared)
    }

    /// Graceful shutdown: close intake, drain admitted work, flush
    /// outboxes, join every thread. Idempotent via [`Drop`].
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue.close();
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // Workers first: every admitted job gets its answer enqueued.
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Readers exit on the shutdown flag; writers exit once their
        // reader is done, in-flight hits zero, and the outbox is drained.
        let conn_threads = std::mem::take(&mut *lock_recovering(&self.conn_threads));
        for h in conn_threads {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// Binds `addr` and starts accepting. Returns once the listener is live.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve(oracles: Oracles, addr: &str, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let write_timeout = (config.write_timeout_ms != 0)
        .then(|| Duration::from_millis(u64::from(config.write_timeout_ms)));
    let sighup = config
        .reload
        .as_ref()
        .is_some_and(|r| r.on_sighup)
        .then(crate::mmap::sighup_flag);
    let shared = Arc::new(Shared {
        slot: SnapshotSlot::new(oracles),
        queue: BoundedQueue::new(config.queue_capacity),
        metrics: ServeMetrics::new(),
        shutdown: AtomicBool::new(false),
        reload_ctl: config.reload.map(|r| ReloadCtl {
            reload: Mutex::new(r),
        }),
        fault: config.fault,
        default_deadline_ms: config.default_deadline_ms,
        write_timeout,
        outbox_cap: config.outbox_cap_bytes.max(1024),
    });
    let conn_threads = Arc::new(Mutex::new(Vec::new()));

    let workers = (0..config.threads.max(1))
        .map(|_| {
            let shared = Arc::clone(&shared);
            let batch_max = config.batch_max.max(1);
            std::thread::spawn(move || worker_loop(&shared, batch_max))
        })
        .collect();

    let acceptor = {
        let shared = Arc::clone(&shared);
        let conn_threads = Arc::clone(&conn_threads);
        std::thread::spawn(move || {
            while !shared.shutdown.load(Ordering::Relaxed) {
                if let Some(flag) = sighup {
                    if flag.swap(false, Ordering::AcqRel) {
                        // Outcome lands in the counters; stats/version
                        // report it. A refusal keeps the old generation.
                        let _ = try_reload(&shared);
                    }
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nodelay(true);
                        let _ = stream.set_nonblocking(false);
                        let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
                        let _ = stream.set_write_timeout(shared.write_timeout);
                        let conn = Arc::new(Conn::new(stream));
                        let reader = {
                            let conn = Arc::clone(&conn);
                            let shared = Arc::clone(&shared);
                            std::thread::spawn(move || {
                                reader_loop(&conn, &shared);
                                conn.reader_finished();
                            })
                        };
                        let writer = {
                            let shared = Arc::clone(&shared);
                            std::thread::spawn(move || writer_loop(&conn, &shared))
                        };
                        let mut conn_threads = lock_recovering(&conn_threads);
                        conn_threads.push(reader);
                        conn_threads.push(writer);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
        })
    };

    Ok(ServerHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
        workers,
        conn_threads,
    })
}

/// Reads `buf.len()` bytes, polling the shutdown flag across read
/// timeouts. `Ok(false)`: clean stop (EOF at a frame boundary, or
/// shutdown). Mid-frame EOF is an error.
fn read_full(
    stream: &TcpStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
    at_boundary: bool,
) -> std::io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        if shutdown.load(Ordering::Relaxed) {
            return Ok(false);
        }
        let window = buf.get_mut(filled..).unwrap_or_default();
        match (&*stream).read(window) {
            Ok(0) => {
                if at_boundary && filled == 0 {
                    return Ok(false);
                }
                return Err(std::io::ErrorKind::UnexpectedEof.into());
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

fn reader_loop(conn: &Arc<Conn>, shared: &Arc<Shared>) {
    let cap = shared.outbox_cap;
    let metrics = &shared.metrics;
    loop {
        // Injected reset: the mid-stream disconnect clients must survive.
        if shared.fault_fires(FaultSite::ConnReset) {
            conn.kill();
            return;
        }
        let mut len_buf = [0u8; 4];
        match read_full(&conn.stream, &mut len_buf, &shared.shutdown, true) {
            Ok(true) => {}
            Ok(false) | Err(_) => return,
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        if len > MAX_FRAME {
            metrics.malformed.inc();
            // Frame boundary is lost; the connection cannot continue
            // reading — but queued responses still flush.
            return;
        }
        let mut body = vec![0u8; len];
        match read_full(&conn.stream, &mut body, &shared.shutdown, false) {
            Ok(true) => {}
            // A torn frame mid-stream ends this connection's intake and
            // nothing else: the writer drains, the server keeps serving.
            Ok(false) | Err(_) => return,
        }
        let Some(req) = Request::decode(&body) else {
            metrics.malformed.inc();
            // Best effort: the id prefix may still be intact.
            let req_id = body
                .first_chunk::<8>()
                .map(|b| u64::from_le_bytes(*b))
                .unwrap_or(0);
            conn.enqueue_response(
                &Response::error(req_id, Op::Ping, Status::Malformed),
                cap,
                metrics,
            );
            continue;
        };
        match req.op {
            Op::Ping => {
                conn.enqueue_response(
                    &Response {
                        req_id: req.req_id,
                        status: Status::Ok,
                        op: Op::Ping,
                        payload: Payload::Empty,
                    },
                    cap,
                    metrics,
                );
            }
            Op::Stats => {
                conn.enqueue_response(
                    &Response {
                        req_id: req.req_id,
                        status: Status::Ok,
                        op: Op::Stats,
                        payload: Payload::Stats(stats_snapshot(shared)),
                    },
                    cap,
                    metrics,
                );
            }
            Op::Metrics => {
                conn.enqueue_response(
                    &Response {
                        req_id: req.req_id,
                        status: Status::Ok,
                        op: Op::Metrics,
                        payload: Payload::Text(metrics_text(shared)),
                    },
                    cap,
                    metrics,
                );
            }
            Op::Trace => {
                conn.enqueue_response(
                    &Response {
                        req_id: req.req_id,
                        status: Status::Ok,
                        op: Op::Trace,
                        payload: Payload::Text(conn.trace.drain_text()),
                    },
                    cap,
                    metrics,
                );
            }
            Op::Version => {
                let pinned = shared.slot.pin();
                conn.enqueue_response(
                    &Response {
                        req_id: req.req_id,
                        status: Status::Ok,
                        op: Op::Version,
                        payload: Payload::Version(VersionInfo {
                            generation: pinned.generation,
                            n: pinned.oracles.n() as u64,
                        }),
                    },
                    cap,
                    metrics,
                );
            }
            Op::Reload => {
                let resp = match try_reload(shared) {
                    Ok(info) => Response {
                        req_id: req.req_id,
                        status: Status::Ok,
                        op: Op::Reload,
                        payload: Payload::Version(info),
                    },
                    Err(_) => Response::error(req.req_id, Op::Reload, Status::ReloadRejected),
                };
                conn.enqueue_response(&resp, cap, metrics);
            }
            Op::Dist | Op::Path => {
                let effective_ms = if req.deadline_ms != 0 {
                    req.deadline_ms
                } else {
                    shared.default_deadline_ms
                };
                let now = Instant::now();
                let deadline = (effective_ms != 0)
                    .then(|| now + Duration::from_millis(u64::from(effective_ms)));
                let job = Job {
                    conn: Arc::clone(conn),
                    req_id: req.req_id,
                    op: req.op,
                    deadline,
                    enqueued_at: now,
                    pairs: req.pairs,
                };
                conn.inflight.fetch_add(1, Ordering::Relaxed);
                match shared.queue.try_push(job) {
                    Ok(()) => {}
                    Err((job, PushError::Full)) => {
                        metrics.shed.inc();
                        job.conn.trace.push(job.span(Status::Overloaded, 0, 0));
                        job.conn.enqueue_response(
                            &Response::error(job.req_id, job.op, Status::Overloaded),
                            cap,
                            metrics,
                        );
                        job.conn.job_done();
                    }
                    Err((job, PushError::Closed)) => {
                        job.conn.trace.push(job.span(Status::ShuttingDown, 0, 0));
                        job.conn.enqueue_response(
                            &Response::error(job.req_id, job.op, Status::ShuttingDown),
                            cap,
                            metrics,
                        );
                        job.conn.job_done();
                    }
                }
            }
        }
    }
}

/// Drains one connection's outbox to its socket. Exits when the
/// connection dies, or when the reader is done *and* no admitted job is
/// still in flight *and* the outbox is empty — the drain-first shutdown
/// contract: every enqueued response is flushed before the thread leaves.
fn writer_loop(conn: &Arc<Conn>, shared: &Shared) {
    let mut pending: Vec<Vec<u8>> = Vec::new();
    loop {
        {
            let mut outbox = lock_recovering(&conn.outbox);
            loop {
                if !outbox.frames.is_empty() {
                    pending.extend(outbox.frames.drain(..));
                    outbox.bytes = 0;
                    break;
                }
                if conn.dead.load(Ordering::Relaxed) {
                    return;
                }
                if conn.reader_done.load(Ordering::Relaxed)
                    && conn.inflight.load(Ordering::Relaxed) == 0
                {
                    return;
                }
                outbox = conn
                    .outbox_ready
                    .wait(outbox)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
        for body in pending.drain(..) {
            if conn.dead.load(Ordering::Relaxed) {
                return;
            }
            if shared.fault_fires(FaultSite::PartialWrite) {
                // Write a deliberately torn frame, then kill: the client
                // must treat the torn tail as fatal for this request.
                let mut frame = Vec::with_capacity(4 + body.len());
                frame.extend_from_slice(&wire_count(body.len()).to_le_bytes());
                frame.extend_from_slice(&body);
                let torn = frame.len() / 2;
                let _ = (&conn.stream).write_all(frame.get(..torn).unwrap_or_default());
                conn.kill();
                return;
            }
            let write_started = Instant::now();
            if let Err(e) = crate::protocol::write_frame(&mut (&conn.stream), &body) {
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) {
                    // The peer stopped reading: slow-client containment.
                    shared.metrics.slow_disconnects.inc();
                }
                conn.kill();
                return;
            }
            shared
                .metrics
                .outbox_write_ns
                .record(elapsed_ns(write_started));
        }
    }
}

/// Per-worker reusable buffers — scratch survives across batches and is
/// reset wholesale after a contained panic (the "respawn").
struct Scratch {
    jobs: Vec<Job>,
    /// Which jobs in the batch have been answered (any status); a panic
    /// answers the rest `Internal`.
    answered: Vec<bool>,
    /// Concatenated pairs of every dist job in the batch.
    dist_pairs: Vec<(usize, usize)>,
    /// `(job index in batch, start in dist_pairs, len)`.
    dist_slots: Vec<(usize, usize, usize)>,
    dist_out: Vec<Option<PointEstimate>>,
    edges: Vec<(u32, u32)>,
    body: Vec<u8>,
}

impl Scratch {
    fn new() -> Scratch {
        Scratch {
            jobs: Vec::new(),
            answered: Vec::new(),
            dist_pairs: Vec::new(),
            dist_slots: Vec::new(),
            dist_out: Vec::new(),
            edges: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Post-panic reset: every buffer except `jobs`/`answered` (which the
    /// recovery path still needs) may be mid-operation garbage.
    fn reset_buffers(&mut self) {
        self.dist_pairs.clear();
        self.dist_slots.clear();
        self.dist_out.clear();
        self.edges.clear();
        self.body.clear();
    }
}

fn worker_loop(shared: &Arc<Shared>, batch_max: usize) {
    let mut s = Scratch::new();
    loop {
        shared.queue.pop_batch(batch_max, &mut s.jobs);
        if s.jobs.is_empty() {
            return; // closed and drained
        }
        s.answered.clear();
        s.answered.resize(s.jobs.len(), false);
        // Containment: a panic anywhere in the batch — oracle bug,
        // injected fault — answers the unanswered jobs `Internal` and the
        // worker continues with fresh scratch. Unwind safety: the scratch
        // is reset below and the shared structures are poison-recovering,
        // so observing interrupted state is by design.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            process_batch(shared, &mut s);
        }));
        if outcome.is_err() {
            shared.metrics.worker_panics.inc();
            for (i, job) in s.jobs.iter().enumerate() {
                if s.answered.get(i).copied().unwrap_or(true) {
                    continue;
                }
                job.conn.trace.push(job.span(Status::Internal, 0, 0));
                job.conn.enqueue_response(
                    &Response::error(job.req_id, job.op, Status::Internal),
                    shared.outbox_cap,
                    &shared.metrics,
                );
            }
            s.reset_buffers();
        }
        // Exactly one in-flight decrement per admitted job, on every
        // path — success, error answer, or contained panic.
        for job in &s.jobs {
            job.conn.job_done();
        }
        s.jobs.clear();
    }
}

fn process_batch(shared: &Shared, s: &mut Scratch) {
    if shared.fault_fires(FaultSite::WorkerPanic) {
        panic!(
            "injected worker panic (replay: {})",
            shared.fault_coordinates()
        );
    }
    // Pin one generation for the whole batch: a concurrent reload swaps
    // the slot but this batch keeps answering against its pinned tables.
    let pinned = shared.slot.pin();
    let oracles = &pinned.oracles;
    let metrics = &shared.metrics;
    let cap = shared.outbox_cap;
    let now = Instant::now();
    let batch = s.jobs.len() as u64;
    metrics.batch_jobs.record(batch);
    // Coalesce every live dist job in this batch into one oracle call.
    s.dist_pairs.clear();
    s.dist_slots.clear();
    for (i, job) in s.jobs.iter().enumerate() {
        if job.op != Op::Dist || job.deadline.is_some_and(|d| d < now) {
            continue;
        }
        let start = s.dist_pairs.len();
        s.dist_pairs
            .extend(job.pairs.iter().map(|&(u, v)| (u as usize, v as usize)));
        s.dist_slots.push((i, start, job.pairs.len()));
    }
    if !s.dist_pairs.is_empty() {
        let sweep_started = Instant::now();
        oracles
            .dist()
            .dist_batch_into(&s.dist_pairs, &mut s.dist_out);
        metrics.oracle_batch_ns.record(elapsed_ns(sweep_started));
    }
    let mut slot = 0;
    for (i, job) in s.jobs.iter().enumerate() {
        let wait_ns = u64::try_from(now.saturating_duration_since(job.enqueued_at).as_nanos())
            .unwrap_or(u64::MAX);
        metrics.queue_wait_ns.record(wait_ns);
        if job.deadline.is_some_and(|d| d < now) {
            metrics.deadline_missed.inc();
            job.conn
                .trace
                .push(job.span(Status::DeadlineExceeded, wait_ns, batch));
            job.conn.enqueue_response(
                &Response::error(job.req_id, job.op, Status::DeadlineExceeded),
                cap,
                metrics,
            );
            if let Some(a) = s.answered.get_mut(i) {
                *a = true;
            }
            continue;
        }
        // `served` counts *before* the enqueue: once the frame is in the
        // outbox the writer may deliver it and the client may act on it
        // ahead of any code after this point, and a stats probe racing
        // that window must already see the request counted.
        match job.op {
            Op::Dist => {
                // Slots were built from this batch two loops up, so the
                // lookups cannot miss; a miss (a bug) sheds the one
                // request as Malformed instead of killing the worker.
                let entry = s.dist_slots.get(slot).copied();
                slot += 1;
                let answers = entry.and_then(|(j, start, len)| {
                    debug_assert_eq!(j, i);
                    start
                        .checked_add(len)
                        .and_then(|end| s.dist_out.get(start..end))
                });
                match answers {
                    Some(answers) => {
                        encode_dist_body(&mut s.body, job, answers);
                        metrics.served.inc();
                        job.conn.trace.push(job.span(Status::Ok, wait_ns, batch));
                        job.conn.enqueue_frame(&s.body, cap, metrics);
                    }
                    None => {
                        job.conn
                            .trace
                            .push(job.span(Status::Malformed, wait_ns, batch));
                        job.conn.enqueue_response(
                            &Response::error(job.req_id, job.op, Status::Malformed),
                            cap,
                            metrics,
                        );
                    }
                }
            }
            Op::Path => {
                encode_path_body(&mut s.body, job, oracles, &mut s.edges);
                metrics.served.inc();
                job.conn.trace.push(job.span(Status::Ok, wait_ns, batch));
                job.conn.enqueue_frame(&s.body, cap, metrics);
            }
            // The reader answers these inline and never enqueues them;
            // nothing is owed here.
            Op::Ping | Op::Stats | Op::Reload | Op::Version | Op::Metrics | Op::Trace => {}
        }
        if let Some(a) = s.answered.get_mut(i) {
            *a = true;
        }
    }
}

/// Byte-identical to `Response { status: Ok, payload: Dists(..) }.encode()`,
/// without building the intermediate structures.
fn encode_dist_body(body: &mut Vec<u8>, job: &Job, answers: &[Option<PointEstimate>]) {
    body.clear();
    body.extend_from_slice(&job.req_id.to_le_bytes());
    body.push(0); // Status::Ok
    body.push(1); // Op::Dist
    body.extend_from_slice(&wire_count(answers.len()).to_le_bytes());
    for a in answers {
        match a {
            None => body.push(0),
            Some(est) => {
                body.push(1);
                body.extend_from_slice(&est.dist.to_le_bytes());
                body.push(guarantee_kind_wire(est.guarantee.kind));
                body.extend_from_slice(&est.guarantee.eps.to_bits().to_le_bytes());
                body.extend_from_slice(&est.guarantee.additive.to_bits().to_le_bytes());
            }
        }
    }
}

/// Byte-identical to `Response { status: Ok, payload: Paths(..) }.encode()`.
/// A snapshot without routes answers every pair `absent` — same shape a
/// disconnected pair has, so clients need no special case.
fn encode_path_body(body: &mut Vec<u8>, job: &Job, oracles: &Oracles, edges: &mut Vec<(u32, u32)>) {
    body.clear();
    body.extend_from_slice(&job.req_id.to_le_bytes());
    body.push(0); // Status::Ok
    body.push(2); // Op::Path
    body.extend_from_slice(&wire_count(job.pairs.len()).to_le_bytes());
    let paths = oracles.paths();
    for &(u, v) in &job.pairs {
        let answer = paths.and_then(|p| {
            edges.clear();
            p.path_into(u as usize, v as usize, edges)
        });
        match answer {
            None => body.push(0),
            Some((weight, g)) => {
                body.push(1);
                body.extend_from_slice(&weight.to_le_bytes());
                body.push(guarantee_kind_wire(g.kind));
                body.extend_from_slice(&g.eps.to_bits().to_le_bytes());
                body.extend_from_slice(&g.additive.to_bits().to_le_bytes());
                body.extend_from_slice(&wire_count(edges.len()).to_le_bytes());
                for &(x, y) in edges.iter() {
                    body.extend_from_slice(&x.to_le_bytes());
                    body.extend_from_slice(&y.to_le_bytes());
                }
            }
        }
    }
}
