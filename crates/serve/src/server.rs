//! The serving daemon: threaded TCP front-end, batching scheduler,
//! admission control.
//!
//! Per connection, a reader thread decodes frames and classifies them:
//! `ping`/`stats` are answered inline; `dist`/`path` become jobs on the
//! bounded [`BoundedQueue`]. A full queue answers
//! [`Status::Overloaded`] immediately — the load-shedding contract is
//! *explicit refusal*, never a silent drop or an unbounded backlog.
//!
//! Worker threads drain the queue in batches ([`ServerConfig::batch_max`]
//! jobs per lock hold), so queries that arrive together — from any mix of
//! connections — coalesce into single [`cc_core::DistOracle::dist_batch_into`] /
//! [`cc_core::PathOracle::path_into`] sweeps over per-worker scratch buffers. No
//! allocation scales with the query rate; response frames reuse a
//! per-worker byte buffer.
//!
//! Deadlines are checked at dequeue: a job that waited past its budget
//! answers [`Status::DeadlineExceeded`] without touching the oracle, so a
//! backlog burns off at queue speed instead of compute speed.
//!
//! Shutdown ([`ServerHandle::shutdown`]) is drain-first: intake closes
//! (new requests answer [`Status::ShuttingDown`]), workers finish every
//! admitted job, then readers, workers, and the acceptor join.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cc_core::PointEstimate;

use crate::protocol::{
    guarantee_kind_wire, wire_count, write_frame, Op, Request, Response, StatsSnapshot, Status,
    MAX_FRAME,
};
use crate::queue::{BoundedQueue, PushError};
use crate::snapshot::Oracles;

/// Tuning knobs for [`serve`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker (scheduler) threads.
    pub threads: usize,
    /// Bounded queue capacity, in requests; beyond it, requests shed.
    pub queue_capacity: usize,
    /// Max jobs one worker drains per batch.
    pub batch_max: usize,
    /// Default per-request deadline when the client sends `0`; `0` here
    /// means "no deadline".
    pub default_deadline_ms: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 2,
            queue_capacity: 1024,
            batch_max: 64,
            default_deadline_ms: 0,
        }
    }
}

/// Monotonic counters, shared by readers and workers.
#[derive(Debug, Default)]
struct Counters {
    served: AtomicU64,
    shed: AtomicU64,
    deadline_missed: AtomicU64,
    malformed: AtomicU64,
}

/// One accepted connection: readers pull frames, workers push responses.
/// Writes interleave whole frames under the lock.
#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    write_lock: Mutex<()>,
}

impl Conn {
    fn send(&self, resp: &Response) {
        let body = resp.encode();
        // The lock guards nothing but frame interleaving, so a panicked
        // holder leaves no broken state to fear: recover, don't poison.
        let _guard = self
            .write_lock
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // A dead peer is not a server error; the reader notices on its
        // side and tears the connection down.
        let _ = write_frame(&mut &self.stream, &body);
    }

    fn send_raw(&self, body: &[u8]) -> bool {
        let _guard = self
            .write_lock
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        write_frame(&mut &self.stream, body).is_ok()
    }
}

/// A queued query batch (one request).
struct Job {
    conn: Arc<Conn>,
    req_id: u64,
    op: Op,
    deadline: Option<Instant>,
    pairs: Vec<(u32, u32)>,
}

/// A running server. Dropping the handle shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    queue: Arc<BoundedQueue<Job>>,
    counters: Arc<Counters>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (useful with port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A racy snapshot of the server counters.
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            served: self.counters.served.load(Ordering::Relaxed),
            shed: self.counters.shed.load(Ordering::Relaxed),
            deadline_missed: self.counters.deadline_missed.load(Ordering::Relaxed),
            malformed: self.counters.malformed.load(Ordering::Relaxed),
            queue_depth: self.queue.depth() as u64,
        }
    }

    /// Graceful shutdown: close intake, drain admitted work, join every
    /// thread. Idempotent via [`Drop`].
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.close();
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        let readers = std::mem::take(
            &mut *self
                .readers
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        for h in readers {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// Binds `addr` and starts accepting. Returns once the listener is live.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve(oracles: Oracles, addr: &str, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let oracles = Arc::new(oracles);
    let shutdown = Arc::new(AtomicBool::new(false));
    let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
    let counters = Arc::new(Counters::default());
    let readers = Arc::new(Mutex::new(Vec::new()));

    let workers = (0..config.threads.max(1))
        .map(|_| {
            let queue = Arc::clone(&queue);
            let oracles = Arc::clone(&oracles);
            let counters = Arc::clone(&counters);
            let batch_max = config.batch_max.max(1);
            std::thread::spawn(move || worker_loop(&queue, &oracles, &counters, batch_max))
        })
        .collect();

    let acceptor = {
        let shutdown = Arc::clone(&shutdown);
        let queue = Arc::clone(&queue);
        let counters = Arc::clone(&counters);
        let readers = Arc::clone(&readers);
        let default_deadline_ms = config.default_deadline_ms;
        std::thread::spawn(move || {
            while !shutdown.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nodelay(true);
                        let _ = stream.set_nonblocking(false);
                        let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
                        let conn = Arc::new(Conn {
                            stream,
                            write_lock: Mutex::new(()),
                        });
                        let shutdown = Arc::clone(&shutdown);
                        let queue = Arc::clone(&queue);
                        let counters = Arc::clone(&counters);
                        let handle = std::thread::spawn(move || {
                            reader_loop(&conn, &shutdown, &queue, &counters, default_deadline_ms);
                        });
                        readers
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .push(handle);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
        })
    };

    Ok(ServerHandle {
        addr,
        shutdown,
        queue,
        counters,
        acceptor: Some(acceptor),
        workers,
        readers,
    })
}

/// Reads `buf.len()` bytes, polling the shutdown flag across read
/// timeouts. `Ok(false)`: clean stop (EOF at a frame boundary, or
/// shutdown). Mid-frame EOF is an error.
fn read_full(
    stream: &TcpStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
    at_boundary: bool,
) -> std::io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        if shutdown.load(Ordering::Relaxed) {
            return Ok(false);
        }
        let window = buf.get_mut(filled..).unwrap_or_default();
        match (&*stream).read(window) {
            Ok(0) => {
                if at_boundary && filled == 0 {
                    return Ok(false);
                }
                return Err(std::io::ErrorKind::UnexpectedEof.into());
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

fn reader_loop(
    conn: &Arc<Conn>,
    shutdown: &AtomicBool,
    queue: &BoundedQueue<Job>,
    counters: &Counters,
    default_deadline_ms: u32,
) {
    loop {
        let mut len_buf = [0u8; 4];
        match read_full(&conn.stream, &mut len_buf, shutdown, true) {
            Ok(true) => {}
            Ok(false) | Err(_) => return,
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        if len > MAX_FRAME {
            counters.malformed.fetch_add(1, Ordering::Relaxed);
            // Frame boundary is lost; the connection cannot continue.
            return;
        }
        let mut body = vec![0u8; len];
        match read_full(&conn.stream, &mut body, shutdown, false) {
            Ok(true) => {}
            Ok(false) | Err(_) => return,
        }
        let Some(req) = Request::decode(&body) else {
            counters.malformed.fetch_add(1, Ordering::Relaxed);
            // Best effort: the id prefix may still be intact.
            let req_id = body
                .first_chunk::<8>()
                .map(|b| u64::from_le_bytes(*b))
                .unwrap_or(0);
            conn.send(&Response::error(req_id, Op::Ping, Status::Malformed));
            continue;
        };
        match req.op {
            Op::Ping => {
                conn.send(&Response {
                    req_id: req.req_id,
                    status: Status::Ok,
                    op: Op::Ping,
                    payload: crate::protocol::Payload::Empty,
                });
            }
            Op::Stats => {
                conn.send(&Response {
                    req_id: req.req_id,
                    status: Status::Ok,
                    op: Op::Stats,
                    payload: crate::protocol::Payload::Stats(StatsSnapshot {
                        served: counters.served.load(Ordering::Relaxed),
                        shed: counters.shed.load(Ordering::Relaxed),
                        deadline_missed: counters.deadline_missed.load(Ordering::Relaxed),
                        malformed: counters.malformed.load(Ordering::Relaxed),
                        queue_depth: queue.depth() as u64,
                    }),
                });
            }
            Op::Dist | Op::Path => {
                let effective_ms = if req.deadline_ms != 0 {
                    req.deadline_ms
                } else {
                    default_deadline_ms
                };
                let deadline = (effective_ms != 0)
                    .then(|| Instant::now() + Duration::from_millis(u64::from(effective_ms)));
                let job = Job {
                    conn: Arc::clone(conn),
                    req_id: req.req_id,
                    op: req.op,
                    deadline,
                    pairs: req.pairs,
                };
                match queue.try_push(job) {
                    Ok(()) => {}
                    Err((job, PushError::Full)) => {
                        counters.shed.fetch_add(1, Ordering::Relaxed);
                        job.conn
                            .send(&Response::error(job.req_id, job.op, Status::Overloaded));
                    }
                    Err((job, PushError::Closed)) => {
                        job.conn
                            .send(&Response::error(job.req_id, job.op, Status::ShuttingDown));
                    }
                }
            }
        }
    }
}

/// Per-worker reusable buffers — the no-allocation-per-request budget.
struct Scratch {
    jobs: Vec<Job>,
    /// Concatenated pairs of every dist job in the batch.
    dist_pairs: Vec<(usize, usize)>,
    /// `(job index in batch, start in dist_pairs, len)`.
    dist_slots: Vec<(usize, usize, usize)>,
    dist_out: Vec<Option<PointEstimate>>,
    edges: Vec<(u32, u32)>,
    body: Vec<u8>,
}

fn worker_loop(
    queue: &BoundedQueue<Job>,
    oracles: &Oracles,
    counters: &Counters,
    batch_max: usize,
) {
    let mut s = Scratch {
        jobs: Vec::new(),
        dist_pairs: Vec::new(),
        dist_slots: Vec::new(),
        dist_out: Vec::new(),
        edges: Vec::new(),
        body: Vec::new(),
    };
    loop {
        queue.pop_batch(batch_max, &mut s.jobs);
        if s.jobs.is_empty() {
            return; // closed and drained
        }
        let now = Instant::now();
        // Coalesce every live dist job in this batch into one oracle call.
        s.dist_pairs.clear();
        s.dist_slots.clear();
        for (i, job) in s.jobs.iter().enumerate() {
            if job.op != Op::Dist || job.deadline.is_some_and(|d| d < now) {
                continue;
            }
            let start = s.dist_pairs.len();
            s.dist_pairs
                .extend(job.pairs.iter().map(|&(u, v)| (u as usize, v as usize)));
            s.dist_slots.push((i, start, job.pairs.len()));
        }
        if !s.dist_pairs.is_empty() {
            oracles
                .dist()
                .dist_batch_into(&s.dist_pairs, &mut s.dist_out);
        }
        let mut slot = 0;
        for (i, job) in s.jobs.iter().enumerate() {
            if job.deadline.is_some_and(|d| d < now) {
                counters.deadline_missed.fetch_add(1, Ordering::Relaxed);
                job.conn.send(&Response::error(
                    job.req_id,
                    job.op,
                    Status::DeadlineExceeded,
                ));
                continue;
            }
            let ok = match job.op {
                Op::Dist => {
                    // Slots were built from this batch two loops up, so the
                    // lookups cannot miss; a miss (a bug) sheds the one
                    // request as Malformed instead of killing the worker.
                    let entry = s.dist_slots.get(slot).copied();
                    slot += 1;
                    let answers = entry.and_then(|(j, start, len)| {
                        debug_assert_eq!(j, i);
                        start
                            .checked_add(len)
                            .and_then(|end| s.dist_out.get(start..end))
                    });
                    match answers {
                        Some(answers) => {
                            encode_dist_body(&mut s.body, job, answers);
                            job.conn.send_raw(&s.body)
                        }
                        None => {
                            job.conn
                                .send(&Response::error(job.req_id, job.op, Status::Malformed));
                            false
                        }
                    }
                }
                Op::Path => {
                    encode_path_body(&mut s.body, job, oracles, &mut s.edges);
                    job.conn.send_raw(&s.body)
                }
                // The reader answers these inline and never enqueues them;
                // nothing is owed here.
                Op::Ping | Op::Stats => false,
            };
            if ok {
                counters.served.fetch_add(1, Ordering::Relaxed);
            }
        }
        s.jobs.clear();
    }
}

/// Byte-identical to `Response { status: Ok, payload: Dists(..) }.encode()`,
/// without building the intermediate structures.
fn encode_dist_body(body: &mut Vec<u8>, job: &Job, answers: &[Option<PointEstimate>]) {
    body.clear();
    body.extend_from_slice(&job.req_id.to_le_bytes());
    body.push(0); // Status::Ok
    body.push(1); // Op::Dist
    body.extend_from_slice(&wire_count(answers.len()).to_le_bytes());
    for a in answers {
        match a {
            None => body.push(0),
            Some(est) => {
                body.push(1);
                body.extend_from_slice(&est.dist.to_le_bytes());
                body.push(guarantee_kind_wire(est.guarantee.kind));
                body.extend_from_slice(&est.guarantee.eps.to_bits().to_le_bytes());
                body.extend_from_slice(&est.guarantee.additive.to_bits().to_le_bytes());
            }
        }
    }
}

/// Byte-identical to `Response { status: Ok, payload: Paths(..) }.encode()`.
/// A snapshot without routes answers every pair `absent` — same shape a
/// disconnected pair has, so clients need no special case.
fn encode_path_body(body: &mut Vec<u8>, job: &Job, oracles: &Oracles, edges: &mut Vec<(u32, u32)>) {
    body.clear();
    body.extend_from_slice(&job.req_id.to_le_bytes());
    body.push(0); // Status::Ok
    body.push(2); // Op::Path
    body.extend_from_slice(&wire_count(job.pairs.len()).to_le_bytes());
    let paths = oracles.paths();
    for &(u, v) in &job.pairs {
        let answer = paths.and_then(|p| {
            edges.clear();
            p.path_into(u as usize, v as usize, edges)
        });
        match answer {
            None => body.push(0),
            Some((weight, g)) => {
                body.push(1);
                body.extend_from_slice(&weight.to_le_bytes());
                body.push(guarantee_kind_wire(g.kind));
                body.extend_from_slice(&g.eps.to_bits().to_le_bytes());
                body.extend_from_slice(&g.additive.to_bits().to_le_bytes());
                body.extend_from_slice(&wire_count(edges.len()).to_le_bytes());
                for &(x, y) in edges.iter() {
                    body.extend_from_slice(&x.to_le_bytes());
                    body.extend_from_slice(&y.to_le_bytes());
                }
            }
        }
    }
}
