//! Opening, upgrading, and inspecting oracle snapshot files.
//!
//! [`open`] is the server's loading path: it maps the file ([`crate::mmap`])
//! and, for format v2, hands the mapping straight to the zero-copy loaders
//! — the oracle's hot tables alias the page cache and no per-entry decode
//! happens at all. Format v1 files still load (decoded into owned memory);
//! [`upgrade`] rewrites them as v2 so the next open is zero-copy.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use cc_core::snapshot::{sniff, SnapshotError, SnapshotView};
use cc_core::{DistOracle, PathOracle};

use crate::mmap::open_owner;

/// The oracle(s) a snapshot file provides. A `CCRO` file carries routes
/// (and embeds its distance oracle); a `CCDO` file answers distances only.
#[derive(Debug)]
pub enum Oracles {
    /// A bare distance oracle (`CCDO`).
    DistOnly(Arc<DistOracle>),
    /// A route oracle (`CCRO`) — distance queries go to its embedded
    /// [`DistOracle`], path queries to the witness stores.
    WithRoutes(Arc<PathOracle>),
}

impl Oracles {
    /// The distance oracle every snapshot provides.
    pub fn dist(&self) -> &DistOracle {
        match self {
            Oracles::DistOnly(o) => o,
            Oracles::WithRoutes(p) => p.dist_oracle(),
        }
    }

    /// The route oracle, when the snapshot carries witnesses.
    pub fn paths(&self) -> Option<&Arc<PathOracle>> {
        match self {
            Oracles::DistOnly(_) => None,
            Oracles::WithRoutes(p) => Some(p),
        }
    }

    /// Vertex count.
    pub fn n(&self) -> usize {
        self.dist().n()
    }
}

/// An opened snapshot: the oracles plus how they are backed.
#[derive(Debug)]
pub struct OpenedSnapshot {
    /// The loaded oracle(s).
    pub oracles: Oracles,
    /// The file's 4-byte magic.
    pub magic: [u8; 4],
    /// The snapshot format version found in the file.
    pub version: u16,
    /// Whether the backing bytes are a real memory map (v2 fast path).
    pub mapped: bool,
    /// File size in bytes.
    pub file_bytes: usize,
}

/// Opens a snapshot file for serving.
///
/// v2 files are served zero-copy from the mapping; v1 files are decoded
/// into owned memory (consider [`upgrade`]).
///
/// # Errors
///
/// I/O failures and any [`SnapshotError`] from validation.
pub fn open<P: AsRef<Path>>(path: P) -> Result<OpenedSnapshot, SnapshotError> {
    let (owner, mapped) = open_owner(path.as_ref())?;
    let bytes = owner.bytes();
    let file_bytes = bytes.len();
    let (magic, version) = sniff(bytes)?;
    let oracles = match (&magic, version) {
        (b"CCDO", 2) => Oracles::DistOnly(Arc::new(DistOracle::load_v2_shared(owner.clone())?)),
        (b"CCRO", 2) => Oracles::WithRoutes(Arc::new(PathOracle::load_v2_shared(owner.clone())?)),
        (b"CCDO", _) => Oracles::DistOnly(Arc::new(DistOracle::from_snapshot_bytes(bytes)?)),
        (b"CCRO", _) => Oracles::WithRoutes(Arc::new(PathOracle::from_snapshot_bytes(bytes)?)),
        _ => return Err(SnapshotError::BadMagic(magic)),
    };
    Ok(OpenedSnapshot {
        oracles,
        magic,
        version,
        mapped,
        file_bytes,
    })
}

/// Why [`open_quarantining`] refused a file — typed, so the daemon's
/// reload path can report the refusal and keep serving the previous
/// generation instead of aborting.
#[derive(Debug)]
pub enum OpenError {
    /// The file could not be read at all (missing, permissions). Nothing
    /// was quarantined — there may be nothing to quarantine, and a
    /// transient I/O error must not destroy a good file's name.
    Io(std::io::Error),
    /// Validation failed (bad magic, bad checksum, unsupported version…);
    /// the file was renamed aside to `quarantined_to` so the next save to
    /// the serving path starts clean and the evidence survives.
    Quarantined {
        /// What validation rejected.
        reason: SnapshotError,
        /// Where the bad file went.
        quarantined_to: PathBuf,
    },
    /// Validation failed *and* the quarantine rename itself failed; the
    /// bad file is still in place.
    QuarantineFailed {
        /// What validation rejected.
        reason: SnapshotError,
        /// Why the rename-aside failed.
        rename_error: std::io::Error,
    },
}

impl std::fmt::Display for OpenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpenError::Io(e) => write!(f, "cannot read snapshot: {e}"),
            OpenError::Quarantined {
                reason,
                quarantined_to,
            } => write!(
                f,
                "snapshot failed validation ({reason}); quarantined to {}",
                quarantined_to.display()
            ),
            OpenError::QuarantineFailed {
                reason,
                rename_error,
            } => write!(
                f,
                "snapshot failed validation ({reason}) and quarantine rename failed: {rename_error}"
            ),
        }
    }
}

impl std::error::Error for OpenError {}

/// The sibling path a failed snapshot is renamed to.
fn quarantine_sibling(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map_or_else(|| std::ffi::OsString::from("snapshot"), ToOwned::to_owned);
    name.push(".quarantined");
    path.with_file_name(name)
}

/// [`open`], with the daemon's containment contract: a file that fails
/// *validation* (checksum, magic, version, structure) is renamed aside to
/// `<path>.quarantined` and reported as [`OpenError::Quarantined`] — the
/// caller keeps serving whatever it was serving. Plain I/O failures pass
/// through untouched ([`OpenError::Io`]).
///
/// # Errors
///
/// [`OpenError`] as described above.
pub fn open_quarantining<P: AsRef<Path>>(path: P) -> Result<OpenedSnapshot, OpenError> {
    let path = path.as_ref();
    match open(path) {
        Ok(opened) => Ok(opened),
        Err(SnapshotError::Io(e)) => Err(OpenError::Io(e)),
        Err(reason) => {
            let aside = quarantine_sibling(path);
            match std::fs::rename(path, &aside) {
                Ok(()) => Err(OpenError::Quarantined {
                    reason,
                    quarantined_to: aside,
                }),
                Err(rename_error) => Err(OpenError::QuarantineFailed {
                    reason,
                    rename_error,
                }),
            }
        }
    }
}

/// What [`upgrade`] did.
#[derive(Debug)]
pub struct UpgradeReport {
    /// The input's format version.
    pub from_version: u16,
    /// Input file size in bytes.
    pub input_bytes: usize,
    /// Output (v2) file size in bytes.
    pub output_bytes: u64,
}

/// Rewrites a snapshot (either magic, either version) as format v2 at
/// `output`. Values, guarantee tags, and routes are preserved exactly —
/// the upgraded file answers every query identically.
///
/// # Errors
///
/// I/O failures and any [`SnapshotError`] from reading the input.
pub fn upgrade<P: AsRef<Path>, Q: AsRef<Path>>(
    input: P,
    output: Q,
) -> Result<UpgradeReport, SnapshotError> {
    let opened = open(input)?;
    match &opened.oracles {
        Oracles::DistOnly(o) => o.save_v2_to_path(output.as_ref())?,
        Oracles::WithRoutes(p) => p.save_v2_to_path(output.as_ref())?,
    }
    let output_bytes = std::fs::metadata(output.as_ref())?.len();
    Ok(UpgradeReport {
        from_version: opened.version,
        input_bytes: opened.file_bytes,
        output_bytes,
    })
}

/// A human-readable description of a snapshot file, one line per fact —
/// `ccd snapshot info`'s output.
///
/// # Errors
///
/// I/O failures and any [`SnapshotError`] from validation.
pub fn describe<P: AsRef<Path>>(path: P) -> Result<String, SnapshotError> {
    let (owner, mapped) = open_owner(path.as_ref())?;
    let (magic, version) = sniff(owner.bytes())?;
    let mut out = String::new();
    let magic_str = String::from_utf8_lossy(&magic).into_owned();
    out.push_str(&format!("magic    {magic_str}\n"));
    out.push_str(&format!("version  {version}\n"));
    out.push_str(&format!("bytes    {}\n", owner.bytes().len()));
    out.push_str(&format!("mapped   {mapped}\n"));
    if version == 2 {
        let view = SnapshotView::parse(owner.clone(), &magic)?;
        out.push_str("sections\n");
        for (id, off, len) in view.directory() {
            let name = section_name(&magic, id);
            out.push_str(&format!(
                "  {id:>5}  off {off:>10}  len {len:>10}  {name}\n"
            ));
        }
    }
    // Full load for the semantic facts (also proves the file is sound).
    let opened = open(path)?;
    let d = opened.oracles.dist();
    out.push_str(&format!("n        {}\n", d.n()));
    out.push_str(&format!("kind     {:?}\n", d.storage_kind()));
    out.push_str(&format!("routes   {}\n", opened.oracles.paths().is_some()));
    Ok(out)
}

fn section_name(magic: &[u8; 4], id: u16) -> &'static str {
    match (magic, id) {
        (b"CCDO", 1) => "meta",
        (b"CCDO", 2) => "guarantees",
        (b"CCDO", 3) => "sources",
        (b"CCDO", 4) => "entries",
        (b"CCDO", 5) => "tags",
        (b"CCRO", 1) => "meta",
        (b"CCRO", 2) => "dist (embedded CCDO)",
        (b"CCRO", 3) => "origins",
        (b"CCRO", id) if id >= 16 => match (id - 16) % 8 {
            0 => "provider meta",
            1 => "arena tags",
            2 => "arena ops a",
            3 => "arena ops b",
            4 => "arena lens",
            5 => "witness tags",
            6 => "witness payloads",
            _ => "provider sources",
        },
        _ => "?",
    }
}
