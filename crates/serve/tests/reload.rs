//! Hot-reload semantics over loopback TCP: N clients querying across M
//! snapshot swaps, with exact accounting — every request answered, every
//! answer bit-identical to one of the published snapshot generations,
//! corrupt and resized files refused while the old generation serves.

use std::path::{Path, PathBuf};
use std::time::Duration;

use cc_core::{DistOracle, DistanceMatrix, Guarantee, PointEstimate};
use cc_graphs::StorageKind;
use cc_serve::{server, snapshot, Client, ReloadConfig, ServerConfig, Status};

/// A CCDO oracle with `dist(u, v) = |u - v| * scale`: answers from
/// different `scale`s are bit-distinguishable, so a response proves which
/// snapshot generation produced it.
fn scaled_oracle(n: usize, scale: u32) -> DistOracle {
    let mut m = DistanceMatrix::new(n);
    for u in 0..n {
        for v in 0..n {
            m.improve(u, v, u.abs_diff(v) as u32 * scale);
        }
    }
    DistOracle::from_matrix(&m, Guarantee::mult2(0.25), StorageKind::Full)
}

/// Publishes `oracle` at `path` the way a deploy would: `save_v2_to_path`
/// is atomic (temp + fsync + rename), so a concurrent reload observes
/// either the old or the new file, never a torn one.
fn publish(oracle: &DistOracle, path: &Path) {
    oracle.save_v2_to_path(path).unwrap();
}

fn temp_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cc_serve_reload_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("oracle.ccdo")
}

fn serve_reloadable(
    path: &Path,
    config: ServerConfig,
) -> (server::ServerHandle, std::net::SocketAddr) {
    let opened = snapshot::open(path).unwrap();
    let handle = server::serve(
        opened.oracles,
        "127.0.0.1:0",
        ServerConfig {
            reload: Some(ReloadConfig::at(path)),
            ..config
        },
    )
    .unwrap();
    let addr = handle.addr();
    (handle, addr)
}

fn pairs_for(seed: u64, n: usize, count: usize) -> Vec<(u32, u32)> {
    let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    (0..count)
        .map(|_| {
            let r = next();
            ((r % n as u64) as u32, ((r >> 32) % n as u64) as u32)
        })
        .collect()
}

/// Which reference a served batch matches, bit for bit. A batch that
/// matches neither — or mixes generations within one response — fails.
fn classify(
    got: &[Option<PointEstimate>],
    pairs: &[(u32, u32)],
    refs: &[DistOracle],
) -> Option<usize> {
    let upairs: Vec<(usize, usize)> = pairs
        .iter()
        .map(|&(u, v)| (u as usize, v as usize))
        .collect();
    refs.iter().position(|r| r.dist_batch(&upairs) == *got)
}

#[test]
fn clients_across_reloads_see_whole_generations_with_exact_accounting() {
    const N: usize = 64;
    const CLIENTS: u64 = 4;
    const ROUNDS: u64 = 24;
    const RELOADS: u64 = 8;

    let gen_a = scaled_oracle(N, 1);
    let gen_b = scaled_oracle(N, 2);
    let path = temp_path("swap");
    publish(&gen_a, &path);
    let (handle, addr) = serve_reloadable(
        &path,
        ServerConfig {
            threads: 2,
            queue_capacity: 4096,
            ..ServerConfig::default()
        },
    );
    assert_eq!(handle.generation(), 1);

    // The reloader: publish B, A, B, … and swap after each publish.
    // Generations must come back strictly increasing.
    let reloader = {
        let path = path.clone();
        let gen_a = scaled_oracle(N, 1);
        let gen_b = scaled_oracle(N, 2);
        std::thread::spawn(move || {
            let mut admin = Client::connect(addr).unwrap();
            let mut last_gen = 1;
            for round in 0..RELOADS {
                publish(
                    if round.is_multiple_of(2) {
                        &gen_b
                    } else {
                        &gen_a
                    },
                    &path,
                );
                let info = admin
                    .reload()
                    .expect("admin transport")
                    .expect("valid snapshot accepted");
                assert!(info.generation > last_gen, "generations advance");
                assert_eq!(info.n as usize, N);
                last_gen = info.generation;
                std::thread::sleep(Duration::from_millis(5));
            }
        })
    };

    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let refs = vec![scaled_oracle(N, 1), scaled_oracle(N, 2)];
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut ok = 0u64;
                for round in 0..ROUNDS {
                    let pairs = pairs_for(c * 7919 + round, N, 32);
                    let got = client
                        .dist_batch(&pairs, 0)
                        .expect("transport stays up — no faults in this suite")
                        .expect("queue sized to never shed");
                    assert!(
                        classify(&got, &pairs, &refs).is_some(),
                        "answers must match one whole generation, client {c} round {round}"
                    );
                    ok += 1;
                }
                ok
            })
        })
        .collect();

    let mut total_ok = 0;
    for c in clients {
        total_ok += c.join().unwrap();
    }
    reloader.join().unwrap();

    // Exact reconciliation: every query answered Ok, none shed, none
    // dropped; every reload accepted; generation advanced once each.
    assert_eq!(total_ok, CLIENTS * ROUNDS);
    let stats = handle.stats();
    assert_eq!(stats.served, CLIENTS * ROUNDS);
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.malformed, 0);
    assert_eq!(stats.reloads_ok, RELOADS);
    assert_eq!(stats.reloads_rejected, 0);
    assert_eq!(stats.worker_panics, 0);
    assert_eq!(stats.generation, 1 + RELOADS);

    // Post-storm: a fresh query answers bit-identical to the last
    // published snapshot (B for even RELOADS…, which ended on round 7 → A).
    let last = if (RELOADS - 1).is_multiple_of(2) {
        &gen_b
    } else {
        &gen_a
    };
    let mut client = Client::connect(addr).unwrap();
    let pairs = pairs_for(0xfeed, N, 48);
    let got = client.dist_batch(&pairs, 0).unwrap().unwrap();
    let upairs: Vec<(usize, usize)> = pairs
        .iter()
        .map(|&(u, v)| (u as usize, v as usize))
        .collect();
    assert_eq!(got, last.dist_batch(&upairs), "post-swap serial replay");
    drop(gen_b);
    handle.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupt_files_are_quarantined_and_the_old_generation_keeps_serving() {
    const N: usize = 32;
    let gen_a = scaled_oracle(N, 1);
    let path = temp_path("corrupt");
    publish(&gen_a, &path);
    let (handle, addr) = serve_reloadable(&path, ServerConfig::default());

    // Publish garbage *by rename*, like any publish: the serving
    // generation's mmap aliases the old inode, which must stay intact —
    // clobbering the serving path in place would SIGBUS every worker, and
    // is exactly what the atomic-write discipline exists to forbid.
    let garbage = path.with_file_name("garbage.tmp");
    std::fs::write(&garbage, b"CCDO\x02\x00garbage-that-is-not-a-snapshot").unwrap();
    std::fs::rename(&garbage, &path).unwrap();
    let mut admin = Client::connect(addr).unwrap();
    let refused = admin.reload().expect("transport");
    assert_eq!(refused, Err(Status::ReloadRejected));

    // The bad file was renamed aside; the old generation still serves.
    let quarantined = path.with_file_name("oracle.ccdo.quarantined");
    assert!(quarantined.exists(), "corrupt file quarantined aside");
    assert!(!path.exists(), "serving path is clean for the next publish");
    let pairs = pairs_for(7, N, 16);
    let got = admin.dist_batch(&pairs, 0).unwrap().unwrap();
    let upairs: Vec<(usize, usize)> = pairs
        .iter()
        .map(|&(u, v)| (u as usize, v as usize))
        .collect();
    assert_eq!(got, gen_a.dist_batch(&upairs));

    let stats = handle.stats();
    assert_eq!(stats.generation, 1, "no swap on refusal");
    assert_eq!(stats.reloads_ok, 0);
    assert_eq!(stats.reloads_rejected, 1);

    // Republish a good file at the (now clean) path: reload succeeds.
    publish(&gen_a, &path);
    let info = admin.reload().unwrap().expect("good file accepted");
    assert_eq!(info.generation, 2);
    handle.shutdown();
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&quarantined).ok();
}

#[test]
fn resizes_are_refused_unless_explicitly_allowed() {
    const N: usize = 24;
    let gen_a = scaled_oracle(N, 1);
    let bigger = scaled_oracle(N + 16, 1);
    let path = temp_path("resize");
    publish(&gen_a, &path);

    // Default: a dimension change is refused and nothing is quarantined
    // (the file is valid — it is the *deploy* that looks wrong).
    let (handle, addr) = serve_reloadable(&path, ServerConfig::default());
    publish(&bigger, &path);
    let mut admin = Client::connect(addr).unwrap();
    assert_eq!(admin.reload().unwrap(), Err(Status::ReloadRejected));
    assert!(path.exists(), "valid-but-resized file is not quarantined");
    let v = admin.version().unwrap();
    assert_eq!((v.generation, v.n as usize), (1, N));
    handle.shutdown();

    // Opt-in: --allow-resize accepts the same file.
    publish(&gen_a, &path);
    let opened = snapshot::open(&path).unwrap();
    let handle = server::serve(
        opened.oracles,
        "127.0.0.1:0",
        ServerConfig {
            reload: Some(ReloadConfig {
                allow_resize: true,
                ..ReloadConfig::at(&path)
            }),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut admin = Client::connect(handle.addr()).unwrap();
    publish(&bigger, &path);
    let info = admin
        .reload()
        .unwrap()
        .expect("resize accepted when opted in");
    assert_eq!((info.generation, info.n as usize), (2, N + 16));
    let v = admin.version().unwrap();
    assert_eq!(v.n as usize, N + 16);
    handle.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn version_op_reports_generation_and_dimensions() {
    const N: usize = 16;
    let gen_a = scaled_oracle(N, 1);
    let path = temp_path("version");
    publish(&gen_a, &path);
    let (handle, addr) = serve_reloadable(&path, ServerConfig::default());

    let mut client = Client::connect(addr).unwrap();
    let v = client.version().unwrap();
    assert_eq!((v.generation, v.n as usize), (1, N));
    publish(&gen_a, &path);
    client.reload().unwrap().expect("reload");
    let v = client.version().unwrap();
    assert_eq!((v.generation, v.n as usize), (2, N));
    assert_eq!(handle.generation(), 2);
    handle.shutdown();
    std::fs::remove_file(&path).ok();
}
