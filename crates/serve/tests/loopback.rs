//! End-to-end serving tests over loopback TCP: concurrency bit-identity,
//! load-shedding, deadlines, graceful drain — all against a v2 snapshot
//! opened through the mmap path.

use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use cc_core::{DistOracle, DistanceMatrix, Guarantee, PathOracle, PathProvider};
use cc_graphs::{Graph, StorageKind};
use cc_routes::PathStore;
use cc_serve::protocol::{read_frame, write_frame, Op, Request, Response, Status};
use cc_serve::{server, snapshot, Client, ServerConfig};

/// A path graph on `n` vertices with exact distances and full routes —
/// deterministic, and route length scales with `|u - v|` so big batches
/// are genuinely heavy.
fn build_path_oracle(n: usize) -> PathOracle {
    let g = Graph::from_edges(n, &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>());
    let mut m = DistanceMatrix::new(n);
    let mut store = PathStore::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            m.improve(u, v, (v - u) as u32);
            m.improve(v, u, (v - u) as u32);
            let verts: Vec<u32> = (u as u32..=v as u32).collect();
            store.offer_walk(&g, (v - u) as u32, &verts);
        }
    }
    let oracle = DistOracle::from_matrix(&m, Guarantee::mult2(0.25), StorageKind::SymmetricPacked);
    PathOracle::new(
        oracle,
        vec![0u8; n * (n + 1) / 2],
        vec![PathProvider::Pairs(Arc::new(store))],
    )
}

/// Saves the oracle as v2, reopens it via the serving path (mmap), and
/// returns the serving handle plus the in-process reference oracle.
fn serve_v2(n: usize, config: ServerConfig) -> (server::ServerHandle, Arc<PathOracle>, PathOracle) {
    let reference = build_path_oracle(n);
    let dir = std::env::temp_dir().join(format!("cc_serve_it_{}_{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("oracle.ccro");
    reference.save_v2_to_path(&path).unwrap();
    let opened = snapshot::open(&path).unwrap();
    assert_eq!(opened.version, 2);
    let served = opened
        .oracles
        .paths()
        .expect("CCRO snapshot carries routes")
        .clone();
    let handle = server::serve(opened.oracles, "127.0.0.1:0", config).unwrap();
    (handle, served, reference)
}

fn pairs_for(seed: u64, n: usize, count: usize) -> Vec<(u32, u32)> {
    // Deterministic splitmix-style stream; no RNG dependency needed.
    let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    (0..count)
        .map(|_| {
            let r = next();
            ((r % n as u64) as u32, ((r >> 32) % n as u64) as u32)
        })
        .collect()
}

#[test]
fn eight_concurrent_clients_match_serial_replay_bit_for_bit() {
    let (handle, _served, reference) = serve_v2(
        128,
        ServerConfig {
            threads: 3,
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr();
    let reference = Arc::new(reference);

    let clients: Vec<_> = (0..8)
        .map(|c| {
            let reference = Arc::clone(&reference);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.ping().unwrap();
                for round in 0..6u64 {
                    let pairs = pairs_for(c * 1000 + round, 128, 40);
                    let got = client
                        .dist_batch(&pairs, 0)
                        .unwrap()
                        .expect("no shedding at default capacity");
                    let upairs: Vec<(usize, usize)> = pairs
                        .iter()
                        .map(|&(u, v)| (u as usize, v as usize))
                        .collect();
                    // Bit-identical: PointEstimate carries the guarantee's
                    // f64s, and == here is bit-for-bit on these values.
                    assert_eq!(got, reference.dist_oracle().dist_batch(&upairs));

                    let got = client
                        .path_batch(&pairs, 0)
                        .unwrap()
                        .expect("no shedding at default capacity");
                    let want = reference.path_batch(&upairs);
                    assert_eq!(got.len(), want.len());
                    for (g, w) in got.iter().zip(want.iter()) {
                        match (g, w) {
                            (None, None) => {}
                            (Some((weight, guar, edges)), Some(route)) => {
                                assert_eq!(*weight, route.weight);
                                assert_eq!(*guar, route.guarantee);
                                assert_eq!(*edges, route.edges);
                            }
                            _ => panic!("presence mismatch"),
                        }
                    }
                }
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }
    let stats = handle.stats();
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.malformed, 0);
    assert!(
        stats.served >= 8 * 6 * 2,
        "served={} stats={stats:?}",
        stats.served
    );
    handle.shutdown();
}

/// Floods one connection without reading responses: with a tiny queue and
/// one worker the server must shed explicitly — every request is answered,
/// either `Ok` (correct) or `Overloaded`, never dropped.
#[test]
fn oversubscription_sheds_with_explicit_overloaded() {
    let (handle, _served, reference) = serve_v2(
        128,
        ServerConfig {
            threads: 1,
            queue_capacity: 4,
            batch_max: 1,
            default_deadline_ms: 0,
            ..ServerConfig::default()
        },
    );
    let total = 64usize;
    let stream = TcpStream::connect(handle.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let pairs = pairs_for(7, 128, 300);
    for i in 0..total {
        let req = Request {
            req_id: i as u64,
            op: Op::Path,
            deadline_ms: 0,
            pairs: pairs.clone(),
        };
        write_frame(&mut &stream, &req.encode()).unwrap();
    }
    let mut ok = 0usize;
    let mut shed = 0usize;
    let mut seen = vec![false; total];
    let upairs: Vec<(usize, usize)> = pairs
        .iter()
        .map(|&(u, v)| (u as usize, v as usize))
        .collect();
    let want = reference.path_batch(&upairs);
    for _ in 0..total {
        let body = read_frame(&mut &stream)
            .unwrap()
            .expect("one response per request");
        let resp = Response::decode(&body).unwrap();
        let id = resp.req_id as usize;
        assert!(
            !std::mem::replace(&mut seen[id], true),
            "duplicate response"
        );
        match resp.status {
            Status::Ok => {
                ok += 1;
                let cc_serve::Payload::Paths(items) = resp.payload else {
                    panic!("wrong payload kind");
                };
                for (g, w) in items.iter().zip(want.iter()) {
                    assert_eq!(g.is_some(), w.is_some());
                    if let (Some((weight, _, edges)), Some(route)) = (g, w) {
                        assert_eq!(*weight, route.weight);
                        assert_eq!(*edges, route.edges);
                    }
                }
            }
            Status::Overloaded => shed += 1,
            other => panic!("unexpected status {other:?}"),
        }
    }
    assert_eq!(ok + shed, total);
    assert!(shed > 0, "16x queue oversubscription must shed");
    assert!(ok > 0, "admitted work must still be served");
    let stats = handle.stats();
    assert_eq!(stats.shed, shed as u64);
    handle.shutdown();
}

/// A request with a 1 ms budget queued behind a heavy backlog must answer
/// `DeadlineExceeded` — dequeued, not computed, not dropped.
#[test]
fn stale_requests_answer_deadline_exceeded() {
    let (handle, _served, _reference) = serve_v2(
        128,
        ServerConfig {
            threads: 1,
            queue_capacity: 256,
            batch_max: 1,
            default_deadline_ms: 0,
            ..ServerConfig::default()
        },
    );
    let stream = TcpStream::connect(handle.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let heavy = pairs_for(3, 128, 400);
    let backlog = 24usize;
    for i in 0..backlog {
        let req = Request {
            req_id: i as u64,
            op: Op::Path,
            deadline_ms: 0,
            pairs: heavy.clone(),
        };
        write_frame(&mut &stream, &req.encode()).unwrap();
    }
    let urgent = Request {
        req_id: 999,
        op: Op::Dist,
        deadline_ms: 1,
        pairs: vec![(0, 5)],
    };
    write_frame(&mut &stream, &urgent.encode()).unwrap();

    let mut urgent_status = None;
    for _ in 0..=backlog {
        let body = read_frame(&mut &stream).unwrap().expect("response");
        let resp = Response::decode(&body).unwrap();
        if resp.req_id == 999 {
            urgent_status = Some(resp.status);
        } else {
            assert_eq!(resp.status, Status::Ok);
        }
    }
    assert_eq!(urgent_status, Some(Status::DeadlineExceeded));
    assert!(handle.stats().deadline_missed >= 1);
    handle.shutdown();
}

/// Shutdown drains: every admitted request is answered before the threads
/// join, and the port stops accepting afterwards.
#[test]
fn graceful_shutdown_drains_admitted_work() {
    let (handle, _served, reference) = serve_v2(
        96,
        ServerConfig {
            threads: 1,
            queue_capacity: 64,
            batch_max: 2,
            default_deadline_ms: 0,
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr();
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    let pairs = pairs_for(11, 96, 200);
    let total = 6usize;
    for i in 0..total {
        let req = Request {
            req_id: i as u64,
            op: Op::Dist,
            deadline_ms: 0,
            pairs: pairs.clone(),
        };
        write_frame(&mut &stream, &req.encode()).unwrap();
    }
    // Let the reader admit everything, then shut down mid-drain.
    std::thread::sleep(Duration::from_millis(100));
    handle.shutdown();

    let upairs: Vec<(usize, usize)> = pairs
        .iter()
        .map(|&(u, v)| (u as usize, v as usize))
        .collect();
    let want = reference.dist_oracle().dist_batch(&upairs);
    let mut answered = 0usize;
    while let Ok(Some(body)) = read_frame(&mut &stream) {
        let resp = Response::decode(&body).unwrap();
        assert_eq!(resp.status, Status::Ok);
        let cc_serve::Payload::Dists(items) = resp.payload else {
            panic!("wrong payload kind");
        };
        assert_eq!(items, want);
        answered += 1;
    }
    assert_eq!(answered, total, "drain must answer every admitted request");
    assert!(
        Client::connect(addr).is_err() || {
            // The listener thread is gone; a racing connect may still land in
            // the accept backlog but nobody will ever serve it.
            let mut c = Client::connect(addr).unwrap();
            c.set_timeout(Some(Duration::from_millis(200))).unwrap();
            c.ping().is_err()
        }
    );
}

/// `Op::Stats` moved from a bespoke counter struct onto the `cc_obs`
/// registry; this pins the answer's wire bytes so that migration (and any
/// future one) can never change a byte of what deployed clients parse.
#[test]
fn stats_wire_encoding_is_pinned() {
    let resp = Response {
        req_id: 0x0102_0304_0506_0708,
        status: Status::Ok,
        op: Op::Stats,
        payload: cc_serve::Payload::Stats(cc_serve::StatsSnapshot {
            served: 1,
            shed: 2,
            deadline_missed: 3,
            malformed: 4,
            queue_depth: 5,
            generation: 6,
            reloads_ok: 7,
            reloads_rejected: 8,
            worker_panics: 9,
            slow_disconnects: 10,
        }),
    };
    let mut want = Vec::new();
    want.extend_from_slice(&0x0102_0304_0506_0708u64.to_le_bytes());
    want.push(0); // Status::Ok wire byte
    want.push(3); // Op::Stats wire byte
    want.extend_from_slice(&10u32.to_le_bytes()); // field count
    for v in 1u64..=10 {
        want.extend_from_slice(&v.to_le_bytes());
    }
    assert_eq!(resp.encode(), want, "Op::Stats wire layout changed");
    assert_eq!(Response::decode(&want), Some(resp));
}

/// `Op::Metrics` and `Op::Trace` answer on the reader thread: the
/// exposition must parse, reconcile exactly with `Op::Stats` (one
/// accounting substrate), expose the lifecycle histograms, and never
/// count as served; the trace ring drains one Ok span per request and is
/// destructive.
#[test]
fn metrics_and_trace_ops_reconcile_with_stats() {
    let (handle, _served, _reference) = serve_v2(96, ServerConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    let pairs = pairs_for(21, 96, 16);
    for _ in 0..3 {
        client.dist_batch(&pairs, 0).unwrap().unwrap();
    }

    let text = client.metrics().unwrap();
    let samples = cc_obs::parse_exposition(&text);
    let stats = client.stats().unwrap();
    assert_eq!(samples.get("ccd_served_total").copied(), Some(stats.served));
    assert_eq!(
        stats.served, 3,
        "metrics/trace/stats ops must not count as served"
    );
    for name in [
        "ccd_queue_wait_ns",
        "ccd_batch_jobs",
        "ccd_oracle_batch_ns",
        "ccd_outbox_write_ns",
    ] {
        let h = cc_obs::text::histogram_summary(&samples, name).expect("histogram exposed");
        assert!(h.count > 0, "{name} must have samples after 3 requests");
    }

    let trace = client.trace().unwrap();
    let spans: Vec<&str> = trace.lines().collect();
    assert_eq!(spans.len(), 3, "one span per dist request: {trace:?}");
    for (i, span) in spans.iter().enumerate() {
        let prefix = format!("span req_id={} op=1 status=0", i + 1);
        assert!(span.starts_with(&prefix), "span {i}: {span:?}");
    }
    assert_eq!(client.trace().unwrap(), "", "trace drain is destructive");
    handle.shutdown();
}

/// Malformed frames are answered (best effort) and counted, and the
/// connection survives for well-formed follow-ups.
#[test]
fn malformed_frames_are_counted_and_survivable() {
    let (handle, _served, _reference) = serve_v2(96, ServerConfig::default());
    let stream = TcpStream::connect(handle.addr()).unwrap();
    stream.set_nodelay(true).unwrap();

    // A valid frame whose body is garbage (bad op byte).
    let mut body = vec![0u8; 18];
    body[..8].copy_from_slice(&77u64.to_le_bytes());
    body[8] = 200;
    write_frame(&mut &stream, &body).unwrap();
    let resp = Response::decode(&read_frame(&mut &stream).unwrap().unwrap()).unwrap();
    assert_eq!(resp.req_id, 77);
    assert_eq!(resp.status, Status::Malformed);

    // The same connection still serves.
    let req = Request {
        req_id: 78,
        op: Op::Dist,
        deadline_ms: 0,
        pairs: vec![(1, 2)],
    };
    write_frame(&mut &stream, &req.encode()).unwrap();
    let resp = Response::decode(&read_frame(&mut &stream).unwrap().unwrap()).unwrap();
    assert_eq!((resp.req_id, resp.status), (78, Status::Ok));
    assert!(handle.stats().malformed >= 1);
    handle.shutdown();
}
