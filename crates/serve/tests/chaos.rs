//! The seeded chaos suite: injected connection resets, worker panics,
//! torn frames on both sides, and a hot-reload storm — concurrent with
//! query bursts — asserting the containment contract:
//!
//! * every request the transport delivered is answered exactly once, with
//!   a valid status (the client's req-id pairing enforces "exactly once";
//!   this suite enforces "valid status");
//! * every `Ok` answer is bit-identical to one *whole* published snapshot
//!   generation — never a torn or mixed view;
//! * worker panics are contained (counted, pool keeps serving);
//! * after the fault windows exhaust themselves the system self-quiesces
//!   and a clean phase reconciles exactly — and a post-storm reload
//!   serves answers bit-identical to a serial replay of the final
//!   snapshot.
//!
//! Every fault decision is a pure function of the printed seed
//! (`FaultPlan`), so a CI failure replays from its log line.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use cc_core::{DistOracle, DistanceMatrix, Guarantee, PointEstimate};
use cc_graphs::StorageKind;
use cc_serve::{
    server, snapshot, Client, ClientError, FaultPlan, FaultSite, ReloadConfig, RetryPolicy,
    ServerConfig, Status,
};

const N: usize = 48;

fn scaled_oracle(scale: u32) -> DistOracle {
    let mut m = DistanceMatrix::new(N);
    for u in 0..N {
        for v in 0..N {
            m.improve(u, v, u.abs_diff(v) as u32 * scale);
        }
    }
    DistOracle::from_matrix(&m, Guarantee::mult2(0.25), StorageKind::Full)
}

fn temp_path(seed: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cc_serve_chaos_{seed:x}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("oracle.ccdo")
}

fn pairs_for(seed: u64, count: usize) -> Vec<(u32, u32)> {
    let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    (0..count)
        .map(|_| {
            let r = next();
            ((r % N as u64) as u32, ((r >> 32) % N as u64) as u32)
        })
        .collect()
}

/// `Some(scale index)` when `got` is bit-identical to one whole
/// generation's answers.
fn matches_whole_generation(
    got: &[Option<PointEstimate>],
    pairs: &[(u32, u32)],
    refs: &[DistOracle],
) -> bool {
    let upairs: Vec<(usize, usize)> = pairs
        .iter()
        .map(|&(u, v)| (u as usize, v as usize))
        .collect();
    refs.iter().any(|r| r.dist_batch(&upairs) == *got)
}

/// Per-client outcome tally; summed for the run's accounting.
#[derive(Debug, Default)]
struct Tally {
    ok: u64,
    /// Answered with a non-Ok status the containment contract allows.
    contained: u64,
    /// Transport died before/without a usable response; outcome unknown.
    /// Allowed only while faults are armed — the clean phase forbids it.
    unknown: u64,
}

fn publish(oracle: &DistOracle, path: &Path) {
    oracle.save_v2_to_path(path).unwrap();
}

fn run_chaos(seed: u64) {
    println!("chaos: seed {seed:#018x} (replay: CC_CHAOS_SEED={seed:#x})");
    let plan = Arc::new(
        FaultPlan::new(seed)
            .with_site(FaultSite::WorkerPanic, 120, 60)
            .with_site(FaultSite::ConnReset, 30, 150)
            .with_site(FaultSite::PartialWrite, 20, 150)
            .with_site(FaultSite::ClientTornWrite, 40, 100),
    );

    let gen_a = scaled_oracle(1);
    let path = temp_path(seed);
    publish(&gen_a, &path);
    let opened = snapshot::open(&path).unwrap();
    let handle = server::serve(
        opened.oracles,
        "127.0.0.1:0",
        ServerConfig {
            threads: 3,
            queue_capacity: 4096,
            batch_max: 4,
            write_timeout_ms: 2_000,
            reload: Some(ReloadConfig::at(&path)),
            fault: Some(Arc::clone(&plan)),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    // ── Reload storm: ≥10 confirmed hot swaps concurrent with traffic, on
    // a connection that is itself subject to injected resets. ────────────
    let reload_storm = {
        let path = path.clone();
        let gen_a = scaled_oracle(1);
        let gen_b = scaled_oracle(2);
        std::thread::spawn(move || {
            let mut confirmed = 0u64;
            let mut round = 0u64;
            let mut admin = Client::connect(addr).unwrap();
            while confirmed < 10 && round < 60 {
                publish(
                    if round.is_multiple_of(2) {
                        &gen_b
                    } else {
                        &gen_a
                    },
                    &path,
                );
                round += 1;
                match admin.reload() {
                    Ok(Ok(_info)) => confirmed += 1,
                    Ok(Err(status)) => {
                        panic!("reload refused with {status:?} for a valid snapshot")
                    }
                    Err(ClientError::Protocol(msg)) => panic!("admin protocol error: {msg}"),
                    Err(_transport) => {
                        // The fault plan killed the admin connection; the
                        // reload's outcome is unknown (it may have
                        // applied). Reconnect and keep going.
                        admin = Client::connect(addr).unwrap();
                    }
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            confirmed
        })
    };

    // ── Query burst: 4 clients, retrying idempotent queries through the
    // injected resets/tears, validating every Ok answer bitwise. ─────────
    let clients: Vec<_> = (0..4u64)
        .map(|c| {
            let plan = Arc::clone(&plan);
            let refs = vec![scaled_oracle(1), scaled_oracle(2)];
            std::thread::spawn(move || {
                let policy = RetryPolicy {
                    max_retries: 4,
                    base_delay: Duration::from_millis(1),
                    max_delay: Duration::from_millis(20),
                    jitter_seed: c,
                };
                let mut tally = Tally::default();
                let mut client = Client::connect(addr).unwrap();
                client.set_fault(Arc::clone(&plan));
                for round in 0..80u64 {
                    let pairs = pairs_for(c * 7919 + round, 24);
                    match client.dist_batch_retry(&pairs, 0, &policy) {
                        Ok(Ok(items)) => {
                            assert!(
                                matches_whole_generation(&items, &pairs, &refs),
                                "client {c} round {round}: answer matches no whole generation"
                            );
                            tally.ok += 1;
                        }
                        Ok(Err(
                            Status::Internal
                            | Status::Overloaded
                            | Status::DeadlineExceeded
                            | Status::ShuttingDown,
                        )) => tally.contained += 1,
                        Ok(Err(status)) => {
                            panic!("client {c} round {round}: invalid error status {status:?}")
                        }
                        Err(ClientError::Protocol(msg)) => {
                            panic!("client {c} round {round}: protocol violation: {msg}")
                        }
                        Err(_transport) => {
                            // Torn response or retries exhausted mid-storm:
                            // outcome unknown, never blind-retried. Start a
                            // fresh connection for the next round.
                            tally.unknown += 1;
                            let mut fresh = Client::connect(addr).unwrap();
                            fresh.set_fault(Arc::clone(&plan));
                            client = fresh;
                        }
                    }
                }
                tally
            })
        })
        .collect();

    let mut total = Tally::default();
    for c in clients {
        let t = c.join().unwrap();
        total.ok += t.ok;
        total.contained += t.contained;
        total.unknown += t.unknown;
    }
    let confirmed_reloads = reload_storm.join().unwrap();

    // Every round resolved to exactly one of the three outcome classes.
    assert_eq!(total.ok + total.contained + total.unknown, 4 * 80);
    assert!(
        confirmed_reloads >= 10,
        "need ≥10 confirmed hot reloads, got {confirmed_reloads}"
    );

    // ── Drive any remaining fault windows dry, then reconcile. ──────────
    let mut pump = Client::connect(addr).unwrap();
    pump.set_fault(Arc::clone(&plan));
    for i in 0..400u64 {
        if plan.quiesced() {
            break;
        }
        let pairs = pairs_for(0xdead ^ i, 4);
        let _ = pump.dist_batch(&pairs, 0);
        if pump.ping().is_err() {
            pump = Client::connect(addr).unwrap();
            pump.set_fault(Arc::clone(&plan));
        }
    }
    assert!(plan.quiesced(), "fault windows must self-exhaust");

    // Containment bookkeeping: each injected worker panic was caught and
    // counted; the pool is still serving.
    let stats = {
        let mut c = Client::connect(addr).unwrap();
        c.stats().unwrap()
    };
    assert_eq!(
        stats.worker_panics,
        plan.fires(FaultSite::WorkerPanic),
        "every injected panic contained and counted ({})",
        plan.coordinates()
    );
    assert!(stats.malformed == 0, "tears must not read as malformed ops");

    // ── Clean phase: faults quiesced, so accounting is exact — every
    // request answers Ok, bit-identical to the final published snapshot.
    publish(&gen_a, &path);
    let mut clean = Client::connect(addr).unwrap();
    clean.reload().unwrap().expect("post-storm reload");
    let before = clean.stats().unwrap();
    for round in 0..40u64 {
        let pairs = pairs_for(0xc1ea ^ round, 24);
        let got = clean.dist_batch(&pairs, 0).unwrap().unwrap();
        let upairs: Vec<(usize, usize)> = pairs
            .iter()
            .map(|&(u, v)| (u as usize, v as usize))
            .collect();
        assert_eq!(
            got,
            gen_a.dist_batch(&upairs),
            "post-swap serial replay, round {round} ({})",
            plan.coordinates()
        );
    }
    let after = clean.stats().unwrap();
    assert_eq!(
        after.served - before.served,
        40,
        "clean phase reconciles exactly"
    );
    assert_eq!(after.shed, before.shed);
    assert_eq!(after.worker_panics, before.worker_panics);

    // ── Metrics reconciliation: `Op::Metrics` and `Op::Stats` are two
    // views of one registry. With faults quiesced and no concurrent
    // traffic they must agree exactly, field for field, and the panic
    // counter must equal the fault plan's injected count.
    let exposition = clean.metrics().unwrap();
    let samples = cc_obs::parse_exposition(&exposition);
    let finals = clean.stats().unwrap();
    let sample = |name: &str| samples.get(name).copied();
    assert_eq!(sample("ccd_served_total"), Some(finals.served));
    assert_eq!(sample("ccd_shed_total"), Some(finals.shed));
    assert_eq!(
        sample("ccd_deadline_missed_total"),
        Some(finals.deadline_missed)
    );
    assert_eq!(sample("ccd_malformed_total"), Some(finals.malformed));
    assert_eq!(sample("ccd_queue_depth"), Some(finals.queue_depth));
    assert_eq!(sample("ccd_generation"), Some(finals.generation));
    assert_eq!(sample("ccd_reloads_ok_total"), Some(finals.reloads_ok));
    assert_eq!(
        sample("ccd_reloads_rejected_total"),
        Some(finals.reloads_rejected)
    );
    assert_eq!(
        sample("ccd_slow_disconnects_total"),
        Some(finals.slow_disconnects)
    );
    assert_eq!(
        sample("ccd_worker_panics_total"),
        Some(plan.fires(FaultSite::WorkerPanic)),
        "metrics must reconcile with the injected fault count ({})",
        plan.coordinates()
    );
    let queue_wait = cc_obs::text::histogram_summary(&samples, "ccd_queue_wait_ns")
        .expect("queue-wait histogram exposed");
    assert!(
        queue_wait.count >= finals.served,
        "every served request passed through the queue ({} waits, {} served)",
        queue_wait.count,
        finals.served
    );

    handle.shutdown();
    std::fs::remove_file(&path).ok();
}

/// The fixed-seed set CI always runs; deterministic per seed.
#[test]
fn chaos_fixed_seed_suite() {
    for seed in [0x11u64, 0xc0ffee, 0x5eed_f00d] {
        run_chaos(seed);
    }
}

/// One extra seed from the environment (CI passes a random one and logs
/// it; a failure replays by exporting the printed `CC_CHAOS_SEED`).
#[test]
fn chaos_env_seed() {
    let Ok(raw) = std::env::var("CC_CHAOS_SEED") else {
        return;
    };
    let raw = raw.trim();
    let seed = raw
        .strip_prefix("0x")
        .map_or_else(|| raw.parse(), |hex| u64::from_str_radix(hex, 16))
        .expect("CC_CHAOS_SEED must be a u64 (decimal or 0x-hex)");
    run_chaos(seed);
}
