//! The mmap-free load path, provable under Miri.
//!
//! `cc_serve::mmap` is compiled out under Miri (`cfg(all(unix, not(miri)))`)
//! because raw `mmap(2)` is outside Miri's model; `open_owner` then takes
//! the `AlignedBytes` read-copy fallback. This test pins that contract
//! both ways: under Miri (run with `MIRIFLAGS=-Zmiri-disable-isolation`
//! for file access) the fallback must engage and serve byte-identical
//! answers; on a plain Unix host the real map must engage. Either way the
//! whole v2 zero-copy load path — open, sniff, section validation, typed
//! views — runs on top of whichever owner the platform provides.

use cc_core::{DistOracle, DistanceMatrix, Guarantee};
use cc_graphs::StorageKind;

fn tmp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cc_serve_miri_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

#[test]
fn v2_snapshot_loads_and_answers_without_mmap() {
    let n = 6;
    let mut m = DistanceMatrix::new(n);
    for u in 0..n {
        for v in 0..n {
            m.improve(u, v, u.abs_diff(v) as cc_graphs::Dist);
        }
    }
    let oracle = DistOracle::from_matrix(&m, Guarantee::mult3(0.25), StorageKind::Full);

    let path = tmp_path("smoke_v2.snap");
    oracle.save_v2_to_path(&path).expect("write v2 snapshot");

    let opened = cc_serve::snapshot::open(&path).expect("open v2 snapshot");
    // Under Miri the mmap module does not exist, so the owner MUST be the
    // aligned read-copy; on a normal Unix host it must be the real map.
    if cfg!(miri) {
        assert!(
            !opened.mapped,
            "Miri build took an mmap path that cannot exist"
        );
    } else if cfg!(unix) {
        assert!(opened.mapped, "v2 load fell off the zero-copy fast path");
    }
    assert_eq!(opened.version, 2);
    assert_eq!(opened.oracles.n(), n);

    // Answers through whichever owner engaged must match the source.
    let dist = opened.oracles.dist();
    for u in 0..n {
        for v in 0..n {
            assert_eq!(
                dist.dist(u, v).map(|e| e.dist),
                Some(u.abs_diff(v) as cc_graphs::Dist),
                "({u},{v})"
            );
        }
    }

    std::fs::remove_file(&path).ok();
}
