//! Property tests pinning the CSR min-plus kernels to their references.
//!
//! Two families of properties over random gnp / grid / caveman graphs:
//!
//! 1. **Cross-kernel agreement** — the CSR sparse product, the blocked dense
//!    product and the legacy Vec-of-Vec product compute the same matrix
//!    entry-for-entry (first and second adjacency powers, so both the
//!    sparse-row and the dense-row emit paths of the CSR kernel are hit).
//! 2. **Thread determinism** — `threads ∈ {1, 2, 4, 8}` produce bit-identical
//!    matrices (values *and* nnz) for both kernels, including when a warm
//!    workspace is reused across products.

use cc_graphs::{generators, Graph};
use cc_matrix::legacy::{dense_minplus_unblocked, LegacySparseMatrix};
use cc_matrix::{DenseMatrix, MinplusWorkspace, SparseMatrix};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One random graph from the (family, size, seed) triple.
fn graph_for(family: usize, size: usize, seed: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    match family {
        0 => generators::gnp(size, 0.12, &mut rng),
        1 => generators::grid(3 + size % 5, 3 + size / 5),
        _ => generators::caveman(3 + size % 4, 3 + size % 5),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn kernels_agree_entry_for_entry((family, size, seed) in (0usize..3, 12usize..40, 0u64..1 << 40)) {
        let g = graph_for(family, size, seed);
        let n = g.n();
        let s = SparseMatrix::adjacency(&g);
        let d = DenseMatrix::adjacency(&g);
        let l = LegacySparseMatrix::adjacency(&g);
        prop_assert_eq!(l.to_csr(), s.clone(), "construction paths diverge");
        // First power: sparse rows; second power: dense-ish rows.
        let (mut sp, mut dp, mut lp) = (s, d, l);
        for power in 0..2 {
            sp = sp.minplus(&sp);
            dp = dp.minplus(&dp);
            lp = lp.minplus(&lp);
            let mut finite = 0usize;
            for u in 0..n {
                for v in 0..n {
                    let want = dp.get(u, v);
                    prop_assert_eq!(sp.get(u, v), want, "csr vs dense at ({},{}) power {}", u, v, power);
                    prop_assert_eq!(lp.get(u, v), want, "legacy vs dense at ({},{}) power {}", u, v, power);
                    if want < cc_graphs::INF {
                        finite += 1;
                    }
                }
            }
            prop_assert_eq!(sp.nnz(), finite, "csr nnz mismatch at power {}", power);
        }
    }

    /// Witness-carrying kernels: values bit-identical to the plain kernels,
    /// witnesses realize their entries, and threads ∈ {1, 2, 4, 8} are
    /// bit-identical (values AND witnesses) for both the sparse and the
    /// dense kernel.
    #[test]
    fn witness_kernels_are_bit_identical_across_threads((family, size, seed) in (0usize..3, 12usize..40, 0u64..1 << 40)) {
        let g = graph_for(family, size, seed);
        let n = g.n();
        let s = SparseMatrix::adjacency(&g);
        let d = DenseMatrix::adjacency(&g);
        let mut ws = MinplusWorkspace::new();
        let sparse_serial = s.minplus_with_witness(&s, &mut ws);
        let dense_serial = d.minplus_with_witness(&d, &ws);
        // Values must equal the plain kernels'.
        prop_assert_eq!(&sparse_serial.0, &s.minplus(&s));
        prop_assert_eq!(&dense_serial.0, &d.minplus(&d));
        // Sparse witnesses realize their entries from the inputs.
        for i in 0..n {
            let wrow = &sparse_serial.1[sparse_serial.0.row_range(i)];
            for (&(j, v), &k) in sparse_serial.0.row(i).iter().zip(wrow) {
                let k = k as usize;
                prop_assert_eq!(
                    s.get(i, k) + s.get(k, j as usize), v,
                    "sparse witness at ({},{})", i, j
                );
            }
        }
        // Dense witnesses: finite cells realized, ∞ cells sentinel.
        for i in 0..n {
            for j in 0..n {
                let v = dense_serial.0.get(i, j);
                let k = dense_serial.1[i * n + j];
                if v >= cc_graphs::INF {
                    prop_assert_eq!(k, u32::MAX);
                } else {
                    let k = k as usize;
                    prop_assert_eq!(d.get(i, k) + d.get(k, j), v, "dense witness at ({},{})", i, j);
                }
            }
        }
        for threads in [2usize, 4, 8] {
            let mut ws = MinplusWorkspace::with_threads(threads);
            prop_assert_eq!(&s.minplus_with_witness(&s, &mut ws), &sparse_serial, "sparse, threads = {}", threads);
            // Warm-workspace reuse must stay identical too.
            prop_assert_eq!(&s.minplus_with_witness(&s, &mut ws), &sparse_serial, "sparse warm, threads = {}", threads);
            prop_assert_eq!(&d.minplus_with_witness(&d, &ws), &dense_serial, "dense, threads = {}", threads);
        }
    }

    #[test]
    fn thread_counts_are_bit_identical((family, size, seed) in (0usize..3, 12usize..40, 0u64..1 << 40)) {
        let g = graph_for(family, size, seed);
        let s = SparseMatrix::adjacency(&g);
        let d = DenseMatrix::adjacency(&g);
        let sparse_serial = s.minplus(&s);
        let dense_serial = d.minplus(&d);
        for threads in [2usize, 4, 8] {
            let mut ws = MinplusWorkspace::with_threads(threads);
            let sp = s.minplus_with(&s, &mut ws);
            prop_assert_eq!(&sp, &sparse_serial, "sparse kernel, threads = {}", threads);
            prop_assert_eq!(sp.nnz(), sparse_serial.nnz());
            // Second product from the warm workspace (scratch reuse path).
            let sp2 = sp.minplus_with(&sp, &mut ws);
            prop_assert_eq!(sp2, sparse_serial.minplus(&sparse_serial), "warm workspace, threads = {}", threads);
            let dp = d.minplus_with(&d, &ws);
            prop_assert_eq!(dp, dense_serial.clone(), "dense kernel, threads = {}", threads);
        }
    }

    #[test]
    fn legacy_dense_matches_blocked((family, size, seed) in (0usize..3, 12usize..36, 0u64..1 << 40)) {
        let g = graph_for(family, size, seed);
        let d = DenseMatrix::adjacency(&g);
        let blocked = d.minplus(&d);
        prop_assert_eq!(dense_minplus_unblocked(&d, &d), blocked);
    }
}
