//! Row-sparse min-plus matrices (Thm 36 of the paper, from \[3, 5\]) in
//! compressed sparse row (CSR) form.

use std::ops::Range;

use cc_clique::RoundLedger;
use cc_graphs::{Dist, Graph, INF};

use crate::workspace::{MinplusWorkspace, Scratch};

/// Kernel entries store column/witness ids as `u32`. Every index this
/// narrows is bounded by a matrix dimension whose dense backing already
/// fits in memory, so the conversion is total in practice; debug builds
/// assert it instead of paying a branch on the hot path.
/// Extracts the witness id from a packed `(dist << 32) | witness`
/// accumulator word — a deliberate low-32-bit extraction, not an index
/// narrowing.
#[inline]
fn packed_witness(packed: u64) -> u32 {
    // cc-analyze: allow(narrowing-cast) — low-32 field extraction by construction.
    packed as u32
}

#[inline]
fn small_u32(x: usize) -> u32 {
    debug_assert!(u32::try_from(x).is_ok(), "index exceeds u32 wire width");
    // cc-analyze: allow(narrowing-cast) — debug-asserted, bounded by the matrix dimension.
    x as u32
}

/// A row-sparse `n × n` min-plus matrix in CSR form: one contiguous
/// `(column, value)` arena plus row offsets. Each row stores its finite
/// entries sorted by column; missing entries are ∞.
///
/// Matrices are built batched through a [`RowBuilder`]
/// (push-then-sort-dedup-min) or produced by the kernels — there is no
/// per-entry insert path, so construction costs `O(nnz log nnz)` total
/// instead of the `O(nnz · row)` an insert-sorted layout pays.
///
/// The *density* `ρ` of the matrix — the average number of finite entries
/// per row, rounded **up** — drives the round cost of products (Thm 36).
///
/// # Example
///
/// ```
/// use cc_matrix::RowBuilder;
///
/// let mut b = RowBuilder::new(3);
/// b.push(0, 1, 4);
/// b.push(0, 1, 2); // duplicate column: the minimum survives
/// let m = b.build();
/// assert_eq!(m.get(0, 1), 2);
/// assert_eq!(m.get(1, 0), cc_graphs::INF);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SparseMatrix {
    n: usize,
    /// `entries[offsets[i]..offsets[i + 1]]` is row `i`, column-sorted.
    offsets: Vec<usize>,
    /// The contiguous `(column, value)` arena.
    entries: Vec<(u32, Dist)>,
}

/// Batched builder for a [`SparseMatrix`]: entries are pushed in any order
/// and materialized by [`RowBuilder::build`] with one counting sort by row
/// followed by a per-row sort-dedup-min. Pushing is `O(1)`; the build is
/// `O(nnz log ρ + n)`.
///
/// Setting a value of ∞ is a no-op, and duplicate `(row, column)` pushes
/// keep the minimum — the same semantics the old per-entry `set_min` had,
/// without its `O(row)` insertion.
#[derive(Clone, Debug)]
pub struct RowBuilder {
    n: usize,
    triples: Vec<(u32, u32, Dist)>,
}

impl RowBuilder {
    /// An empty builder for an `n × n` matrix.
    pub fn new(n: usize) -> Self {
        RowBuilder {
            n,
            triples: Vec::new(),
        }
    }

    /// An empty builder with arena capacity for `cap` entries.
    pub fn with_capacity(n: usize, cap: usize) -> Self {
        RowBuilder {
            n,
            triples: Vec::with_capacity(cap),
        }
    }

    /// Records `entry (i, j) = min(current, v)`; pushing ∞ is a no-op.
    #[inline]
    pub fn push(&mut self, i: usize, j: usize, v: Dist) {
        debug_assert!(i < self.n && j < self.n, "entry ({i},{j}) out of range");
        if v >= INF {
            return;
        }
        self.triples.push((small_u32(i), small_u32(j), v));
    }

    /// Materializes the matrix: counting-sort by row, per-row column sort,
    /// duplicate columns collapsed to their minimum value.
    pub fn build(self) -> SparseMatrix {
        let n = self.n;
        // Pass 1: row counts → start offsets.
        let mut starts = vec![0usize; n + 1];
        for &(i, _, _) in &self.triples {
            starts[i as usize + 1] += 1;
        }
        for i in 0..n {
            starts[i + 1] += starts[i];
        }
        // Pass 2: scatter into row-grouped slots.
        let mut cursor = starts.clone();
        let mut slots: Vec<(u32, Dist)> = vec![(0, 0); self.triples.len()];
        for &(i, j, v) in &self.triples {
            let c = &mut cursor[i as usize];
            slots[*c] = (j, v);
            *c += 1;
        }
        // Per-row sort by (column, value), keep the first (minimal) value
        // per column, compact into the final arena.
        let mut entries = Vec::with_capacity(slots.len());
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        for i in 0..n {
            let row = &mut slots[starts[i]..starts[i + 1]];
            row.sort_unstable();
            let mut last = u32::MAX;
            for &(c, v) in row.iter() {
                if c != last {
                    entries.push((c, v));
                    last = c;
                }
            }
            offsets.push(entries.len());
        }
        SparseMatrix {
            n,
            offsets,
            entries,
        }
    }
}

impl SparseMatrix {
    /// Empty (all-∞) matrix.
    pub fn new(n: usize) -> Self {
        SparseMatrix {
            n,
            offsets: vec![0; n + 1],
            entries: Vec::new(),
        }
    }

    /// Min-plus identity: 0 diagonal.
    pub fn identity(n: usize) -> Self {
        SparseMatrix {
            n,
            offsets: (0..=n).collect(),
            entries: (0..n).map(|i| (small_u32(i), 0)).collect(),
        }
    }

    /// Adjacency matrix of an unweighted graph with 0 diagonal: the starting
    /// point of distance-product iterations.
    pub fn adjacency(g: &Graph) -> Self {
        let mut b = RowBuilder::with_capacity(g.n(), g.n() + 2 * g.m());
        for i in 0..g.n() {
            b.push(i, i, 0);
        }
        for (u, v) in g.edges() {
            b.push(u, v, 1);
            b.push(v, u, 1);
        }
        b.build()
    }

    /// Empty matrix whose arena has room for `cap` entries; rows are
    /// appended in order via [`SparseMatrix::push_sorted_row`].
    pub(crate) fn with_row_capacity(n: usize, cap: usize) -> Self {
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        SparseMatrix {
            n,
            offsets,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Appends the next row (must be column-sorted with finite values;
    /// callers append exactly `n` rows total, in row order).
    pub(crate) fn push_sorted_row(&mut self, row: &[(u32, Dist)]) {
        debug_assert!(self.offsets.len() <= self.n, "more than n rows appended");
        debug_assert!(row.windows(2).all(|w| w[0].0 < w[1].0), "row not sorted");
        debug_assert!(
            row.iter().all(|&(c, v)| v < INF && (c as usize) < self.n),
            "row entry infinite or out of range"
        );
        self.entries.extend_from_slice(row);
        self.offsets.push(self.entries.len());
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Entry `(i, j)` (∞ if absent).
    pub fn get(&self, i: usize, j: usize) -> Dist {
        let row = self.row(i);
        match row.binary_search_by_key(&small_u32(j), |&(c, _)| c) {
            Ok(pos) => row[pos].1,
            Err(_) => INF,
        }
    }

    /// The finite entries of row `i`, sorted by column.
    #[inline]
    pub fn row(&self, i: usize) -> &[(u32, Dist)] {
        &self.entries[self.offsets[i]..self.offsets[i + 1]]
    }

    /// The arena index range of row `i` — parallel arrays (e.g. the witness
    /// arena of [`SparseMatrix::minplus_with_witness`]) are sliced with it.
    #[inline]
    pub fn row_range(&self, i: usize) -> Range<usize> {
        self.offsets[i]..self.offsets[i + 1]
    }

    /// Number of finite entries in row `i`.
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.offsets[i + 1] - self.offsets[i]
    }

    /// Total finite entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Average finite entries per row (`ρ` of Thm 36), rounded **up** and at
    /// least 1. Ceiling (not floor) division: a matrix with `nnz = 3n − 1`
    /// has ρ = 3 — flooring would under-charge the Thm 36 product cost.
    pub fn density(&self) -> u64 {
        (self.entries.len() as u64)
            .div_ceil(self.n.max(1) as u64)
            .max(1)
    }

    /// Maximum finite entries in any row.
    pub fn max_row_nnz(&self) -> usize {
        (0..self.n).map(|i| self.row_nnz(i)).max().unwrap_or(0)
    }

    /// Largest finite value in the matrix (0 if empty).
    pub fn max_value(&self) -> Dist {
        self.entries.iter().map(|&(_, v)| v).max().unwrap_or(0)
    }

    /// Min-plus product `self · other` (serial, one-shot scratch). Loops
    /// should use [`SparseMatrix::minplus_with`] with a persistent
    /// [`MinplusWorkspace`] instead.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn minplus(&self, other: &SparseMatrix) -> SparseMatrix {
        self.minplus_with(other, &mut MinplusWorkspace::new())
    }

    /// Min-plus product `self · other` using (and reusing) `ws` for scratch
    /// and thread configuration.
    ///
    /// With `ws.threads() > 1`, output rows are sharded contiguously across
    /// scoped worker threads. Every output row depends only on the inputs,
    /// so the result is **bit-identical** to serial execution at any thread
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn minplus_with(&self, other: &SparseMatrix, ws: &mut MinplusWorkspace) -> SparseMatrix {
        assert_eq!(self.n, other.n, "dimension mismatch");
        let n = self.n;
        let threads = ws.threads().clamp(1, n.max(1));
        if threads <= 1 {
            let lane = &mut ws.lanes(1, n)[0];
            let part = product_rows(self, other, 0..n, lane);
            return assemble(n, vec![part]);
        }
        let shard = n.div_ceil(threads);
        let ranges: Vec<Range<usize>> = (0..threads)
            .map(|t| (t * shard).min(n)..((t + 1) * shard).min(n))
            .collect();
        let lanes = ws.lanes(threads, n);
        let parts: Vec<RowsPart> = std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .into_iter()
                .zip(lanes.iter_mut())
                .map(|(range, lane)| scope.spawn(move || product_rows(self, other, range, lane)))
                .collect();
            handles
                .into_iter()
                // cc-analyze: allow(unwrap-expect) — a panicked worker must propagate, not vanish.
                .map(|h| h.join().expect("min-plus worker panicked"))
                .collect()
        });
        assemble(n, parts)
    }

    /// Min-plus product with the Thm 36 round cost charged to `ledger`.
    pub fn minplus_charged(
        &self,
        other: &SparseMatrix,
        ledger: &mut RoundLedger,
        label: &str,
    ) -> SparseMatrix {
        self.minplus_charged_with(other, &mut MinplusWorkspace::new(), ledger, label)
    }

    /// [`SparseMatrix::minplus_with`] plus the Thm 36 round charge. Model
    /// accounting is independent of the thread count: rounds depend only on
    /// the densities.
    pub fn minplus_charged_with(
        &self,
        other: &SparseMatrix,
        ws: &mut MinplusWorkspace,
        ledger: &mut RoundLedger,
        label: &str,
    ) -> SparseMatrix {
        let out = self.minplus_with(other, ws);
        ledger.charge_sparse_minplus(label, self.density(), other.density(), out.density());
        out
    }

    /// Witness-carrying min-plus product: `self · other` plus, for every
    /// finite output entry, the **smallest** intermediate index `k` with
    /// `out(i,j) = self(i,k) + other(k,j)` — the classic witness matrix that
    /// turns a distance product into a path product (Censor-Hillel & Paz).
    ///
    /// The witnesses come back as a parallel `u32` arena: `witness[e]`
    /// belongs to the output entry at arena index `e`, so the witnesses of
    /// output row `i` are `witness[out.row_range(i)]`.
    ///
    /// The output matrix is **bit-identical** to
    /// [`SparseMatrix::minplus_with`] (same values, same nnz), and — like
    /// it — rows are sharded across `ws.threads()` workers with bit-identical
    /// results (values *and* witnesses) at any thread count: each output
    /// row's witness depends only on the inputs.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn minplus_with_witness(
        &self,
        other: &SparseMatrix,
        ws: &mut MinplusWorkspace,
    ) -> (SparseMatrix, Vec<u32>) {
        assert_eq!(self.n, other.n, "dimension mismatch");
        let n = self.n;
        let threads = ws.threads().clamp(1, n.max(1));
        if threads <= 1 {
            let lane = &mut ws.lanes(1, n)[0];
            lane.ensure_witness(n);
            let part = product_rows_witness(self, other, 0..n, lane);
            return assemble_witness(n, vec![part]);
        }
        let shard = n.div_ceil(threads);
        let ranges: Vec<Range<usize>> = (0..threads)
            .map(|t| (t * shard).min(n)..((t + 1) * shard).min(n))
            .collect();
        let lanes = ws.lanes(threads, n);
        for lane in lanes.iter_mut() {
            lane.ensure_witness(n);
        }
        let parts: Vec<WitnessRowsPart> = std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .into_iter()
                .zip(lanes.iter_mut())
                .map(|(range, lane)| {
                    scope.spawn(move || product_rows_witness(self, other, range, lane))
                })
                .collect();
            handles
                .into_iter()
                // cc-analyze: allow(unwrap-expect) — a panicked worker must propagate, not vanish.
                .map(|h| h.join().expect("min-plus witness worker panicked"))
                .collect()
        });
        assemble_witness(n, parts)
    }

    /// Transpose, by a two-pass counting sort over columns: `O(nnz + n)`,
    /// no per-row sorting (scattering rows in ascending order leaves each
    /// output row column-sorted).
    pub fn transpose(&self) -> SparseMatrix {
        let n = self.n;
        let mut offsets = vec![0usize; n + 1];
        for &(j, _) in &self.entries {
            offsets[j as usize + 1] += 1;
        }
        for j in 0..n {
            offsets[j + 1] += offsets[j];
        }
        let mut cursor = offsets.clone();
        let mut entries: Vec<(u32, Dist)> = vec![(0, 0); self.entries.len()];
        for i in 0..n {
            for &(j, v) in self.row(i) {
                let c = &mut cursor[j as usize];
                entries[*c] = (small_u32(i), v);
                *c += 1;
            }
        }
        SparseMatrix {
            n,
            offsets,
            entries,
        }
    }

    /// Entry-wise minimum with `other`, by merging the column-sorted rows
    /// (`O(nnz_self + nnz_other)`).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn min_with(&mut self, other: &SparseMatrix) {
        assert_eq!(self.n, other.n, "dimension mismatch");
        let n = self.n;
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        let mut entries = Vec::with_capacity(self.entries.len().max(other.entries.len()));
        for i in 0..n {
            let (a, b) = (self.row(i), other.row(i));
            let (mut x, mut y) = (0, 0);
            while x < a.len() && y < b.len() {
                let ((ca, va), (cb, vb)) = (a[x], b[y]);
                match ca.cmp(&cb) {
                    std::cmp::Ordering::Less => {
                        entries.push((ca, va));
                        x += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        entries.push((cb, vb));
                        y += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        entries.push((ca, va.min(vb)));
                        x += 1;
                        y += 1;
                    }
                }
            }
            entries.extend_from_slice(&a[x..]);
            entries.extend_from_slice(&b[y..]);
            offsets.push(entries.len());
        }
        self.offsets = offsets;
        self.entries = entries;
    }
}

/// One shard's product output: per-row entry counts plus its slice of the
/// arena, stitched into a full CSR matrix by [`assemble`].
type RowsPart = (Vec<usize>, Vec<(u32, Dist)>);

/// Output rows denser than `n / SCAN_DIVISOR` are emitted by scanning the
/// accumulator (sorted for free, no touched tracking in the inner loop);
/// sparser rows sort their touched-column list instead.
const SCAN_DIVISOR: usize = 8;

/// Computes output rows `rows` of `a · b`. Each row is independent, so any
/// partition of the row space yields bit-identical results.
fn product_rows(
    a: &SparseMatrix,
    b: &SparseMatrix,
    rows: Range<usize>,
    lane: &mut Scratch,
) -> RowsPart {
    let n = a.n;
    let mut lens = Vec::with_capacity(rows.len());
    // Per-row upper bound on the touched columns — computed once, used both
    // to size the arena and to pick each row's emit path (one predicate, so
    // the sizing and the emit mode cannot drift apart). Scan-mode rows may
    // slide their write cursor across up to n slots; sparse-mode rows emit
    // at most `bound` entries — with the arena sized accordingly, the emit
    // loops below are pure indexed writes: no reallocation, no per-entry
    // capacity branch.
    let bounds: Vec<usize> = rows
        .clone()
        .map(|i| a.row(i).iter().map(|&(k, _)| b.row_nnz(k as usize)).sum())
        .collect();
    let cap: usize = bounds
        .iter()
        .map(|&bound| if bound * SCAN_DIVISOR >= n { n } else { bound })
        .sum();
    let mut out: Vec<(u32, Dist)> = vec![(0, 0); cap];
    let mut w = 0usize; // write cursor into `out`
    let acc = &mut lane.acc[..n];
    let touched = &mut lane.touched;
    for (i, &bound) in rows.zip(bounds.iter()) {
        let arow = a.row(i);
        let before = w;
        if bound * SCAN_DIVISOR >= n {
            // Dense-ish row: branch-free accumulate, then one ordered scan
            // that emits, resets and advances without a mispredictable
            // branch (finite cells bump the cursor; ∞ slots are overwritten
            // by the next write or truncated at the end).
            for &(k, av) in arow {
                for &(j, bv) in b.row(k as usize) {
                    // Finite entries are < INF < 2³⁰, so the raw sum cannot
                    // wrap u32; sums ≥ INF lose to the ∞ cell and vanish.
                    let cell = &mut acc[j as usize];
                    *cell = (*cell).min(av + bv);
                }
            }
            for (j, cell) in acc.iter_mut().enumerate() {
                let v = *cell;
                *cell = INF;
                out[w] = (small_u32(j), v);
                w += usize::from(v < INF);
            }
        } else {
            // Sparse row: track first-touched columns, sort once at emit.
            for &(k, av) in arow {
                for &(j, bv) in b.row(k as usize) {
                    let cand = av + bv;
                    let cell = &mut acc[j as usize];
                    if cand < *cell {
                        if *cell == INF {
                            touched.push(j);
                        }
                        *cell = cand;
                    }
                }
            }
            touched.sort_unstable();
            for &j in touched.iter() {
                out[w] = (j, acc[j as usize]);
                w += 1;
                acc[j as usize] = INF;
            }
            touched.clear();
        }
        lens.push(w - before);
    }
    out.truncate(w);
    (lens, out)
}

/// One shard's witness-product output: entry counts, entry arena and the
/// parallel witness arena.
type WitnessRowsPart = (Vec<usize>, Vec<(u32, Dist)>, Vec<u32>);

/// Witness-carrying twin of [`product_rows`]: identical minima (so values
/// and nnz are bit-identical), plus the smallest realizing `k` per finite
/// output entry. The accumulator packs `(value << 32) | k` per cell, so the
/// inner loop stays a single branch-free `min` — smaller values win, and
/// among equal values the smaller `k` wins automatically (the witness
/// specification). Candidates with value ≥ ∞ never beat
/// [`crate::workspace::PACKED_EMPTY`], exactly mirroring the plain kernel.
fn product_rows_witness(
    a: &SparseMatrix,
    b: &SparseMatrix,
    rows: Range<usize>,
    lane: &mut Scratch,
) -> WitnessRowsPart {
    use crate::workspace::PACKED_EMPTY;
    let n = a.n;
    let mut lens = Vec::with_capacity(rows.len());
    let bounds: Vec<usize> = rows
        .clone()
        .map(|i| a.row(i).iter().map(|&(k, _)| b.row_nnz(k as usize)).sum())
        .collect();
    let cap: usize = bounds
        .iter()
        .map(|&bound| if bound * SCAN_DIVISOR >= n { n } else { bound })
        .sum();
    let mut out: Vec<(u32, Dist)> = vec![(0, 0); cap];
    let mut wit: Vec<u32> = vec![0; cap];
    let mut w = 0usize;
    let pacc = &mut lane.pacc[..n];
    let touched = &mut lane.touched;
    for (i, &bound) in rows.zip(bounds.iter()) {
        let arow = a.row(i);
        let before = w;
        if bound * SCAN_DIVISOR >= n {
            for &(k, av) in arow {
                let kbits = k as u64;
                for &(j, bv) in b.row(k as usize) {
                    let cell = &mut pacc[j as usize];
                    *cell = (*cell).min((((av + bv) as u64) << 32) | kbits);
                }
            }
            for j in 0..n {
                let packed = pacc[j];
                pacc[j] = PACKED_EMPTY;
                let v = (packed >> 32) as Dist;
                out[w] = (small_u32(j), v);
                wit[w] = packed_witness(packed);
                w += usize::from(v < INF);
            }
        } else {
            for &(k, av) in arow {
                let kbits = k as u64;
                for &(j, bv) in b.row(k as usize) {
                    let cand = (((av + bv) as u64) << 32) | kbits;
                    let cell = &mut pacc[j as usize];
                    if cand < *cell {
                        if *cell == PACKED_EMPTY {
                            touched.push(j);
                        }
                        *cell = cand;
                    }
                }
            }
            touched.sort_unstable();
            for &j in touched.iter() {
                let packed = pacc[j as usize];
                pacc[j as usize] = PACKED_EMPTY;
                out[w] = (j, (packed >> 32) as Dist);
                wit[w] = packed_witness(packed);
                w += 1;
            }
            touched.clear();
        }
        lens.push(w - before);
    }
    out.truncate(w);
    wit.truncate(w);
    (lens, out, wit)
}

/// [`assemble`] twin that also stitches the witness arenas.
fn assemble_witness(n: usize, parts: Vec<WitnessRowsPart>) -> (SparseMatrix, Vec<u32>) {
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0);
    let mut cum = 0usize;
    let mut entries: Vec<(u32, Dist)> = Vec::new();
    let mut witnesses: Vec<u32> = Vec::new();
    let single = parts.len() == 1;
    if !single {
        let total = parts.iter().map(|(_, e, _)| e.len()).sum();
        entries.reserve_exact(total);
        witnesses.reserve_exact(total);
    }
    for (lens, mut part, mut wit) in parts {
        for len in lens {
            cum += len;
            offsets.push(cum);
        }
        if single {
            entries = part;
            witnesses = wit;
        } else {
            entries.append(&mut part);
            witnesses.append(&mut wit);
        }
    }
    debug_assert_eq!(offsets.len(), n + 1);
    (
        SparseMatrix {
            n,
            offsets,
            entries,
        },
        witnesses,
    )
}

/// Stitches per-shard products (in row order) into one CSR matrix. The
/// serial (single-shard) case moves the arena instead of copying it.
fn assemble(n: usize, parts: Vec<RowsPart>) -> SparseMatrix {
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0);
    let mut cum = 0usize;
    let mut entries: Vec<(u32, Dist)> = Vec::new();
    let single = parts.len() == 1;
    if !single {
        entries.reserve_exact(parts.iter().map(|(_, e)| e.len()).sum());
    }
    for (lens, mut part) in parts {
        for len in lens {
            cum += len;
            offsets.push(cum);
        }
        if single {
            entries = part;
        } else {
            entries.append(&mut part);
        }
    }
    debug_assert_eq!(offsets.len(), n + 1);
    SparseMatrix {
        n,
        offsets,
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_clique::cost::model;
    use cc_graphs::{bfs, generators};

    #[test]
    fn builder_roundtrip_with_dedup_min() {
        let mut b = RowBuilder::new(4);
        b.push(1, 2, 7);
        b.push(1, 0, 3);
        b.push(1, 2, 9); // larger duplicate: the minimum survives
        b.push(1, 2, INF); // infinite: no-op
        let m = b.build();
        assert_eq!(m.get(1, 2), 7);
        assert_eq!(m.get(1, 0), 3);
        assert_eq!(m.get(1, 3), INF);
        assert_eq!(m.row(1), &[(0, 3), (2, 7)]);
        assert_eq!(m.row(0), &[]);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn sparse_product_matches_dense() {
        let g = generators::gnp(20, 0.2, &mut seeded(8));
        let s = SparseMatrix::adjacency(&g);
        let d = crate::dense::DenseMatrix::adjacency(&g);
        let sp = s.minplus(&s);
        let dp = d.minplus(&d);
        for u in 0..g.n() {
            for v in 0..g.n() {
                assert_eq!(sp.get(u, v), dp.get(u, v), "({u},{v})");
            }
        }
    }

    #[test]
    fn repeated_squaring_reaches_apsp() {
        let g = generators::caveman(3, 4);
        let exact = bfs::apsp_exact(&g);
        let mut a = SparseMatrix::adjacency(&g);
        let mut ws = MinplusWorkspace::new();
        let mut hops = 1;
        while hops < g.n() {
            a = a.minplus_with(&a, &mut ws);
            hops *= 2;
        }
        for u in 0..g.n() {
            for v in 0..g.n() {
                assert_eq!(a.get(u, v), exact[u][v]);
            }
        }
    }

    #[test]
    fn threaded_product_is_bit_identical() {
        let g = generators::connected_gnp(48, 0.1, &mut seeded(4));
        let a = SparseMatrix::adjacency(&g);
        let serial = a.minplus(&a);
        for threads in [2, 3, 8, 64] {
            let mut ws = MinplusWorkspace::with_threads(threads);
            let par = a.minplus_with(&a, &mut ws);
            assert_eq!(par, serial, "threads = {threads}");
            // The workspace is reusable: a second product from warm scratch
            // must also agree.
            assert_eq!(a.minplus_with(&a, &mut ws), serial);
        }
    }

    /// The witness specification: smallest k with out = a(i,k) + b(k,j).
    fn reference_witness(a: &SparseMatrix, b: &SparseMatrix, i: usize, j: usize, out: Dist) -> u32 {
        for &(k, av) in a.row(i) {
            if let Ok(pos) = b
                .row(k as usize)
                .binary_search_by_key(&small_u32(j), |&(c, _)| c)
            {
                if av + b.row(k as usize)[pos].1 == out {
                    return k;
                }
            }
        }
        panic!("no witness for finite entry ({i},{j})");
    }

    #[test]
    fn witness_product_matches_plain_and_realizes_entries() {
        let g = generators::connected_gnp(40, 0.12, &mut seeded(19));
        let a = SparseMatrix::adjacency(&g);
        // Second power too, so both the scan and the sparse emit paths run.
        let mut ws = MinplusWorkspace::new();
        let (p, wp) = a.minplus_with_witness(&a, &mut ws);
        assert_eq!(p, a.minplus(&a), "witness kernel must not change values");
        let (q, wq) = p.minplus_with_witness(&p, &mut ws);
        assert_eq!(q, p.minplus(&p));
        for (m, wit, left) in [(&p, &wp, &a), (&q, &wq, &p)] {
            assert_eq!(wit.len(), m.nnz(), "one witness per finite entry");
            for i in 0..m.n() {
                let wrow = &wit[m.row_range(i)];
                for (&(j, v), &k) in m.row(i).iter().zip(wrow) {
                    assert_eq!(
                        k,
                        reference_witness(left, left, i, j as usize, v),
                        "({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn witness_product_is_bit_identical_across_threads() {
        let g = generators::connected_gnp(48, 0.1, &mut seeded(7));
        let a = SparseMatrix::adjacency(&g);
        let mut ws = MinplusWorkspace::new();
        let serial = a.minplus_with_witness(&a, &mut ws);
        for threads in [2, 3, 8] {
            let mut ws = MinplusWorkspace::with_threads(threads);
            let par = a.minplus_with_witness(&a, &mut ws);
            assert_eq!(par, serial, "threads = {threads}");
            // Warm-workspace reuse must also agree.
            assert_eq!(a.minplus_with_witness(&a, &mut ws), serial);
        }
    }

    #[test]
    fn density_tracks_nnz() {
        let g = generators::cycle(10);
        let a = SparseMatrix::adjacency(&g);
        assert_eq!(a.nnz(), 10 * 3); // self + two neighbors
        assert_eq!(a.density(), 3);
        assert_eq!(a.max_row_nnz(), 3);
    }

    #[test]
    fn density_rounds_up() {
        // nnz = 3n − 1 is ρ = 3 under Thm 36 (ceiling); the old floor
        // division reported 2 and under-charged sparse products.
        let n = 10;
        let mut b = RowBuilder::new(n);
        for i in 0..n {
            for j in 0..3 {
                if !(i == n - 1 && j == 2) {
                    b.push(i, (i + j + 1) % n, 1);
                }
            }
        }
        let m = b.build();
        assert_eq!(m.nnz(), 3 * n - 1);
        assert_eq!(m.density(), 3);
    }

    #[test]
    fn charged_rounds_use_ceiled_density() {
        // Regression pin for the Thm 36 charge at a scale where flooring
        // genuinely under-counts. Left factor: circulant band with offsets
        // 0..10, one entry removed (nnz = 10n − 1, so ρ = 10 ceiled but 9
        // floored). Right factor: stride-10 circulant (ρ = 10). Offset sums
        // o₁ + 10·o₂ cover every residue mod 100, so the product is
        // (almost) full and ρ_out = 100.
        let n = 100;
        let mut ab = RowBuilder::new(n);
        for i in 0..n {
            for o in 0..10 {
                if !(i == n - 1 && o == 9) {
                    ab.push(i, (i + o) % n, 1);
                }
            }
        }
        let a = ab.build();
        let mut bb = RowBuilder::new(n);
        for i in 0..n {
            for o in 0..10 {
                bb.push(i, (i + 10 * o) % n, 1);
            }
        }
        let b = bb.build();
        assert_eq!(a.nnz(), 10 * n - 1);
        assert_eq!((a.density(), b.density()), (10, 10));
        let out = a.minplus(&b);
        assert_eq!(out.density(), 100);
        let mut ledger = RoundLedger::new(n);
        let _ = a.minplus_charged(&b, &mut ledger, "band × stride");
        let charged = ledger.total_rounds();
        assert_eq!(charged, model::sparse_minplus(10, 10, 100, n as u64));
        // The old floored left density (ρ = 9) charged strictly fewer
        // rounds — exactly the under-count this pins against.
        assert!(model::sparse_minplus(9, 10, 100, n as u64) < charged);
    }

    #[test]
    fn transpose_involutive_and_symmetric_fixed() {
        let g = generators::grid(3, 3);
        let a = SparseMatrix::adjacency(&g);
        // Adjacency of an undirected graph is symmetric.
        assert_eq!(a.transpose(), a);
        let mut b = RowBuilder::new(3);
        b.push(0, 2, 5);
        let m = b.build();
        let t = m.transpose();
        assert_eq!(t.get(2, 0), 5);
        assert_eq!(t.get(0, 2), INF);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn min_with_merges() {
        let mut b = RowBuilder::new(2);
        b.push(0, 1, 5);
        let mut a = b.build();
        let mut b2 = RowBuilder::new(2);
        b2.push(0, 1, 3);
        b2.push(1, 1, 0);
        a.min_with(&b2.build());
        assert_eq!(a.get(0, 1), 3);
        assert_eq!(a.get(1, 1), 0);
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    fn charged_product_records_cost() {
        let g = generators::cycle(64);
        let a = SparseMatrix::adjacency(&g);
        let mut ledger = cc_clique::RoundLedger::new(64);
        let _ = a.minplus_charged(&a, &mut ledger, "sq");
        // Sparse constant-degree product is O(1) rounds.
        assert!(ledger.total_rounds() <= 3);
    }

    #[test]
    fn max_value_reflects_entries() {
        let g = generators::path(5);
        let a = SparseMatrix::adjacency(&g);
        assert_eq!(a.max_value(), 1);
        let mut b = RowBuilder::new(5);
        b.push(0, 4, 9);
        let mut a2 = a.clone();
        a2.min_with(&b.build());
        assert_eq!(a2.max_value(), 9);
    }

    #[test]
    fn identity_is_neutral_for_products() {
        let g = generators::grid(4, 3);
        let a = SparseMatrix::adjacency(&g);
        let id = SparseMatrix::identity(g.n());
        assert_eq!(a.minplus(&id), a);
        assert_eq!(id.minplus(&a), a);
    }

    fn seeded(s: u64) -> impl rand::Rng {
        use rand::SeedableRng;
        rand_chacha::ChaCha8Rng::seed_from_u64(s)
    }
}
