//! Row-sparse min-plus matrices (Thm 36 of the paper, from \[3, 5\]).

use cc_clique::RoundLedger;
use cc_graphs::{dadd, Dist, Graph, INF};

/// A row-sparse `n × n` min-plus matrix: each row stores its finite entries
/// as `(column, value)` pairs sorted by column. Missing entries are ∞.
///
/// The *density* `ρ` of the matrix — the average number of finite entries per
/// row — drives the round cost of products (Thm 36).
///
/// # Example
///
/// ```
/// use cc_matrix::SparseMatrix;
///
/// let mut m = SparseMatrix::new(3);
/// m.set_min(0, 1, 4);
/// m.set_min(0, 1, 2); // keeps the minimum
/// assert_eq!(m.get(0, 1), 2);
/// assert_eq!(m.get(1, 0), cc_graphs::INF);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SparseMatrix {
    n: usize,
    rows: Vec<Vec<(u32, Dist)>>,
}

impl SparseMatrix {
    /// Empty (all-∞) matrix.
    pub fn new(n: usize) -> Self {
        SparseMatrix {
            n,
            rows: vec![Vec::new(); n],
        }
    }

    /// Min-plus identity: 0 diagonal.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::new(n);
        for i in 0..n {
            m.set_min(i, i, 0);
        }
        m
    }

    /// Adjacency matrix of an unweighted graph with 0 diagonal: the starting
    /// point of distance-product iterations.
    pub fn adjacency(g: &Graph) -> Self {
        let mut m = Self::identity(g.n());
        for (u, v) in g.edges() {
            m.set_min(u, v, 1);
            m.set_min(v, u, 1);
        }
        m
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Entry `(i, j)` (∞ if absent).
    pub fn get(&self, i: usize, j: usize) -> Dist {
        match self.rows[i].binary_search_by_key(&(j as u32), |&(c, _)| c) {
            Ok(pos) => self.rows[i][pos].1,
            Err(_) => INF,
        }
    }

    /// Sets entry `(i, j)` to `min(current, v)`; setting ∞ is a no-op.
    pub fn set_min(&mut self, i: usize, j: usize, v: Dist) {
        if v >= INF {
            return;
        }
        match self.rows[i].binary_search_by_key(&(j as u32), |&(c, _)| c) {
            Ok(pos) => {
                if v < self.rows[i][pos].1 {
                    self.rows[i][pos].1 = v;
                }
            }
            Err(pos) => self.rows[i].insert(pos, (j as u32, v)),
        }
    }

    /// The finite entries of row `i`, sorted by column.
    pub fn row(&self, i: usize) -> &[(u32, Dist)] {
        &self.rows[i]
    }

    /// Replaces row `i` with `entries` (must be column-sorted, finite).
    ///
    /// # Panics
    ///
    /// Panics (debug) if entries are unsorted or infinite.
    pub fn set_row(&mut self, i: usize, entries: Vec<(u32, Dist)>) {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        debug_assert!(entries.iter().all(|&(_, v)| v < INF));
        self.rows[i] = entries;
    }

    /// Total finite entries.
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Average finite entries per row (`ρ` of Thm 36), at least 1.
    pub fn density(&self) -> u64 {
        ((self.nnz() as u64) / self.n.max(1) as u64).max(1)
    }

    /// Maximum finite entries in any row.
    pub fn max_row_nnz(&self) -> usize {
        self.rows.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Largest finite value in the matrix (0 if empty).
    pub fn max_value(&self) -> Dist {
        self.rows
            .iter()
            .flat_map(|r| r.iter().map(|&(_, v)| v))
            .max()
            .unwrap_or(0)
    }

    /// Min-plus product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn minplus(&self, other: &SparseMatrix) -> SparseMatrix {
        assert_eq!(self.n, other.n, "dimension mismatch");
        let n = self.n;
        let mut out = SparseMatrix::new(n);
        // Scratch dense accumulator reused across rows.
        let mut acc: Vec<Dist> = vec![INF; n];
        let mut touched: Vec<u32> = Vec::new();
        for i in 0..n {
            for &(k, a) in &self.rows[i] {
                for &(j, b) in &other.rows[k as usize] {
                    let cand = dadd(a, b);
                    let cell = &mut acc[j as usize];
                    if *cell == INF {
                        touched.push(j);
                    }
                    if cand < *cell {
                        *cell = cand;
                    }
                }
            }
            touched.sort_unstable();
            let row: Vec<(u32, Dist)> = touched.iter().map(|&j| (j, acc[j as usize])).collect();
            for &j in &touched {
                acc[j as usize] = INF;
            }
            touched.clear();
            out.rows[i] = row;
        }
        out
    }

    /// Min-plus product with the Thm 36 round cost charged to `ledger`.
    pub fn minplus_charged(
        &self,
        other: &SparseMatrix,
        ledger: &mut RoundLedger,
        label: &str,
    ) -> SparseMatrix {
        let out = self.minplus(other);
        ledger.charge_sparse_minplus(label, self.density(), other.density(), out.density());
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> SparseMatrix {
        let mut out = SparseMatrix::new(self.n);
        for i in 0..self.n {
            for &(j, v) in &self.rows[i] {
                out.rows[j as usize].push((i as u32, v));
            }
        }
        for row in &mut out.rows {
            row.sort_unstable_by_key(|&(c, _)| c);
        }
        out
    }

    /// Entry-wise minimum with `other`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn min_with(&mut self, other: &SparseMatrix) {
        assert_eq!(self.n, other.n, "dimension mismatch");
        for i in 0..self.n {
            for &(j, v) in &other.rows[i] {
                self.set_min(i, j as usize, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graphs::{bfs, generators};

    #[test]
    fn get_set_roundtrip() {
        let mut m = SparseMatrix::new(4);
        m.set_min(1, 2, 7);
        m.set_min(1, 0, 3);
        assert_eq!(m.get(1, 2), 7);
        assert_eq!(m.get(1, 0), 3);
        assert_eq!(m.get(1, 3), INF);
        assert_eq!(m.row(1), &[(0, 3), (2, 7)]);
        m.set_min(1, 2, 9); // larger: no-op
        assert_eq!(m.get(1, 2), 7);
        m.set_min(1, 2, INF); // infinite: no-op
        assert_eq!(m.get(1, 2), 7);
    }

    #[test]
    fn sparse_product_matches_dense() {
        let g = generators::gnp(20, 0.2, &mut seeded(8));
        let s = SparseMatrix::adjacency(&g);
        let d = crate::dense::DenseMatrix::adjacency(&g);
        let sp = s.minplus(&s);
        let dp = d.minplus(&d);
        for u in 0..g.n() {
            for v in 0..g.n() {
                assert_eq!(sp.get(u, v), dp.get(u, v), "({u},{v})");
            }
        }
    }

    #[test]
    fn repeated_squaring_reaches_apsp() {
        let g = generators::caveman(3, 4);
        let exact = bfs::apsp_exact(&g);
        let mut a = SparseMatrix::adjacency(&g);
        let mut hops = 1;
        while hops < g.n() {
            a = a.minplus(&a);
            hops *= 2;
        }
        for u in 0..g.n() {
            for v in 0..g.n() {
                assert_eq!(a.get(u, v), exact[u][v]);
            }
        }
    }

    #[test]
    fn density_tracks_nnz() {
        let g = generators::cycle(10);
        let a = SparseMatrix::adjacency(&g);
        assert_eq!(a.nnz(), 10 * 3); // self + two neighbors
        assert_eq!(a.density(), 3);
        assert_eq!(a.max_row_nnz(), 3);
    }

    #[test]
    fn transpose_involutive_and_symmetric_fixed() {
        let g = generators::grid(3, 3);
        let a = SparseMatrix::adjacency(&g);
        // Adjacency of an undirected graph is symmetric.
        assert_eq!(a.transpose(), a);
        let mut m = SparseMatrix::new(3);
        m.set_min(0, 2, 5);
        let t = m.transpose();
        assert_eq!(t.get(2, 0), 5);
        assert_eq!(t.get(0, 2), INF);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn min_with_merges() {
        let mut a = SparseMatrix::new(2);
        a.set_min(0, 1, 5);
        let mut b = SparseMatrix::new(2);
        b.set_min(0, 1, 3);
        b.set_min(1, 1, 0);
        a.min_with(&b);
        assert_eq!(a.get(0, 1), 3);
        assert_eq!(a.get(1, 1), 0);
    }

    #[test]
    fn charged_product_records_cost() {
        let g = generators::cycle(64);
        let a = SparseMatrix::adjacency(&g);
        let mut ledger = cc_clique::RoundLedger::new(64);
        let _ = a.minplus_charged(&a, &mut ledger, "sq");
        // Sparse constant-degree product is O(1) rounds.
        assert!(ledger.total_rounds() <= 3);
    }

    #[test]
    fn max_value_reflects_entries() {
        let g = generators::path(5);
        let mut a = SparseMatrix::adjacency(&g);
        assert_eq!(a.max_value(), 1);
        a.set_min(0, 4, 9);
        assert_eq!(a.max_value(), 9);
    }

    fn seeded(s: u64) -> impl rand::Rng {
        use rand::SeedableRng;
        rand_chacha::ChaCha8Rng::seed_from_u64(s)
    }
}
