//! Reusable scratch and thread configuration for the min-plus kernels.
//!
//! The repeated-squaring loops (hopset iterations, filtered `(k,d)`-nearest
//! squaring, the APSP pipelines' exact products) call the kernels many times
//! on same-sized matrices. A [`MinplusWorkspace`] owns the dense accumulator
//! rows and touched-column lists those kernels need, so steady-state products
//! perform no scratch allocation, and carries the worker-thread count the
//! row-sharded parallel kernels run with.

use cc_graphs::{Dist, INF};

/// Per-worker scratch of the sparse kernel: a dense accumulator row that is
/// kept all-∞ between products, and the touched-column list of the sparse
/// emit path. One lane is handed to each worker thread.
/// The "untouched" value of the packed witness accumulator: value ∞, witness
/// bits zero. A candidate `(value << 32) | k` beats it exactly when its value
/// is finite — and among equal values the **smaller witness wins**, which is
/// how the witness kernels keep the smallest realizing `k` with a single
/// branch-free `min`.
pub(crate) const PACKED_EMPTY: u64 = (INF as u64) << 32;

#[derive(Debug, Default)]
pub(crate) struct Scratch {
    pub(crate) acc: Vec<Dist>,
    pub(crate) touched: Vec<u32>,
    /// Packed accumulator of the witness-carrying kernels:
    /// `(value << 32) | witness` per column, kept at [`PACKED_EMPTY`]
    /// between products (same restore discipline as `acc`).
    pub(crate) pacc: Vec<u64>,
}

impl Scratch {
    /// Grows the accumulator to dimension `n`. The all-∞ invariant is
    /// maintained by the kernels (they restore every cell they write), so
    /// growth only needs to initialize the new tail.
    pub(crate) fn ensure(&mut self, n: usize) {
        if self.acc.len() < n {
            self.acc.resize(n, INF);
        }
        debug_assert!(
            self.acc.iter().all(|&d| d == INF),
            "workspace accumulator must be all-∞ between products"
        );
    }

    /// Additionally grows the packed witness lane (only the witness kernels
    /// pay for it).
    pub(crate) fn ensure_witness(&mut self, n: usize) {
        self.ensure(n);
        if self.pacc.len() < n {
            self.pacc.resize(n, PACKED_EMPTY);
        }
        debug_assert!(
            self.pacc.iter().all(|&p| p == PACKED_EMPTY),
            "packed accumulator must be empty between products"
        );
    }
}

/// Reusable workspace for the min-plus kernels.
///
/// Holds the scratch lanes of [`SparseMatrix::minplus_with`] and the worker
/// thread count both kernels shard rows across. Each output row of a
/// min-plus product depends only on the input matrices, so row sharding is
/// **bit-identical** to serial execution at any thread count (the same
/// determinism argument as the sharded clique engine, DESIGN.md §1.2).
///
/// Construct once and pass to every product of a loop:
///
/// ```
/// use cc_graphs::generators;
/// use cc_matrix::{MinplusWorkspace, SparseMatrix};
///
/// let g = generators::cycle(32);
/// let mut ws = MinplusWorkspace::with_threads(4);
/// let mut a = SparseMatrix::adjacency(&g);
/// for _ in 0..3 {
///     a = a.minplus_with(&a, &mut ws); // no scratch allocation after iter 1
/// }
/// assert_eq!(a.get(0, 8), 8);
/// ```
///
/// [`SparseMatrix::minplus_with`]: crate::SparseMatrix::minplus_with
#[derive(Debug)]
pub struct MinplusWorkspace {
    threads: usize,
    lanes: Vec<Scratch>,
}

impl MinplusWorkspace {
    /// A serial (single-thread) workspace.
    pub fn new() -> Self {
        Self::with_threads(1)
    }

    /// A workspace running kernels on `threads` worker threads
    /// (`0` and `1` both mean serial).
    pub fn with_threads(threads: usize) -> Self {
        MinplusWorkspace {
            threads: threads.max(1),
            lanes: Vec::new(),
        }
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Changes the worker-thread count (scratch lanes are kept).
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// `count` scratch lanes, each grown to dimension `n`.
    pub(crate) fn lanes(&mut self, count: usize, n: usize) -> &mut [Scratch] {
        if self.lanes.len() < count {
            self.lanes.resize_with(count, Scratch::default);
        }
        for lane in &mut self.lanes[..count] {
            lane.ensure(n);
        }
        &mut self.lanes[..count]
    }
}

impl Default for MinplusWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_count_is_clamped_and_mutable() {
        let mut ws = MinplusWorkspace::with_threads(0);
        assert_eq!(ws.threads(), 1);
        ws.set_threads(6);
        assert_eq!(ws.threads(), 6);
        assert_eq!(MinplusWorkspace::default().threads(), 1);
    }

    #[test]
    fn lanes_grow_and_are_reused() {
        let mut ws = MinplusWorkspace::with_threads(2);
        {
            let lanes = ws.lanes(2, 8);
            assert_eq!(lanes.len(), 2);
            assert!(lanes.iter().all(|l| l.acc.len() == 8));
        }
        // Larger n grows in place; the all-∞ invariant holds for the tail.
        let lanes = ws.lanes(2, 16);
        assert!(lanes.iter().all(|l| l.acc.len() == 16));
        assert!(lanes.iter().all(|l| l.acc.iter().all(|&d| d == INF)));
    }
}
