//! Faithful copies of the pre-CSR kernels, kept as cross-check baselines.
//!
//! The `t15_minplus_kernels` bench and the cross-kernel proptests compare
//! the CSR kernels against these verbatim ports of the original
//! Vec-of-Vec layout: `O(row)`-insert [`LegacySparseMatrix::set_min`],
//! per-call scratch allocation in [`LegacySparseMatrix::minplus`], and the
//! unblocked dense triple loop of [`dense_minplus_unblocked`]. **No
//! pipeline uses this module** — it exists so the fast kernels stay pinned,
//! entry-for-entry, to the slow ones they replaced.

use cc_graphs::{dadd, Dist, Graph, INF};

use crate::dense::DenseMatrix;
use crate::sparse::SparseMatrix;

/// The original row-sparse layout: one `Vec<(column, value)>` per row.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LegacySparseMatrix {
    n: usize,
    rows: Vec<Vec<(u32, Dist)>>,
}

impl LegacySparseMatrix {
    /// Empty (all-∞) matrix.
    pub fn new(n: usize) -> Self {
        LegacySparseMatrix {
            n,
            rows: vec![Vec::new(); n],
        }
    }

    /// Adjacency matrix of an unweighted graph with 0 diagonal, built
    /// through the original per-entry insert path.
    pub fn adjacency(g: &Graph) -> Self {
        let mut m = Self::new(g.n());
        for i in 0..g.n() {
            m.set_min(i, i, 0);
        }
        for (u, v) in g.edges() {
            m.set_min(u, v, 1);
            m.set_min(v, u, 1);
        }
        m
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Entry `(i, j)` (∞ if absent).
    pub fn get(&self, i: usize, j: usize) -> Dist {
        match self.rows[i].binary_search_by_key(&(j as u32), |&(c, _)| c) {
            Ok(pos) => self.rows[i][pos].1,
            Err(_) => INF,
        }
    }

    /// The original `O(row)` insert: binary search plus `Vec::insert`.
    pub fn set_min(&mut self, i: usize, j: usize, v: Dist) {
        if v >= INF {
            return;
        }
        match self.rows[i].binary_search_by_key(&(j as u32), |&(c, _)| c) {
            Ok(pos) => {
                if v < self.rows[i][pos].1 {
                    self.rows[i][pos].1 = v;
                }
            }
            Err(pos) => self.rows[i].insert(pos, (j as u32, v)),
        }
    }

    /// Total finite entries.
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// The original min-plus kernel: per-call scratch allocation, touched
    /// list sorted and collected into a fresh `Vec` per output row.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn minplus(&self, other: &LegacySparseMatrix) -> LegacySparseMatrix {
        assert_eq!(self.n, other.n, "dimension mismatch");
        let n = self.n;
        let mut out = LegacySparseMatrix::new(n);
        // Scratch dense accumulator reused across rows.
        let mut acc: Vec<Dist> = vec![INF; n];
        let mut touched: Vec<u32> = Vec::new();
        for i in 0..n {
            for &(k, a) in &self.rows[i] {
                for &(j, b) in &other.rows[k as usize] {
                    let cand = dadd(a, b);
                    let cell = &mut acc[j as usize];
                    if *cell == INF {
                        touched.push(j);
                    }
                    if cand < *cell {
                        *cell = cand;
                    }
                }
            }
            touched.sort_unstable();
            let row: Vec<(u32, Dist)> = touched.iter().map(|&j| (j, acc[j as usize])).collect();
            for &j in &touched {
                acc[j as usize] = INF;
            }
            touched.clear();
            out.rows[i] = row;
        }
        out
    }

    /// Converts to the CSR layout (for entry-for-entry cross-checks).
    pub fn to_csr(&self) -> SparseMatrix {
        let mut out = SparseMatrix::with_row_capacity(self.n, self.nnz());
        for row in &self.rows {
            out.push_sorted_row(row);
        }
        out
    }

    /// Builds the legacy layout from a CSR matrix.
    pub fn from_csr(m: &SparseMatrix) -> Self {
        LegacySparseMatrix {
            n: m.n(),
            rows: (0..m.n()).map(|i| m.row(i).to_vec()).collect(),
        }
    }
}

/// The original dense kernel: unblocked `i`/`k` loops, so each output row
/// streams the whole of `other` through cache.
///
/// # Panics
///
/// Panics if dimensions differ.
pub fn dense_minplus_unblocked(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    assert_eq!(a.n, b.n, "dimension mismatch");
    let n = a.n;
    let mut out = DenseMatrix::infinite(n);
    for i in 0..n {
        for k in 0..n {
            let av = a.data[i * n + k];
            if av >= INF {
                continue;
            }
            let row_k = &b.data[k * n..(k + 1) * n];
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(row_k.iter()) {
                let cand = dadd(av, bv);
                if cand < *o {
                    *o = cand;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graphs::generators;

    #[test]
    fn legacy_and_csr_products_agree() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(6);
        let g = generators::connected_gnp(36, 0.12, &mut rng);
        let legacy = LegacySparseMatrix::adjacency(&g);
        let csr = SparseMatrix::adjacency(&g);
        assert_eq!(legacy.to_csr(), csr, "construction paths agree");
        assert_eq!(LegacySparseMatrix::from_csr(&csr), legacy);
        let lp = legacy.minplus(&legacy);
        let cp = csr.minplus(&csr);
        assert_eq!(lp.to_csr(), cp, "product kernels agree entry-for-entry");
    }

    #[test]
    fn legacy_and_blocked_dense_agree() {
        let g = generators::caveman(5, 5);
        let a = DenseMatrix::adjacency(&g);
        assert_eq!(dense_minplus_unblocked(&a, &a), a.minplus(&a));
    }
}
