//! Min-plus (tropical) semiring matrices with Congested Clique round costs.
//!
//! Distance computation by matrix methods iterates *distance products*: with
//! `A` the adjacency matrix of a graph (0 on the diagonal, 1 on edges, ∞
//! elsewhere), `A^k[u][v]` under min-plus is the length of the shortest
//! `≤ k`-edge path from `u` to `v`. The paper's distance-sensitive tool-kit
//! (Thm 10) squares **filtered** sparse matrices: after each product only the
//! `ρ` smallest entries of each row are kept, which keeps every intermediate
//! matrix sparse and each product cheap (Thm 58).
//!
//! This crate implements:
//!
//! * [`dense::DenseMatrix`] — dense min-plus matrices with a cache-blocked,
//!   skip-∞ product kernel (`Θ(n^{1/3})` rounds each, the algebraic
//!   baseline),
//! * [`sparse::SparseMatrix`] — CSR row-sparse matrices (contiguous
//!   `(column, value)` arena + row offsets) with density tracking, batched
//!   construction through [`sparse::RowBuilder`], and sparse products
//!   (Thm 36 cost),
//! * [`workspace::MinplusWorkspace`] — reusable kernel scratch plus the
//!   worker-thread count; both kernels shard output rows across scoped
//!   threads with bit-identical results at any thread count,
//! * [`filtered`] — row filtering and the iterated filtered squaring of
//!   Claim 59, the computational core of the `(k,d)`-nearest primitive,
//! * [`legacy`] — verbatim ports of the pre-CSR kernels, kept purely as
//!   cross-check baselines for the proptests and the `t15_minplus_kernels`
//!   bench.
//!
//! Round accounting is orthogonal to wall-clock execution: the `_charged`
//! product variants charge the same Thm 36 / Thm 58 formulas regardless of
//! thread count.
//!
//! # Example
//!
//! ```
//! use cc_graphs::generators;
//! use cc_matrix::SparseMatrix;
//!
//! let g = generators::cycle(6);
//! let a = SparseMatrix::adjacency(&g);
//! let a2 = a.minplus(&a);
//! assert_eq!(a2.get(0, 2), 2); // two hops around the cycle
//! ```

#![forbid(unsafe_code)]
// Index-based loops are the clearest idiom for the dense adjacency/matrix
// code in this workspace.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod dense;
pub mod filtered;
pub mod legacy;
pub mod sparse;
pub mod workspace;

pub use dense::DenseMatrix;
pub use sparse::{RowBuilder, SparseMatrix};
pub use workspace::MinplusWorkspace;
