//! Dense min-plus matrices: the algebraic baseline of the "first era".

use cc_clique::RoundLedger;
use cc_graphs::{dadd, Dist, Graph, INF};

/// A dense `n × n` matrix over the min-plus semiring.
///
/// # Example
///
/// ```
/// use cc_matrix::DenseMatrix;
/// use cc_graphs::generators;
///
/// let g = generators::path(4);
/// let a = DenseMatrix::adjacency(&g);
/// let a2 = a.minplus(&a);
/// assert_eq!(a2.get(0, 2), 2);
/// assert_eq!(a2.get(0, 3), cc_graphs::INF);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DenseMatrix {
    n: usize,
    data: Vec<Dist>,
}

impl DenseMatrix {
    /// All-∞ matrix (the min-plus zero matrix).
    pub fn infinite(n: usize) -> Self {
        DenseMatrix {
            n,
            data: vec![INF; n * n],
        }
    }

    /// Min-plus identity: 0 on the diagonal, ∞ elsewhere.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::infinite(n);
        for i in 0..n {
            m.set(i, i, 0);
        }
        m
    }

    /// Adjacency matrix of an unweighted graph: 0 diagonal, 1 on edges.
    pub fn adjacency(g: &Graph) -> Self {
        let mut m = Self::identity(g.n());
        for (u, v) in g.edges() {
            m.set(u, v, 1);
            m.set(v, u, 1);
        }
        m
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> Dist {
        self.data[i * self.n + j]
    }

    /// Sets entry `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: Dist) {
        self.data[i * self.n + j] = v;
    }

    /// Entry-wise minimum with `other`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn min_with(&mut self, other: &DenseMatrix) {
        assert_eq!(self.n, other.n, "dimension mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a = (*a).min(b);
        }
    }

    /// Min-plus product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn minplus(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.n, other.n, "dimension mismatch");
        let n = self.n;
        let mut out = DenseMatrix::infinite(n);
        for i in 0..n {
            for k in 0..n {
                let a = self.get(i, k);
                if a >= INF {
                    continue;
                }
                let row_k = &other.data[k * n..(k + 1) * n];
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(row_k.iter()) {
                    let cand = dadd(a, b);
                    if cand < *o {
                        *o = cand;
                    }
                }
            }
        }
        out
    }

    /// Min-plus square with the dense-product round cost charged to `ledger`
    /// (`Θ(n^{1/3})` per product; Censor-Hillel et al.).
    pub fn square_charged(&self, ledger: &mut RoundLedger) -> DenseMatrix {
        ledger.charge_dense_minplus("dense min-plus square");
        self.minplus(self)
    }

    /// Number of finite entries.
    pub fn finite_entries(&self) -> usize {
        self.data.iter().filter(|&&d| d < INF).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graphs::{bfs, generators};

    #[test]
    fn identity_is_neutral() {
        let g = generators::cycle(5);
        let a = DenseMatrix::adjacency(&g);
        let id = DenseMatrix::identity(5);
        assert_eq!(a.minplus(&id), a);
        assert_eq!(id.minplus(&a), a);
    }

    #[test]
    fn repeated_squaring_reaches_apsp() {
        let g = generators::gnp(24, 0.15, &mut seeded(5));
        let exact = bfs::apsp_exact(&g);
        let mut a = DenseMatrix::adjacency(&g);
        let mut hops = 1usize;
        while hops < g.n() {
            a = a.minplus(&a);
            hops *= 2;
        }
        for u in 0..g.n() {
            for v in 0..g.n() {
                assert_eq!(a.get(u, v), exact[u][v], "({u},{v})");
            }
        }
    }

    #[test]
    fn product_is_hop_bounded() {
        let g = generators::path(6);
        let a = DenseMatrix::adjacency(&g);
        let a2 = a.minplus(&a);
        assert_eq!(a2.get(0, 2), 2);
        assert_eq!(a2.get(0, 3), INF); // 3 hops needed
    }

    #[test]
    fn min_with_takes_pointwise_min() {
        let mut a = DenseMatrix::infinite(2);
        a.set(0, 1, 5);
        let mut b = DenseMatrix::infinite(2);
        b.set(0, 1, 3);
        b.set(1, 0, 9);
        a.min_with(&b);
        assert_eq!(a.get(0, 1), 3);
        assert_eq!(a.get(1, 0), 9);
    }

    #[test]
    fn charged_square_charges_cbrt_n() {
        let g = generators::cycle(27);
        let a = DenseMatrix::adjacency(&g);
        let mut ledger = cc_clique::RoundLedger::new(27);
        let _ = a.square_charged(&mut ledger);
        assert_eq!(ledger.total_rounds(), 3);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_product_panics() {
        let a = DenseMatrix::infinite(2);
        let b = DenseMatrix::infinite(3);
        let _ = a.minplus(&b);
    }

    fn seeded(s: u64) -> impl rand::Rng {
        use rand::SeedableRng;
        rand_chacha::ChaCha8Rng::seed_from_u64(s)
    }
}
