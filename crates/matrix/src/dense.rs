//! Dense min-plus matrices: the algebraic baseline of the "first era".
//!
//! The product kernel tiles the `i`/`k` loops so the panel of `other` rows a
//! tile consumes stays cache-resident across the tile's output rows, skips
//! all-∞ `(i, k)` cells before touching the panel, and keeps the inner
//! `j`-loop branch-free (`min` select) so it vectorizes. Row-sharded
//! parallel execution is available through [`MinplusWorkspace`].

use std::ops::Range;

use cc_clique::RoundLedger;
use cc_graphs::{Dist, Graph, INF};

use crate::workspace::MinplusWorkspace;

/// Kernel entries store column/witness ids as `u32`. Every index this
/// narrows is bounded by a matrix dimension whose dense backing already
/// fits in memory, so the conversion is total in practice; debug builds
/// assert it instead of paying a branch on the hot path.
#[inline]
fn small_u32(x: usize) -> u32 {
    debug_assert!(u32::try_from(x).is_ok(), "index exceeds u32 wire width");
    // cc-analyze: allow(narrowing-cast) — debug-asserted, bounded by the matrix dimension.
    x as u32
}

/// A dense `n × n` matrix over the min-plus semiring.
///
/// # Example
///
/// ```
/// use cc_matrix::DenseMatrix;
/// use cc_graphs::generators;
///
/// let g = generators::path(4);
/// let a = DenseMatrix::adjacency(&g);
/// let a2 = a.minplus(&a);
/// assert_eq!(a2.get(0, 2), 2);
/// assert_eq!(a2.get(0, 3), cc_graphs::INF);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DenseMatrix {
    pub(crate) n: usize,
    pub(crate) data: Vec<Dist>,
}

/// Output rows processed per tile: the tile's output rows (`I_TILE · n`
/// words) stay resident while a `k`-panel streams through them.
const I_TILE: usize = 16;

/// `other` rows per panel: `K_TILE · n` words (256 KiB at `n = 1024`) are
/// reused by every row of the `i`-tile before the panel is evicted.
const K_TILE: usize = 64;

impl DenseMatrix {
    /// All-∞ matrix (the min-plus zero matrix).
    pub fn infinite(n: usize) -> Self {
        DenseMatrix {
            n,
            data: vec![INF; n * n],
        }
    }

    /// Min-plus identity: 0 on the diagonal, ∞ elsewhere.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::infinite(n);
        for i in 0..n {
            m.set(i, i, 0);
        }
        m
    }

    /// Adjacency matrix of an unweighted graph: 0 diagonal, 1 on edges.
    pub fn adjacency(g: &Graph) -> Self {
        let mut m = Self::identity(g.n());
        for (u, v) in g.edges() {
            m.set(u, v, 1);
            m.set(v, u, 1);
        }
        m
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> Dist {
        self.data[i * self.n + j]
    }

    /// Sets entry `(i, j)`. Values above [`INF`] are clamped to [`INF`]
    /// (any "infinity" a caller writes behaves as the canonical ∞), which
    /// keeps every stored entry `≤ INF` — the invariant the raw-sum product
    /// kernel's no-wrap argument stands on.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: Dist) {
        self.data[i * self.n + j] = v.min(INF);
    }

    /// Row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[Dist] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// The whole matrix, row-major.
    pub fn as_slice(&self) -> &[Dist] {
        &self.data
    }

    /// Entry-wise minimum with `other`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn min_with(&mut self, other: &DenseMatrix) {
        assert_eq!(self.n, other.n, "dimension mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a = (*a).min(b);
        }
    }

    /// Min-plus product `self · other` (serial).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn minplus(&self, other: &DenseMatrix) -> DenseMatrix {
        self.minplus_with(other, &MinplusWorkspace::new())
    }

    /// Min-plus product on `ws.threads()` worker threads (contiguous row
    /// shards). Each output row depends only on the inputs and per-cell
    /// `min` accumulation is order-independent, so the result is
    /// **bit-identical** to serial execution at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn minplus_with(&self, other: &DenseMatrix, ws: &MinplusWorkspace) -> DenseMatrix {
        assert_eq!(self.n, other.n, "dimension mismatch");
        let n = self.n;
        let mut out = DenseMatrix::infinite(n);
        let threads = ws.threads().clamp(1, n.max(1));
        if threads <= 1 {
            product_rows_blocked(self, other, 0..n, &mut out.data);
            return out;
        }
        let shard = n.div_ceil(threads);
        std::thread::scope(|scope| {
            for (t, chunk) in out.data.chunks_mut(shard * n).enumerate() {
                let rows = (t * shard).min(n)..((t + 1) * shard).min(n);
                scope.spawn(move || product_rows_blocked(self, other, rows, chunk));
            }
        });
        out
    }

    /// Witness-carrying min-plus product: `self · other` plus, for every
    /// finite output cell `(i, j)`, a **deterministic realizing** index `k`
    /// with `out(i,j) = self(i,k) + other(k,j)` (`u32::MAX` for ∞ cells).
    /// The trivial realizers `k = i`, then `k = j` are preferred (in
    /// repeated-squaring workloads — the dense kernel's home regime — most
    /// cells stop improving and one of them applies, which is what keeps
    /// witness recovery cheap); otherwise the smallest realizing `k` wins.
    /// The witnesses come back as a parallel row-major `u32` arena of `n²`
    /// entries.
    ///
    /// The output matrix is bit-identical to [`DenseMatrix::minplus_with`],
    /// and rows are sharded across `ws.threads()` workers with bit-identical
    /// values *and* witnesses at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn minplus_with_witness(
        &self,
        other: &DenseMatrix,
        ws: &MinplusWorkspace,
    ) -> (DenseMatrix, Vec<u32>) {
        assert_eq!(self.n, other.n, "dimension mismatch");
        let n = self.n;
        let mut out = DenseMatrix::infinite(n);
        let mut wit = vec![u32::MAX; n * n];
        let threads = ws.threads().clamp(1, n.max(1));
        if threads <= 1 {
            product_rows_blocked_witness(self, other, 0..n, &mut out.data, &mut wit);
            return (out, wit);
        }
        let shard = n.div_ceil(threads);
        std::thread::scope(|scope| {
            for (t, (chunk, wchunk)) in out
                .data
                .chunks_mut(shard * n)
                .zip(wit.chunks_mut(shard * n))
                .enumerate()
            {
                let rows = (t * shard).min(n)..((t + 1) * shard).min(n);
                scope.spawn(move || product_rows_blocked_witness(self, other, rows, chunk, wchunk));
            }
        });
        (out, wit)
    }

    /// Min-plus square with the dense-product round cost charged to `ledger`
    /// (`Θ(n^{1/3})` per product; Censor-Hillel et al.).
    pub fn square_charged(&self, ledger: &mut RoundLedger) -> DenseMatrix {
        self.square_charged_with(ledger, &MinplusWorkspace::new())
    }

    /// [`DenseMatrix::minplus_with`] square plus the dense round charge.
    /// Model accounting is independent of the thread count.
    pub fn square_charged_with(
        &self,
        ledger: &mut RoundLedger,
        ws: &MinplusWorkspace,
    ) -> DenseMatrix {
        ledger.charge_dense_minplus("dense min-plus square");
        self.minplus_with(self, ws)
    }

    /// Number of finite entries.
    pub fn finite_entries(&self) -> usize {
        self.data.iter().filter(|&&d| d < INF).count()
    }
}

/// Computes output rows `rows` of `a · b` into `out` (the rows' slice of the
/// output arena), with `i`/`k` tiling and a skip-∞ test per `(i, k)` cell.
fn product_rows_blocked(a: &DenseMatrix, b: &DenseMatrix, rows: Range<usize>, out: &mut [Dist]) {
    let n = a.n;
    let base = rows.start;
    let mut i0 = rows.start;
    while i0 < rows.end {
        let iend = (i0 + I_TILE).min(rows.end);
        let mut k0 = 0;
        while k0 < n {
            let kend = (k0 + K_TILE).min(n);
            for i in i0..iend {
                let arow = &a.data[i * n..(i + 1) * n];
                let orow = &mut out[(i - base) * n..(i - base + 1) * n];
                for k in k0..kend {
                    let av = arow[k];
                    if av >= INF {
                        continue;
                    }
                    let brow = &b.data[k * n..(k + 1) * n];
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        // av < INF < 2³⁰ and bv ≤ INF, so the raw sum cannot
                        // wrap u32; sums ≥ INF lose to the ∞-initialized cell.
                        *o = (*o).min(av + bv);
                    }
                }
            }
            k0 = kend;
        }
        i0 = iend;
    }
}

/// Witness-carrying twin of [`product_rows_blocked`]: same tiling and
/// skip-∞ test, with the accumulator packing `(value << 32) | k` per cell so
/// the inner loop stays a single branch-free `min` — smaller values win, and
/// among equal values the smaller `k` wins automatically (the witness
/// specification). Untouched cells unpack to `(∞, u32::MAX)`; candidates at
/// value ∞ may claim a witness inside the packed cell, but the split below
/// restores the `u32::MAX` sentinel for every non-finite value, so outputs
/// match the plain kernel exactly.
fn product_rows_blocked_witness(
    a: &DenseMatrix,
    b: &DenseMatrix,
    rows: Range<usize>,
    out: &mut [Dist],
    wit: &mut [u32],
) {
    let n = a.n;
    let base = rows.start;
    // Pass 1: the values — literally the plain kernel, so the output matrix
    // is bit-identical by construction (and keeps its vectorization).
    product_rows_blocked(a, b, rows.clone(), out);
    // Pass 2: witness recovery. The trivial realizers retire most cells in
    // one vectorizable sweep (`k = i` whenever `a(i,i) + b(i,j)` already
    // equals the minimum — always true for cells a squaring step left
    // unchanged — then `k = j` symmetrically). The remainder goes through
    // per-row compaction: sweeping k ascending and retiring a cell at its
    // first matching sum assigns the smallest realizing k, and every cell
    // is visited once per k until it matches. ∞ cells never enter and keep
    // their u32::MAX sentinel.
    let bdiag: Vec<Dist> = (0..n).map(|j| b.data[j * n + j]).collect();
    let mut cells: Vec<(u32, Dist)> = Vec::with_capacity(n);
    for i in rows {
        let arow = &a.data[i * n..(i + 1) * n];
        let orow = &out[(i - base) * n..(i - base + 1) * n];
        let wrow = &mut wit[(i - base) * n..(i - base + 1) * n];
        let adiag = arow[i];
        let browi = &b.data[i * n..(i + 1) * n];
        cells.clear();
        cells.extend(
            orow.iter()
                .enumerate()
                .filter(|&(j, &o)| {
                    if o >= INF {
                        return false;
                    }
                    // Sums of finite values stay below u32::MAX (≤ 2·INF),
                    // so these comparisons cannot wrap into false matches.
                    if adiag < INF && adiag + browi[j] == o {
                        wrow[j] = small_u32(i);
                        return false;
                    }
                    if arow[j] < INF && arow[j] + bdiag[j] == o {
                        wrow[j] = small_u32(j);
                        return false;
                    }
                    true
                })
                .map(|(j, &o)| (small_u32(j), o)),
        );
        for (k, &av) in arow.iter().enumerate() {
            if cells.is_empty() {
                break;
            }
            if av >= INF {
                continue;
            }
            let kw = small_u32(k);
            let brow = &b.data[k * n..(k + 1) * n];
            // Branch-free compaction: matches at unpredictable positions
            // would mispredict a `retain`, so keep/assign are conditional
            // moves and the write cursor advances arithmetically.
            let mut keep = 0usize;
            for idx in 0..cells.len() {
                let (j, o) = cells[idx];
                let matched = av + brow[j as usize] == o;
                let w = &mut wrow[j as usize];
                *w = if matched { kw } else { *w };
                cells[keep] = (j, o);
                keep += usize::from(!matched);
            }
            cells.truncate(keep);
        }
        debug_assert!(cells.is_empty(), "every finite cell has a witness");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graphs::{bfs, generators};

    #[test]
    fn identity_is_neutral() {
        let g = generators::cycle(5);
        let a = DenseMatrix::adjacency(&g);
        let id = DenseMatrix::identity(5);
        assert_eq!(a.minplus(&id), a);
        assert_eq!(id.minplus(&a), a);
    }

    #[test]
    fn repeated_squaring_reaches_apsp() {
        let g = generators::gnp(24, 0.15, &mut seeded(5));
        let exact = bfs::apsp_exact(&g);
        let mut a = DenseMatrix::adjacency(&g);
        let mut hops = 1usize;
        while hops < g.n() {
            a = a.minplus(&a);
            hops *= 2;
        }
        for u in 0..g.n() {
            for v in 0..g.n() {
                assert_eq!(a.get(u, v), exact[u][v], "({u},{v})");
            }
        }
    }

    #[test]
    fn product_is_hop_bounded() {
        let g = generators::path(6);
        let a = DenseMatrix::adjacency(&g);
        let a2 = a.minplus(&a);
        assert_eq!(a2.get(0, 2), 2);
        assert_eq!(a2.get(0, 3), INF); // 3 hops needed
    }

    #[test]
    fn threaded_product_is_bit_identical() {
        // Sizes straddling the tile boundaries and odd shard splits.
        for n in [7usize, 16, 33, 70] {
            let g = generators::gnp(n, 0.15, &mut seeded(n as u64));
            let a = DenseMatrix::adjacency(&g);
            let serial = a.minplus(&a);
            for threads in [2, 3, 5, 16] {
                let ws = MinplusWorkspace::with_threads(threads);
                assert_eq!(a.minplus_with(&a, &ws), serial, "n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn witness_product_matches_plain_and_realizes_entries() {
        let g = generators::gnp(40, 0.12, &mut seeded(3));
        let a = DenseMatrix::adjacency(&g);
        let ws = MinplusWorkspace::new();
        let (p, wit) = a.minplus_with_witness(&a, &ws);
        assert_eq!(p, a.minplus(&a), "witness kernel must not change values");
        let n = a.n();
        for i in 0..n {
            for j in 0..n {
                let v = p.get(i, j);
                let k = wit[i * n + j];
                if v >= INF {
                    assert_eq!(k, u32::MAX, "({i},{j})");
                    continue;
                }
                let k = k as usize;
                assert_eq!(a.get(i, k) + a.get(k, j), v, "({i},{j}) via {k}");
                // The deterministic scan order: trivial realizers k = i,
                // then k = j, then the smallest realizing k.
                let realizes = |k: usize| a.get(i, k).saturating_add(a.get(k, j)) == v;
                if realizes(i) {
                    assert_eq!(k, i, "({i},{j}): trivial k = i preferred");
                } else if realizes(j) {
                    assert_eq!(k, j, "({i},{j}): trivial k = j preferred");
                } else {
                    for smaller in 0..k {
                        assert!(
                            !realizes(smaller),
                            "({i},{j}): {smaller} also realizes the min"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn witness_product_is_bit_identical_across_threads() {
        for n in [7usize, 33, 70] {
            let g = generators::gnp(n, 0.15, &mut seeded(n as u64));
            let a = DenseMatrix::adjacency(&g);
            let serial = a.minplus_with_witness(&a, &MinplusWorkspace::new());
            for threads in [2, 3, 16] {
                let ws = MinplusWorkspace::with_threads(threads);
                assert_eq!(
                    a.minplus_with_witness(&a, &ws),
                    serial,
                    "n={n} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn min_with_takes_pointwise_min() {
        let mut a = DenseMatrix::infinite(2);
        a.set(0, 1, 5);
        let mut b = DenseMatrix::infinite(2);
        b.set(0, 1, 3);
        b.set(1, 0, 9);
        a.min_with(&b);
        assert_eq!(a.get(0, 1), 3);
        assert_eq!(a.get(1, 0), 9);
        assert_eq!(a.row(0), &[INF, 3]);
        assert_eq!(a.as_slice().len(), 4);
    }

    #[test]
    fn oversized_infinity_is_clamped_and_does_not_wrap() {
        // The old dadd-based kernel saturated; the raw-sum kernel relies on
        // set() clamping instead. A caller's u32::MAX "infinity" must stay
        // non-finite through a product, never wrap to a small distance.
        let mut a = DenseMatrix::identity(3);
        a.set(0, 1, u32::MAX);
        assert_eq!(a.get(0, 1), INF);
        let p = a.minplus(&a);
        assert_eq!(p.get(0, 1), INF);
        assert_eq!(p.get(0, 2), INF);
    }

    #[test]
    fn charged_square_charges_cbrt_n() {
        let g = generators::cycle(27);
        let a = DenseMatrix::adjacency(&g);
        let mut ledger = cc_clique::RoundLedger::new(27);
        let _ = a.square_charged(&mut ledger);
        assert_eq!(ledger.total_rounds(), 3);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_product_panics() {
        let a = DenseMatrix::infinite(2);
        let b = DenseMatrix::infinite(3);
        let _ = a.minplus(&b);
    }

    fn seeded(s: u64) -> impl rand::Rng {
        use rand::SeedableRng;
        rand_chacha::ChaCha8Rng::seed_from_u64(s)
    }
}
