//! Filtered min-plus products and iterated filtered squaring
//! (Thm 58 and Claim 59 of the paper, following \[3\]).
//!
//! For a matrix `P` and filter width `ρ`, the *filtered* matrix `P̄` keeps in
//! each row only the `ρ` smallest finite entries (ties broken by column id).
//! Iterating `A_{i+1} = filter(A_i · A_i)` from the filtered adjacency matrix
//! computes, after `⌈log₂ d⌉` iterations, the `(ρ, d)`-nearest sets of every
//! vertex (Claim 59) — while every intermediate matrix stays `ρ`-sparse.
//!
//! The `_with` variants thread one [`MinplusWorkspace`] through the whole
//! squaring loop, so the repeated products reuse scratch and run on the
//! workspace's worker threads.

use cc_clique::RoundLedger;
use cc_graphs::{Dist, Graph};

use crate::sparse::SparseMatrix;
use crate::workspace::MinplusWorkspace;

/// Keeps the `rho` smallest finite entries of each row, ties broken by
/// smaller column id. Rows with at most `rho` entries are unchanged.
pub fn filter_rows(m: &SparseMatrix, rho: usize) -> SparseMatrix {
    let n = m.n();
    let mut out = SparseMatrix::with_row_capacity(n, m.nnz().min(n.saturating_mul(rho)));
    let mut by_value: Vec<(Dist, u32)> = Vec::new();
    let mut kept: Vec<(u32, Dist)> = Vec::new();
    for i in 0..n {
        let row = m.row(i);
        if row.len() <= rho {
            out.push_sorted_row(row);
            continue;
        }
        by_value.clear();
        by_value.extend(row.iter().map(|&(c, v)| (v, c)));
        by_value.sort_unstable();
        by_value.truncate(rho);
        kept.clear();
        kept.extend(by_value.iter().map(|&(v, c)| (c, v)));
        kept.sort_unstable_by_key(|&(c, _)| c);
        out.push_sorted_row(&kept);
    }
    out
}

/// Filtered min-plus product: `filter(S · T, rho)`, charging the Thm 58
/// round cost to `ledger` (`W` is taken from the largest value produced).
pub fn filtered_product(
    s: &SparseMatrix,
    t: &SparseMatrix,
    rho: usize,
    ledger: &mut RoundLedger,
    label: &str,
) -> SparseMatrix {
    filtered_product_with(s, t, rho, &mut MinplusWorkspace::new(), ledger, label)
}

/// [`filtered_product`] with a caller-provided workspace (scratch reuse and
/// row-sharded parallel products; round charges are unchanged).
pub fn filtered_product_with(
    s: &SparseMatrix,
    t: &SparseMatrix,
    rho: usize,
    ws: &mut MinplusWorkspace,
    ledger: &mut RoundLedger,
    label: &str,
) -> SparseMatrix {
    let product = s.minplus_with(t, ws);
    let out = filter_rows(&product, rho);
    let w = out.max_value().max(1) as u64;
    ledger.charge_filtered_minplus(label, s.density(), t.density(), rho as u64, w);
    out
}

/// Iterated filtered squaring (Claim 59): starting from the filtered
/// adjacency matrix of `g`, squares (with filtering to width `rho`)
/// `⌈log₂ d⌉` times. The resulting matrix holds, for every vertex `u`, the
/// distances to (at least) its `rho` nearest vertices among those within
/// distance `d` — the `(k,d)`-nearest object for `k = rho` (entries beyond
/// `d` may appear and are dropped here).
///
/// Rounds charged: one filtered product per iteration (Thm 10 total:
/// `O((k/n^{2/3} + log d) · log d)`).
pub fn knearest_matrix(g: &Graph, rho: usize, d: Dist, ledger: &mut RoundLedger) -> SparseMatrix {
    knearest_matrix_with(g, rho, d, &mut MinplusWorkspace::new(), ledger)
}

/// [`knearest_matrix`] with a caller-provided workspace: every squaring
/// iteration reuses the same scratch and thread configuration.
pub fn knearest_matrix_with(
    g: &Graph,
    rho: usize,
    d: Dist,
    ws: &mut MinplusWorkspace,
    ledger: &mut RoundLedger,
) -> SparseMatrix {
    let mut phase = ledger.enter("knearest-matrix");
    let mut a = filter_rows(&SparseMatrix::adjacency(g), rho);
    let mut reach: Dist = 1;
    let mut iter = 0;
    while reach < d {
        iter += 1;
        a = filtered_product_with(
            &a,
            &a,
            rho,
            ws,
            &mut phase,
            &format!("filtered square #{iter}"),
        );
        reach = reach.saturating_mul(2);
    }
    // Drop entries beyond the distance bound d.
    let n = a.n();
    let mut out = SparseMatrix::with_row_capacity(n, a.nnz());
    let mut kept: Vec<(u32, Dist)> = Vec::new();
    for i in 0..n {
        kept.clear();
        kept.extend(a.row(i).iter().copied().filter(|&(_, v)| v <= d));
        out.push_sorted_row(&kept);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::RowBuilder;
    use cc_clique::RoundLedger;
    use cc_graphs::{bfs, generators, INF};

    #[test]
    fn filter_keeps_smallest_with_id_ties() {
        let mut b = RowBuilder::new(5);
        for (c, v) in [(0, 5), (1, 2), (2, 2), (3, 1), (4, 9)] {
            b.push(0, c, v);
        }
        let f = filter_rows(&b.build(), 3);
        // Smallest: (3,1), then ties at 2 -> columns 1 and 2.
        assert_eq!(f.row(0), &[(1, 2), (2, 2), (3, 1)]);
    }

    #[test]
    fn filter_noop_when_row_small() {
        let g = generators::cycle(6);
        let a = SparseMatrix::adjacency(&g);
        let f = filter_rows(&a, 10);
        assert_eq!(f, a);
    }

    #[test]
    fn knearest_matrix_matches_reference() {
        let mut rng = seeded(21);
        for (name, g) in [
            ("grid", generators::grid(5, 4)),
            ("caveman", generators::caveman(4, 4)),
            ("gnp", generators::connected_gnp(30, 0.08, &mut rng)),
        ] {
            let mut ledger = RoundLedger::new(g.n());
            for (k, d) in [(3usize, 2u32), (5, 4), (8, 7), (100, 3)] {
                let m = knearest_matrix(&g, k, d, &mut ledger);
                for v in 0..g.n() {
                    let want = bfs::knearest_reference(&g, v, k, d);
                    let mut got: Vec<(u32, Dist)> =
                        m.row(v).iter().map(|&(c, dist)| (c, dist)).collect();
                    got.sort_unstable_by_key(|&(c, dist)| (dist, c));
                    assert_eq!(got, want, "{name} v={v} k={k} d={d}");
                }
            }
        }
    }

    #[test]
    fn workspace_and_threads_do_not_change_the_object() {
        let g = generators::caveman(4, 5);
        let serial = {
            let mut ledger = RoundLedger::new(g.n());
            knearest_matrix(&g, 6, 8, &mut ledger)
        };
        for threads in [2, 5] {
            let mut ws = MinplusWorkspace::with_threads(threads);
            let mut ledger = RoundLedger::new(g.n());
            let got = knearest_matrix_with(&g, 6, 8, &mut ws, &mut ledger);
            assert_eq!(got, serial, "threads = {threads}");
        }
    }

    #[test]
    fn knearest_matrix_respects_distance_bound() {
        let g = generators::path(12);
        let mut ledger = RoundLedger::new(12);
        let m = knearest_matrix(&g, 100, 3, &mut ledger);
        for v in 0..12 {
            for &(_, dist) in m.row(v) {
                assert!(dist <= 3);
            }
        }
        assert_eq!(m.get(0, 3), 3);
        assert_eq!(m.get(0, 4), INF);
    }

    #[test]
    fn rounds_scale_with_log_d() {
        let g = generators::cycle(256);
        let mut l1 = RoundLedger::new(256);
        let _ = knearest_matrix(&g, 8, 4, &mut l1);
        let mut l2 = RoundLedger::new(256);
        let _ = knearest_matrix(&g, 8, 64, &mut l2);
        assert!(l2.total_rounds() > l1.total_rounds());
        // log d = 6 vs 2 → roughly 3x the iterations; allow slack for the
        // per-iteration log W term growing with d.
        assert!(l2.total_rounds() <= 8 * l1.total_rounds());
    }

    #[test]
    fn d_one_is_filtered_adjacency() {
        let g = generators::star(8);
        let mut ledger = RoundLedger::new(8);
        let m = knearest_matrix(&g, 3, 1, &mut ledger);
        assert_eq!(ledger.total_rounds(), 0); // no products needed
                                              // Center keeps itself + 2 smallest leaves.
        assert_eq!(m.row(0).len(), 3);
    }

    fn seeded(s: u64) -> rand_chacha::ChaCha8Rng {
        use rand::SeedableRng;
        rand_chacha::ChaCha8Rng::seed_from_u64(s)
    }
}
