//! Fixture: float arithmetic seeded in a distance/weight path where every
//! distance is an exact `u32`.

pub fn scaled(d: u32) -> u32 {
    let w = d as f64 * 0.99; // seeded: float-ban
    w as u32
}
