//! Fixture: a `scope.spawn` closure mutating captured state instead of a
//! per-worker disjoint shard.

pub fn race(totals: &mut [u64], parts: &[u64]) {
    std::thread::scope(|scope| {
        for part in parts {
            scope.spawn(move || {
                accumulate(&mut *totals, part); // seeded: shard-capture
            });
        }
    });
}
