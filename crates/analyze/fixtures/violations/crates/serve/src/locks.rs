//! Fixture: a lock acquisition against the declared order (`inner` before
//! `readers` before `write_lock`), seeded in the serve scope.

pub fn backwards(&self) {
    let _guard = self.write_lock.lock();
    let _inner = self.inner.lock(); // seeded: lock-order
}
