//! Seeded `obs-hot-path` violation: a per-request metric resolved through
//! a `format!`-built name. Registry resolution takes the registry-wide
//! lock and allocates, so this turns a lock-free atomic increment into
//! contention (and unbounded metric cardinality) on every request. The
//! sanctioned idiom resolves the handle once at startup (`metrics.rs`)
//! and clones the `Arc` into the hot path.

pub fn record_shard(registry: &Registry, shard: usize) {
    registry.counter(&format!("ccd_shard_{shard}_total")).inc();
}
