//! Fixture: a crate root that forgot to pin `unsafe_code`.
//! seeded: unsafe-attr

pub mod mmap;
