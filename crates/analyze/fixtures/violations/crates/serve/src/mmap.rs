//! Fixture: an allowlisted unsafe module whose block lost its SAFETY
//! justification.

#![allow(unsafe_code)]

pub fn peek(p: *const u8) -> u8 {
    unsafe { *p } // seeded: safety-comment (allowlisted, so no unsafe-module)
}
