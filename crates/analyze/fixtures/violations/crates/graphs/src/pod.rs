//! Fixture: one registered POD type with its layout check, one rogue
//! `#[repr(C)]` type missing from the manifest.

pub trait Section {}

#[repr(C)]
pub struct DirEntry {
    pub id: u16,
}

impl Section for DirEntry {}

#[repr(C)]
pub struct Rogue {
    pub x: u32, // seeded: pod-manifest (unregistered type)
}
