//! Fixture: declares the attribute but still smuggles an un-justified
//! `unsafe` into a module outside the audited allowlist.

#![forbid(unsafe_code)]

pub fn sneaky(p: *const u8) -> u8 {
    unsafe { *p } // seeded: unsafe-module + safety-comment
}
