//! Fixture: unordered containers seeded in a result-affecting crate, plus
//! one counted `unordered-iter` escape hatch.

use std::collections::HashMap; // seeded: unordered-iter

pub fn tally(keys: &[u32]) -> Vec<(u32, u32)> {
    let mut m: HashMap<u32, u32> = HashMap::new(); // seeded: unordered-iter
    for &k in keys {
        *m.entry(k).or_insert(0) += 1;
    }
    // Iteration order reaches the result — exactly the hazard.
    m.into_iter().collect()
}

// cc-analyze: allow(unordered-iter) — fixture: lookup-only hatch.
pub fn lookup_only(m: &std::collections::HashMap<u32, u32>, k: u32) -> Option<u32> {
    m.get(&k).copied()
}
