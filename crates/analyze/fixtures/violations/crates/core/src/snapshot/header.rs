//! Fixture: panic-prone parsing idioms seeded in a no-panic module, plus
//! one counted escape hatch.

pub fn first(v: &[u8]) -> u8 {
    v[0] // seeded: indexing
}

pub fn count(v: &[u8]) -> u16 {
    v.len() as u16 // seeded: narrowing-cast
}

pub fn must(o: Option<u8>) -> u8 {
    o.unwrap() // seeded: unwrap-expect
}

pub fn hatch(o: Option<u8>) -> u8 {
    // cc-analyze: allow(unwrap-expect) — fixture: the counted hatch.
    o.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let v = vec![1u8];
        assert_eq!(v[0], Some(1u8).unwrap());
    }
}
