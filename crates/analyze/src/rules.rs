//! The rule engine: repo-specific invariants `rustc` cannot state.
//!
//! Each rule is lexical (over [`crate::scan`]'s code/raw line views) and
//! scoped by a path manifest kept here, in one place, so the policy is
//! reviewable as data:
//!
//! * `safety-comment` — every `unsafe` token carries a `// SAFETY:` (or
//!   `# Safety` doc) justification on or immediately above its line.
//! * `unsafe-attr` — every crate root (`lib.rs`, `main.rs`, `src/bin/*`)
//!   declares `#![forbid(unsafe_code)]` or `#![deny(unsafe_code)]`.
//! * `unsafe-module` — `unsafe` (and `allow(unsafe_code)`) appears only in
//!   the audited allowlist modules.
//! * `unwrap-expect` / `indexing` / `narrowing-cast` — panic-prone calls,
//!   bare slice indexing, and bare `as` narrowing are denied in the
//!   designated hot-path and parser modules (test code exempt).
//! * `pod-manifest` — every `#[repr(C)]` type is registered here and pairs
//!   with an `impl Section for …` compile-time layout check in its file.
//! * `unordered-iter` — `HashMap`/`HashSet` are banned in result-affecting
//!   crates; address-dependent iteration order must never reach an output.
//! * `lock-order` — `cc_serve` lock acquisitions must follow the declared
//!   total order in [`crate::concurrency::LOCK_ORDER`], cycle-free.
//! * `shard-capture` — `scope.spawn` closures may only write their own
//!   disjoint shard: no captured `&mut`, cells, or worker-side locking.
//! * `float-ban` — no `f32`/`f64` arithmetic in distance/weight paths;
//!   distances are exact `u32` end to end.
//! * `obs-hot-path` — metric handles in hot paths must be resolved once at
//!   startup; resolving through a `format!`-built name per request turns a
//!   lock-free atomic increment into registry-lock contention.
//!
//! Any finding can be waived in place with a counted escape hatch —
//! `// cc-analyze: allow(<rule>)` on the flagged line or the comment block
//! above it — so exceptions are visible in the report instead of silent.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::concurrency;
use crate::scan::{self, Line};

pub const RULE_SAFETY: &str = "safety-comment";
pub const RULE_ATTR: &str = "unsafe-attr";
pub const RULE_MODULE: &str = "unsafe-module";
pub const RULE_PANIC: &str = "unwrap-expect";
pub const RULE_INDEX: &str = "indexing";
pub const RULE_CAST: &str = "narrowing-cast";
pub const RULE_POD: &str = "pod-manifest";
pub const RULE_UNORDERED: &str = "unordered-iter";
pub const RULE_LOCK: &str = "lock-order";
pub const RULE_SHARD: &str = "shard-capture";
pub const RULE_FLOAT: &str = "float-ban";
pub const RULE_OBS: &str = "obs-hot-path";

/// Every rule id, for `--help` text and escape-hatch validation.
pub const ALL_RULES: &[&str] = &[
    RULE_SAFETY,
    RULE_ATTR,
    RULE_MODULE,
    RULE_PANIC,
    RULE_INDEX,
    RULE_CAST,
    RULE_POD,
    RULE_UNORDERED,
    RULE_LOCK,
    RULE_SHARD,
    RULE_FLOAT,
    RULE_OBS,
];

/// The only modules allowed to contain `unsafe`: POD reinterpretation,
/// the mmap syscall wrapper, the v2 zero-copy reader, and this binary's
/// counting allocator.
const UNSAFE_ALLOWLIST: &[&str] = &[
    "crates/analyze/src/main.rs",
    "crates/core/src/snapshot/v2.rs",
    "crates/graphs/src/pod.rs",
    "crates/serve/src/mmap.rs",
];

/// Hot-path and parser modules where `.unwrap()` / `.expect(` are denied
/// outside test code: a panic here takes down a serving worker or turns a
/// corrupt snapshot into an abort instead of a typed error.
const NO_PANIC: &[&str] = &[
    "crates/core/src/oracle.rs",
    "crates/core/src/path_oracle.rs",
    "crates/core/src/snapshot/atomic.rs",
    "crates/core/src/snapshot/header.rs",
    "crates/core/src/snapshot/mod.rs",
    "crates/core/src/snapshot/v2.rs",
    "crates/matrix/src/dense.rs",
    "crates/matrix/src/sparse.rs",
    "crates/obs/src/lib.rs",
    "crates/obs/src/registry.rs",
    "crates/obs/src/stage.rs",
    "crates/obs/src/text.rs",
    "crates/obs/src/trace.rs",
    "crates/serve/src/client.rs",
    "crates/serve/src/fault.rs",
    "crates/serve/src/metrics.rs",
    "crates/serve/src/mmap.rs",
    "crates/serve/src/protocol.rs",
    "crates/serve/src/queue.rs",
    "crates/serve/src/server.rs",
    "crates/serve/src/slot.rs",
    "crates/serve/src/snapshot.rs",
];

/// Parser/server modules where bare slice indexing is denied: every input
/// there is attacker-controlled (a wire frame or an on-disk snapshot), so
/// reads must be `get`-based and fail typed.
const NO_INDEXING: &[&str] = &[
    "crates/core/src/snapshot/atomic.rs",
    "crates/core/src/snapshot/header.rs",
    "crates/core/src/snapshot/mod.rs",
    "crates/core/src/snapshot/v2.rs",
    "crates/serve/src/fault.rs",
    "crates/serve/src/mmap.rs",
    "crates/serve/src/protocol.rs",
    "crates/serve/src/queue.rs",
    "crates/serve/src/server.rs",
    "crates/serve/src/slot.rs",
    "crates/serve/src/snapshot.rs",
];

/// Modules where a bare narrowing `as` cast is denied: silent truncation
/// in a writer or kernel produces a *valid-looking* snapshot or witness
/// with wrong contents, the worst failure mode this workspace has.
const NO_NARROWING: &[&str] = &[
    "crates/core/src/oracle.rs",
    "crates/core/src/path_oracle.rs",
    "crates/core/src/snapshot/header.rs",
    "crates/core/src/snapshot/mod.rs",
    "crates/core/src/snapshot/v2.rs",
    "crates/matrix/src/dense.rs",
    "crates/matrix/src/sparse.rs",
    "crates/serve/src/fault.rs",
    "crates/serve/src/protocol.rs",
    "crates/serve/src/server.rs",
    "crates/serve/src/slot.rs",
    "crates/serve/src/snapshot.rs",
];

/// The POD registry: every `#[repr(C)]` type in the workspace, by file.
/// A type here must also carry an `impl Section for …` in the same file,
/// tying its declared wire layout to the compile-time assertions in
/// `cc_graphs::pod`.
const POD_MANIFEST: &[(&str, &str)] = &[("crates/graphs/src/pod.rs", "DirEntry")];

/// Cast targets treated as narrowing when written with bare `as`.
const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Result-affecting crates where `HashMap`/`HashSet` are banned outright
/// (entries ending in `/` are directory prefixes): address-dependent
/// iteration order anywhere in these crates can leak into outputs the
/// parallel-equals-serial contract pins bit-for-bit. Use `BTreeMap`/
/// `BTreeSet` or sort after collecting; a counted
/// `cc-analyze: allow(unordered-iter)` hatch waives a lookup-only use.
const UNORDERED_SCOPES: &[&str] = &[
    "crates/core/src/",
    "crates/derand/src/",
    "crates/emulator/src/",
    "crates/matrix/src/",
    "crates/routes/src/",
    "crates/toolkit/src/",
];

/// Distance/weight-path modules where `f32`/`f64` arithmetic is banned:
/// every distance in this workspace is an exact `u32` (`cc_graphs::Dist`),
/// and a float sneaking into a kernel or comparator turns bit-identical
/// parallel replay into a rounding lottery. Parameter-space math (ε, β,
/// sampling probabilities) lives outside these modules by design.
const FLOAT_BAN: &[&str] = &[
    "crates/clique/src/engine.rs",
    "crates/clique/src/message.rs",
    "crates/graphs/src/bfs.rs",
    "crates/graphs/src/dijkstra.rs",
    "crates/graphs/src/dist.rs",
    "crates/graphs/src/graph.rs",
    "crates/matrix/src/",
    "crates/obs/src/",
    "crates/routes/src/",
];

/// Modules subject to the `lock-order` analysis: the serving daemon, the
/// one place in the workspace where multiple locks coexist.
const LOCK_SCOPE: &[&str] = &["crates/serve/src/"];

/// Hot-path scopes where resolving a metric through a `format!`-built name
/// is denied: `Registry` resolution takes the registry-wide lock and
/// allocates, so per-request name construction turns a lock-free atomic
/// increment into contention (and unbounded metric cardinality). Resolve
/// handles once at startup (`crates/serve/src/metrics.rs`) and clone the
/// `Arc`s into the hot path.
const OBS_SCOPES: &[&str] = &["crates/core/src/", "crates/serve/src/"];

/// One diagnostic, formatted `path:line: [rule] message`.
#[derive(Debug)]
pub struct Finding {
    pub path: String,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// The outcome of a workspace pass.
#[derive(Debug, Default)]
pub struct Report {
    /// Files scanned (after the vendor/target/fixtures skips).
    pub files: usize,
    /// Rule violations, sorted by path then line.
    pub findings: Vec<Finding>,
    /// Counted escape hatches, by rule.
    pub allows: BTreeMap<&'static str, usize>,
}

impl Report {
    /// Total escape hatches exercised.
    pub fn allow_count(&self) -> usize {
        self.allows.values().sum()
    }
}

/// Runs every rule over the `.rs` files under `root` (skipping `vendor/`,
/// `target/`, `fixtures/`, and `.git/`) and returns the combined report.
pub fn check_root(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    collect_rs(root, Path::new(""), &mut files)?;
    files.sort();

    let mut report = Report::default();
    let mut seen_pod: Vec<(String, String)> = Vec::new();
    let mut lock_edges: Vec<LockEdgeAt> = Vec::new();
    for rel in &files {
        let text = fs::read_to_string(root.join(rel))?;
        check_file(rel, &text, &mut report, &mut seen_pod, &mut lock_edges);
    }
    report.files = files.len();
    lock_cycle_findings(&lock_edges, &mut report);

    // The manifest must stay live: an entry whose type vanished is stale.
    for (path, ty) in POD_MANIFEST {
        let present = seen_pod.iter().any(|(p, t)| p == path && t == ty);
        if files.iter().any(|f| f == path) && !present {
            report.findings.push(Finding {
                path: (*path).to_string(),
                line: 1,
                rule: RULE_POD,
                message: format!(
                    "stale manifest entry: `#[repr(C)] {ty}` no longer found in this file"
                ),
            });
        }
    }

    report
        .findings
        .sort_by(|a, b| a.path.cmp(&b.path).then(a.line.cmp(&b.line)));
    Ok(report)
}

/// Runs every per-file rule over one source text (exposed for tests and
/// the self-test fixture pass).
pub fn check_source(rel: &str, text: &str) -> Report {
    let mut report = Report::default();
    let mut seen_pod = Vec::new();
    let mut lock_edges = Vec::new();
    check_file(rel, text, &mut report, &mut seen_pod, &mut lock_edges);
    lock_cycle_findings(&lock_edges, &mut report);
    report.files = 1;
    report
}

fn collect_rs(root: &Path, rel: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(root.join(rel))?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let name = entry.file_name().to_string_lossy().into_owned();
        if entry.file_type()?.is_dir() {
            if matches!(name.as_str(), "target" | "vendor" | "fixtures" | ".git") {
                continue;
            }
            collect_rs(root, &rel.join(&name), out)?;
        } else if name.ends_with(".rs") {
            let p: PathBuf = rel.join(&name);
            out.push(p.to_string_lossy().replace('\\', "/"));
        }
    }
    Ok(())
}

fn is_crate_root(rel: &str) -> bool {
    rel == "src/lib.rs"
        || rel == "src/main.rs"
        || rel.ends_with("/src/lib.rs")
        || rel.ends_with("/src/main.rs")
        || rel.contains("/src/bin/")
}

fn in_list(list: &[&str], rel: &str) -> bool {
    list.contains(&rel)
}

/// Scope test that also understands directory prefixes: an entry ending in
/// `/` matches every file under that directory.
fn in_scope(list: &[&str], rel: &str) -> bool {
    list.iter()
        .any(|e| *e == rel || (e.ends_with('/') && rel.starts_with(e)))
}

/// One lock acquisition edge observed in a file, for workspace-wide cycle
/// detection: `(path, held, acquired, 1-based line)`.
type LockEdgeAt = (String, &'static str, &'static str, usize);

fn check_file(
    rel: &str,
    text: &str,
    report: &mut Report,
    seen_pod: &mut Vec<(String, String)>,
    lock_edges: &mut Vec<LockEdgeAt>,
) {
    let lines = scan::scan_source(text);
    let unsafe_ok = in_list(UNSAFE_ALLOWLIST, rel);

    let emit = |report: &mut Report, lines: &[Line], idx: usize, rule, message: String| {
        if escape_hatch(lines, idx, rule) {
            *report.allows.entry(rule).or_insert(0) += 1;
        } else {
            report.findings.push(Finding {
                path: rel.to_string(),
                line: idx + 1,
                rule,
                message,
            });
        }
    };

    if is_crate_root(rel) {
        let has_attr = lines.iter().any(|l| {
            l.code.contains("#![forbid(unsafe_code)]") || l.code.contains("#![deny(unsafe_code)]")
        });
        if !has_attr {
            emit(
                report,
                &lines,
                0,
                RULE_ATTR,
                "crate root lacks #![forbid(unsafe_code)] / #![deny(unsafe_code)]".to_string(),
            );
        }
    }

    for idx in 0..lines.len() {
        let line = &lines[idx];
        let code = line.code.as_str();

        if has_word(code, "unsafe") {
            if !unsafe_ok {
                emit(
                    report,
                    &lines,
                    idx,
                    RULE_MODULE,
                    "`unsafe` outside the audited allowlist modules".to_string(),
                );
            }
            if !has_safety_comment(&lines, idx) {
                emit(
                    report,
                    &lines,
                    idx,
                    RULE_SAFETY,
                    "`unsafe` without a // SAFETY: justification".to_string(),
                );
            }
        }
        if !unsafe_ok && code.contains("allow(unsafe_code)") {
            emit(
                report,
                &lines,
                idx,
                RULE_MODULE,
                "`allow(unsafe_code)` outside the audited allowlist modules".to_string(),
            );
        }

        if !line.in_test {
            if in_list(NO_PANIC, rel) && (code.contains(".unwrap()") || code.contains(".expect(")) {
                emit(
                    report,
                    &lines,
                    idx,
                    RULE_PANIC,
                    "`.unwrap()`/`.expect(` in a no-panic module".to_string(),
                );
            }
            if in_list(NO_INDEXING, rel) && has_indexing(code) {
                emit(
                    report,
                    &lines,
                    idx,
                    RULE_INDEX,
                    "bare slice indexing in a parser/server module (use `.get(..)`)".to_string(),
                );
            }
            if in_list(NO_NARROWING, rel) {
                if let Some(target) = narrowing_target(code) {
                    emit(
                        report,
                        &lines,
                        idx,
                        RULE_CAST,
                        format!("bare `as {target}` narrowing (use a checked conversion)"),
                    );
                }
            }
            if in_scope(UNORDERED_SCOPES, rel)
                && (has_word(code, "HashMap") || has_word(code, "HashSet"))
            {
                emit(
                    report,
                    &lines,
                    idx,
                    RULE_UNORDERED,
                    "HashMap/HashSet in a result-affecting crate (use BTreeMap/BTreeSet \
                     or sort after collecting)"
                        .to_string(),
                );
            }
            if in_scope(FLOAT_BAN, rel)
                && (has_word(code, "f32")
                    || has_word(code, "f64")
                    || concurrency::has_float_literal(code))
            {
                emit(
                    report,
                    &lines,
                    idx,
                    RULE_FLOAT,
                    "float arithmetic in a distance/weight path (distances are exact u32)"
                        .to_string(),
                );
            }
            if in_scope(OBS_SCOPES, rel)
                && code.contains("format!")
                && (code.contains(".counter(")
                    || code.contains(".gauge(")
                    || code.contains(".histogram("))
            {
                emit(
                    report,
                    &lines,
                    idx,
                    RULE_OBS,
                    "metric resolved through a format!-built name in a hot path \
                     (resolve the handle once at startup and reuse it)"
                        .to_string(),
                );
            }
        }

        if code.contains("#[repr(C") {
            if let Some((ty_idx, ty)) = find_repr_type(&lines, idx) {
                seen_pod.push((rel.to_string(), ty.clone()));
                let registered = POD_MANIFEST.iter().any(|(p, t)| *p == rel && *t == ty);
                if !registered {
                    emit(
                        report,
                        &lines,
                        ty_idx,
                        RULE_POD,
                        format!("unregistered #[repr(C)] type `{ty}` (add it to POD_MANIFEST)"),
                    );
                } else if !text.contains(&format!("impl Section for {ty}")) {
                    emit(
                        report,
                        &lines,
                        ty_idx,
                        RULE_POD,
                        format!("`{ty}` lacks an `impl Section for` compile-time layout check"),
                    );
                }
            }
        }
    }

    // Whole-file concurrency passes (the per-line loop above cannot see
    // guard liveness or closure extents).
    for diag in concurrency::shard_capture(&lines) {
        emit(report, &lines, diag.line, RULE_SHARD, diag.message);
    }
    if in_scope(LOCK_SCOPE, rel) {
        let (diags, edges) = concurrency::lock_order(&lines);
        for diag in diags {
            emit(report, &lines, diag.line, RULE_LOCK, diag.message);
        }
        for e in edges {
            lock_edges.push((rel.to_string(), e.held, e.acquired, e.line + 1));
        }
    }
}

/// Workspace-wide cycle check over the aggregated lock acquisition graph.
/// The per-site rank check already rejects every descending edge, but the
/// aggregate pass also catches a cycle assembled from edges that are each
/// waived by an escape hatch in its own file.
fn lock_cycle_findings(edges: &[LockEdgeAt], report: &mut Report) {
    let n = concurrency::LOCK_ORDER.len();
    let idx = |name: &str| concurrency::LOCK_ORDER.iter().position(|l| *l == name);
    let mut adj = vec![vec![false; n]; n];
    for (_, held, acquired, _) in edges {
        if let (Some(h), Some(a)) = (idx(held), idx(acquired)) {
            adj[h][a] = true;
        }
    }
    // Floyd–Warshall reachability; a cycle is a node reaching itself.
    let mut reach = adj.clone();
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                reach[i][j] = reach[i][j]
                    || (reach.get(i).is_some_and(|r| r[k]) && reach.get(k).is_some_and(|r| r[j]));
            }
        }
    }
    for (start, row) in reach.iter().enumerate() {
        if !row.get(start).copied().unwrap_or(false) {
            continue;
        }
        // Blame the first recorded edge that leaves this node inside the
        // cycle, so the diagnostic lands on a real acquisition site.
        if let Some((path, held, acquired, line)) = edges.iter().find(|(_, h, a, _)| {
            idx(h) == Some(start) && idx(a).is_some_and(|a| reach[a][start] || a == start)
        }) {
            report.findings.push(Finding {
                path: path.clone(),
                line: *line,
                rule: RULE_LOCK,
                message: format!(
                    "lock acquisition cycle through `{held}` → `{acquired}` \
                     (declared order {:?})",
                    concurrency::LOCK_ORDER
                ),
            });
        }
    }
}

/// True when `word` appears in `code` at identifier boundaries.
fn has_word(code: &str, word: &str) -> bool {
    let b = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code.get(from..).and_then(|s| s.find(word)) {
        let start = from + pos;
        let end = start + word.len();
        let pre = start
            .checked_sub(1)
            .and_then(|p| b.get(p))
            .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_');
        let post = b
            .get(end)
            .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_');
        if !pre && !post {
            return true;
        }
        from = end;
    }
    false
}

/// A SAFETY justification counts on the flagged line itself or in the
/// contiguous comment/attribute block immediately above it.
fn has_safety_comment(lines: &[Line], idx: usize) -> bool {
    let hit = |raw: &str| raw.contains("SAFETY:") || raw.contains("# Safety");
    if hit(&lines[idx].raw) {
        return true;
    }
    let mut k = idx;
    while k > 0 {
        k -= 1;
        let t = lines[k].raw.trim_start();
        if t.starts_with("//") || t.starts_with("#[") || t.starts_with("#![") {
            if hit(&lines[k].raw) {
                return true;
            }
        } else {
            break;
        }
    }
    false
}

/// The escape hatch: `// cc-analyze: allow(<rule>)` on the flagged line or
/// in the comment/attribute block immediately above it.
fn escape_hatch(lines: &[Line], idx: usize, rule: &str) -> bool {
    let needle = format!("cc-analyze: allow({rule})");
    if lines[idx].raw.contains(&needle) {
        return true;
    }
    let mut k = idx;
    while k > 0 {
        k -= 1;
        let t = lines[k].raw.trim_start();
        if t.starts_with("//") || t.starts_with("#[") || t.starts_with("#![") {
            if lines[k].raw.contains(&needle) {
                return true;
            }
        } else {
            break;
        }
    }
    false
}

/// Detects `expr[...]` indexing: a `[` whose previous non-space character
/// ends an expression (identifier, `)`, `]`, or `?`), excluding keywords
/// (`mut`, `in`, `return`, …) that introduce array/slice literals.
fn has_indexing(code: &str) -> bool {
    const KEYWORDS: &[&str] = &[
        "mut", "in", "return", "if", "else", "match", "loop", "while", "break", "ref", "move",
        "as", "const", "static",
    ];
    let b = code.as_bytes();
    for i in 0..b.len() {
        if b[i] != b'[' {
            continue;
        }
        let Some(p) = (0..i).rev().find(|&p| b[p] != b' ') else {
            continue;
        };
        let c = b[p];
        if c == b')' || c == b']' || c == b'?' {
            return true;
        }
        if c.is_ascii_alphanumeric() || c == b'_' {
            let start = (0..=p)
                .rev()
                .find(|&q| !(b[q].is_ascii_alphanumeric() || b[q] == b'_'));
            // `&'a [u8]` — a lifetime before `[` is a type position, not
            // an indexing expression.
            if start.is_some_and(|s| b[s] == b'\'') {
                continue;
            }
            let word = match start {
                Some(s) => code.get(s + 1..=p),
                None => code.get(..=p),
            };
            // A non-boundary slice means a non-ASCII token — treat it as
            // an expression and flag it rather than panic.
            if !word.is_some_and(|w| KEYWORDS.contains(&w)) {
                return true;
            }
        }
    }
    false
}

/// Returns the first narrowing `as <ty>` cast target on the line, if any.
fn narrowing_target(code: &str) -> Option<&'static str> {
    let b = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code.get(from..).and_then(|s| s.find("as")) {
        let start = from + pos;
        let end = start + 2;
        from = end;
        let pre = start
            .checked_sub(1)
            .and_then(|p| b.get(p))
            .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_');
        let post = b
            .get(end)
            .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_');
        if pre || post {
            continue;
        }
        let rest = code.get(end..).unwrap_or("").trim_start();
        let ty: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if let Some(t) = NARROW_TARGETS.iter().find(|t| **t == ty) {
            return Some(t);
        }
    }
    None
}

/// Finds the type declaration a `#[repr(C…)]` attribute applies to,
/// scanning past interleaved attributes/derives.
fn find_repr_type(lines: &[Line], attr_idx: usize) -> Option<(usize, String)> {
    for (j, line) in lines.iter().enumerate().skip(attr_idx).take(8) {
        for kw in ["struct", "enum", "union"] {
            if let Some(pos) = find_word(&line.code, kw) {
                let after = line.code.get(pos + kw.len()..)?.trim_start();
                let name: String = after
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if !name.is_empty() {
                    return Some((j, name));
                }
            }
        }
    }
    None
}

pub(crate) fn find_word(code: &str, word: &str) -> Option<usize> {
    let b = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code.get(from..).and_then(|s| s.find(word)) {
        let start = from + pos;
        let end = start + word.len();
        let pre = start
            .checked_sub(1)
            .and_then(|p| b.get(p))
            .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_');
        let post = b
            .get(end)
            .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_');
        if !pre && !post {
            return Some(start);
        }
        from = end;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(report: &Report) -> Vec<&'static str> {
        report.findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn unsafe_without_safety_comment_is_flagged() {
        let r = check_source("crates/graphs/src/pod.rs", "fn f() { unsafe { g() } }\n");
        assert_eq!(rules_of(&r), vec![RULE_SAFETY]);
    }

    #[test]
    fn safety_comment_above_or_inline_satisfies() {
        for src in [
            "// SAFETY: g is idempotent.\nfn f() { unsafe { g() } }\n",
            "fn f() { unsafe { g() } } // SAFETY: g is idempotent.\n",
            "/// # Safety\n/// Caller pins the buffer.\npub unsafe trait T {}\n",
        ] {
            let r = check_source("crates/graphs/src/pod.rs", src);
            assert!(r.findings.is_empty(), "{src:?} -> {:?}", r.findings);
        }
    }

    #[test]
    fn unsafe_outside_allowlist_is_flagged() {
        let r = check_source(
            "crates/core/src/oracle.rs",
            "// SAFETY: still not allowed here.\nfn f() { unsafe { g() } }\n",
        );
        assert_eq!(rules_of(&r), vec![RULE_MODULE]);
    }

    #[test]
    fn crate_roots_must_pin_unsafe_code() {
        let r = check_source("crates/core/src/lib.rs", "pub mod oracle;\n");
        assert_eq!(rules_of(&r), vec![RULE_ATTR]);
        let ok = check_source(
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\npub mod oracle;\n",
        );
        assert!(ok.findings.is_empty());
    }

    #[test]
    fn panic_indexing_and_casts_fire_only_outside_tests() {
        let src = concat!(
            "fn f(v: &[u8]) -> u8 { v[0] }\n",
            "fn g(n: usize) -> u16 { n as u16 }\n",
            "fn h(o: Option<u8>) -> u8 { o.unwrap() }\n",
            "#[cfg(test)]\n",
            "mod tests { fn t(v: &[u8]) { v[0]; None::<u8>.unwrap(); } }\n",
        );
        let r = check_source("crates/core/src/snapshot/v2.rs", src);
        let mut rules = rules_of(&r);
        rules.sort();
        assert_eq!(rules, vec![RULE_INDEX, RULE_CAST, RULE_PANIC]);
    }

    #[test]
    fn string_and_comment_contents_do_not_fire() {
        let src = "fn f() { log(\"call .unwrap() on v[0] as u16\"); } // v[0] as u8\n";
        let r = check_source("crates/core/src/snapshot/v2.rs", src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn escape_hatch_suppresses_and_counts() {
        let src = concat!(
            "fn f(o: Option<u8>) -> u8 {\n",
            "    // cc-analyze: allow(unwrap-expect) — checked by caller.\n",
            "    o.unwrap()\n",
            "}\n",
        );
        let r = check_source("crates/core/src/oracle.rs", src);
        assert!(r.findings.is_empty());
        assert_eq!(r.allows.get(RULE_PANIC), Some(&1));
    }

    #[test]
    fn unregistered_repr_c_is_flagged() {
        let r = check_source(
            "crates/serve/src/protocol.rs",
            "#[repr(C)]\n#[derive(Clone, Copy)]\npub struct Rogue { a: u32 }\n",
        );
        assert_eq!(rules_of(&r), vec![RULE_POD]);
        assert!(r.findings[0].message.contains("Rogue"));
    }

    #[test]
    fn registered_pod_needs_section_impl() {
        let src = "#[repr(C)]\npub struct DirEntry { a: u32 }\n";
        let r = check_source("crates/graphs/src/pod.rs", src);
        assert_eq!(rules_of(&r), vec![RULE_POD]);
        let with_impl = format!("{src}impl Section for DirEntry {{}}\n");
        let ok = check_source("crates/graphs/src/pod.rs", &with_impl);
        assert!(ok.findings.is_empty());
    }

    #[test]
    fn hash_containers_are_banned_in_result_affecting_crates() {
        let src = "use std::collections::HashMap;\nfn f() -> HashMap<u32, u32> { todo!() }\n";
        let r = check_source("crates/core/src/pipeline.rs", src);
        assert_eq!(rules_of(&r), vec![RULE_UNORDERED, RULE_UNORDERED]);
        // Out of scope: the analyzer itself may use what it likes.
        let ok = check_source("crates/analyze/src/rules.rs", src);
        assert!(ok.findings.is_empty());
        // BTree replacements are the sanctioned fix.
        let ok = check_source(
            "crates/core/src/pipeline.rs",
            "use std::collections::BTreeMap;\n",
        );
        assert!(ok.findings.is_empty());
    }

    #[test]
    fn unordered_iter_hatch_counts() {
        let src = concat!(
            "// cc-analyze: allow(unordered-iter) — lookup only, never iterated.\n",
            "use std::collections::HashMap;\n",
        );
        let r = check_source("crates/matrix/src/dense.rs", src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.allows.get(RULE_UNORDERED), Some(&1));
    }

    #[test]
    fn floats_are_banned_in_distance_paths() {
        for src in [
            "fn f(d: u32) -> f64 { d as f64 }\n",
            "fn g(w: u32) -> u32 { (w * 3) / 2 + (0.5 as u32) }\n",
        ] {
            let r = check_source("crates/matrix/src/sparse.rs", src);
            assert!(
                rules_of(&r).contains(&RULE_FLOAT),
                "{src:?} -> {:?}",
                r.findings
            );
        }
        // Integer ranges and tuple fields do not fire.
        let ok = check_source(
            "crates/matrix/src/sparse.rs",
            "fn h(v: &[(u32, u32)]) -> u32 { (0..4).map(|i| v[i].0).sum() }\n",
        );
        assert!(!rules_of(&ok).contains(&RULE_FLOAT), "{:?}", ok.findings);
    }

    #[test]
    fn lock_order_violation_is_reported_with_the_lock_rule() {
        let src = concat!(
            "fn f(&self) {\n",
            "    let _g = self.write_lock.lock();\n",
            "    let _i = self.inner.lock();\n",
            "}\n",
        );
        let r = check_source("crates/serve/src/server.rs", src);
        assert!(rules_of(&r).contains(&RULE_LOCK), "{:?}", r.findings);
        // The same text outside the serve scope is not analyzed.
        let ok = check_source("crates/clique/src/engine.rs", src);
        assert!(ok.findings.is_empty(), "{:?}", ok.findings);
    }

    #[test]
    fn shard_capture_violation_is_reported() {
        let src = concat!(
            "fn f(totals: &mut [u64]) {\n",
            "    std::thread::scope(|scope| {\n",
            "        scope.spawn(|| { totals[0] += 1; push(&mut totals); });\n",
            "    });\n",
            "}\n",
        );
        let r = check_source("crates/matrix/src/dense.rs", src);
        assert!(rules_of(&r).contains(&RULE_SHARD), "{:?}", r.findings);
    }

    #[test]
    fn formatted_metric_names_are_banned_in_hot_paths() {
        let src = "fn f(reg: &Registry, shard: usize) {\n    \
                   reg.counter(&format!(\"ccd_shard_{shard}_total\")).inc();\n}\n";
        let r = check_source("crates/serve/src/hot.rs", src);
        assert_eq!(rules_of(&r), vec![RULE_OBS]);
        // A literal name resolved once (the metrics.rs idiom) is fine.
        let ok = check_source(
            "crates/serve/src/hot.rs",
            "fn g(reg: &Registry) -> Counter { reg.counter(\"ccd_served_total\") }\n",
        );
        assert!(ok.findings.is_empty(), "{:?}", ok.findings);
        // Outside the hot-path scopes (benches, tools) the pattern is allowed.
        let ok = check_source("crates/bench/src/load.rs", src);
        assert!(ok.findings.is_empty(), "{:?}", ok.findings);
    }

    #[test]
    fn widening_casts_are_not_narrowing() {
        let r = check_source(
            "crates/core/src/oracle.rs",
            "fn f(x: u8) -> u64 { x as u64 }\nfn g(x: u32) -> usize { x as usize }\n",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }
}
