//! The `cc-analyze` CLI: `check`, `selftest`, and `fuzz`.
//!
//! * `check [--root DIR]` — run every rule over the workspace; nonzero
//!   exit on any finding, `path:line: [rule] message` diagnostics.
//! * `selftest` — run the engine over the committed fixture tree of
//!   seeded violations and assert it finds exactly the expected set;
//!   nonzero exit (with a diff) if the engine goes blind or noisy.
//! * `fuzz --iters N [--seed S] [--corpus DIR] [--emit-corpus DIR]` —
//!   seeded mutation fuzzing of the snapshot loaders, with the process
//!   global allocator instrumented so unbounded-allocation regressions
//!   fail the run, not the host.

#![deny(unsafe_code)]

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use cc_analyze::{fuzz, rules, schedule};

/// The fuzzer's allocation-bound probe needs a counting global allocator;
/// this is the one `unsafe` in the crate (and it is in the analyzer's own
/// allowlist, so `check` audits the file you are reading).
#[allow(unsafe_code)]
mod counting_alloc {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicUsize, Ordering};

    static CURRENT: AtomicUsize = AtomicUsize::new(0);
    static PEAK: AtomicUsize = AtomicUsize::new(0);

    pub struct CountingAlloc;

    // SAFETY: every call forwards verbatim to `System`, which satisfies
    // the GlobalAlloc contract; the atomic bookkeeping around the calls
    // never touches the returned memory.
    unsafe impl GlobalAlloc for CountingAlloc {
        // SAFETY: unsafe-to-call per the trait; the caller passes a valid
        // nonzero layout, which is forwarded untouched.
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            // SAFETY: same layout the caller passed us; System upholds
            // the allocation contract for it.
            let p = unsafe { System.alloc(layout) };
            if !p.is_null() {
                let live = CURRENT.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
                PEAK.fetch_max(live, Ordering::Relaxed);
            }
            p
        }

        // SAFETY: unsafe-to-call per the trait; `ptr`/`layout` are the
        // pair the caller got from `alloc`, forwarded untouched.
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
            // SAFETY: `ptr`/`layout` form the pair the caller obtained
            // from `alloc` above, forwarded unchanged.
            unsafe { System.dealloc(ptr, layout) }
        }
    }

    /// Resets the peak to the current live-byte count.
    pub fn reset_peak() {
        PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Peak live bytes since the last [`reset_peak`].
    pub fn peak_bytes() -> usize {
        PEAK.load(Ordering::Relaxed)
    }
}

#[global_allocator]
static ALLOC: counting_alloc::CountingAlloc = counting_alloc::CountingAlloc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("selftest") => cmd_selftest(),
        Some("fuzz") => cmd_fuzz(&args[1..]),
        Some("schedule") => cmd_schedule(&args[1..]),
        _ => {
            eprintln!(
                "usage: cc-analyze <check [--root DIR] | selftest | \
                 fuzz [--iters N] [--seed S] [--corpus DIR] [--emit-corpus DIR] | \
                 schedule [--iters N] [--seed S] [--threads T]>\n\
                 rules: {}",
                rules::ALL_RULES.join(", ")
            );
            ExitCode::from(2)
        }
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn cmd_check(args: &[String]) -> ExitCode {
    let root = PathBuf::from(flag_value(args, "--root").unwrap_or("."));
    if !root.join("Cargo.toml").exists() {
        eprintln!(
            "cc-analyze: {} does not look like a workspace root (no Cargo.toml); \
             run from the repo root or pass --root",
            root.display()
        );
        return ExitCode::from(2);
    }
    let report = match rules::check_root(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cc-analyze: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    for f in &report.findings {
        println!("{f}");
    }
    let hatches: Vec<String> = report
        .allows
        .iter()
        .map(|(rule, n)| format!("{rule}: {n}"))
        .collect();
    println!(
        "cc-analyze: {} files scanned, {} findings, {} escape hatches [{}]",
        report.files,
        report.findings.len(),
        report.allow_count(),
        hatches.join(", ")
    );
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The violations the committed fixture tree seeds, as (path, rule) pairs.
/// `selftest` fails on any miss *or* any extra finding, so both engine
/// blindness and engine noise break the gate.
const EXPECTED_FIXTURE_FINDINGS: &[(&str, &str)] = &[
    ("crates/core/src/lib.rs", rules::RULE_MODULE),
    ("crates/core/src/lib.rs", rules::RULE_SAFETY),
    ("crates/core/src/snapshot/header.rs", rules::RULE_PANIC),
    ("crates/core/src/snapshot/header.rs", rules::RULE_INDEX),
    ("crates/core/src/snapshot/header.rs", rules::RULE_CAST),
    ("crates/core/src/unordered.rs", rules::RULE_UNORDERED),
    ("crates/graphs/src/pod.rs", rules::RULE_POD),
    ("crates/matrix/src/floaty.rs", rules::RULE_FLOAT),
    ("crates/matrix/src/shard.rs", rules::RULE_SHARD),
    ("crates/serve/src/hotmetrics.rs", rules::RULE_OBS),
    ("crates/serve/src/lib.rs", rules::RULE_ATTR),
    ("crates/serve/src/locks.rs", rules::RULE_LOCK),
    ("crates/serve/src/mmap.rs", rules::RULE_SAFETY),
];

fn cmd_selftest() -> ExitCode {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/violations");
    let report = match rules::check_root(&fixture) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cc-analyze selftest: cannot scan fixture tree: {e}");
            return ExitCode::FAILURE;
        }
    };

    let got: BTreeSet<(String, &'static str)> = report
        .findings
        .iter()
        .map(|f| (f.path.clone(), f.rule))
        .collect();
    let want: BTreeSet<(String, &'static str)> = EXPECTED_FIXTURE_FINDINGS
        .iter()
        .map(|(p, r)| ((*p).to_string(), *r))
        .collect();

    let mut failed = false;
    for missing in want.difference(&got) {
        eprintln!(
            "selftest: engine MISSED a seeded violation: {}: [{}]",
            missing.0, missing.1
        );
        failed = true;
    }
    for extra in got.difference(&want) {
        eprintln!(
            "selftest: engine reported an UNSEEDED finding: {}: [{}]",
            extra.0, extra.1
        );
        failed = true;
    }
    if report.allow_count() == 0 {
        eprintln!("selftest: the fixture's escape hatch was not counted");
        failed = true;
    }

    for f in &report.findings {
        println!("{f}");
    }
    if failed {
        eprintln!("cc-analyze selftest: FAILED");
        ExitCode::FAILURE
    } else {
        println!(
            "cc-analyze selftest: ok — {} seeded findings detected, {} escape hatch(es) counted",
            report.findings.len(),
            report.allow_count()
        );
        ExitCode::SUCCESS
    }
}

fn cmd_schedule(args: &[String]) -> ExitCode {
    let defaults = schedule::ScheduleConfig::default();
    let parse = |flag: &str, default: u64| -> Result<u64, ExitCode> {
        match flag_value(args, flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| {
                eprintln!("cc-analyze schedule: {flag} expects an integer");
                ExitCode::from(2)
            }),
        }
    };
    let cfg = schedule::ScheduleConfig {
        iters: match parse("--iters", defaults.iters) {
            Ok(v) => v,
            Err(c) => return c,
        },
        seed: match parse("--seed", defaults.seed) {
            Ok(v) => v,
            Err(c) => return c,
        },
        max_threads: match parse("--threads", defaults.max_threads as u64) {
            Ok(v) => v as usize,
            Err(c) => return c,
        },
    };

    let summary = schedule::run(&cfg);
    println!(
        "cc-analyze schedule: {} perturbed iterations (seed {:#x}, ≤{} threads)",
        summary.iterations, cfg.seed, cfg.max_threads
    );
    println!(
        "  kernel/engine comparisons: {} — all bit-identical to serial: {}",
        summary.comparisons,
        summary.failures.is_empty()
    );
    println!("  loopback ccd bursts: {}", summary.serve_bursts);
    if summary.failures.is_empty() {
        println!("  determinism held under every perturbed schedule");
        ExitCode::SUCCESS
    } else {
        for f in &summary.failures {
            eprintln!("  FAILURE: {f}");
        }
        ExitCode::FAILURE
    }
}

fn cmd_fuzz(args: &[String]) -> ExitCode {
    let iters: u64 = match flag_value(args, "--iters").unwrap_or("1000").parse() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("cc-analyze fuzz: --iters expects an integer");
            return ExitCode::from(2);
        }
    };
    let seed: u64 = match flag_value(args, "--seed").unwrap_or("23982").parse() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("cc-analyze fuzz: --seed expects an integer");
            return ExitCode::from(2);
        }
    };
    let corpus_dir = PathBuf::from(flag_value(args, "--corpus").unwrap_or("tests/golden"));
    let corpus = match fuzz::load_corpus(&corpus_dir) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cc-analyze fuzz: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(out) = flag_value(args, "--emit-corpus") {
        return match fuzz::emit_corpus(&corpus, Path::new(out)) {
            Ok(manifest) => {
                println!(
                    "cc-analyze fuzz: froze {} abuse cases into {out}",
                    manifest.len()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("cc-analyze fuzz: emit failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let probe = fuzz::AllocProbe {
        reset_peak: counting_alloc::reset_peak,
        peak_bytes: counting_alloc::peak_bytes,
    };
    let summary = fuzz::run(&corpus, iters, seed, Some(probe));

    println!(
        "cc-analyze fuzz: {} iterations over {} golden snapshots (seed {seed:#x})",
        summary.iterations,
        corpus.len()
    );
    println!(
        "  clean loads: {} (mutation survived validation)",
        summary.clean_loads
    );
    for (kind, n) in &summary.rejections {
        println!("  rejected as {kind}: {n}");
    }
    println!(
        "  peak single-load allocation: {} bytes",
        summary.peak_alloc
    );
    if summary.failures.is_empty() {
        println!("  contract held: no panics, no allocation blow-ups");
        ExitCode::SUCCESS
    } else {
        for f in &summary.failures {
            eprintln!("  FAILURE: {f}");
        }
        ExitCode::FAILURE
    }
}
