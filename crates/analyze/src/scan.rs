//! A minimal Rust surface lexer for the rule engine.
//!
//! The analyzer does not parse Rust — it classifies *lines*. What it needs
//! from a lexer is exactly three things, and nothing more:
//!
//! 1. a `code` view of every line with comment text and string/char
//!    literal *contents* blanked out (so `".unwrap()"` inside a string or
//!    a doc comment never trips a rule),
//! 2. the untouched `raw` line (so `// SAFETY:` justifications and
//!    `// cc-analyze: allow(...)` escape hatches — which live in comments —
//!    stay visible), and
//! 3. an `in_test` flag marking `#[cfg(test)]` items, where the panic
//!    rules do not apply.
//!
//! Blanking preserves byte positions within a line and every newline, so
//! `raw` and `code` stay in lockstep line-by-line. The state machine
//! handles nested block comments, regular/byte strings with escapes, raw
//! strings with arbitrary `#` fences, and the char-literal/lifetime
//! ambiguity — the corners where a naive regex over Rust text lies.

/// One source line in both views, plus its test-region flag.
#[derive(Debug)]
pub struct Line {
    /// The original line, comments and all.
    pub raw: String,
    /// The line with comments and literal contents replaced by spaces.
    pub code: String,
    /// True inside a `#[cfg(test)]` item (attribute line included).
    pub in_test: bool,
}

/// Lexes `text` into per-line raw/code views and marks test regions.
pub fn scan_source(text: &str) -> Vec<Line> {
    let blanked = blank_noncode(text);
    let mut lines: Vec<Line> = text
        .lines()
        .zip(blanked.lines().chain(std::iter::repeat("")))
        .map(|(raw, code)| Line {
            raw: raw.to_string(),
            code: code.to_string(),
            in_test: false,
        })
        .collect();
    mark_test_regions(&mut lines);
    lines
}

/// Rewrites `text` with comment text and literal contents as spaces,
/// keeping newlines (and therefore line numbers) intact.
fn blank_noncode(text: &str) -> String {
    #[derive(Clone, Copy, PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
        Char,
    }

    let chars: Vec<char> = text.chars().collect();
    let n = chars.len();
    let mut out = String::with_capacity(text.len());
    let mut st = St::Code;
    let mut i = 0;

    // Pushes a blanked stand-in that keeps newlines and line lengths.
    let blank = |out: &mut String, c: char| out.push(if c == '\n' { '\n' } else { ' ' });

    while i < n {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match st {
            St::Code => {
                if c == '/' && next == Some('/') {
                    st = St::LineComment;
                    out.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    st = St::BlockComment(1);
                    out.push_str("  ");
                    i += 2;
                } else if (c == 'r' || c == 'b') && !prev_is_ident(&chars, i) {
                    // Raw (r", r#", br") and byte (b") string openers start
                    // at an identifier boundary.
                    let mut j = i;
                    if chars.get(j) == Some(&'b') {
                        j += 1;
                    }
                    if chars.get(j) == Some(&'r') {
                        let mut k = j + 1;
                        let mut hashes = 0usize;
                        while chars.get(k) == Some(&'#') {
                            hashes += 1;
                            k += 1;
                        }
                        if chars.get(k) == Some(&'"') {
                            for _ in i..=k {
                                out.push(' ');
                            }
                            st = St::RawStr(hashes);
                            i = k + 1;
                            continue;
                        }
                    }
                    if c == 'b' && next == Some('"') {
                        out.push_str(" \"");
                        st = St::Str;
                        i += 2;
                        continue;
                    }
                    out.push(c);
                    i += 1;
                } else if c == '"' {
                    out.push('"');
                    st = St::Str;
                    i += 1;
                } else if c == '\'' {
                    // 'x' or '\x{...}' is a char literal; 'ident is a
                    // lifetime and stays in the code view.
                    let is_char = next == Some('\\')
                        || (chars.get(i + 2) == Some(&'\'') && next != Some('\''));
                    if is_char {
                        out.push(' ');
                        st = St::Char;
                    } else {
                        out.push(c);
                    }
                    i += 1;
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            St::LineComment => {
                if c == '\n' {
                    out.push('\n');
                    st = St::Code;
                } else {
                    out.push(' ');
                }
                i += 1;
            }
            St::BlockComment(depth) => {
                if c == '/' && next == Some('*') {
                    st = St::BlockComment(depth + 1);
                    out.push_str("  ");
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    out.push_str("  ");
                    i += 2;
                } else {
                    blank(&mut out, c);
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    out.push(' ');
                    if let Some(e) = next {
                        blank(&mut out, e);
                    }
                    i += 2;
                } else if c == '"' {
                    out.push('"');
                    st = St::Code;
                    i += 1;
                } else {
                    blank(&mut out, c);
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if c == '"' && (1..=hashes).all(|k| chars.get(i + k) == Some(&'#')) {
                    for _ in 0..=hashes {
                        out.push(' ');
                    }
                    st = St::Code;
                    i += hashes + 1;
                } else {
                    blank(&mut out, c);
                    i += 1;
                }
            }
            St::Char => {
                if c == '\\' {
                    out.push(' ');
                    if let Some(e) = next {
                        blank(&mut out, e);
                    }
                    i += 2;
                } else if c == '\'' {
                    out.push(' ');
                    st = St::Code;
                    i += 1;
                } else {
                    blank(&mut out, c);
                    i += 1;
                }
            }
        }
    }
    out
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i.checked_sub(1)
        .and_then(|p| chars.get(p))
        .is_some_and(|c| c.is_alphanumeric() || *c == '_')
}

/// Marks every line belonging to a `#[cfg(test)]` item by brace counting
/// on the code view (string/comment braces are already blanked).
fn mark_test_regions(lines: &mut [Line]) {
    let n = lines.len();
    let mut i = 0;
    while i < n {
        if !lines[i].code.contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut j = i;
        while j < n {
            for ch in lines[j].code.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            lines[j].in_test = true;
            if opened && depth <= 0 {
                break;
            }
            // A brace-less item (`#[cfg(test)] use …;`) ends at the first
            // statement terminator instead of a closing brace.
            if !opened && lines[j].code.contains(';') {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let lines = scan_source(concat!(
            "let a = \"x.unwrap() [0]\"; // .expect(boom)\n",
            "let b = r#\"unsafe { }\"#;\n",
            "/* multi\n   line .unwrap() */ let c = 1;\n",
        ));
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].raw.contains(".expect(boom)"));
        assert!(!lines[1].code.contains("unsafe"));
        assert!(!lines[2].code.contains("multi"));
        assert!(lines[3].code.contains("let c = 1;"));
    }

    #[test]
    fn char_literals_and_lifetimes_disambiguate() {
        let lines = scan_source("fn f<'a>(x: &'a str) -> char { '[' }\n");
        // The lifetime survives; the char literal's bracket is blanked.
        assert!(lines[0].code.contains("<'a>"));
        assert!(!lines[0].code.contains('['));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = concat!(
            "fn live() {}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn helper() { x.unwrap(); }\n",
            "}\n",
            "fn also_live() {}\n",
        );
        let lines = scan_source(src);
        assert!(!lines[0].in_test);
        assert!(lines[1].in_test && lines[2].in_test && lines[3].in_test && lines[4].in_test);
        assert!(!lines[5].in_test);
    }

    #[test]
    fn braceless_cfg_test_items_do_not_swallow_the_file() {
        let src = "#[cfg(test)]\nuse std::fmt;\nfn live() {}\n";
        let lines = scan_source(src);
        assert!(lines[1].in_test);
        assert!(!lines[2].in_test);
    }
}
