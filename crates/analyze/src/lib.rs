//! `cc-analyze`: workspace-specific static analysis and snapshot fuzzing.
//!
//! `rustc` and clippy enforce language-level rules; this crate enforces
//! *repo*-level ones — where `unsafe` may live, that every `#[repr(C)]`
//! type's wire layout is compile-time checked, that parser and hot-path
//! modules stay panic-free and truncation-free — plus a deterministic
//! fuzzer asserting the snapshot loaders' typed-error contract.
//!
//! The binary front-end (`cargo run -p cc-analyze -- check|selftest|fuzz`)
//! lives in `main.rs`; everything here is an ordinary library so rules and
//! fuzzing are unit-testable in-process. Deliberately dependency-free
//! (workspace crates aside): a lint gate must never be the thing that
//! fails to build.

#![forbid(unsafe_code)]

pub mod concurrency;
pub mod fuzz;
pub mod rules;
pub mod scan;
pub mod schedule;
