//! Determinism-oriented concurrency analyses: lock acquisition order and
//! `thread::scope` capture discipline.
//!
//! Both analyses are lexical, over [`crate::scan`]'s blanked code views, and
//! deliberately simple: they encode the two concurrency disciplines the
//! workspace already follows (`DESIGN.md` §11) rather than attempting general
//! alias analysis.
//!
//! * **Lock order** (`cc_serve` only): every `Mutex` in the serving daemon is
//!   named in [`LOCK_ORDER`], a total order. A function may hold at most the
//!   locks of an ascending chain; acquiring a lock while holding one of equal
//!   or higher rank — or locking anything not in the manifest — is a finding.
//!   The per-function acquisition edges are also returned so the caller can
//!   aggregate them workspace-wide and reject cycles.
//! * **Shard capture**: inside a `thread::scope(...)` region, each
//!   `.spawn(...)` closure may only touch its per-worker slots — captured
//!   `&mut`, interior-mutable cells, or ad-hoc locking inside a worker
//!   closure is how cross-shard nondeterminism (or a deadlock under the
//!   schedule fuzzer) sneaks in. Workers receive disjoint shards by
//!   construction (`chunks_mut` *outside* the closure), so the closure body
//!   itself has no business forming one.

use crate::scan::Line;

/// The declared Mutex acquisition order for `cc_serve`, ascending: a thread
/// holding `LOCK_ORDER[i]` may only acquire locks strictly later in the
/// list. Mirrored in `DESIGN.md` §11.2 — change both together.
pub const LOCK_ORDER: &[&str] = &[
    "inner",
    "conn_threads",
    "reload",
    "slot",
    "outbox",
    "write_lock",
    "trace",
];

/// Functions that acquire a lock *for* their caller through a parameter
/// (poison-recovery shims). Their bodies lock a generic parameter, not a
/// named field, so they are audited by review instead of by this pass.
pub const LOCK_HELPERS: &[&str] = &["lock_recovering"];

/// Declared `Condvar` → guarded-`Mutex` pairs: `.wait()` on the condvar must
/// take (and atomically re-acquire) the paired mutex's guard.
pub const CONDVAR_PAIRS: &[(&str, &str)] = &[("ready", "inner"), ("outbox_ready", "outbox")];

/// Tokens that, captured inside a `scope.spawn` closure, defeat the
/// disjoint-shard discipline (shared mutation or worker-side locking).
const CAPTURE_BANS: &[&str] = &[
    "&mut",
    ".lock()",
    ".write()",
    "Cell<",
    "Mutex",
    "RefCell",
    "RwLock",
    "UnsafeCell",
    "static mut",
];

/// One analysis diagnostic: zero-based line index plus message.
#[derive(Debug, PartialEq, Eq)]
pub struct Diag {
    pub line: usize,
    pub message: String,
}

/// A directed acquisition edge `held → acquired` observed at `line`
/// (zero-based), for workspace-wide cycle detection.
#[derive(Debug, PartialEq, Eq)]
pub struct LockEdge {
    pub held: &'static str,
    pub acquired: &'static str,
    pub line: usize,
}

fn rank(name: &str) -> Option<usize> {
    LOCK_ORDER.iter().position(|l| *l == name)
}

/// The identifier immediately before byte offset `end` in `code`, if any.
fn ident_before(code: &str, end: usize) -> Option<&str> {
    let b = code.as_bytes();
    let mut start = end;
    while start > 0
        && b.get(start - 1)
            .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_')
    {
        start -= 1;
    }
    (start < end).then(|| code.get(start..end)).flatten()
}

/// The last identifier on the nearest non-blank code line above `idx`
/// (ignoring trailing non-ident characters) — the receiver of a method
/// chain whose `.lock()` / `.wait(` sits on a continuation line.
fn trailing_ident_above(lines: &[Line], idx: usize) -> Option<String> {
    let mut k = idx;
    while k > 0 {
        k -= 1;
        let code = lines[k].code.trim_end();
        if code.trim_start().is_empty() {
            continue;
        }
        let b = code.as_bytes();
        let end = (0..b.len())
            .rev()
            .find(|&i| b[i].is_ascii_alphanumeric() || b[i] == b'_')
            .map(|i| i + 1)?;
        return ident_before(code, end).map(str::to_string);
    }
    None
}

/// Resolves the receiver of a `.method(` found at byte `at` of line `idx`:
/// the identifier just before it, or — when the call sits at the start of a
/// continuation line — the trailing identifier of the line above.
fn receiver(lines: &[Line], idx: usize, at: usize) -> Option<String> {
    let code = lines[idx].code.as_str();
    if let Some(name) = ident_before(code, at) {
        return Some(name.to_string());
    }
    code.get(..at)
        .is_some_and(|pre| pre.trim().is_empty())
        .then(|| trailing_ident_above(lines, idx))
        .flatten()
}

/// The first line of the statement containing line `idx`: walks up over
/// method-chain continuation lines (those starting with `.`).
fn statement_start(lines: &[Line], idx: usize) -> usize {
    let mut k = idx;
    while k > 0 && lines[k].code.trim_start().starts_with('.') {
        k -= 1;
        while k > 0 && lines[k].code.trim().is_empty() {
            k -= 1;
        }
    }
    k
}

/// The lock names acquired on a code line: the receiver of each `.lock()`
/// and the field of each `lock_recovering(&self.X)`-style helper call.
fn acquisitions(lines: &[Line], idx: usize) -> Vec<(usize, String)> {
    let code = lines[idx].code.as_str();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = code.get(from..).and_then(|s| s.find(".lock()")) {
        let at = from + pos;
        if let Some(name) = receiver(lines, idx, at) {
            out.push((at, name));
        }
        from = at + ".lock()".len();
    }
    for helper in LOCK_HELPERS {
        let needle = format!("{helper}(");
        let mut from = 0;
        while let Some(pos) = code.get(from..).and_then(|s| s.find(needle.as_str())) {
            let at = from + pos;
            // Word boundary on the left so `my_lock_recovering(` is not a hit.
            if ident_before(code, at).is_none() {
                let args = code.get(at + needle.len()..).unwrap_or("");
                let arg_end = args.find(')').unwrap_or(args.len());
                let arg = args.get(..arg_end).unwrap_or("");
                let name: String = arg
                    .chars()
                    .rev()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect::<Vec<_>>()
                    .into_iter()
                    .rev()
                    .collect();
                if !name.is_empty() {
                    out.push((at, name));
                }
            }
            from = at + needle.len();
        }
    }
    out.sort_by_key(|(at, _)| *at);
    out
}

/// The identifier a `let` binding on this line introduces, when the line
/// binds one (`let [mut] name = …`). `_` and destructuring patterns count
/// as unbound: the guard dies at the end of the statement.
fn let_binding(code: &str) -> Option<String> {
    let t = code.trim_start();
    let rest = t.strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty() && name != "_").then_some(name)
}

fn fn_decl(code: &str) -> Option<String> {
    let pos = crate::rules::find_word(code, "fn")?;
    let rest = code.get(pos + 2..)?.trim_start();
    let name: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

/// A guard that is live at some point in a function body.
struct LiveGuard {
    lock: &'static str,
    /// The binding that keeps it alive (`None` = temporary, dies at `;`).
    var: Option<String>,
    /// Brace depth at acquisition; the guard dies when depth drops below it.
    depth: i32,
}

/// Lock-order pass over one file. Returns diagnostics plus the observed
/// acquisition edges (for cross-file cycle aggregation).
pub fn lock_order(lines: &[Line]) -> (Vec<Diag>, Vec<LockEdge>) {
    let mut diags = Vec::new();
    let mut edges = Vec::new();
    let mut live: Vec<LiveGuard> = Vec::new();
    let mut depth: i32 = 0;
    let mut in_helper = false;

    for (idx, line) in lines.iter().enumerate() {
        let code = line.code.as_str();

        if let Some(name) = fn_decl(code) {
            // A new item boundary: guards cannot flow across functions.
            live.clear();
            in_helper = LOCK_HELPERS.contains(&name.as_str());
        }

        if !in_helper && !line.in_test {
            for (_, name) in acquisitions(lines, idx) {
                let Some(r) = rank(&name) else {
                    diags.push(Diag {
                        line: idx,
                        message: format!(
                            "lock `{name}` is not in the declared ordering manifest \
                             (LOCK_ORDER in cc-analyze; DESIGN.md §11.2)"
                        ),
                    });
                    continue;
                };
                let lock = LOCK_ORDER[r];
                for held in &live {
                    edges.push(LockEdge {
                        held: held.lock,
                        acquired: lock,
                        line: idx,
                    });
                    let held_rank = rank(held.lock).unwrap_or(usize::MAX);
                    if r <= held_rank {
                        diags.push(Diag {
                            line: idx,
                            message: format!(
                                "acquired `{lock}` while holding `{}` — violates the \
                                 declared order {:?}",
                                held.lock, LOCK_ORDER
                            ),
                        });
                    }
                }
                // The binding that owns the guard may sit at the head of a
                // multi-line method chain, not on the `.lock()` line itself.
                live.push(LiveGuard {
                    lock,
                    var: let_binding(&lines[statement_start(lines, idx)].code),
                    depth,
                });
            }

            // `.wait(guard)` must name a manifest condvar; the paired mutex
            // stays held across the wait, so liveness is unchanged.
            let mut from = 0;
            while let Some(pos) = code.get(from..).and_then(|s| s.find(".wait(")) {
                let at = from + pos;
                if let Some(cv) = receiver(lines, idx, at) {
                    if !CONDVAR_PAIRS.iter().any(|(c, _)| *c == cv) {
                        diags.push(Diag {
                            line: idx,
                            message: format!(
                                "condvar `{cv}` is not in the declared pairing manifest \
                                 (CONDVAR_PAIRS in cc-analyze)"
                            ),
                        });
                    }
                }
                from = at + ".wait(".len();
            }

            // Explicit `drop(x)` releases a bound guard early.
            let mut from = 0;
            while let Some(pos) = code.get(from..).and_then(|s| s.find("drop(")) {
                let at = from + pos;
                if ident_before(code, at).is_none() {
                    let args = code.get(at + "drop(".len()..).unwrap_or("");
                    let name: String = args
                        .chars()
                        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                        .collect();
                    live.retain(|g| g.var.as_deref() != Some(name.as_str()));
                }
                from = at + "drop(".len();
            }
        }

        // End-of-statement kills temporaries; brace close kills bindings.
        if code.contains(';') {
            live.retain(|g| g.var.is_some());
        }
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    live.retain(|g| g.depth <= depth);
                }
                _ => {}
            }
        }
    }

    (diags, edges)
}

/// Byte offset ranges (over the concatenated code text) of every
/// `.spawn(…)` argument list inside a `thread::scope(…)` region.
fn spawn_extents(text: &str) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = text.get(from..).and_then(|s| s.find("thread::scope(")) {
        let open = from + pos + "thread::scope".len();
        let close = match_paren(text, open);
        let region = text.get(open..close).unwrap_or("");
        let mut sfrom = 0;
        while let Some(spos) = region.get(sfrom..).and_then(|s| s.find(".spawn(")) {
            let sopen = open + spos + sfrom + ".spawn".len();
            let sclose = match_paren(text, sopen);
            out.push((sopen, sclose));
            sfrom = spos + sfrom + ".spawn(".len();
        }
        from = close.max(from + 1);
    }
    out
}

/// The offset one past the `)` matching the `(` at `open` (or `text.len()`
/// if unbalanced — strings are already blanked, so this is rare and safe).
fn match_paren(text: &str, open: usize) -> usize {
    let mut depth = 0i32;
    for (i, c) in text.get(open..).unwrap_or("").char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return open + i + 1;
                }
            }
            _ => {}
        }
    }
    text.len()
}

/// Identifiers `let`-bound anywhere inside a closure body text.
fn local_bindings(body: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = body.get(from..).and_then(|s| s.find("let ")) {
        let at = from + pos;
        from = at + "let ".len();
        if ident_before(body, at).is_some() {
            continue; // `…let ` inside an identifier tail — not a binding
        }
        let rest = body.get(from..).unwrap_or("");
        let rest = rest.strip_prefix("mut ").unwrap_or(rest);
        let name: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if !name.is_empty() {
            out.push(name);
        }
    }
    out
}

/// The identifier a `&mut` at byte `after` applies to, skipping reborrow
/// sigils (`*`, `&`, `(`) — `&mut *s`, `&mut &stream` both yield the base.
fn mut_target(body: &str, after: usize) -> Option<String> {
    let rest = body.get(after..)?;
    let rest = rest.trim_start_matches([' ', '*', '&', '(']);
    let name: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

/// Shard-capture pass: banned tokens inside `scope.spawn` closures. At most
/// one diagnostic per line (a line that captures two cells is one fix).
pub fn shard_capture(lines: &[Line]) -> Vec<Diag> {
    let mut text = String::new();
    let mut starts = Vec::with_capacity(lines.len());
    for line in lines {
        starts.push(text.len());
        text.push_str(&line.code);
        text.push('\n');
    }
    let line_of = |off: usize| match starts.binary_search(&off) {
        Ok(i) => i,
        Err(i) => i.saturating_sub(1),
    };

    let mut diags: Vec<Diag> = Vec::new();
    for (lo, hi) in spawn_extents(&text) {
        let body = text.get(lo..hi).unwrap_or("");
        let locals = local_bindings(body);
        for ban in CAPTURE_BANS {
            let mut from = 0;
            while let Some(pos) = body.get(from..).and_then(|s| s.find(ban)) {
                let at = lo + from + pos;
                let idx = line_of(at);
                // `&mut x` where `x` is let-bound inside the closure is
                // worker-local state (e.g. a per-worker socket), not a
                // capture — only captured mutation defeats sharding.
                let local = *ban == "&mut"
                    && mut_target(body, from + pos + ban.len())
                        .is_some_and(|t| locals.contains(&t));
                if !local && !diags.iter().any(|d| d.line == idx) {
                    diags.push(Diag {
                        line: idx,
                        message: format!(
                            "`{ban}` captured inside a scope.spawn closure — workers \
                             may only write their own disjoint shard (DESIGN.md §11.3)"
                        ),
                    });
                }
                from = from + pos + ban.len();
            }
        }
    }
    diags.sort_by_key(|d| d.line);
    diags
}

/// True when the line contains a floating-point literal (`1.0`, `0.5e3`)
/// outside identifiers — the arithmetic half of the `float-ban` rule; the
/// `f32`/`f64` tokens are matched separately at word boundaries.
pub fn has_float_literal(code: &str) -> bool {
    let b = code.as_bytes();
    for i in 0..b.len() {
        if b[i] != b'.' {
            continue;
        }
        // digits on both sides of the dot …
        if !(i > 0 && b[i - 1].is_ascii_digit()) {
            continue;
        }
        if !b.get(i + 1).is_some_and(u8::is_ascii_digit) {
            continue;
        }
        // … and the digit run is not the tail of an identifier (`x1.0` is
        // impossible in Rust, but `v2.0` appears in blanked doc paths) nor
        // preceded by another dot (`0..1` ranges never match — the left of
        // the first dot is a digit but the right is `.`).
        let mut s = i;
        while s > 0 && b[s - 1].is_ascii_digit() {
            s -= 1;
        }
        let pre = s.checked_sub(1).and_then(|p| b.get(p));
        let ident_tail = pre.is_some_and(|c| c.is_ascii_alphabetic() || *c == b'_' || *c == b'.');
        if !ident_tail {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_source;

    fn lock_diags(src: &str) -> Vec<Diag> {
        lock_order(&scan_source(src)).0
    }

    #[test]
    fn ascending_acquisition_is_clean() {
        let src = concat!(
            "fn f(&self) {\n",
            "    let mut inner = lock_recovering(&self.inner);\n",
            "    drop(inner);\n",
            "    let _g = self.write_lock.lock();\n",
            "}\n",
        );
        assert!(lock_diags(src).is_empty(), "{:?}", lock_diags(src));
    }

    #[test]
    fn descending_acquisition_is_flagged() {
        let src = concat!(
            "fn f(&self) {\n",
            "    let _g = self.write_lock.lock();\n",
            "    let inner = lock_recovering(&self.inner);\n",
            "}\n",
        );
        let d = lock_diags(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("while holding `write_lock`"));
    }

    #[test]
    fn unmanifested_lock_is_flagged() {
        let d = lock_diags("fn f(&self) { let _g = self.rogue.lock(); }\n");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("`rogue`"));
    }

    #[test]
    fn temporaries_die_at_statement_end() {
        // Two temporary acquisitions in consecutive statements never overlap.
        let src = concat!(
            "fn f(&self) {\n",
            "    self.conn_threads.lock().push(1);\n",
            "    let _i = lock_recovering(&self.inner);\n",
            "}\n",
        );
        assert!(lock_diags(src).is_empty(), "{:?}", lock_diags(src));
    }

    #[test]
    fn guards_die_with_their_block() {
        let src = concat!(
            "fn f(&self) {\n",
            "    {\n",
            "        let _g = self.write_lock.lock();\n",
            "    }\n",
            "    let _i = lock_recovering(&self.inner);\n",
            "}\n",
        );
        assert!(lock_diags(src).is_empty(), "{:?}", lock_diags(src));
    }

    #[test]
    fn helper_bodies_are_exempt_but_callers_are_not() {
        let src = concat!(
            "fn lock_recovering(m: &Mutex<T>) -> MutexGuard<T> {\n",
            "    m.lock().unwrap_or_else(|p| p.into_inner())\n",
            "}\n",
            "fn f(&self) { let _g = self.rogue.lock(); }\n",
        );
        let d = lock_diags(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("`rogue`"));
    }

    #[test]
    fn unmanifested_condvar_wait_is_flagged() {
        let d = lock_diags("fn f(&self) { let g = self.other_cv.wait(g); }\n");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("other_cv"));
    }

    #[test]
    fn edges_record_held_to_acquired() {
        let src = concat!(
            "fn f(&self) {\n",
            "    let mut inner = lock_recovering(&self.inner);\n",
            "    let _g = self.write_lock.lock();\n",
            "}\n",
        );
        let (d, e) = lock_order(&scan_source(src));
        assert!(d.is_empty(), "{d:?}");
        assert_eq!(e.len(), 1);
        assert_eq!((e[0].held, e[0].acquired), ("inner", "write_lock"));
    }

    #[test]
    fn shard_capture_flags_mut_in_spawn_closures_only() {
        let src = concat!(
            "fn f(totals: &mut [u64]) {\n", // outside any scope: fine
            "    std::thread::scope(|scope| {\n",
            "        let shards = totals.chunks_mut(4);\n", // setup: fine
            "        for s in shards {\n",
            "            scope.spawn(move || add(&mut *s));\n", // captured: flag
            "        }\n",
            "    });\n",
            "}\n",
        );
        let d = shard_capture(&scan_source(src));
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 4);
        assert!(d[0].message.contains("&mut"));
    }

    #[test]
    fn shard_capture_spans_multiline_closures() {
        let src = concat!(
            "fn f(cell: &RefCell<u64>) {\n",
            "    std::thread::scope(|scope| {\n",
            "        scope.spawn(|| {\n",
            "            let v = cell.borrow_mut();\n",
            "            observe(&v);\n",
            "            shared.lock().push(1);\n",
            "        });\n",
            "    });\n",
            "}\n",
        );
        let d = shard_capture(&scan_source(src));
        assert_eq!(d.len(), 1, "one diag per line: {d:?}");
        assert!(d[0].message.contains(".lock()"));
    }

    #[test]
    fn worker_local_mut_is_not_a_capture() {
        let src = concat!(
            "fn f() {\n",
            "    std::thread::scope(|scope| {\n",
            "        scope.spawn(move || {\n",
            "            let stream = connect(addr);\n",
            "            write_frame(&mut &stream, &body);\n",
            "        });\n",
            "    });\n",
            "}\n",
        );
        assert!(shard_capture(&scan_source(src)).is_empty());
    }

    #[test]
    fn disjoint_shard_spawns_are_clean() {
        let src = concat!(
            "fn f() {\n",
            "    std::thread::scope(|scope| {\n",
            "        let lanes = ws.lanes.iter_mut();\n",
            "        for (range, lane) in shards.zip(lanes) {\n",
            "            scope.spawn(move || product_rows(a, b, range, lane));\n",
            "        }\n",
            "    });\n",
            "}\n",
        );
        assert!(shard_capture(&scan_source(src)).is_empty());
    }

    #[test]
    fn float_literals_are_detected_and_ranges_are_not() {
        assert!(has_float_literal("let x = 1.0;"));
        assert!(has_float_literal("w * 0.5"));
        assert!(!has_float_literal("for i in 0..10 {"));
        assert!(!has_float_literal("let t = pair.0;"));
        assert!(!has_float_literal("a[i][j]"));
        // `v2.0`-style blanked doc remnants don't fire (ident tail).
        assert!(!has_float_literal("snapshot_v2.0"));
    }
}
