//! A deterministic snapshot fuzzer over the golden corpus.
//!
//! The contract under test is the loaders' safety net: **any** byte
//! mutation of a valid CCDO/CCRO snapshot must come back as a typed
//! [`SnapshotError`] — never a panic, never a hang, never an allocation
//! proportional to a length field instead of the actual input.
//!
//! Mutations are seeded xorshift64\* over a golden corpus, so every run is
//! reproducible from `(seed, iteration)`. Structure-aware strategies
//! (header abuse, directory abuse) re-seal the trailing FNV-1a checksum so
//! the mutation penetrates *past* frame verification into the section
//! parsers — a fuzzer that only ever trips the checksum tests nothing.
//!
//! [`emit_corpus`] freezes one named, deterministic case per abuse class
//! into `tests/fuzz_corpus/` together with the exact error each case must
//! produce; the repo's `fuzz_replay` integration test pins them forever.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::panic;
use std::path::Path;

use cc_core::{DistOracle, PathOracle, SnapshotError};

/// Baseline allocation headroom a single load may use, on top of the
/// input-proportional term. Generous: a clean load of a corpus snapshot
/// peaks well under a megabyte.
const ALLOC_BASE: usize = 16 << 20;
/// Per-input-byte allocation factor. A loader honoring "validate counts
/// against remaining bytes before reserving" stays far below this.
const ALLOC_FACTOR: usize = 64;

/// xorshift64\* — tiny, seedable, good enough for byte fuzzing, and most
/// importantly dependency-free.
pub struct Xorshift {
    state: u64,
}

impl Xorshift {
    pub fn new(seed: u64) -> Self {
        // A zero state would be a fixed point; fold in a golden-ratio
        // constant and force nonzero.
        Xorshift {
            state: (seed ^ 0x9e37_79b9_7f4a_7c15).max(1),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform-ish draw in `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

/// Hooks into the binary's counting allocator; [`run`] works without one
/// (in-process tests) but then cannot enforce the allocation bound.
#[derive(Clone, Copy)]
pub struct AllocProbe {
    /// Resets the peak to the current live-byte count.
    pub reset_peak: fn(),
    /// Peak live bytes since the last reset.
    pub peak_bytes: fn() -> usize,
}

/// Aggregate outcome of a fuzzing run.
#[derive(Debug, Default)]
pub struct FuzzSummary {
    pub iterations: u64,
    /// Mutations the loader still accepted (e.g. a flip inside alignment
    /// padding that the checksum re-seal blessed).
    pub clean_loads: u64,
    /// Typed rejections, histogrammed by error variant.
    pub rejections: BTreeMap<&'static str, u64>,
    /// Contract violations: panics and allocation-bound breaches. Each
    /// entry reproduces from its recorded `(corpus, seed, iteration)`.
    pub failures: Vec<String>,
    /// Largest single-load allocation peak observed (0 without a probe).
    pub peak_alloc: usize,
}

/// Loads every file in `dir` as a corpus entry, sorted by name for
/// determinism.
pub fn load_corpus(dir: &Path) -> io::Result<Vec<(String, Vec<u8>)>> {
    let mut out = Vec::new();
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        if entry.file_type()?.is_file() {
            let name = entry.file_name().to_string_lossy().into_owned();
            out.push((name, fs::read(entry.path())?));
        }
    }
    if out.is_empty() {
        return Err(io::Error::other(format!(
            "no corpus files in {}",
            dir.display()
        )));
    }
    Ok(out)
}

/// Runs `iters` seeded mutations over `corpus`, asserting the typed-error
/// contract on every one.
pub fn run(
    corpus: &[(String, Vec<u8>)],
    iters: u64,
    seed: u64,
    probe: Option<AllocProbe>,
) -> FuzzSummary {
    let mut rng = Xorshift::new(seed);
    let mut summary = FuzzSummary {
        iterations: iters,
        ..FuzzSummary::default()
    };

    // Panicking loads are the bug being hunted; silence the default hook's
    // backtrace spew for the duration so real failures stay readable.
    let prev_hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));

    for it in 0..iters {
        let (name, base) = &corpus[rng.below(corpus.len())];
        let mut case = base.clone();
        let strategy = mutate(&mut case, &mut rng);

        if let Some(p) = probe {
            (p.reset_peak)();
        }
        match panic::catch_unwind(|| load_any(&case)) {
            Ok(Ok(_)) => summary.clean_loads += 1,
            Ok(Err(e)) => *summary.rejections.entry(error_kind(&e)).or_insert(0) += 1,
            Err(_) => summary.failures.push(format!(
                "PANIC on load: corpus={name} seed={seed:#x} iter={it} strategy={strategy}"
            )),
        }
        if let Some(p) = probe {
            let peak = (p.peak_bytes)();
            summary.peak_alloc = summary.peak_alloc.max(peak);
            let bound = ALLOC_BASE + case.len().saturating_mul(ALLOC_FACTOR);
            if peak > bound {
                summary.failures.push(format!(
                    "ALLOC {peak}B > bound {bound}B: corpus={name} seed={seed:#x} \
                     iter={it} strategy={strategy}"
                ));
            }
        }
    }

    panic::set_hook(prev_hook);
    summary
}

/// Applies one random mutation strategy in place; returns its name.
fn mutate(case: &mut Vec<u8>, rng: &mut Xorshift) -> &'static str {
    if case.is_empty() {
        case.extend((0..16).map(|_| rng.next_u64() as u8));
        return "extend-empty";
    }
    match rng.below(8) {
        0 => {
            let pos = rng.below(case.len());
            case[pos] ^= 1 << rng.below(8);
            "bit-flip"
        }
        1 => {
            let pos = rng.below(case.len());
            case[pos] = rng.next_u64() as u8;
            "byte-set"
        }
        2 => {
            case.truncate(rng.below(case.len() + 1));
            "truncate"
        }
        3 => {
            let extra = rng.below(64) + 1;
            case.extend((0..extra).map(|_| rng.next_u64() as u8));
            "extend"
        }
        4 => {
            let start = rng.below(case.len());
            let len = rng.below(case.len() - start) + 1;
            for b in &mut case[start..start + len] {
                *b = rng.next_u64() as u8;
            }
            "splice"
        }
        5 => {
            // Header abuse: a hostile version or directory offset, with
            // the checksum re-sealed so it reaches the parser.
            if case.len() >= 16 {
                if rng.below(2) == 0 {
                    let v = (rng.next_u64() as u16).to_le_bytes();
                    case[4..6].copy_from_slice(&v);
                } else {
                    let off = rng.next_u64() % (case.len() as u64 * 2);
                    case[8..16].copy_from_slice(&off.to_le_bytes());
                }
                reseal(case);
            }
            "header-abuse"
        }
        6 => {
            // Directory abuse: corrupt the v2 section table in place.
            dir_abuse(case, rng);
            "dir-abuse"
        }
        7 => {
            // Deep flip + re-seal: mutate the body, fix the checksum, so
            // validation past the frame check is what gets exercised.
            let pos = rng.below(case.len().saturating_sub(8).max(1));
            case[pos] ^= 1 << rng.below(8);
            reseal(case);
            "flip-resealed"
        }
        _ => unreachable!("below(8)"),
    }
}

/// Overwrites one field of the v2 directory with an abusive value and
/// re-seals. No-op on non-v2 or too-short inputs.
fn dir_abuse(case: &mut [u8], rng: &mut Xorshift) {
    if case.len() < 24 || case.get(4..6) != Some(&[2, 0]) {
        return;
    }
    let Some(dir_bytes) = case.get(8..16).and_then(|s| s.first_chunk::<8>()) else {
        return;
    };
    let dir_off = u64::from_le_bytes(*dir_bytes) as usize;
    let Some(count_bytes) = case
        .get(dir_off..dir_off + 4)
        .and_then(|s| s.first_chunk::<4>())
    else {
        return;
    };
    let count = u32::from_le_bytes(*count_bytes) as usize;
    match rng.below(3) {
        0 => {
            let hostile = (rng.next_u64() as u32).to_le_bytes();
            case[dir_off..dir_off + 4].copy_from_slice(&hostile);
        }
        _ if count > 0 => {
            // Entries start after the 8-byte directory header (count +
            // reserved). Corrupt one entry's byte_off (at +8) or byte_len
            // (at +16) with a huge or misaligning value.
            let entry = dir_off + 8 + rng.below(count) * 24;
            let field = entry + 8 + rng.below(2) * 8;
            if case.len() >= field + 8 {
                let hostile = match rng.below(3) {
                    0 => u64::MAX,
                    1 => rng.next_u64(),
                    _ => {
                        u64::from_le_bytes(case[field..field + 8].try_into().unwrap_or([0; 8])) ^ 1
                    } // misalign by one byte
                };
                case[field..field + 8].copy_from_slice(&hostile.to_le_bytes());
            }
        }
        _ => {}
    }
    reseal(case);
}

/// Recomputes the trailing FNV-1a checksum over the mutated payload.
fn reseal(case: &mut [u8]) {
    if case.len() < 8 {
        return;
    }
    let split = case.len() - 8;
    let sum = fnv1a(&case[..split]);
    case[split..].copy_from_slice(&sum.to_le_bytes());
}

/// FNV-1a 64, byte-for-byte the snapshot checksum in `cc_core`.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Dispatches a load by magic: `CCRO` to the path oracle, everything else
/// to the distance oracle (whose magic check reports the mismatch).
pub fn load_any(bytes: &[u8]) -> Result<&'static str, SnapshotError> {
    match bytes.get(..4) {
        Some(b"CCRO") => PathOracle::from_snapshot_bytes(bytes).map(|_| "paths"),
        _ => DistOracle::from_snapshot_bytes(bytes).map(|_| "dist"),
    }
}

fn error_kind(e: &SnapshotError) -> &'static str {
    match e {
        SnapshotError::Io(_) => "io",
        SnapshotError::BadMagic(_) => "bad-magic",
        SnapshotError::UnsupportedVersion(_) => "unsupported-version",
        SnapshotError::Corrupt(_) => "corrupt",
        SnapshotError::TooLarge { .. } => "too-large",
    }
}

/// Emits the frozen abuse corpus: one deterministic case per class and
/// per golden snapshot, each written as `<case>.snap` next to a
/// `MANIFEST.tsv` of `file<TAB>expected-error` lines.
///
/// Generation asserts the contract: a case that loads cleanly or panics
/// is a generator bug and aborts the emit.
pub fn emit_corpus(
    corpus: &[(String, Vec<u8>)],
    out_dir: &Path,
) -> io::Result<Vec<(String, String)>> {
    fs::create_dir_all(out_dir)?;
    let mut manifest = Vec::new();
    for (name, base) in corpus {
        let stem = name.trim_end_matches(".snap");
        for (case, bytes) in abuse_cases(stem, base) {
            let err = match panic::catch_unwind(|| load_any(&bytes)) {
                Ok(Ok(kind)) => {
                    return Err(io::Error::other(format!(
                        "generator bug: case {case} loaded cleanly as {kind}"
                    )))
                }
                Ok(Err(e)) => e.to_string(),
                Err(_) => {
                    return Err(io::Error::other(format!(
                        "loader bug: case {case} panicked"
                    )))
                }
            };
            fs::write(out_dir.join(format!("{case}.snap")), &bytes)?;
            manifest.push((format!("{case}.snap"), err));
        }
    }
    let tsv: String = manifest
        .iter()
        .map(|(f, e)| format!("{f}\t{e}\n"))
        .collect();
    fs::write(out_dir.join("MANIFEST.tsv"), tsv)?;
    Ok(manifest)
}

/// The named deterministic abuse cases derived from one golden snapshot.
fn abuse_cases(stem: &str, base: &[u8]) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    let mut push = |suffix: &str, bytes: Vec<u8>| out.push((format!("{stem}__{suffix}"), bytes));

    push("truncated_header", base.get(..10).unwrap_or(base).to_vec());
    push(
        "truncated_body",
        base.get(..base.len() * 2 / 3).unwrap_or(base).to_vec(),
    );

    let mut bad_magic = base.to_vec();
    if bad_magic.len() >= 4 {
        bad_magic[..4].copy_from_slice(b"XXXX");
        reseal(&mut bad_magic);
    }
    push("bad_magic", bad_magic);

    let mut future = base.to_vec();
    if future.len() >= 6 {
        future[4..6].copy_from_slice(&0x7fffu16.to_le_bytes());
        reseal(&mut future);
    }
    push("future_version", future);

    let mut flipped = base.to_vec();
    if flipped.len() > 20 {
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        // deliberately NOT re-sealed: the checksum must catch it
    }
    push("checksum_flip", flipped);

    // v2-only structural abuse: the directory is only there for version 2.
    if base.get(4..6) == Some(&[2, 0]) {
        let mut oob = base.to_vec();
        let hostile = (base.len() as u64) * 4;
        oob[8..16].copy_from_slice(&hostile.to_le_bytes());
        reseal(&mut oob);
        push("dir_off_oob", oob);

        if let Some(dir_off) = base
            .get(8..16)
            .and_then(|s| s.first_chunk::<8>())
            .map(|b| u64::from_le_bytes(*b) as usize)
        {
            if base.len() > dir_off + 4 {
                let mut huge = base.to_vec();
                huge[dir_off..dir_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
                reseal(&mut huge);
                push("dir_count_huge", huge);

                // First entry sits after the 8-byte directory header; its
                // byte_off field is 8 bytes into the 24-byte row.
                let entry_off_field = dir_off + 8 + 8;
                if base.len() >= entry_off_field + 8 {
                    let mut skew = base.to_vec();
                    if let Some(cur) = skew
                        .get(entry_off_field..entry_off_field + 8)
                        .and_then(|s| s.first_chunk::<8>())
                        .map(|b| u64::from_le_bytes(*b))
                    {
                        skew[entry_off_field..entry_off_field + 8]
                            .copy_from_slice(&(cur + 1).to_le_bytes());
                        reseal(&mut skew);
                        push("misaligned_section", skew);
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_snapshot() -> Vec<u8> {
        // A real v2 snapshot via the public API keeps this test honest.
        let mut m = cc_core::DistanceMatrix::new(4);
        for u in 0..4 {
            for v in 0..4 {
                m.improve(u, v, u.abs_diff(v) as cc_graphs::Dist);
            }
        }
        let o = cc_core::DistOracle::from_matrix(
            &m,
            cc_core::Guarantee::mult3(0.25),
            cc_graphs::StorageKind::Full,
        );
        let mut buf = Vec::new();
        o.save_v2(&mut buf).expect("save_v2");
        buf
    }

    #[test]
    fn seeded_runs_are_deterministic() {
        let corpus = vec![("tiny.snap".to_string(), tiny_snapshot())];
        let a = run(&corpus, 200, 0xfeed, None);
        let b = run(&corpus, 200, 0xfeed, None);
        assert_eq!(a.clean_loads, b.clean_loads);
        assert_eq!(a.rejections, b.rejections);
        assert!(a.failures.is_empty(), "{:?}", a.failures);
    }

    #[test]
    fn smoke_run_never_panics_the_loader() {
        let corpus = vec![("tiny.snap".to_string(), tiny_snapshot())];
        let s = run(&corpus, 500, 0x5eed, None);
        assert!(s.failures.is_empty(), "{:?}", s.failures);
        // Mutations must actually be reaching the loader's rejection
        // paths, not all bouncing off one check.
        assert!(s.rejections.len() >= 2, "{:?}", s.rejections);
    }

    #[test]
    fn abuse_cases_all_reject_with_typed_errors() {
        let base = tiny_snapshot();
        for (name, bytes) in abuse_cases("tiny", &base) {
            let r = std::panic::catch_unwind(|| load_any(&bytes));
            match r {
                Ok(Err(_)) => {}
                Ok(Ok(_)) => panic!("{name} loaded cleanly"),
                Err(_) => panic!("{name} panicked the loader"),
            }
        }
    }
}
