//! A deterministic snapshot fuzzer over the golden corpus.
//!
//! The contract under test is the loaders' safety net: **any** byte
//! mutation of a valid CCDO/CCRO snapshot must come back as a typed
//! [`SnapshotError`] — never a panic, never a hang, never an allocation
//! proportional to a length field instead of the actual input.
//!
//! Mutations are seeded xorshift64\* over a golden corpus, so every run is
//! reproducible from `(seed, iteration)`. Structure-aware strategies
//! (header abuse, directory abuse) re-seal the trailing FNV-1a checksum so
//! the mutation penetrates *past* frame verification into the section
//! parsers — a fuzzer that only ever trips the checksum tests nothing.
//!
//! The same machinery covers the `ccd` wire protocol: [`check_frames`]
//! validates a burst of length-prefixed request frames the way the
//! server's reader loop does, and the fuzzer feeds it framing attacks —
//! length-prefix lies, truncated batches, request-id collisions.
//!
//! [`emit_corpus`] freezes one named, deterministic case per abuse class
//! into `tests/fuzz_corpus/` together with the exact error each case must
//! produce; the repo's `fuzz_replay` integration test pins them forever.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::panic;
use std::path::Path;

use cc_core::{DistOracle, PathOracle, SnapshotError};
use cc_serve::protocol::{Op, Request, MAX_FRAME};

/// Baseline allocation headroom a single load may use, on top of the
/// input-proportional term. Generous: a clean load of a corpus snapshot
/// peaks well under a megabyte.
const ALLOC_BASE: usize = 16 << 20;
/// Per-input-byte allocation factor. A loader honoring "validate counts
/// against remaining bytes before reserving" stays far below this.
const ALLOC_FACTOR: usize = 64;

/// xorshift64\* — tiny, seedable, good enough for byte fuzzing, and most
/// importantly dependency-free.
pub struct Xorshift {
    state: u64,
}

impl Xorshift {
    pub fn new(seed: u64) -> Self {
        // A zero state would be a fixed point; fold in a golden-ratio
        // constant and force nonzero.
        Xorshift {
            state: (seed ^ 0x9e37_79b9_7f4a_7c15).max(1),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform-ish draw in `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

/// Hooks into the binary's counting allocator; [`run`] works without one
/// (in-process tests) but then cannot enforce the allocation bound.
#[derive(Clone, Copy)]
pub struct AllocProbe {
    /// Resets the peak to the current live-byte count.
    pub reset_peak: fn(),
    /// Peak live bytes since the last reset.
    pub peak_bytes: fn() -> usize,
}

/// Aggregate outcome of a fuzzing run.
#[derive(Debug, Default)]
pub struct FuzzSummary {
    pub iterations: u64,
    /// Mutations the loader still accepted (e.g. a flip inside alignment
    /// padding that the checksum re-seal blessed).
    pub clean_loads: u64,
    /// Typed rejections, histogrammed by error variant.
    pub rejections: BTreeMap<&'static str, u64>,
    /// Contract violations: panics and allocation-bound breaches. Each
    /// entry reproduces from its recorded `(corpus, seed, iteration)`.
    pub failures: Vec<String>,
    /// Largest single-load allocation peak observed (0 without a probe).
    pub peak_alloc: usize,
}

/// Loads every file in `dir` as a corpus entry, sorted by name for
/// determinism.
pub fn load_corpus(dir: &Path) -> io::Result<Vec<(String, Vec<u8>)>> {
    let mut out = Vec::new();
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        if entry.file_type()?.is_file() {
            let name = entry.file_name().to_string_lossy().into_owned();
            out.push((name, fs::read(entry.path())?));
        }
    }
    if out.is_empty() {
        return Err(io::Error::other(format!(
            "no corpus files in {}",
            dir.display()
        )));
    }
    Ok(out)
}

/// Runs `iters` seeded mutations over `corpus`, asserting the typed-error
/// contract on every one.
pub fn run(
    corpus: &[(String, Vec<u8>)],
    iters: u64,
    seed: u64,
    probe: Option<AllocProbe>,
) -> FuzzSummary {
    let mut rng = Xorshift::new(seed);
    let mut summary = FuzzSummary {
        iterations: iters,
        ..FuzzSummary::default()
    };

    // Panicking loads are the bug being hunted; silence the default hook's
    // backtrace spew for the duration so real failures stay readable.
    let prev_hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));

    for it in 0..iters {
        // Every fourth iteration attacks the ccd framing validator
        // instead of the snapshot loaders: same no-panic contract,
        // different parser.
        if it % 4 == 3 {
            let mut burst = proto_base_burst();
            let strategy = proto_mutate(&mut burst, &mut rng);
            match panic::catch_unwind(|| check_frames(&burst)) {
                Ok(Ok(_)) => summary.clean_loads += 1,
                Ok(Err(e)) => *summary.rejections.entry(proto_error_kind(&e)).or_insert(0) += 1,
                Err(_) => summary.failures.push(format!(
                    "PANIC in check_frames: seed={seed:#x} iter={it} strategy={strategy}"
                )),
            }
            continue;
        }

        let (name, base) = &corpus[rng.below(corpus.len())];
        let mut case = base.clone();
        let strategy = mutate(&mut case, &mut rng);

        if let Some(p) = probe {
            (p.reset_peak)();
        }
        match panic::catch_unwind(|| load_any(&case)) {
            Ok(Ok(_)) => summary.clean_loads += 1,
            Ok(Err(e)) => *summary.rejections.entry(error_kind(&e)).or_insert(0) += 1,
            Err(_) => summary.failures.push(format!(
                "PANIC on load: corpus={name} seed={seed:#x} iter={it} strategy={strategy}"
            )),
        }
        if let Some(p) = probe {
            let peak = (p.peak_bytes)();
            summary.peak_alloc = summary.peak_alloc.max(peak);
            let bound = ALLOC_BASE + case.len().saturating_mul(ALLOC_FACTOR);
            if peak > bound {
                summary.failures.push(format!(
                    "ALLOC {peak}B > bound {bound}B: corpus={name} seed={seed:#x} \
                     iter={it} strategy={strategy}"
                ));
            }
        }
    }

    panic::set_hook(prev_hook);
    summary
}

/// Applies one random mutation strategy in place; returns its name.
fn mutate(case: &mut Vec<u8>, rng: &mut Xorshift) -> &'static str {
    if case.is_empty() {
        case.extend((0..16).map(|_| rng.next_u64() as u8));
        return "extend-empty";
    }
    match rng.below(8) {
        0 => {
            let pos = rng.below(case.len());
            case[pos] ^= 1 << rng.below(8);
            "bit-flip"
        }
        1 => {
            let pos = rng.below(case.len());
            case[pos] = rng.next_u64() as u8;
            "byte-set"
        }
        2 => {
            case.truncate(rng.below(case.len() + 1));
            "truncate"
        }
        3 => {
            let extra = rng.below(64) + 1;
            case.extend((0..extra).map(|_| rng.next_u64() as u8));
            "extend"
        }
        4 => {
            let start = rng.below(case.len());
            let len = rng.below(case.len() - start) + 1;
            for b in &mut case[start..start + len] {
                *b = rng.next_u64() as u8;
            }
            "splice"
        }
        5 => {
            // Header abuse: a hostile version or directory offset, with
            // the checksum re-sealed so it reaches the parser.
            if case.len() >= 16 {
                if rng.below(2) == 0 {
                    let v = (rng.next_u64() as u16).to_le_bytes();
                    case[4..6].copy_from_slice(&v);
                } else {
                    let off = rng.next_u64() % (case.len() as u64 * 2);
                    case[8..16].copy_from_slice(&off.to_le_bytes());
                }
                reseal(case);
            }
            "header-abuse"
        }
        6 => {
            // Directory abuse: corrupt the v2 section table in place.
            dir_abuse(case, rng);
            "dir-abuse"
        }
        7 => {
            // Deep flip + re-seal: mutate the body, fix the checksum, so
            // validation past the frame check is what gets exercised.
            let pos = rng.below(case.len().saturating_sub(8).max(1));
            case[pos] ^= 1 << rng.below(8);
            reseal(case);
            "flip-resealed"
        }
        _ => unreachable!("below(8)"),
    }
}

/// Overwrites one field of the v2 directory with an abusive value and
/// re-seals. No-op on non-v2 or too-short inputs.
fn dir_abuse(case: &mut [u8], rng: &mut Xorshift) {
    if case.len() < 24 || case.get(4..6) != Some(&[2, 0]) {
        return;
    }
    let Some(dir_bytes) = case.get(8..16).and_then(|s| s.first_chunk::<8>()) else {
        return;
    };
    let dir_off = u64::from_le_bytes(*dir_bytes) as usize;
    let Some(count_bytes) = case
        .get(dir_off..dir_off + 4)
        .and_then(|s| s.first_chunk::<4>())
    else {
        return;
    };
    let count = u32::from_le_bytes(*count_bytes) as usize;
    match rng.below(3) {
        0 => {
            let hostile = (rng.next_u64() as u32).to_le_bytes();
            case[dir_off..dir_off + 4].copy_from_slice(&hostile);
        }
        _ if count > 0 => {
            // Entries start after the 8-byte directory header (count +
            // reserved). Corrupt one entry's byte_off (at +8) or byte_len
            // (at +16) with a huge or misaligning value.
            let entry = dir_off + 8 + rng.below(count) * 24;
            let field = entry + 8 + rng.below(2) * 8;
            if case.len() >= field + 8 {
                let hostile = match rng.below(3) {
                    0 => u64::MAX,
                    1 => rng.next_u64(),
                    _ => {
                        u64::from_le_bytes(case[field..field + 8].try_into().unwrap_or([0; 8])) ^ 1
                    } // misalign by one byte
                };
                case[field..field + 8].copy_from_slice(&hostile.to_le_bytes());
            }
        }
        _ => {}
    }
    reseal(case);
}

/// Recomputes the trailing FNV-1a checksum over the mutated payload.
fn reseal(case: &mut [u8]) {
    if case.len() < 8 {
        return;
    }
    let split = case.len() - 8;
    let sum = fnv1a(&case[..split]);
    case[split..].copy_from_slice(&sum.to_le_bytes());
}

/// FNV-1a 64, byte-for-byte the snapshot checksum in `cc_core`.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Validates a burst of length-prefixed `ccd` request frames exactly the
/// way the server's reader loop does: 4-byte LE length prefix (bounded by
/// [`MAX_FRAME`]), then a [`Request`] body, with `req_id`s unique within
/// the burst (the server answers by id; a collision makes two answers
/// indistinguishable). Returns the frame count, or the pinned diagnostic
/// the replay corpus asserts on.
///
/// # Errors
///
/// One of the five pinned diagnostic strings; `MANIFEST.tsv` freezes them.
pub fn check_frames(bytes: &[u8]) -> Result<usize, String> {
    let mut at = 0usize;
    let mut seen_ids = Vec::new();
    let mut frames = 0usize;
    while at < bytes.len() {
        let Some(prefix) = bytes.get(at..at + 4).and_then(|s| s.first_chunk::<4>()) else {
            return Err("truncated length prefix".to_string());
        };
        let len = u32::from_le_bytes(*prefix) as usize;
        if len > MAX_FRAME {
            return Err("oversized frame (length-prefix lie)".to_string());
        }
        at += 4;
        let Some(body) = bytes.get(at..at + len) else {
            return Err("length prefix overruns the burst (truncated frame)".to_string());
        };
        let Some(req) = Request::decode(body) else {
            return Err("malformed request body".to_string());
        };
        if seen_ids.contains(&req.req_id) {
            return Err("duplicate req_id within burst".to_string());
        }
        seen_ids.push(req.req_id);
        at += len;
        frames += 1;
    }
    Ok(frames)
}

/// A deterministic, valid three-request burst — the base the protocol
/// mutation strategies corrupt.
pub fn proto_base_burst() -> Vec<u8> {
    let mut burst = Vec::new();
    for (req_id, op, pairs) in [
        (1u64, Op::Ping, vec![]),
        (2, Op::Dist, vec![(0u32, 3u32), (1, 2)]),
        (3, Op::Path, vec![(4, 7)]),
    ] {
        let body = Request {
            req_id,
            op,
            deadline_ms: 0,
            pairs,
        }
        .encode();
        burst.extend_from_slice(&(body.len() as u32).to_le_bytes());
        burst.extend_from_slice(&body);
    }
    burst
}

/// Applies one protocol-frame mutation strategy in place; returns its name.
/// The classic framing attacks: lying length prefixes, truncated batches,
/// and request-id collisions, plus plain byte noise.
fn proto_mutate(burst: &mut Vec<u8>, rng: &mut Xorshift) -> &'static str {
    match rng.below(6) {
        0 => {
            // Length-prefix lie: claim more than MAX_FRAME.
            let lie = (MAX_FRAME as u32) + 1 + rng.next_u64() as u32 % 1024;
            burst[..4].copy_from_slice(&lie.to_le_bytes());
            "len-lie-oversized"
        }
        1 => {
            // Length-prefix lie: overrun the remaining bytes.
            let lie = (burst.len() as u32).saturating_add(1 + rng.next_u64() as u32 % 64);
            let lie = lie.min(MAX_FRAME as u32);
            burst[..4].copy_from_slice(&lie.to_le_bytes());
            "len-lie-overrun"
        }
        2 => {
            // Truncated batch: cut mid-frame (or mid-prefix).
            burst.truncate(rng.below(burst.len()));
            "truncate-burst"
        }
        3 => {
            // Id collision: copy frame 1's req_id over frame 2's. Bodies
            // start at +4 (prefix) and each request leads with its id.
            let first_len = u32::from_le_bytes(burst[..4].try_into().unwrap_or([0; 4])) as usize;
            let second_id_at = 4 + first_len + 4;
            if burst.len() >= second_id_at + 8 {
                let id: [u8; 8] = burst[4..12].try_into().unwrap_or([0; 8]);
                burst[second_id_at..second_id_at + 8].copy_from_slice(&id);
            }
            "id-collision"
        }
        4 => {
            // Body corruption after the prefix: op/flags/count bytes.
            let pos = 4 + rng.below(burst.len().saturating_sub(4).max(1));
            if pos < burst.len() {
                burst[pos] = rng.next_u64() as u8;
            }
            "body-set"
        }
        5 => {
            let pos = rng.below(burst.len());
            burst[pos] ^= 1 << rng.below(8);
            "bit-flip"
        }
        _ => unreachable!("below(6)"),
    }
}

/// The named deterministic protocol abuse cases, each paired with the
/// framing diagnostic it must produce.
fn proto_abuse_cases() -> Vec<(String, Vec<u8>)> {
    let base = proto_base_burst();
    let mut out = Vec::new();
    let mut push = |suffix: &str, bytes: Vec<u8>| out.push((format!("proto__{suffix}"), bytes));

    let mut oversized = base.clone();
    oversized[..4].copy_from_slice(&((MAX_FRAME as u32) + 1).to_le_bytes());
    push("len_lie_oversized", oversized);

    let mut overrun = base.clone();
    overrun[..4].copy_from_slice(&((base.len() as u32) * 2).to_le_bytes());
    push("len_lie_overrun", overrun);

    push("truncated_mid_frame", base[..base.len() - 3].to_vec());

    let mut cut_prefix = base.clone();
    cut_prefix.extend_from_slice(&[9, 0]); // two dangling prefix bytes
    push("truncated_prefix", cut_prefix);

    let first_len = u32::from_le_bytes(base[..4].try_into().unwrap_or([0; 4])) as usize;
    let mut dup = base.clone();
    let second_id_at = 4 + first_len + 4;
    let id: [u8; 8] = dup[4..12].try_into().unwrap_or([0; 8]);
    dup[second_id_at..second_id_at + 8].copy_from_slice(&id);
    push("duplicate_req_id", dup);

    let mut bad_op = base.clone();
    bad_op[4 + 8] = 0xee; // frame 1's op byte: no such operation
    push("malformed_body", bad_op);

    out
}

/// Buckets a [`check_frames`] diagnostic for the rejection histogram.
fn proto_error_kind(e: &str) -> &'static str {
    match e {
        "oversized frame (length-prefix lie)" => "proto-oversized",
        "length prefix overruns the burst (truncated frame)" => "proto-overrun",
        "truncated length prefix" => "proto-truncated-prefix",
        "malformed request body" => "proto-malformed",
        "duplicate req_id within burst" => "proto-dup-id",
        _ => "proto-other",
    }
}

/// Dispatches a load by magic: `CCRO` to the path oracle, everything else
/// to the distance oracle (whose magic check reports the mismatch).
pub fn load_any(bytes: &[u8]) -> Result<&'static str, SnapshotError> {
    match bytes.get(..4) {
        Some(b"CCRO") => PathOracle::from_snapshot_bytes(bytes).map(|_| "paths"),
        _ => DistOracle::from_snapshot_bytes(bytes).map(|_| "dist"),
    }
}

fn error_kind(e: &SnapshotError) -> &'static str {
    match e {
        SnapshotError::Io(_) => "io",
        SnapshotError::BadMagic(_) => "bad-magic",
        SnapshotError::UnsupportedVersion(_) => "unsupported-version",
        SnapshotError::Corrupt(_) => "corrupt",
        SnapshotError::TooLarge { .. } => "too-large",
    }
}

/// Emits the frozen abuse corpus: one deterministic case per class and
/// per golden snapshot, each written as `<case>.snap` next to a
/// `MANIFEST.tsv` of `file<TAB>expected-error` lines.
///
/// Generation asserts the contract: a case that loads cleanly or panics
/// is a generator bug and aborts the emit.
pub fn emit_corpus(
    corpus: &[(String, Vec<u8>)],
    out_dir: &Path,
) -> io::Result<Vec<(String, String)>> {
    fs::create_dir_all(out_dir)?;
    let mut manifest = Vec::new();
    for (name, base) in corpus {
        let stem = name.trim_end_matches(".snap");
        for (case, bytes) in abuse_cases(stem, base) {
            let err = match panic::catch_unwind(|| load_any(&bytes)) {
                Ok(Ok(kind)) => {
                    return Err(io::Error::other(format!(
                        "generator bug: case {case} loaded cleanly as {kind}"
                    )))
                }
                Ok(Err(e)) => e.to_string(),
                Err(_) => {
                    return Err(io::Error::other(format!(
                        "loader bug: case {case} panicked"
                    )))
                }
            };
            fs::write(out_dir.join(format!("{case}.snap")), &bytes)?;
            manifest.push((format!("{case}.snap"), err));
        }
    }
    // The ccd framing abuse cases ride in the same manifest, written as
    // `.bin` (wire bursts, not snapshots) and replayed through
    // `check_frames` instead of the loaders.
    for (case, bytes) in proto_abuse_cases() {
        let err = match panic::catch_unwind(|| check_frames(&bytes)) {
            Ok(Ok(n)) => {
                return Err(io::Error::other(format!(
                    "generator bug: case {case} parsed cleanly ({n} frames)"
                )))
            }
            Ok(Err(e)) => e,
            Err(_) => {
                return Err(io::Error::other(format!(
                    "framing bug: case {case} panicked"
                )))
            }
        };
        fs::write(out_dir.join(format!("{case}.bin")), &bytes)?;
        manifest.push((format!("{case}.bin"), err));
    }
    let tsv: String = manifest
        .iter()
        .map(|(f, e)| format!("{f}\t{e}\n"))
        .collect();
    fs::write(out_dir.join("MANIFEST.tsv"), tsv)?;
    Ok(manifest)
}

/// The named deterministic abuse cases derived from one golden snapshot.
fn abuse_cases(stem: &str, base: &[u8]) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    let mut push = |suffix: &str, bytes: Vec<u8>| out.push((format!("{stem}__{suffix}"), bytes));

    push("truncated_header", base.get(..10).unwrap_or(base).to_vec());
    push(
        "truncated_body",
        base.get(..base.len() * 2 / 3).unwrap_or(base).to_vec(),
    );

    let mut bad_magic = base.to_vec();
    if bad_magic.len() >= 4 {
        bad_magic[..4].copy_from_slice(b"XXXX");
        reseal(&mut bad_magic);
    }
    push("bad_magic", bad_magic);

    let mut future = base.to_vec();
    if future.len() >= 6 {
        future[4..6].copy_from_slice(&0x7fffu16.to_le_bytes());
        reseal(&mut future);
    }
    push("future_version", future);

    let mut flipped = base.to_vec();
    if flipped.len() > 20 {
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        // deliberately NOT re-sealed: the checksum must catch it
    }
    push("checksum_flip", flipped);

    // v2-only structural abuse: the directory is only there for version 2.
    if base.get(4..6) == Some(&[2, 0]) {
        let mut oob = base.to_vec();
        let hostile = (base.len() as u64) * 4;
        oob[8..16].copy_from_slice(&hostile.to_le_bytes());
        reseal(&mut oob);
        push("dir_off_oob", oob);

        if let Some(dir_off) = base
            .get(8..16)
            .and_then(|s| s.first_chunk::<8>())
            .map(|b| u64::from_le_bytes(*b) as usize)
        {
            if base.len() > dir_off + 4 {
                let mut huge = base.to_vec();
                huge[dir_off..dir_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
                reseal(&mut huge);
                push("dir_count_huge", huge);

                // First entry sits after the 8-byte directory header; its
                // byte_off field is 8 bytes into the 24-byte row.
                let entry_off_field = dir_off + 8 + 8;
                if base.len() >= entry_off_field + 8 {
                    let mut skew = base.to_vec();
                    if let Some(cur) = skew
                        .get(entry_off_field..entry_off_field + 8)
                        .and_then(|s| s.first_chunk::<8>())
                        .map(|b| u64::from_le_bytes(*b))
                    {
                        skew[entry_off_field..entry_off_field + 8]
                            .copy_from_slice(&(cur + 1).to_le_bytes());
                        reseal(&mut skew);
                        push("misaligned_section", skew);
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_snapshot() -> Vec<u8> {
        // A real v2 snapshot via the public API keeps this test honest.
        let mut m = cc_core::DistanceMatrix::new(4);
        for u in 0..4 {
            for v in 0..4 {
                m.improve(u, v, u.abs_diff(v) as cc_graphs::Dist);
            }
        }
        let o = cc_core::DistOracle::from_matrix(
            &m,
            cc_core::Guarantee::mult3(0.25),
            cc_graphs::StorageKind::Full,
        );
        let mut buf = Vec::new();
        o.save_v2(&mut buf).expect("save_v2");
        buf
    }

    #[test]
    fn seeded_runs_are_deterministic() {
        let corpus = vec![("tiny.snap".to_string(), tiny_snapshot())];
        let a = run(&corpus, 200, 0xfeed, None);
        let b = run(&corpus, 200, 0xfeed, None);
        assert_eq!(a.clean_loads, b.clean_loads);
        assert_eq!(a.rejections, b.rejections);
        assert!(a.failures.is_empty(), "{:?}", a.failures);
    }

    #[test]
    fn smoke_run_never_panics_the_loader() {
        let corpus = vec![("tiny.snap".to_string(), tiny_snapshot())];
        let s = run(&corpus, 500, 0x5eed, None);
        assert!(s.failures.is_empty(), "{:?}", s.failures);
        // Mutations must actually be reaching the loader's rejection
        // paths, not all bouncing off one check.
        assert!(s.rejections.len() >= 2, "{:?}", s.rejections);
    }

    #[test]
    fn a_valid_burst_parses_to_its_frame_count() {
        assert_eq!(check_frames(&proto_base_burst()), Ok(3));
        assert_eq!(check_frames(&[]), Ok(0));
    }

    #[test]
    fn proto_abuse_cases_all_reject_with_pinned_diagnostics() {
        let cases = proto_abuse_cases();
        assert_eq!(cases.len(), 6);
        for (name, bytes) in cases {
            let r = std::panic::catch_unwind(|| check_frames(&bytes));
            match r {
                Ok(Err(e)) => assert_ne!(
                    proto_error_kind(&e),
                    "proto-other",
                    "{name}: unpinned diagnostic {e:?}"
                ),
                Ok(Ok(n)) => panic!("{name} parsed cleanly ({n} frames)"),
                Err(_) => panic!("{name} panicked the framing validator"),
            }
        }
    }

    #[test]
    fn proto_mutations_never_panic_the_framing_validator() {
        let mut rng = Xorshift::new(0xccd);
        for _ in 0..2000 {
            let mut burst = proto_base_burst();
            let strategy = proto_mutate(&mut burst, &mut rng);
            let r = std::panic::catch_unwind(|| check_frames(&burst));
            assert!(r.is_ok(), "strategy {strategy} panicked check_frames");
        }
    }

    #[test]
    fn abuse_cases_all_reject_with_typed_errors() {
        let base = tiny_snapshot();
        for (name, bytes) in abuse_cases("tiny", &base) {
            let r = std::panic::catch_unwind(|| load_any(&bytes));
            match r {
                Ok(Err(_)) => {}
                Ok(Ok(_)) => panic!("{name} loaded cleanly"),
                Err(_) => panic!("{name} panicked the loader"),
            }
        }
    }
}
