//! The dynamic half of the determinism audit: a schedule-perturbation
//! harness (`cc-analyze schedule`).
//!
//! The static rules ([`crate::rules`], [`crate::concurrency`]) ban the
//! *patterns* that produce nondeterminism; this module attacks the running
//! code. Every iteration re-runs the workspace's parallel surfaces — the
//! plain and witness-carrying min-plus kernels (sparse and dense), the
//! sharded congested-clique engine, and periodically a loopback `ccd`
//! burst — under a perturbed schedule: randomized thread counts, worker
//! and batch-size choices (which move the queue-pop coalescing points),
//! client-side send jitter, and background yield-spinner threads that
//! shuffle OS scheduling. Outputs must be **bit-identical** to a serial
//! baseline computed once up front; any divergence is reported with the
//! xorshift seed and iteration so the exact schedule roll can be replayed
//! with `cc-analyze schedule --seed <s> --iters <i>`.
//!
//! This is a determinism fuzzer, not a stress test: inputs are fixed by
//! the seed, only the *schedule* varies. TSan and Miri catch racy access;
//! this catches racy *results* — the thing the paper reproduction actually
//! promises (`DESIGN.md` §11.4).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cc_clique::engine::{Engine, EngineConfig};
use cc_clique::programs::AllGather;
use cc_clique::NodeId;
use cc_core::{DistOracle, DistanceMatrix, Guarantee, PointEstimate};
use cc_graphs::{Dist, StorageKind};
use cc_matrix::{DenseMatrix, MinplusWorkspace, RowBuilder, SparseMatrix};
use cc_serve::snapshot::Oracles;
use cc_serve::{serve, Client, ServerConfig};

use crate::fuzz::Xorshift;

/// Harness parameters (all deterministic given `seed`).
#[derive(Clone, Copy, Debug)]
pub struct ScheduleConfig {
    /// Perturbed iterations to run.
    pub iters: u64,
    /// Root seed; every iteration derives its own stream from it.
    pub seed: u64,
    /// Maximum worker threads rolled per component (min 1).
    pub max_threads: usize,
}

impl Default for ScheduleConfig {
    fn default() -> Self {
        ScheduleConfig {
            iters: 50,
            seed: 0x5eed_dec0de,
            max_threads: 4,
        }
    }
}

/// Outcome of a harness run.
#[derive(Debug, Default)]
pub struct ScheduleSummary {
    /// Iterations completed.
    pub iterations: u64,
    /// Kernel comparisons performed (sparse/dense × plain/witness + engine).
    pub comparisons: u64,
    /// Loopback `ccd` bursts performed.
    pub serve_bursts: u64,
    /// Divergences from the serial baseline, with replay coordinates.
    pub failures: Vec<String>,
}

/// Matrix dimension for the kernel inputs.
const KERNEL_N: usize = 48;
/// Node count for the engine program.
const ENGINE_N: usize = 24;
/// Vertex count for the served oracle.
const SERVE_N: usize = 40;
/// A `ccd` burst runs every this-many iterations (spawning a TCP server
/// per iteration would dominate the schedule search).
const SERVE_EVERY: u64 = 8;

/// Serial ground truth, computed once at `threads = 1`.
struct Baseline {
    sparse_a: SparseMatrix,
    sparse_b: SparseMatrix,
    dense_a: DenseMatrix,
    dense_b: DenseMatrix,
    sparse_plain: SparseMatrix,
    sparse_witness: (SparseMatrix, Vec<u32>),
    dense_plain: DenseMatrix,
    dense_witness: (DenseMatrix, Vec<u32>),
    engine_words: Vec<Vec<u64>>,
    engine_collected: Vec<Vec<u64>>,
    oracle: Arc<DistOracle>,
    query_pairs: Vec<(u32, u32)>,
    query_answers: Vec<Option<PointEstimate>>,
}

/// Deterministic sparse/dense input pair: ~6 entries per row, weights
/// below 1000, mirrored into the dense form entry for entry.
fn seeded_inputs(seed: u64) -> (SparseMatrix, DenseMatrix) {
    let mut rng = Xorshift::new(seed);
    let mut rb = RowBuilder::new(KERNEL_N);
    let mut dense = DenseMatrix::infinite(KERNEL_N);
    for i in 0..KERNEL_N {
        for _ in 0..6 {
            let j = rng.below(KERNEL_N);
            let w = rng.below(1000) as Dist;
            rb.push(i, j, w);
            if w < dense.get(i, j) {
                dense.set(i, j, w);
            }
        }
    }
    (rb.build(), dense)
}

fn engine_words(seed: u64) -> Vec<Vec<u64>> {
    let mut rng = Xorshift::new(seed ^ 0xe9_61);
    (0..ENGINE_N)
        .map(|i| {
            (0..1 + rng.below(3))
                .map(|k| ((i as u64) << 32) | ((k as u64) ^ (rng.next_u64() >> 48)))
                .collect()
        })
        .collect()
}

fn run_engine(words: &[Vec<u64>], threads: usize) -> Result<Vec<Vec<u64>>, String> {
    let nodes: Vec<AllGather> = words
        .iter()
        .enumerate()
        .map(|(i, w)| AllGather::new(NodeId::new(i), w.clone()))
        .collect();
    let mut engine = Engine::with_config(nodes, EngineConfig::threaded(threads));
    engine.run().map_err(|e| format!("engine error: {e:?}"))?;
    Ok(engine
        .nodes()
        .iter()
        .map(|n| n.collected().to_vec())
        .collect())
}

/// A frozen oracle plus the seeded query pairs and their serial answers.
type OracleBaseline = (Arc<DistOracle>, Vec<(u32, u32)>, Vec<Option<PointEstimate>>);

fn build_oracle(seed: u64) -> OracleBaseline {
    let mut rng = Xorshift::new(seed ^ 0x07ac1e);
    let mut m = DistanceMatrix::new(SERVE_N);
    for u in 0..SERVE_N {
        for v in (u + 1)..SERVE_N {
            let d = 1 + rng.below(500) as Dist;
            m.improve(u, v, d);
            m.improve(v, u, d);
        }
    }
    let oracle = Arc::new(DistOracle::from_matrix(
        &m,
        Guarantee::mult2(0.25),
        StorageKind::SymmetricPacked,
    ));
    let pairs: Vec<(u32, u32)> = (0..200)
        .map(|_| (rng.below(SERVE_N) as u32, rng.below(SERVE_N) as u32))
        .collect();
    let upairs: Vec<(usize, usize)> = pairs
        .iter()
        .map(|&(u, v)| (u as usize, v as usize))
        .collect();
    let answers = oracle.dist_batch(&upairs);
    (oracle, pairs, answers)
}

fn baseline(seed: u64) -> Result<Baseline, String> {
    let (sparse_a, dense_a) = seeded_inputs(seed ^ 0xa);
    let (sparse_b, dense_b) = seeded_inputs(seed ^ 0xb);
    let mut serial = MinplusWorkspace::with_threads(1);
    let sparse_plain = sparse_a.minplus_with(&sparse_b, &mut serial);
    let sparse_witness = sparse_a.minplus_with_witness(&sparse_b, &mut serial);
    let dense_plain = dense_a.minplus_with(&dense_b, &serial);
    let dense_witness = dense_a.minplus_with_witness(&dense_b, &serial);
    let engine_words = engine_words(seed);
    let engine_collected = run_engine(&engine_words, 1)?;
    let (oracle, query_pairs, query_answers) = build_oracle(seed);
    Ok(Baseline {
        sparse_a,
        sparse_b,
        dense_a,
        dense_b,
        sparse_plain,
        sparse_witness,
        dense_plain,
        dense_witness,
        engine_words,
        engine_collected,
        oracle,
        query_pairs,
        query_answers,
    })
}

/// Background yield-spinners: pure scheduling noise, no shared state.
struct Spinners {
    stop: Arc<AtomicBool>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Spinners {
    fn start(count: usize) -> Spinners {
        let stop = Arc::new(AtomicBool::new(false));
        let handles = (0..count)
            .map(|_| {
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        std::thread::yield_now();
                    }
                })
            })
            .collect();
        Spinners { stop, handles }
    }
}

impl Drop for Spinners {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// One loopback `ccd` burst under a rolled server schedule: random worker
/// count and `batch_max` (both move the queue-pop coalescing points), two
/// concurrent clients with jittered send pacing, answers compared
/// entry-for-entry against the in-process oracle baseline.
fn serve_burst(base: &Baseline, rng: &mut Xorshift) -> Result<(), String> {
    let config = ServerConfig {
        threads: 1 + rng.below(4),
        queue_capacity: 4096, // never shed: shedding is *load* behavior, not schedule
        batch_max: 1 + rng.below(64),
        default_deadline_ms: 0,
        ..ServerConfig::default()
    };
    let handle = serve(
        Oracles::DistOnly(Arc::clone(&base.oracle)),
        "127.0.0.1:0",
        config,
    )
    .map_err(|e| format!("serve: {e}"))?;
    let addr = handle.addr();

    let requests = 6 + rng.below(6);
    let client_seeds = [rng.next_u64(), rng.next_u64()];
    let outcome = std::thread::scope(|scope| {
        let workers: Vec<_> = client_seeds
            .iter()
            .map(|&cs| {
                let pairs = &base.query_pairs;
                let want = &base.query_answers;
                scope.spawn(move || -> Result<(), String> {
                    let mut jrng = Xorshift::new(cs);
                    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
                    for r in 0..requests {
                        // Jitter the send points so requests interleave
                        // differently with queue pops on every roll.
                        std::thread::sleep(Duration::from_micros(jrng.below(200) as u64));
                        let lo = jrng.below(pairs.len());
                        let hi = (lo + 1 + jrng.below(pairs.len() - lo)).min(pairs.len());
                        let got = client
                            .dist_batch(&pairs[lo..hi], 0)
                            .map_err(|e| format!("dist_batch: {e}"))?
                            .map_err(|s| format!("unexpected status {s:?}"))?;
                        if got[..] != want[lo..hi] {
                            return Err(format!(
                                "request {r}: served answers for pairs[{lo}..{hi}] \
                                 diverge from the in-process oracle"
                            ));
                        }
                    }
                    // The trace ring is bounded and contention-dropping,
                    // yet a synchronous client (one outstanding request)
                    // must see a deterministic drain: exactly one span per
                    // request, in issue order, every one Ok — under every
                    // perturbed schedule.
                    let trace = client.trace().map_err(|e| format!("trace: {e}"))?;
                    let spans: Vec<&str> = trace.lines().collect();
                    if spans.len() != requests {
                        return Err(format!(
                            "trace ring drained {} spans for {requests} requests",
                            spans.len()
                        ));
                    }
                    for (i, span) in spans.iter().enumerate() {
                        let prefix = format!("span req_id={} op=1 status=0 batch=", i + 1);
                        if !span.starts_with(&prefix) {
                            return Err(format!(
                                "span {i} diverges under this schedule: {span:?} \
                                 (want prefix {prefix:?})"
                            ));
                        }
                    }
                    Ok(())
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Err("client panicked".into())))
            .collect::<Result<Vec<()>, String>>()
    });
    handle.shutdown();
    outcome.map(|_| ())
}

/// Runs the harness. Every failure string carries the root seed, the
/// iteration, and the component, so `--seed`/`--iters` replay it exactly.
pub fn run(cfg: &ScheduleConfig) -> ScheduleSummary {
    let mut summary = ScheduleSummary::default();
    let base = match baseline(cfg.seed) {
        Ok(b) => b,
        Err(e) => {
            summary.failures.push(format!("baseline: {e}"));
            return summary;
        }
    };
    let max_threads = cfg.max_threads.max(1);

    for iter in 0..cfg.iters {
        let mut rng = Xorshift::new(cfg.seed ^ iter.wrapping_mul(0x9e37_79b9));
        let fail = |summary: &mut ScheduleSummary, component: &str, detail: String| {
            summary.failures.push(format!(
                "component={component} iter={iter} seed={:#x}: {detail} \
                 (replay: cc-analyze schedule --seed {} --iters {})",
                cfg.seed,
                cfg.seed,
                iter + 1,
            ));
        };

        // Scheduling noise for this iteration's kernels.
        let _spin = Spinners::start(rng.below(3));

        let threads = 1 + rng.below(max_threads);
        let mut ws = MinplusWorkspace::with_threads(threads);

        let got = base.sparse_a.minplus_with(&base.sparse_b, &mut ws);
        if got != base.sparse_plain {
            fail(
                &mut summary,
                "sparse-minplus",
                format!("threads={threads}: output differs from serial"),
            );
        }
        let got = base.sparse_a.minplus_with_witness(&base.sparse_b, &mut ws);
        if got != base.sparse_witness {
            fail(
                &mut summary,
                "sparse-witness",
                format!("threads={threads}: matrix or witnesses differ from serial"),
            );
        }
        let got = base.dense_a.minplus_with(&base.dense_b, &ws);
        if got != base.dense_plain {
            fail(
                &mut summary,
                "dense-minplus",
                format!("threads={threads}: output differs from serial"),
            );
        }
        let got = base.dense_a.minplus_with_witness(&base.dense_b, &ws);
        if got != base.dense_witness {
            fail(
                &mut summary,
                "dense-witness",
                format!("threads={threads}: matrix or witnesses differ from serial"),
            );
        }

        let engine_threads = 1 + rng.below(max_threads);
        match run_engine(&base.engine_words, engine_threads) {
            Ok(collected) if collected == base.engine_collected => {}
            Ok(_) => fail(
                &mut summary,
                "engine",
                format!("threads={engine_threads}: per-node collected words differ from serial"),
            ),
            Err(e) => fail(
                &mut summary,
                "engine",
                format!("threads={engine_threads}: {e}"),
            ),
        }
        summary.comparisons += 5;

        if iter % SERVE_EVERY == 0 {
            summary.serve_bursts += 1;
            if let Err(e) = serve_burst(&base, &mut rng) {
                fail(&mut summary, "ccd-loopback", e);
            }
        }

        summary.iterations += 1;
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_short_run_is_bit_identical() {
        let summary = run(&ScheduleConfig {
            iters: 9, // crosses one serve burst
            seed: 0x7e57,
            max_threads: 3,
        });
        assert_eq!(summary.iterations, 9);
        assert_eq!(summary.serve_bursts, 2);
        assert!(
            summary.failures.is_empty(),
            "determinism violations: {:#?}",
            summary.failures
        );
    }

    #[test]
    fn baselines_are_reproducible() {
        let a = baseline(42).expect("baseline");
        let b = baseline(42).expect("baseline");
        assert_eq!(a.sparse_plain, b.sparse_plain);
        assert_eq!(a.dense_witness, b.dense_witness);
        assert_eq!(a.engine_collected, b.engine_collected);
        assert_eq!(a.query_answers, b.query_answers);
    }
}
