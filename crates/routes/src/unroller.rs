//! Shortcut-edge provenance: unrolling hopset/emulator edges into `G` edges.

use std::collections::BTreeMap;

use cc_graphs::Graph;

use crate::arena::{RecId, RouteArena};

/// Provenance for a set of *shortcut edges*: every registered pair `{u, v}`
/// maps to the shortest known path record, so any shortcut edge — or any walk
/// whose hops are `G` edges or registered shortcuts — can be recursively
/// expanded into original-graph edges.
///
/// Construction layers compose: a hopset registers its bunch edges (interned
/// from `(k,t)`-nearest parent chains) and then each interconnection
/// iteration's edges, whose defining walks step over `G` and *earlier*
/// hopset edges only. The arena's append-only id order is exactly that
/// layering, which is why unrolling terminates (`DESIGN.md` §8.2).
#[derive(Clone, Debug, Default)]
pub struct Unroller {
    arena: RouteArena,
    /// Canonical pair `{min, max}` → (edge count of the record, record as a
    /// path `min → max`). Ordered deliberately: [`Unroller::absorb`]
    /// iterates this map to merge pair tables, and an address-dependent
    /// iteration order is exactly the hazard the `unordered-iter` rule
    /// bans in result-affecting crates (`DESIGN.md` §11.1).
    by_pair: BTreeMap<(u32, u32), (u32, RecId)>,
}

impl Unroller {
    /// An empty unroller.
    pub fn new() -> Self {
        Unroller::default()
    }

    /// Wraps an already-built arena (typically reconstructed from a snapshot
    /// — zero-copy when the arena's sections are shared views) without
    /// copying its records. The pair registry starts empty; stores that keep
    /// their own witness tables never consult it.
    pub fn from_arena(arena: RouteArena) -> Self {
        Unroller {
            arena,
            by_pair: BTreeMap::new(),
        }
    }

    /// The record arena.
    pub fn arena(&self) -> &RouteArena {
        &self.arena
    }

    /// Mutable access to the record arena (for interning caller-built
    /// chains, e.g. `(k,d)`-nearest parent chains).
    pub fn arena_mut(&mut self) -> &mut RouteArena {
        &mut self.arena
    }

    /// Number of registered shortcut pairs.
    pub fn pairs(&self) -> usize {
        self.by_pair.len()
    }

    /// Registers `rec` (a path `u → v` in this arena) as provenance for the
    /// shortcut pair `{u, v}`. Keeps the record with the fewest `G` edges;
    /// on equal length the first registration wins (deterministic given a
    /// deterministic registration order).
    ///
    /// # Panics
    ///
    /// Panics if `u == v`.
    pub fn register(&mut self, u: usize, v: usize, rec: RecId) {
        assert_ne!(u, v, "shortcut pairs cannot be self-loops");
        let len = self.arena.len_of(rec);
        let key = (u.min(v) as u32, u.max(v) as u32);
        // Decide before interning: a losing registration must not leave a
        // dead Rev node in the append-only arena (it would be carried into
        // every absorbing store and snapshot).
        if self.by_pair.get(&key).is_some_and(|cur| cur.0 <= len) {
            return;
        }
        let stored = if u < v { rec } else { self.arena.rev(rec) };
        self.by_pair.insert(key, (len, stored));
    }

    /// The best record for pair `{u, v}`: `(edge count, record, reversed)`
    /// where `reversed` tells whether the record must be emitted reversed to
    /// run `u → v`.
    pub fn rec_between(&self, u: usize, v: usize) -> Option<(u32, RecId, bool)> {
        let key = (u.min(v) as u32, u.max(v) as u32);
        self.by_pair.get(&key).map(|&(len, rec)| (len, rec, u > v))
    }

    /// Like [`Unroller::rec_between`], but returns a record already oriented
    /// `u → v` (interning a `Rev` node when needed).
    pub fn oriented(&mut self, u: usize, v: usize) -> Option<(u32, RecId)> {
        let (len, rec, reversed) = self.rec_between(u, v)?;
        let rec = if reversed { self.arena.rev(rec) } else { rec };
        Some((len, rec))
    }

    /// Interns a walk given as a vertex sequence whose hops are `G` edges or
    /// registered shortcut pairs, resolving each hop to the shortest known
    /// expansion (`G` edges win — they are always at least as short). Returns
    /// `None` when the walk has fewer than two vertices or some hop is
    /// neither a `G` edge nor registered.
    pub fn intern_walk(&mut self, g: &Graph, verts: &[u32]) -> Option<RecId> {
        if verts.len() < 2 {
            return None;
        }
        let mut acc: Option<RecId> = None;
        for hop in verts.windows(2) {
            let (x, y) = (hop[0] as usize, hop[1] as usize);
            let rec = if g.has_edge(x, y) {
                self.arena.edge(hop[0], hop[1])
            } else {
                self.oriented(x, y)?.1
            };
            acc = Some(match acc {
                Some(prev) => self.arena.cat(prev, rec),
                None => rec,
            });
        }
        acc
    }

    /// Fully expands the shortcut pair `{u, v}` into directed `G` edges
    /// running `u → v`.
    pub fn unroll(&self, u: usize, v: usize) -> Option<Vec<(u32, u32)>> {
        let (_, rec, reversed) = self.rec_between(u, v)?;
        Some(self.arena.emit(rec, reversed))
    }

    /// Merges every record and registered pair of `other` into `self`
    /// (arena ids shift; pair conflicts keep the shorter record).
    pub fn absorb(&mut self, other: &Unroller) {
        let offset = self.arena.absorb(&other.arena);
        for (&(u, v), &(len, rec)) in &other.by_pair {
            let shifted = RecId::from_index(rec.index() + offset);
            match self.by_pair.get_mut(&(u, v)) {
                Some(cur) if cur.0 <= len => {}
                Some(cur) => *cur = (len, shifted),
                None => {
                    self.by_pair.insert((u, v), (len, shifted));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        Graph::from_edges(n, &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>())
    }

    #[test]
    fn register_keeps_the_shortest_record() {
        let g = path_graph(4);
        let mut u = Unroller::new();
        let long = u.intern_walk(&g, &[0, 1, 2, 3, 2, 3]).unwrap();
        u.register(0, 3, long);
        assert_eq!(u.unroll(0, 3).unwrap().len(), 5);
        let short = u.intern_walk(&g, &[0, 1, 2, 3]).unwrap();
        u.register(0, 3, short);
        assert_eq!(u.unroll(0, 3).unwrap().len(), 3);
        // A longer re-registration does not displace the short one.
        u.register(3, 0, long);
        assert_eq!(u.unroll(0, 3).unwrap().len(), 3);
        assert_eq!(u.pairs(), 1);
    }

    #[test]
    fn walks_resolve_through_registered_shortcuts() {
        // Layered shortcuts: (0,2) over G edges, then (0,4) over G ∪ {(0,2)}.
        let g = path_graph(5);
        let mut u = Unroller::new();
        let low = u.intern_walk(&g, &[0, 1, 2]).unwrap();
        u.register(0, 2, low);
        let high = u.intern_walk(&g, &[0, 2, 3, 4]).expect("hop (0,2) known");
        u.register(0, 4, high);
        assert_eq!(
            u.unroll(0, 4).unwrap(),
            vec![(0, 1), (1, 2), (2, 3), (3, 4)]
        );
        // Reverse orientation unrolls the same walk backwards.
        assert_eq!(
            u.unroll(4, 0).unwrap(),
            vec![(4, 3), (3, 2), (2, 1), (1, 0)]
        );
        // A hop that is neither a G edge nor registered fails cleanly.
        assert!(u.intern_walk(&g, &[1, 4]).is_none());
        assert!(u.intern_walk(&g, &[3]).is_none(), "degenerate walk");
    }

    #[test]
    fn absorb_merges_pairs_with_shorter_wins() {
        let g = path_graph(4);
        let mut a = Unroller::new();
        let long = a.intern_walk(&g, &[0, 1, 2, 1, 2, 3]).unwrap();
        a.register(0, 3, long);
        let mut b = Unroller::new();
        let short = b.intern_walk(&g, &[0, 1, 2, 3]).unwrap();
        b.register(0, 3, short);
        let mid = b.intern_walk(&g, &[1, 2, 3]).unwrap();
        b.register(1, 3, mid);
        a.absorb(&b);
        assert_eq!(a.unroll(0, 3).unwrap().len(), 3, "shorter record wins");
        assert_eq!(a.unroll(3, 1).unwrap(), vec![(3, 2), (2, 1)]);
        assert_eq!(a.pairs(), 2);
    }

    /// Two independent absorb-merges of the same unrollers must agree on
    /// every unrolled walk — the pair table's iteration order may not leak
    /// into results (regression for the BTreeMap conversion; the
    /// `unordered-iter` rule pins this statically).
    #[test]
    fn absorb_results_are_stable_across_runs() {
        let g = path_graph(8);
        let run = || {
            let mut a = Unroller::new();
            for s in 0..5usize {
                let walk: Vec<u32> = (s as u32..=s as u32 + 2).collect();
                let rec = a.intern_walk(&g, &walk).unwrap();
                a.register(s, s + 2, rec);
            }
            let mut b = Unroller::new();
            for s in 0..4usize {
                let walk: Vec<u32> = (s as u32..=s as u32 + 3).collect();
                let rec = b.intern_walk(&g, &walk).unwrap();
                b.register(s, s + 3, rec);
            }
            a.absorb(&b);
            let mut out = Vec::new();
            for u in 0..8 {
                for v in 0..8 {
                    if let Some(edges) = a.unroll(u, v) {
                        out.push((u, v, edges));
                    }
                }
            }
            out
        };
        assert_eq!(run(), run(), "absorb must be bit-identical across runs");
    }

    #[test]
    fn intern_walk_register_via_mutable_reference() {
        // `register` accepts recs built through `arena_mut` too.
        let mut u = Unroller::new();
        let rec = {
            let arena = u.arena_mut();
            let e = arena.edge(5, 6);
            let f = arena.edge(6, 7);
            arena.cat(e, f)
        };
        u.register(5, 7, rec);
        assert_eq!(u.unroll(7, 5).unwrap(), vec![(7, 6), (6, 5)]);
        assert_eq!(u.rec_between(5, 7).unwrap().0, 2);
        assert!(u.rec_between(5, 6).is_none());
    }
}
