//! Per-pair and per-row witness stores filled by the distance pipelines.

use cc_graphs::{Dist, DistStorage, Graph, INF};

use crate::arena::{RecId, RouteArena};
use crate::unroller::Unroller;

/// The witness of one vertex pair in a [`PathStore`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PairWitness {
    /// No finite estimate has been offered for the pair.
    None,
    /// An interned path record running `min(u,v) → max(u,v)` (reversed when
    /// `rev` is set).
    Rec {
        /// The record.
        rec: RecId,
        /// Emit the record reversed to run `min → max`.
        rev: bool,
    },
    /// Midpoint decomposition: the pair's walk is the walk to `via` followed
    /// by the walk from `via` — both again witnessed pairs of this store.
    /// Every `Via` is recorded with a value that is at least the sum of the
    /// two halves' values at record time, and values only decrease, so
    /// expansion strictly descends and terminates (`DESIGN.md` §8.2).
    Via(u32),
}

/// The per-pair witness table a pipeline fills alongside its symmetric
/// estimate matrix.
///
/// The store mirrors the estimate values on its own (`offer_*` updates value
/// and witness atomically with the same strict-improvement rule the
/// [`DistanceMatrix`] uses), so recording witnesses never changes the
/// pipeline's estimates — the offers are a parallel shadow of the existing
/// `improve` calls.
///
/// [`DistanceMatrix`]: https://docs.rs/cc-core
#[derive(Clone, Debug)]
pub struct PathStore {
    n: usize,
    /// Mirrored best values, packed upper triangle (diagonal 0).
    best: Vec<Dist>,
    /// One witness per packed pair.
    entries: Vec<PairWitness>,
    /// Shortcut provenance (hopset/emulator records absorbed in) plus the
    /// arena all `Rec` witnesses live in.
    routes: Unroller,
}

impl PathStore {
    /// An empty store for an `n`-vertex graph.
    pub fn new(n: usize) -> Self {
        let entries = n * (n + 1) / 2;
        let mut best = vec![INF; entries];
        for u in 0..n {
            best[DistStorage::packed_index(n, u, u)] = 0;
        }
        PathStore {
            n,
            best,
            entries: vec![PairWitness::None; entries],
            routes: Unroller::new(),
        }
    }

    /// Rebuilds a store from frozen parts (snapshot loading). The arena is
    /// taken as-is — no copy, so zero-copy (shared-section) arenas stay
    /// zero-copy. Mirrored values are not part of snapshots; the rebuilt
    /// store only serves [`PathStore::emit`].
    ///
    /// # Panics
    ///
    /// Panics if `entries.len() != n(n+1)/2`.
    pub fn from_parts(n: usize, arena: RouteArena, entries: Vec<PairWitness>) -> Self {
        assert_eq!(entries.len(), n * (n + 1) / 2, "one witness per pair");
        let routes = Unroller::from_arena(arena);
        let mut best = vec![INF; entries.len()];
        for u in 0..n {
            best[DistStorage::packed_index(n, u, u)] = 0;
        }
        PathStore {
            n,
            best,
            entries,
            routes,
        }
    }

    /// Dimension `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The record arena (snapshot saving).
    pub fn arena(&self) -> &RouteArena {
        self.routes.arena()
    }

    /// The shortcut-provenance unroller (absorb substrate routes, intern
    /// chains).
    pub fn routes_mut(&mut self) -> &mut Unroller {
        &mut self.routes
    }

    /// Absorbs a substrate's shortcut provenance (hopset or emulator
    /// routes) so later walks can step over its shortcut edges.
    pub fn absorb_routes(&mut self, routes: &Unroller) {
        self.routes.absorb(routes);
    }

    /// The mirrored best value for `(u, v)` (`0` on the diagonal, [`INF`]
    /// before any offer).
    pub fn value(&self, u: usize, v: usize) -> Dist {
        self.best[DistStorage::packed_index(self.n, u, v)]
    }

    /// The witness of `(u, v)` in wire form — used by snapshots and tests.
    pub fn witness(&self, u: usize, v: usize) -> PairWitness {
        self.entries[DistStorage::packed_index(self.n, u, v)]
    }

    /// Raw packed witness table, indexed like
    /// [`DistStorage::packed_index`].
    pub fn witnesses(&self) -> &[PairWitness] {
        &self.entries
    }

    #[inline]
    fn offer(&mut self, u: usize, v: usize, d: Dist, witness: PairWitness) {
        if u == v || d >= INF {
            return;
        }
        let idx = DistStorage::packed_index(self.n, u, v);
        if d < self.best[idx] {
            self.best[idx] = d;
            self.entries[idx] = witness;
        }
    }

    /// Offers the direct `G` edge `{u, v}` (weight 1).
    pub fn offer_edge(&mut self, u: usize, v: usize) {
        if u == v || self.value(u, v) <= 1 {
            return;
        }
        let rec = self
            .routes
            .arena_mut()
            .edge(u.min(v) as u32, u.max(v) as u32);
        self.offer(u, v, 1, PairWitness::Rec { rec, rev: false });
    }

    /// Offers an interned record (a path `u → v` in this store's arena) at
    /// value `d`.
    pub fn offer_rec(&mut self, u: usize, v: usize, d: Dist, rec: RecId) {
        self.offer(
            u,
            v,
            d,
            PairWitness::Rec {
                rec,
                rev: u > v, // stored canonically as min → max
            },
        );
    }

    /// Offers a walk given as a vertex sequence over `G` ∪ registered
    /// shortcuts at value `d`. No-op (and no interning) unless it improves;
    /// panics in debug builds if a hop cannot be resolved.
    pub fn offer_walk(&mut self, g: &Graph, d: Dist, verts: &[u32]) {
        if verts.len() < 2 {
            return;
        }
        let (u, v) = (verts[0] as usize, verts[verts.len() - 1] as usize);
        if u == v || d >= INF || d >= self.value(u, v) {
            return;
        }
        match self.routes.intern_walk(g, verts) {
            Some(rec) => self.offer_rec(u, v, d, rec),
            None => debug_assert!(false, "unresolvable hop in offered walk"),
        }
    }

    /// Offers the midpoint decomposition through `w` at value `d`. The
    /// caller guarantees `d ≥ value(u,w) + value(w,v)` at call time (the
    /// `improve_via` pattern), which is what keeps expansion well-founded.
    /// A degenerate midpoint (`w ∈ {u, v}`) is ignored — it restates the
    /// pair's own value and can never strictly improve it.
    pub fn offer_via(&mut self, u: usize, v: usize, d: Dist, w: usize) {
        if w == u || w == v {
            return;
        }
        self.offer(u, v, d, PairWitness::Via(w as u32));
    }

    /// Expands the witnessed walk for `(u, v)` into directed `G` edges
    /// running `u → v` (`Some(vec![])` on the diagonal). Returns `None` when
    /// the pair has no witness, an endpoint is out of range, or — on
    /// corrupted (snapshot-loaded) stores — expansion exceeds its budget.
    pub fn emit(&self, u: usize, v: usize) -> Option<Vec<(u32, u32)>> {
        let mut out = Vec::new();
        self.emit_into(u, v, &mut out)?;
        Some(out)
    }

    /// Like [`PathStore::emit`], but appends into a caller-provided buffer
    /// (per-worker scratch on serving paths) and returns the number of edges
    /// appended. On failure the buffer is truncated back to its original
    /// length.
    pub fn emit_into(&self, u: usize, v: usize, out: &mut Vec<(u32, u32)>) -> Option<usize> {
        if u >= self.n || v >= self.n {
            return None;
        }
        let start = out.len();
        if u == v {
            return Some(0);
        }
        let mut stack: Vec<(u32, u32)> = vec![(u as u32, v as u32)];
        // Well-formed stores strictly descend in value on every Via, so the
        // walk has at most `value(u,v)` edges; the budget only trips on
        // corrupt snapshots (where it turns a cycle into a clean None).
        let mut budget: u64 = 64 * (self.n as u64) * (self.n as u64) + 1024;
        while let Some((x, y)) = stack.pop() {
            let Some(rest) = budget.checked_sub(1) else {
                out.truncate(start);
                return None;
            };
            budget = rest;
            let idx = DistStorage::packed_index(self.n, x as usize, y as usize);
            match self.entries[idx] {
                PairWitness::None => {
                    out.truncate(start);
                    return None;
                }
                PairWitness::Rec { rec, rev } => {
                    self.routes.arena().emit_into(rec, rev ^ (x > y), out);
                }
                PairWitness::Via(w) => {
                    if w == x || w == y || w as usize >= self.n {
                        out.truncate(start);
                        return None; // corrupt snapshot
                    }
                    stack.push((w, y));
                    stack.push((x, w));
                }
            }
        }
        Some(out.len() - start)
    }
}

/// The row-shaped witness store for multi-source (MSSP) results: one record
/// per `(source, vertex)` cell, no midpoint decomposition.
#[derive(Clone, Debug)]
pub struct RowStore {
    n: usize,
    sources: Vec<u32>,
    /// Mirrored best values, `|S| × n` row-major.
    best: Vec<Dist>,
    /// Records oriented `source → vertex`.
    recs: Vec<Option<RecId>>,
    routes: Unroller,
}

impl RowStore {
    /// An empty store for the given source rows.
    pub fn new(n: usize, sources: &[usize]) -> Self {
        let sources: Vec<u32> = sources.iter().map(|&s| s as u32).collect();
        let mut best = vec![INF; sources.len() * n];
        for (i, &s) in sources.iter().enumerate() {
            best[i * n + s as usize] = 0;
        }
        RowStore {
            n,
            recs: vec![None; sources.len() * n],
            best,
            sources,
            routes: Unroller::new(),
        }
    }

    /// Rebuilds a store from frozen parts (snapshot loading; mirrored values
    /// are not serialized).
    ///
    /// # Panics
    ///
    /// Panics if `recs.len() != sources.len() * n`.
    pub fn from_parts(
        n: usize,
        sources: Vec<u32>,
        arena: RouteArena,
        recs: Vec<Option<RecId>>,
    ) -> Self {
        assert_eq!(recs.len(), sources.len() * n, "one record per cell");
        let routes = Unroller::from_arena(arena);
        let mut best = vec![INF; recs.len()];
        for (i, &s) in sources.iter().enumerate() {
            best[i * n + s as usize] = 0;
        }
        RowStore {
            n,
            sources,
            best,
            recs,
            routes,
        }
    }

    /// Dimension `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The source vertices, in row order.
    pub fn sources(&self) -> &[u32] {
        &self.sources
    }

    /// The record arena (snapshot saving).
    pub fn arena(&self) -> &RouteArena {
        self.routes.arena()
    }

    /// The raw record table, row-major like the estimate rows.
    pub fn recs(&self) -> &[Option<RecId>] {
        &self.recs
    }

    /// Shortcut-provenance access (absorb substrate routes, intern chains).
    pub fn routes_mut(&mut self) -> &mut Unroller {
        &mut self.routes
    }

    /// Absorbs a substrate's shortcut provenance.
    pub fn absorb_routes(&mut self, routes: &Unroller) {
        self.routes.absorb(routes);
    }

    /// The mirrored best value of cell `(i, v)`.
    pub fn value(&self, i: usize, v: usize) -> Dist {
        self.best[i * self.n + v]
    }

    /// Offers a record (oriented `sources[i] → v`) at value `d`.
    pub fn offer_rec(&mut self, i: usize, v: usize, d: Dist, rec: RecId) {
        if v == self.sources[i] as usize || d >= INF {
            return;
        }
        let idx = i * self.n + v;
        if d < self.best[idx] {
            self.best[idx] = d;
            self.recs[idx] = Some(rec);
        }
    }

    /// Offers the direct `G` edge `(sources[i], v)` (weight 1).
    pub fn offer_edge(&mut self, i: usize, v: usize) {
        let s = self.sources[i] as usize;
        if v == s || self.value(i, v) <= 1 {
            return;
        }
        let rec = self.routes.arena_mut().edge(s as u32, v as u32);
        self.offer_rec(i, v, 1, rec);
    }

    /// Offers a walk (vertex sequence from `sources[i]` to `v` over `G` ∪
    /// registered shortcuts) at value `d`. No-op unless it improves.
    pub fn offer_walk(&mut self, g: &Graph, i: usize, d: Dist, verts: &[u32]) {
        if verts.len() < 2 {
            return;
        }
        debug_assert_eq!(verts[0], self.sources[i], "walk must start at the source");
        let v = verts[verts.len() - 1] as usize;
        if d >= INF || d >= self.value(i, v) {
            return;
        }
        match self.routes.intern_walk(g, verts) {
            Some(rec) => self.offer_rec(i, v, d, rec),
            None => debug_assert!(false, "unresolvable hop in offered walk"),
        }
    }

    /// Expands the witnessed walk of cell `(i, v)` into directed `G` edges
    /// running `sources[i] → v` (`Some(vec![])` when `v` is the source
    /// itself).
    pub fn emit(&self, i: usize, v: usize) -> Option<Vec<(u32, u32)>> {
        let mut out = Vec::new();
        self.emit_into(i, v, &mut out)?;
        Some(out)
    }

    /// Like [`RowStore::emit`], but appends into a caller-provided buffer
    /// and returns the number of edges appended.
    pub fn emit_into(&self, i: usize, v: usize, out: &mut Vec<(u32, u32)>) -> Option<usize> {
        if v >= self.n {
            return None;
        }
        if v == self.sources[i] as usize {
            return Some(0);
        }
        let start = out.len();
        let rec = self.recs[i * self.n + v]?;
        self.routes.arena().emit_into(rec, false, out);
        Some(out.len() - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        Graph::from_edges(n, &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>())
    }

    #[test]
    fn offers_mirror_strict_improvement() {
        let g = path_graph(5);
        let mut s = PathStore::new(5);
        assert_eq!(s.value(0, 3), INF);
        s.offer_walk(&g, 3, &[0, 1, 2, 3]);
        assert_eq!(s.value(0, 3), 3);
        assert_eq!(s.value(3, 0), 3, "values are symmetric");
        // A worse offer neither changes the value nor the witness.
        s.offer_walk(&g, 5, &[0, 1, 2, 1, 2, 3]);
        assert_eq!(s.value(0, 3), 3);
        assert_eq!(s.emit(0, 3).unwrap(), vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(s.emit(3, 0).unwrap(), vec![(3, 2), (2, 1), (1, 0)]);
        assert_eq!(s.emit(2, 2).unwrap(), vec![], "diagonal is empty");
        assert_eq!(s.emit(0, 4), None, "no witness yet");
        assert_eq!(s.emit(0, 9), None, "out of range");
    }

    #[test]
    fn via_decomposition_expands_both_halves() {
        let g = path_graph(5);
        let mut s = PathStore::new(5);
        s.offer_edge(0, 1);
        s.offer_edge(1, 2);
        s.offer_walk(&g, 2, &[2, 3, 4]);
        // (0,2) via 1, then (0,4) via 2 — nested Via resolution.
        s.offer_via(0, 2, 2, 1);
        s.offer_via(0, 4, 4, 2);
        assert_eq!(s.emit(0, 4).unwrap(), vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(s.emit(4, 0).unwrap()[0], (4, 3));
    }

    #[test]
    fn corrupt_via_cycle_returns_none() {
        // Hand-built cycle (only reachable through from_parts — offers
        // cannot create one): (0,2) via 1 and (0,1) via 2.
        let s0 = PathStore::new(3);
        let mut entries = s0.witnesses().to_vec();
        entries[DistStorage::packed_index(3, 0, 2)] = PairWitness::Via(1);
        entries[DistStorage::packed_index(3, 0, 1)] = PairWitness::Via(2);
        entries[DistStorage::packed_index(3, 1, 2)] = PairWitness::Via(0);
        let s = PathStore::from_parts(3, RouteArena::new(), entries);
        assert_eq!(s.emit(0, 2), None, "budget breaks the cycle");
    }

    #[test]
    fn row_store_offers_and_emits() {
        let g = path_graph(6);
        let mut r = RowStore::new(6, &[2]);
        r.offer_edge(0, 3);
        r.offer_walk(&g, 0, 2, &[2, 1, 0]);
        assert_eq!(r.value(0, 0), 2);
        assert_eq!(r.value(0, 2), 0);
        assert_eq!(r.emit(0, 0).unwrap(), vec![(2, 1), (1, 0)]);
        assert_eq!(r.emit(0, 3).unwrap(), vec![(2, 3)]);
        assert_eq!(r.emit(0, 2).unwrap(), vec![], "source cell is empty");
        assert_eq!(r.emit(0, 5), None, "no witness");
        assert_eq!(r.sources(), &[2]);
    }

    #[test]
    fn stores_absorb_substrate_routes() {
        // A shortcut (0,3) registered in a substrate unroller is usable by
        // walks offered to the store after absorption.
        let g = path_graph(6);
        let mut substrate = Unroller::new();
        let rec = substrate.intern_walk(&g, &[0, 1, 2, 3]).unwrap();
        substrate.register(0, 3, rec);
        let mut s = PathStore::new(6);
        s.absorb_routes(&substrate);
        s.offer_walk(&g, 5, &[5, 4, 3, 0]); // hop (3,0) is the shortcut
        assert_eq!(
            s.emit(5, 0).unwrap(),
            vec![(5, 4), (4, 3), (3, 2), (2, 1), (1, 0)]
        );
        let mut r = RowStore::new(6, &[5]);
        r.absorb_routes(&substrate);
        r.offer_walk(&g, 0, 5, &[5, 4, 3, 0]);
        assert_eq!(r.emit(0, 0).unwrap().len(), 5);
    }
}
