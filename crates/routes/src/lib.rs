//! Path reconstruction for the Congested Clique shortest-path pipelines.
//!
//! The distance pipelines of this workspace compute *estimates* by composing
//! shortcut structures — `(k,d)`-nearest lists, bounded hopsets, emulator
//! edges, min-plus products — and every shortcut edge's weight upper-bounds a
//! real walk in the input graph `G`. This crate keeps that walk recoverable:
//!
//! * [`RouteArena`] — an append-only arena of *path records*. A record is a
//!   `G`-edge, the concatenation of two earlier records, or the reversal of
//!   an earlier record. Children always have strictly smaller ids than their
//!   parent, so the records form a DAG and every expansion terminates
//!   (`DESIGN.md` §8.2).
//! * [`Unroller`] — provenance for a set of shortcut edges: each pair maps
//!   to the shortest known record, so any hopset/emulator edge — or any walk
//!   over `G ∪ H` — recursively expands into original-graph edges.
//! * [`PathStore`] — the per-pair witness table a pipeline fills alongside
//!   its [`DistanceMatrix`]-style estimates: every finite pair carries a
//!   record, or a *via*-midpoint whose two halves are again witnessed pairs.
//! * [`RowStore`] — the row-shaped counterpart for multi-source (MSSP)
//!   results.
//!
//! All structures are plain data: once filled they are read-only and can be
//! queried lock-free from shared references.
//!
//! [`DistanceMatrix`]: https://docs.rs/cc-core
//!
//! # Example
//!
//! ```
//! use cc_routes::{RouteArena, Unroller};
//! use cc_graphs::Graph;
//!
//! // A shortcut edge (0,3) realized by the path 0-1-2-3.
//! let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
//! let mut unroller = Unroller::new();
//! let rec = unroller.intern_walk(&g, &[0, 1, 2, 3]).unwrap();
//! unroller.register(0, 3, rec);
//! assert_eq!(unroller.unroll(0, 3).unwrap(), vec![(0, 1), (1, 2), (2, 3)]);
//! assert_eq!(unroller.unroll(3, 0).unwrap(), vec![(3, 2), (2, 1), (1, 0)]);
//! ```

#![forbid(unsafe_code)]
// Index-based loops are the clearest idiom for the dense adjacency/matrix
// code in this workspace.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod arena;
pub mod store;
pub mod unroller;

pub use arena::{RecId, RouteArena, TAG_CAT, TAG_EDGE, TAG_REV};
pub use store::{PairWitness, PathStore, RowStore};
pub use unroller::Unroller;
