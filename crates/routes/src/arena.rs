//! The append-only arena of path records.

/// Handle of a record in a [`RouteArena`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RecId(pub(crate) u32);

impl RecId {
    /// The raw index (stable for the lifetime of the arena; snapshot files
    /// store it).
    pub fn index(self) -> u32 {
        self.0
    }

    /// Rebuilds a handle from a raw index (snapshot loading). The caller is
    /// responsible for range-checking against [`RouteArena::len`].
    pub fn from_index(i: u32) -> Self {
        RecId(i)
    }
}

/// One record. Children of [`Node::Cat`] and [`Node::Rev`] always have
/// strictly smaller indices than the node itself — the arena is built
/// append-only — so the node graph is a DAG and every walk over it
/// terminates. This is the termination argument for unrolling arbitrarily
/// nested shortcut edges (`DESIGN.md` §8.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Node {
    /// A single original-graph edge `u → v`.
    Edge(u32, u32),
    /// Concatenation: the path of the first child followed by the second.
    Cat(u32, u32),
    /// The reversed path of the child.
    Rev(u32),
}

/// Append-only arena of path records with structural sharing.
///
/// A long path that extends another path by one edge costs one `Cat` node,
/// so the parent chains of BFS/Dijkstra trees intern in `O(1)` amortized per
/// vertex, and the full expansion is only materialized on
/// [`RouteArena::emit_into`].
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct RouteArena {
    nodes: Vec<Node>,
    /// Number of `G`-edges of each record (the walk's weight on unweighted
    /// inputs), kept incrementally so weights are O(1) without emitting.
    lens: Vec<u32>,
}

impl RouteArena {
    /// An empty arena.
    pub fn new() -> Self {
        RouteArena::default()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when no record has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, node: Node, len: u32) -> RecId {
        let id = u32::try_from(self.nodes.len()).expect("arena exceeds u32 records");
        self.nodes.push(node);
        self.lens.push(len);
        RecId(id)
    }

    /// Interns a single `G`-edge record `u → v`.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` (self-loops are never part of a route).
    pub fn edge(&mut self, u: u32, v: u32) -> RecId {
        assert_ne!(u, v, "route edges cannot be self-loops");
        self.push(Node::Edge(u, v), 1)
    }

    /// Interns the concatenation `a ++ b`.
    ///
    /// # Panics
    ///
    /// Panics if either child is out of range.
    pub fn cat(&mut self, a: RecId, b: RecId) -> RecId {
        let n = self.nodes.len() as u32;
        assert!(a.0 < n && b.0 < n, "cat children must already be interned");
        let len = self.lens[a.0 as usize] + self.lens[b.0 as usize];
        self.push(Node::Cat(a.0, b.0), len)
    }

    /// Interns the reversal of `a`. Reversing a `Rev` node collapses back to
    /// its child instead of stacking.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn rev(&mut self, a: RecId) -> RecId {
        assert!((a.0 as usize) < self.nodes.len(), "rev child out of range");
        if let Node::Rev(inner) = self.nodes[a.0 as usize] {
            return RecId(inner);
        }
        self.push(Node::Rev(a.0), self.lens[a.0 as usize])
    }

    /// Number of `G`-edges of record `id` (the walk's weight on unweighted
    /// graphs).
    pub fn len_of(&self, id: RecId) -> u32 {
        self.lens[id.0 as usize]
    }

    /// Appends the expansion of `id` (reversed if `reversed`) to `out` as a
    /// sequence of directed `G`-edges `(x, y)`, consecutive edges sharing
    /// their middle vertex. Iterative — safe for arbitrarily deep `Cat`
    /// chains.
    pub fn emit_into(&self, id: RecId, reversed: bool, out: &mut Vec<(u32, u32)>) {
        let mut stack: Vec<(u32, bool)> = vec![(id.0, reversed)];
        while let Some((id, rev)) = stack.pop() {
            match self.nodes[id as usize] {
                Node::Edge(u, v) => out.push(if rev { (v, u) } else { (u, v) }),
                Node::Cat(a, b) => {
                    // Forward: a then b — push b first so a pops first.
                    // Reversed: rev(b) then rev(a).
                    if rev {
                        stack.push((a, true));
                        stack.push((b, true));
                    } else {
                        stack.push((b, false));
                        stack.push((a, false));
                    }
                }
                Node::Rev(a) => stack.push((a, !rev)),
            }
        }
    }

    /// The full expansion of `id` as a fresh vector.
    pub fn emit(&self, id: RecId, reversed: bool) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(self.len_of(id) as usize);
        self.emit_into(id, reversed, &mut out);
        out
    }

    /// Appends a copy of every record of `other`, returning the index offset:
    /// a record `r` of `other` becomes `RecId(r.index() + offset)` here.
    /// O(|other|); id order (and therefore the DAG invariant) is preserved.
    pub fn absorb(&mut self, other: &RouteArena) -> u32 {
        let offset = u32::try_from(self.nodes.len()).expect("arena exceeds u32 records");
        self.nodes.extend(other.nodes.iter().map(|&n| match n {
            Node::Edge(u, v) => Node::Edge(u, v),
            Node::Cat(a, b) => Node::Cat(a + offset, b + offset),
            Node::Rev(a) => Node::Rev(a + offset),
        }));
        self.lens.extend_from_slice(&other.lens);
        offset
    }

    /// Wire form of node `i` for snapshots: `(tag, a, b)` with tag 0 = Edge,
    /// 1 = Cat, 2 = Rev (`b` unused for Rev).
    pub fn wire_node(&self, i: usize) -> (u8, u32, u32) {
        match self.nodes[i] {
            Node::Edge(u, v) => (0, u, v),
            Node::Cat(a, b) => (1, a, b),
            Node::Rev(a) => (2, a, 0),
        }
    }

    /// Rebuilds a node from its wire form, validating the DAG invariant
    /// (children strictly smaller than the new id, edge endpoints below `n`,
    /// no self-loop edges). Returns `None` on any violation.
    pub fn push_wire_node(&mut self, tag: u8, a: u32, b: u32, n: usize) -> Option<RecId> {
        let id = self.nodes.len() as u32;
        match tag {
            0 => {
                if a == b || a as usize >= n || b as usize >= n {
                    return None;
                }
                Some(self.edge(a, b))
            }
            1 => {
                if a >= id || b >= id {
                    return None;
                }
                Some(self.cat(RecId(a), RecId(b)))
            }
            2 => {
                if a >= id {
                    return None;
                }
                // Do not collapse Rev(Rev) here: loading must reproduce the
                // saved arena byte-for-byte on re-save.
                let len = self.lens[a as usize];
                Some(self.push(Node::Rev(a), len))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_cat_and_rev_emit_correctly() {
        let mut a = RouteArena::new();
        let e01 = a.edge(0, 1);
        let e12 = a.edge(1, 2);
        let p = a.cat(e01, e12);
        assert_eq!(a.len_of(p), 2);
        assert_eq!(a.emit(p, false), vec![(0, 1), (1, 2)]);
        assert_eq!(a.emit(p, true), vec![(2, 1), (1, 0)]);
        let r = a.rev(p);
        assert_eq!(a.emit(r, false), vec![(2, 1), (1, 0)]);
        assert_eq!(a.emit(r, true), vec![(0, 1), (1, 2)]);
        // Rev of Rev collapses.
        assert_eq!(a.rev(r), p);
    }

    #[test]
    fn deep_cat_chain_emits_iteratively() {
        // 40k-edge linked chain: a recursive emit would overflow the stack.
        let mut a = RouteArena::new();
        let mut rec = a.edge(0, 1);
        for i in 1..40_000u32 {
            let e = a.edge(i, i + 1);
            rec = a.cat(rec, e);
        }
        assert_eq!(a.len_of(rec), 40_000);
        let edges = a.emit(rec, false);
        assert_eq!(edges.len(), 40_000);
        assert_eq!(edges[0], (0, 1));
        assert_eq!(edges[39_999], (39_999, 40_000));
        let back = a.emit(rec, true);
        assert_eq!(back[0], (40_000, 39_999));
    }

    #[test]
    fn absorb_shifts_ids_and_preserves_expansions() {
        let mut a = RouteArena::new();
        let _pad = a.edge(7, 8);
        let mut b = RouteArena::new();
        let e = b.edge(0, 1);
        let f = b.edge(1, 2);
        let p = b.cat(e, f);
        let offset = a.absorb(&b);
        assert_eq!(offset, 1);
        let p2 = RecId(p.index() + offset);
        assert_eq!(a.emit(p2, false), b.emit(p, false));
        assert_eq!(a.len_of(p2), 2);
    }

    #[test]
    fn wire_round_trip_validates() {
        let mut a = RouteArena::new();
        let e = a.edge(0, 1);
        let r = a.rev(e);
        let c = a.cat(e, r);
        let mut b = RouteArena::new();
        for i in 0..a.len() {
            let (tag, x, y) = a.wire_node(i);
            b.push_wire_node(tag, x, y, 4).expect("valid node");
        }
        assert_eq!(a, b);
        assert_eq!(b.emit(c, false), vec![(0, 1), (1, 0)]);
        // Forward references and bad edges are rejected.
        let mut bad = RouteArena::new();
        assert!(bad.push_wire_node(1, 0, 0, 4).is_none(), "forward cat");
        assert!(bad.push_wire_node(0, 2, 2, 4).is_none(), "self-loop");
        assert!(bad.push_wire_node(0, 0, 9, 4).is_none(), "out of range");
        assert!(bad.push_wire_node(9, 0, 1, 4).is_none(), "unknown tag");
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_edge_rejected() {
        let mut a = RouteArena::new();
        let _ = a.edge(3, 3);
    }
}
