//! The append-only arena of path records.

use cc_graphs::PodData;

/// Handle of a record in a [`RouteArena`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RecId(pub(crate) u32);

impl RecId {
    /// The raw index (stable for the lifetime of the arena; snapshot files
    /// store it).
    pub fn index(self) -> u32 {
        self.0
    }

    /// Rebuilds a handle from a raw index (snapshot loading). The caller is
    /// responsible for range-checking against [`RouteArena::len`].
    pub fn from_index(i: u32) -> Self {
        RecId(i)
    }
}

/// One record. Children of [`Node::Cat`] and [`Node::Rev`] always have
/// strictly smaller indices than the node itself — the arena is built
/// append-only — so the node graph is a DAG and every walk over it
/// terminates. This is the termination argument for unrolling arbitrarily
/// nested shortcut edges (`DESIGN.md` §8.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Node {
    /// A single original-graph edge `u → v`.
    Edge(u32, u32),
    /// Concatenation: the path of the first child followed by the second.
    Cat(u32, u32),
    /// The reversed path of the child.
    Rev(u32),
}

/// Node tag: a single `G` edge.
pub const TAG_EDGE: u8 = 0;
/// Node tag: concatenation of two earlier records.
pub const TAG_CAT: u8 = 1;
/// Node tag: reversal of an earlier record.
pub const TAG_REV: u8 = 2;

/// Append-only arena of path records with structural sharing.
///
/// A long path that extends another path by one edge costs one `Cat` node,
/// so the parent chains of BFS/Dijkstra trees intern in `O(1)` amortized per
/// vertex, and the full expansion is only materialized on
/// [`RouteArena::emit_into`].
///
/// Storage is struct-of-arrays — one `u8` tag plus two `u32` operands plus a
/// cached `u32` length per record — exactly the section layout of snapshot
/// format v2, so a mapped snapshot serves its arena as zero-copy
/// [`PodData`] views and the first mutation (if any) transparently converts
/// to owned storage.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct RouteArena {
    /// `TAG_EDGE` / `TAG_CAT` / `TAG_REV` per record.
    tags: PodData<u8>,
    /// First operand: edge source, first cat child, or rev child.
    ops_a: PodData<u32>,
    /// Second operand: edge target or second cat child (0 for `Rev`).
    ops_b: PodData<u32>,
    /// Number of `G`-edges of each record (the walk's weight on unweighted
    /// inputs), kept incrementally so weights are O(1) without emitting.
    lens: PodData<u32>,
}

impl RouteArena {
    /// An empty arena.
    pub fn new() -> Self {
        RouteArena::default()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// `true` when no record has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// `true` when the record tables are zero-copy views into a shared byte
    /// buffer (a mapped snapshot) rather than owned allocations.
    pub fn is_shared(&self) -> bool {
        self.tags.is_shared()
    }

    /// The raw SoA sections `(tags, ops_a, ops_b, lens)` — the exact order
    /// and element types of the v2 snapshot sections.
    pub fn sections(&self) -> (&[u8], &[u32], &[u32], &[u32]) {
        (&self.tags, &self.ops_a, &self.ops_b, &self.lens)
    }

    /// Rebuilds an arena directly from its four SoA sections (typically
    /// zero-copy views into a mapped v2 snapshot), validating every record
    /// against the DAG invariant — children strictly smaller than their
    /// node, edge endpoints below `n`, no self-loop edges, known tags, and
    /// cached lengths consistent with the children — before accepting.
    /// Returns `None` on any violation or on mismatched section lengths.
    /// O(records) reads, no allocation.
    pub fn from_sections(
        tags: impl Into<PodData<u8>>,
        ops_a: impl Into<PodData<u32>>,
        ops_b: impl Into<PodData<u32>>,
        lens: impl Into<PodData<u32>>,
        n: usize,
    ) -> Option<RouteArena> {
        let (tags, ops_a, ops_b, lens) = (tags.into(), ops_a.into(), ops_b.into(), lens.into());
        let count = tags.len();
        if ops_a.len() != count || ops_b.len() != count || lens.len() != count {
            return None;
        }
        u32::try_from(count).ok()?;
        for i in 0..count {
            let (a, b) = (ops_a[i], ops_b[i]);
            let want = match tags[i] {
                TAG_EDGE => {
                    if a == b || a as usize >= n || b as usize >= n {
                        return None;
                    }
                    1
                }
                TAG_CAT => {
                    if a as usize >= i || b as usize >= i {
                        return None;
                    }
                    lens[a as usize].checked_add(lens[b as usize])?
                }
                TAG_REV => {
                    if a as usize >= i || b != 0 {
                        return None;
                    }
                    lens[a as usize]
                }
                _ => return None,
            };
            if lens[i] != want {
                return None;
            }
        }
        Some(RouteArena {
            tags,
            ops_a,
            ops_b,
            lens,
        })
    }

    fn node(&self, i: usize) -> Node {
        match self.tags[i] {
            TAG_EDGE => Node::Edge(self.ops_a[i], self.ops_b[i]),
            TAG_CAT => Node::Cat(self.ops_a[i], self.ops_b[i]),
            _ => Node::Rev(self.ops_a[i]),
        }
    }

    fn push(&mut self, node: Node, len: u32) -> RecId {
        let id = u32::try_from(self.len()).expect("arena exceeds u32 records");
        let (tag, a, b) = match node {
            Node::Edge(u, v) => (TAG_EDGE, u, v),
            Node::Cat(x, y) => (TAG_CAT, x, y),
            Node::Rev(x) => (TAG_REV, x, 0),
        };
        self.tags.push(tag);
        self.ops_a.push(a);
        self.ops_b.push(b);
        self.lens.push(len);
        RecId(id)
    }

    /// Interns a single `G`-edge record `u → v`.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` (self-loops are never part of a route).
    pub fn edge(&mut self, u: u32, v: u32) -> RecId {
        assert_ne!(u, v, "route edges cannot be self-loops");
        self.push(Node::Edge(u, v), 1)
    }

    /// Interns the concatenation `a ++ b`.
    ///
    /// # Panics
    ///
    /// Panics if either child is out of range.
    pub fn cat(&mut self, a: RecId, b: RecId) -> RecId {
        let n = self.len() as u32;
        assert!(a.0 < n && b.0 < n, "cat children must already be interned");
        let len = self.lens[a.0 as usize] + self.lens[b.0 as usize];
        self.push(Node::Cat(a.0, b.0), len)
    }

    /// Interns the reversal of `a`. Reversing a `Rev` node collapses back to
    /// its child instead of stacking.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn rev(&mut self, a: RecId) -> RecId {
        assert!((a.0 as usize) < self.len(), "rev child out of range");
        if self.tags[a.0 as usize] == TAG_REV {
            return RecId(self.ops_a[a.0 as usize]);
        }
        self.push(Node::Rev(a.0), self.lens[a.0 as usize])
    }

    /// Number of `G`-edges of record `id` (the walk's weight on unweighted
    /// graphs).
    pub fn len_of(&self, id: RecId) -> u32 {
        self.lens[id.0 as usize]
    }

    /// Appends the expansion of `id` (reversed if `reversed`) to `out` as a
    /// sequence of directed `G`-edges `(x, y)`, consecutive edges sharing
    /// their middle vertex. Iterative — safe for arbitrarily deep `Cat`
    /// chains.
    pub fn emit_into(&self, id: RecId, reversed: bool, out: &mut Vec<(u32, u32)>) {
        let mut stack: Vec<(u32, bool)> = vec![(id.0, reversed)];
        while let Some((id, rev)) = stack.pop() {
            match self.node(id as usize) {
                Node::Edge(u, v) => out.push(if rev { (v, u) } else { (u, v) }),
                Node::Cat(a, b) => {
                    // Forward: a then b — push b first so a pops first.
                    // Reversed: rev(b) then rev(a).
                    if rev {
                        stack.push((a, true));
                        stack.push((b, true));
                    } else {
                        stack.push((b, false));
                        stack.push((a, false));
                    }
                }
                Node::Rev(a) => stack.push((a, !rev)),
            }
        }
    }

    /// The full expansion of `id` as a fresh vector.
    pub fn emit(&self, id: RecId, reversed: bool) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(self.len_of(id) as usize);
        self.emit_into(id, reversed, &mut out);
        out
    }

    /// Appends a copy of every record of `other`, returning the index offset:
    /// a record `r` of `other` becomes `RecId(r.index() + offset)` here.
    /// O(|other|); id order (and therefore the DAG invariant) is preserved.
    pub fn absorb(&mut self, other: &RouteArena) -> u32 {
        let offset = u32::try_from(self.len()).expect("arena exceeds u32 records");
        self.tags.extend_from_slice(&other.tags);
        for i in 0..other.len() {
            let shift = if other.tags[i] == TAG_EDGE { 0 } else { offset };
            self.ops_a.push(other.ops_a[i] + shift);
            let b_shift = if other.tags[i] == TAG_CAT { offset } else { 0 };
            self.ops_b.push(other.ops_b[i] + b_shift);
        }
        self.lens.extend_from_slice(&other.lens);
        offset
    }

    /// Wire form of node `i` for snapshots: `(tag, a, b)` with tag 0 = Edge,
    /// 1 = Cat, 2 = Rev (`b` unused for Rev).
    pub fn wire_node(&self, i: usize) -> (u8, u32, u32) {
        (self.tags[i], self.ops_a[i], self.ops_b[i])
    }

    /// Rebuilds a node from its wire form, validating the DAG invariant
    /// (children strictly smaller than the new id, edge endpoints below `n`,
    /// no self-loop edges). Returns `None` on any violation.
    pub fn push_wire_node(&mut self, tag: u8, a: u32, b: u32, n: usize) -> Option<RecId> {
        let id = self.len() as u32;
        match tag {
            TAG_EDGE => {
                if a == b || a as usize >= n || b as usize >= n {
                    return None;
                }
                Some(self.edge(a, b))
            }
            TAG_CAT => {
                if a >= id || b >= id {
                    return None;
                }
                Some(self.cat(RecId(a), RecId(b)))
            }
            TAG_REV => {
                if a >= id {
                    return None;
                }
                // Do not collapse Rev(Rev) here: loading must reproduce the
                // saved arena byte-for-byte on re-save.
                let len = self.lens[a as usize];
                Some(self.push(Node::Rev(a), len))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_cat_and_rev_emit_correctly() {
        let mut a = RouteArena::new();
        let e01 = a.edge(0, 1);
        let e12 = a.edge(1, 2);
        let p = a.cat(e01, e12);
        assert_eq!(a.len_of(p), 2);
        assert_eq!(a.emit(p, false), vec![(0, 1), (1, 2)]);
        assert_eq!(a.emit(p, true), vec![(2, 1), (1, 0)]);
        let r = a.rev(p);
        assert_eq!(a.emit(r, false), vec![(2, 1), (1, 0)]);
        assert_eq!(a.emit(r, true), vec![(0, 1), (1, 2)]);
        // Rev of Rev collapses.
        assert_eq!(a.rev(r), p);
    }

    #[test]
    fn deep_cat_chain_emits_iteratively() {
        // 40k-edge linked chain: a recursive emit would overflow the stack.
        let mut a = RouteArena::new();
        let mut rec = a.edge(0, 1);
        for i in 1..40_000u32 {
            let e = a.edge(i, i + 1);
            rec = a.cat(rec, e);
        }
        assert_eq!(a.len_of(rec), 40_000);
        let edges = a.emit(rec, false);
        assert_eq!(edges.len(), 40_000);
        assert_eq!(edges[0], (0, 1));
        assert_eq!(edges[39_999], (39_999, 40_000));
        let back = a.emit(rec, true);
        assert_eq!(back[0], (40_000, 39_999));
    }

    #[test]
    fn absorb_shifts_ids_and_preserves_expansions() {
        let mut a = RouteArena::new();
        let _pad = a.edge(7, 8);
        let mut b = RouteArena::new();
        let e = b.edge(0, 1);
        let f = b.edge(1, 2);
        let p = b.cat(e, f);
        let offset = a.absorb(&b);
        assert_eq!(offset, 1);
        let p2 = RecId(p.index() + offset);
        assert_eq!(a.emit(p2, false), b.emit(p, false));
        assert_eq!(a.len_of(p2), 2);
    }

    #[test]
    fn absorb_shifts_rev_nodes_too() {
        let mut b = RouteArena::new();
        let e = b.edge(0, 1);
        let r = b.rev(e);
        let c = b.cat(r, e);
        let mut a = RouteArena::new();
        let _pad = a.edge(5, 6);
        let _pad2 = a.edge(6, 7);
        let offset = a.absorb(&b);
        let c2 = RecId(c.index() + offset);
        assert_eq!(a.emit(c2, false), vec![(1, 0), (0, 1)]);
    }

    #[test]
    fn wire_round_trip_validates() {
        let mut a = RouteArena::new();
        let e = a.edge(0, 1);
        let r = a.rev(e);
        let c = a.cat(e, r);
        let mut b = RouteArena::new();
        for i in 0..a.len() {
            let (tag, x, y) = a.wire_node(i);
            b.push_wire_node(tag, x, y, 4).expect("valid node");
        }
        assert_eq!(a, b);
        assert_eq!(b.emit(c, false), vec![(0, 1), (1, 0)]);
        // Forward references and bad edges are rejected.
        let mut bad = RouteArena::new();
        assert!(bad.push_wire_node(1, 0, 0, 4).is_none(), "forward cat");
        assert!(bad.push_wire_node(0, 2, 2, 4).is_none(), "self-loop");
        assert!(bad.push_wire_node(0, 0, 9, 4).is_none(), "out of range");
        assert!(bad.push_wire_node(9, 0, 1, 4).is_none(), "unknown tag");
    }

    #[test]
    fn from_sections_round_trips_and_rejects_corruption() {
        let mut a = RouteArena::new();
        let e = a.edge(0, 1);
        let f = a.edge(1, 2);
        let c = a.cat(e, f);
        let _r = a.rev(c);
        let (tags, ops_a, ops_b, lens) = a.sections();
        let (tags, ops_a, ops_b, lens) =
            (tags.to_vec(), ops_a.to_vec(), ops_b.to_vec(), lens.to_vec());
        let b =
            RouteArena::from_sections(tags.clone(), ops_a.clone(), ops_b.clone(), lens.clone(), 3)
                .expect("valid sections");
        assert_eq!(a, b);
        // Forward cat reference.
        let mut bad_a = ops_a.clone();
        bad_a[2] = 3;
        assert!(
            RouteArena::from_sections(tags.clone(), bad_a, ops_b.clone(), lens.clone(), 3)
                .is_none()
        );
        // Inconsistent cached length.
        let mut bad_lens = lens.clone();
        bad_lens[2] = 7;
        assert!(
            RouteArena::from_sections(tags.clone(), ops_a.clone(), ops_b.clone(), bad_lens, 3)
                .is_none()
        );
        // Unknown tag.
        let mut bad_tags = tags.clone();
        bad_tags[0] = 9;
        assert!(
            RouteArena::from_sections(bad_tags, ops_a.clone(), ops_b.clone(), lens.clone(), 3)
                .is_none()
        );
        // Rev with nonzero second operand.
        let mut bad_b = ops_b.clone();
        bad_b[3] = 1;
        assert!(RouteArena::from_sections(tags, ops_a, bad_b, lens, 3).is_none());
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_edge_rejected() {
        let mut a = RouteArena::new();
        let _ = a.edge(3, 3);
    }
}
