//! Near-additive `(1+ε, β)`-emulators — the core contribution of
//! Dory–Parter (PODC 2020), §3 and §5.1.
//!
//! A `(1+ε, β)`-*emulator* of an unweighted graph `G = (V, E)` is a weighted
//! graph `H = (V, E', w)` (not necessarily a subgraph) with
//!
//! ```text
//! d_G(u,v) ≤ d_H(u,v) ≤ (1+ε)·d_G(u,v) + β    for all u,v.
//! ```
//!
//! The paper's construction samples a hierarchy
//! `V = S₀ ⊃ S₁ ⊃ … ⊃ S_r ⊃ S_{r+1} = ∅` and has each vertex `v ∈ Sᵢ∖Sᵢ₊₁`
//! examine its ball of radius `δᵢ`: if the ball contains an `Sᵢ₊₁` vertex,
//! `v` is *i-dense* and connects to the closest one; otherwise it is
//! *i-sparse* and connects to every `Sᵢ` vertex in the ball. With
//! `r = log log n` this yields `O(n log log n)` edges and
//! `β = O(log log n / ε)^{log log n}` (Thm 24).
//!
//! Modules:
//!
//! * [`params`] — the full parameter schedule (`pᵢ, δᵢ, Rᵢ, βᵢ`;
//!   Claims 14–22) with validated constructors.
//! * [`warmup`] — the §3.1 warm-up: `(1+ε, Θ(1/ε))`-emulator with `Õ(n^{5/4})`
//!   edges.
//! * [`ideal`] — the §3.2 construction with exact ball exploration
//!   (the object of the size/stretch analysis).
//! * [`clique`] — the §3.5 Congested Clique implementation: `(k,d)`-nearest
//!   for light vertices, hitting-set shortcut for heavy ones, bounded hopset
//!   + source detection for the top level; `O(log²β/ε)` rounds.
//! * [`whp`] — the Thm 31 variant: `O(log n)` parallel runs, one good run
//!   selected, giving the size bound w.h.p. rather than in expectation.
//! * [`deterministic`] — the §5.1 construction with soft hitting sets
//!   replacing sampling (Thm 50).
//!
//! # Relation to earlier emulator constructions (Appendix A of the paper)
//!
//! The construction is a hybrid of the two classical near-additive
//! emulators:
//!
//! * **Elkin–Neiman** is *local* (every vertex explores a sub-polynomial
//!   ball) but *cluster-centric* (clusters make collective
//!   superclustering/interconnection decisions) — awkward to run in O(1)
//!   clique primitives.
//! * **Thorup–Zwick** is *vertex-centric* (each vertex independently
//!   connects to its nearest higher-level vertex or to all closer same-level
//!   ones) but *global* (exploration radius up to `n`), which seems to force
//!   `poly(log n)` clique rounds.
//! * **This construction** is local *and* vertex-centric: TZ's rule applied
//!   inside radius-`δᵢ` balls. Every edge it adds is also a TZ edge (which
//!   is why TZ's emulator is universal across ε); locality is what lets the
//!   distance-sensitive tool-kit implement it in `poly(log δ_r)` rounds.
//!
//! # Example
//!
//! ```
//! use cc_emulator::{ideal, params::EmulatorParams};
//! use cc_graphs::generators;
//! use rand::SeedableRng;
//!
//! let g = generators::grid(8, 8);
//! let params = EmulatorParams::new(g.n(), 0.25, 2).unwrap();
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let emu = ideal::build(&g, &params, &mut rng);
//! let report = emu.verify(&g, &params);
//! assert!(report.within_bounds);
//! ```

#![forbid(unsafe_code)]
// Index-based loops are the clearest idiom for the dense adjacency/matrix
// code in this workspace.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod clique;
pub mod deterministic;
pub mod emulator;
pub mod ideal;
pub mod params;
pub mod warmup;
pub mod whp;

pub use emulator::{Emulator, EmulatorReport};
pub use params::EmulatorParams;
