//! The w.h.p. size variant (Thm 31, "A variant that works w.h.p").
//!
//! The basic randomized construction bounds the emulator size only *in
//! expectation*. Theorem 31 fixes this: sample `O(log n)` independent level
//! hierarchies, evaluate all of them against a **single** `(k,d)`-nearest
//! computation (Claim 30 — the nearest lists do not depend on the sampling),
//! and keep a run in which
//!
//! 1. the edges added by non-top-level vertices number `O(r·n^{1+1/2^r})`,
//! 2. `|S_r| = O(√n)`, and
//! 3. every heavy vertex sees an `S_r` member among its nearest (Claim 25).
//!
//! By Markov + the w.h.p. events, a constant fraction of runs qualify, so
//! `O(log n)` runs contain one w.h.p. Only the selected run's emulator is
//! materialized.

use cc_clique::{cost::model, RoundLedger};
use cc_graphs::Graph;
use cc_toolkit::knearest::{KNearest, Strategy};
use rand::Rng;

use crate::clique::{self, CliqueEmulatorConfig};
use crate::emulator::Emulator;

/// Statistics of the run-selection procedure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WhpStats {
    /// Number of parallel runs simulated.
    pub runs: usize,
    /// Index of the selected run.
    pub chosen: usize,
    /// Edges added by non-top-level vertices in the selected run.
    pub low_level_edges: usize,
    /// `|S_r|` of the selected run.
    pub top_level_size: usize,
    /// Runs that satisfied all three events.
    pub qualifying_runs: usize,
}

/// Builds the emulator with the Thm 31 run-selection. Returns the emulator
/// of the best qualifying run (falling back to the smallest run if, against
/// w.h.p. odds, none qualifies — reported via
/// [`WhpStats::qualifying_runs`]` == 0`).
pub fn build(
    g: &Graph,
    config: &CliqueEmulatorConfig,
    rng: &mut impl Rng,
    ledger: &mut RoundLedger,
) -> (Emulator, WhpStats) {
    let mut phase = ledger.enter("emulator-whp");
    let n = g.n();
    let params = &config.params;
    let r = params.r();
    let runs = (2.0 * (n.max(2) as f64).log2()).ceil() as usize;

    // Announce all runs' memberships: levels fit in O(log log log n) bits, so
    // the O(log n) runs pack into O(log log log n) full-word rounds
    // (Claim 30).
    let lll = model::log2_ceil(model::log2_ceil(model::log2_ceil(n as u64).max(2)).max(2)).max(1);
    phase.charge("announce levels of all runs", lll);

    let mut kn = KNearest::compute_with(
        g,
        config.k,
        params.delta(r),
        Strategy::TruncatedBfs,
        config.threads,
        &mut phase,
    );
    if config.record_paths {
        kn = kn.with_parents(g);
    }

    // Evaluate each run (one aggregation round per run batch: the per-run
    // counters travel to distinct referee vertices in parallel — 2 rounds).
    phase.charge("per-run accounting and referee election", 2);
    let sr_bound = (3.0 * (n as f64).sqrt()).ceil() as usize;
    let mut best: Option<(usize, usize, bool)> = None; // (edges, run, qualifies)
    let mut qualifying = 0usize;
    let mut samples: Vec<Vec<u8>> = Vec::with_capacity(runs);
    for run in 0..runs {
        let levels = params.sample_levels(rng);
        let mut low_edges = 0usize;
        for v in 0..n {
            let i = levels[v] as usize;
            if i >= r {
                continue;
            }
            low_edges +=
                clique::edge_count_for_vertex(&kn, &levels, v, params.delta(i), config.k, i);
        }
        let sr_size = levels.iter().filter(|&&l| l as usize >= r).count();
        let hits = clique::heavy_vertices_hit(&kn, &levels, params, config.k);
        let qualifies = sr_size <= sr_bound && hits && sr_size >= 1;
        if qualifies {
            qualifying += 1;
        }
        let better = match best {
            None => true,
            Some((best_edges, _, best_q)) => {
                (qualifies && !best_q) || (qualifies == best_q && low_edges < best_edges)
            }
        };
        if better {
            best = Some((low_edges, run, qualifies));
        }
        samples.push(levels);
    }
    let (low_level_edges, chosen, _) = best.expect("at least one run");
    let levels = samples.swap_remove(chosen);
    let top_level_size = levels.iter().filter(|&&l| l as usize >= r).count();

    let rng_dyn: &mut dyn rand::RngCore = rng;
    let emu = clique::build_with_levels_and_kn(g, config, levels, &kn, Some(rng_dyn), &mut phase);
    (
        emu,
        WhpStats {
            runs,
            chosen,
            low_level_edges,
            top_level_size,
            qualifying_runs: qualifying,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::EmulatorParams;
    use cc_graphs::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn config(n: usize, eps: f64, r: usize) -> CliqueEmulatorConfig {
        CliqueEmulatorConfig::paper(EmulatorParams::new(n, eps, r).unwrap())
    }

    #[test]
    fn selected_run_is_within_size_bound() {
        let g = generators::caveman(16, 8);
        let cfg = config(g.n(), 0.25, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut ledger = RoundLedger::new(g.n());
        let (emu, stats) = build(&g, &cfg, &mut rng, &mut ledger);
        assert!(stats.qualifying_runs > 0, "no qualifying run");
        // Thm 31: the chosen run's size satisfies the bound outright (not
        // just in expectation). Constant 8 as in the ideal-size test.
        assert!(
            (emu.m() as f64) <= 8.0 * cfg.params.size_bound(),
            "edges = {}",
            emu.m()
        );
        assert!(stats.top_level_size <= (3.0 * (g.n() as f64).sqrt()).ceil() as usize);
    }

    #[test]
    fn stretch_still_holds() {
        let g = generators::grid(9, 9);
        let cfg = config(g.n(), 0.25, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut ledger = RoundLedger::new(g.n());
        let (emu, _) = build(&g, &cfg, &mut rng, &mut ledger);
        let report = emu.verify_with_bounds(
            &g,
            cfg.params.clique_multiplicative_bound(cfg.eps_prime),
            cfg.params.clique_additive_bound(cfg.eps_prime),
            cfg.params.size_bound(),
        );
        assert!(report.within_bounds, "{report:?}");
    }

    #[test]
    fn run_count_is_logarithmic() {
        let g = generators::cycle(128);
        let cfg = config(128, 0.25, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut ledger = RoundLedger::new(128);
        let (_, stats) = build(&g, &cfg, &mut rng, &mut ledger);
        assert_eq!(stats.runs, 14); // 2·log₂(128) = 14
        assert!(stats.chosen < stats.runs);
    }

    #[test]
    fn knearest_computed_once() {
        // The whp variant must not multiply the k-nearest cost by the number
        // of runs: its total rounds stay close to a single clique build.
        let g = generators::cycle(96);
        let cfg = config(96, 0.25, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut l_whp = RoundLedger::new(96);
        let _ = build(&g, &cfg, &mut rng, &mut l_whp);
        let mut l_single = RoundLedger::new(96);
        let _ = clique::build(&g, &cfg, &mut rng, &mut l_single);
        // A recomputation-per-run bug would cost ~runs× (14× here); allow a
        // generous constant factor for sampling variance between the two
        // builds' level draws.
        assert!(
            l_whp.total_rounds() <= 2 * l_single.total_rounds(),
            "whp {} vs single {}",
            l_whp.total_rounds(),
            l_single.total_rounds()
        );
    }
}
