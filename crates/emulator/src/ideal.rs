//! The §3.2 emulator construction with exact ball exploration.
//!
//! This is the object the paper's size analysis (Claims 14–18) and stretch
//! analysis (Lemma 23) speak about. Every vertex `v ∈ Sᵢ∖Sᵢ₊₁` inspects its
//! exact ball `B(v, δᵢ, G)`:
//!
//! * **i-dense** (`B(v,δᵢ) ∩ Sᵢ₊₁ ≠ ∅`): one edge to the closest `Sᵢ₊₁`
//!   vertex `cᵢ₊₁(v)`;
//! * **i-sparse**: edges to every `Sᵢ` vertex in the ball.
//!
//! Edge weights are exact distances. The Congested Clique variant
//! ([`crate::clique`]) computes the same structure with bounded tools and
//! `(1+ε')`-approximate weights on top-level edges.

use std::collections::BTreeMap;

use cc_graphs::{bfs, Dist, Graph, WeightedGraph};
use rand::Rng;

use crate::emulator::Emulator;
use crate::params::EmulatorParams;

/// Builds the §3.2 emulator with freshly sampled levels.
pub fn build(g: &Graph, params: &EmulatorParams, rng: &mut impl Rng) -> Emulator {
    let levels = params.sample_levels(rng);
    build_with_levels(g, params, levels)
}

/// Builds the §3.2 emulator for a fixed level hierarchy (used by the w.h.p.
/// variant and by tests comparing constructions run-for-run).
///
/// # Panics
///
/// Panics if `levels.len() != g.n()` or a level exceeds `r`.
pub fn build_with_levels(g: &Graph, params: &EmulatorParams, levels: Vec<u8>) -> Emulator {
    assert_eq!(levels.len(), g.n(), "one level per vertex");
    assert!(
        levels.iter().all(|&l| (l as usize) <= params.r()),
        "level exceeds r"
    );
    let r = params.r();
    let mut edges: BTreeMap<(u32, u32), Dist> = BTreeMap::new();
    let mut add = |u: usize, v: usize, w: Dist| {
        let key = if u < v {
            (u as u32, v as u32)
        } else {
            (v as u32, u as u32)
        };
        edges
            .entry(key)
            .and_modify(|cur| *cur = (*cur).min(w))
            .or_insert(w);
    };
    for v in 0..g.n() {
        let i = levels[v] as usize;
        let ball = bfs::ball(g, v, params.delta(i));
        if i < r {
            // Dense: one edge to the closest S_{i+1} vertex (ties by id via
            // the ball's (dist, id) order).
            if let Some(&(c, d)) = ball.iter().find(|&&(u, _)| levels[u as usize] as usize > i) {
                add(v, c as usize, d);
                continue;
            }
        }
        // Sparse (or top level, where S_{r+1} = ∅): edges to all Sᵢ vertices
        // in the ball.
        for &(u, d) in &ball {
            if u as usize != v && levels[u as usize] as usize >= i {
                add(v, u as usize, d);
            }
        }
    }
    let mut graph = WeightedGraph::new(g.n());
    for (&(u, v), &w) in &edges {
        graph.add_edge(u as usize, v as usize, w);
    }
    Emulator {
        graph,
        levels,
        routes: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graphs::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn stretch_bound_holds_across_families() {
        let params_of = |n: usize| EmulatorParams::new(n, 0.25, 2).unwrap();
        let mut r = rng(7);
        for (name, g) in [
            ("cycle", generators::cycle(64)),
            ("grid", generators::grid(8, 8)),
            ("caveman", generators::caveman(8, 8)),
            ("gnp", generators::connected_gnp(80, 0.05, &mut r)),
            ("tree", generators::random_tree(64, &mut r)),
        ] {
            let params = params_of(g.n());
            let emu = build(&g, &params, &mut r);
            let report = emu.verify(&g, &params);
            assert!(report.within_bounds, "{name}: {report:?}");
        }
    }

    #[test]
    fn size_within_bound_on_average() {
        // Claim 18 bounds the *expected* size; average over seeds.
        let g = generators::caveman(16, 8);
        let params = EmulatorParams::new(g.n(), 0.25, 2).unwrap();
        let mut total = 0usize;
        let runs = 10;
        for seed in 0..runs {
            let mut r = rng(seed);
            total += build(&g, &params, &mut r).m();
        }
        let avg = total as f64 / runs as f64;
        // Hidden constant: the paper's analysis gives O(1/p) per vertex per
        // level; 8 is comfortable empirically.
        assert!(
            avg <= 8.0 * params.size_bound(),
            "avg edges {avg} vs bound {}",
            params.size_bound()
        );
    }

    #[test]
    fn level_zero_everywhere_gives_exact_graph() {
        // If no vertex is sampled (levels all 0), every vertex is 0-sparse
        // with radius δ₀ = 1: the emulator is exactly G.
        let g = generators::grid(5, 5);
        let params = EmulatorParams::new(g.n(), 0.25, 2).unwrap();
        let emu = build_with_levels(&g, &params, vec![0; g.n()]);
        assert_eq!(emu.m(), g.m());
        let report = emu.verify_with_bounds(&g, 1.0, 0.0, g.m() as f64);
        assert!(report.within_bounds);
    }

    #[test]
    fn dense_vertices_add_single_edge() {
        // A path with vertex 2 at level 1 and vertex 3 at level 2 (r = 2):
        // vertex 2 is 1-dense (3 within δ₁) and must add exactly one
        // level-2 edge; plain vertices keep their incident edges.
        let g = generators::path(6);
        let params = EmulatorParams::new(6, 0.25, 2).unwrap();
        let mut levels = vec![0u8; 6];
        levels[2] = 1;
        levels[3] = 2;
        let emu = build_with_levels(&g, &params, levels);
        // Vertex 2's added edges: exactly the dense edge to 3 (weight 1),
        // plus whatever the level-0 neighbors added toward it.
        let to3: Vec<_> = emu
            .graph
            .neighbors(2)
            .iter()
            .filter(|&&(u, _)| u == 3)
            .collect();
        assert_eq!(to3.len(), 1);
        assert_eq!(to3[0].1, 1);
    }

    #[test]
    fn weights_are_exact_distances() {
        let mut r = rng(3);
        let g = generators::connected_gnp(50, 0.08, &mut r);
        let params = EmulatorParams::new(50, 0.3, 2).unwrap();
        let emu = build(&g, &params, &mut r);
        let exact = bfs::apsp_exact(&g);
        for (u, v, w) in emu.graph.edges() {
            assert_eq!(w, exact[u][v], "edge ({u},{v})");
        }
    }

    #[test]
    fn deterministic_given_levels() {
        let g = generators::grid(6, 6);
        let params = EmulatorParams::new(g.n(), 0.25, 2).unwrap();
        let levels = params.sample_levels(&mut rng(11));
        let a = build_with_levels(&g, &params, levels.clone());
        let b = build_with_levels(&g, &params, levels);
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    #[should_panic(expected = "one level per vertex")]
    fn wrong_level_count_panics() {
        let g = generators::path(4);
        let params = EmulatorParams::new(4, 0.25, 2).unwrap();
        let _ = build_with_levels(&g, &params, vec![0; 3]);
    }
}
