//! The deterministic emulator (§5.1, Thm 50).
//!
//! Randomness enters the emulator only through the level sampling
//! `Sᵢ ← Sample(Sᵢ₋₁, pᵢ)`. The deterministic construction replaces it:
//!
//! 1. **Soft hitting sets** build `S'ᵢ₊₁ ⊆ S'ᵢ`: light vertices
//!    `v ∈ S'ᵢ` whose ball holds at least `Δ = c/pᵢ₊₁` vertices of `S'ᵢ`
//!    form the instance (`T_v = B(v,δᵢ) ∩ S'ᵢ`); Lemma 43 yields
//!    `|S'ᵢ₊₁| ≤ c·|S'ᵢ|/Δ = |S'ᵢ|·pᵢ₊₁` **without a `log n` factor**, and
//!    the un-hit mass bound caps the edges added by sparse vertices
//!    (Claim 46).
//! 2. A deterministic **hitting set** `A` (Lemma 9) of the heavy vertices'
//!    nearest-sets plays the w.h.p. role of `S_r` for heavy vertices;
//!    `Sᵢ = S'ᵢ ∪ A`.
//! 3. The construction then proceeds as in §3.5 with a deterministic hopset
//!    for the top level.
//!
//! Rounds: `O(log²β/ε + r·(log log n)³)` (Thm 50 — `O((log log n)⁴)` for
//! `r = log log n`).

use cc_clique::RoundLedger;
use cc_derand::hitting;
use cc_derand::soft_hitting::{soft_hitting_set, SoftHittingInstance};
use cc_graphs::Graph;
use cc_toolkit::knearest::{KNearest, Strategy};

use crate::clique::{self, CliqueEmulatorConfig};
use crate::emulator::Emulator;

/// The constant `c` of Lemma 43 realized by
/// [`cc_derand::soft_hitting::soft_hitting_set`].
pub const SOFT_HITTING_C: usize = 3;

/// Which derandomized selector builds the level sets — the ablation axis of
/// experiment A1.
///
/// The paper's point (§5, "the standard hitting set based arguments lead to
/// a logarithmic overhead in the size of the emulator"): selecting
/// `S'ᵢ₊₁` with a *plain* hitting set (Lemma 9) must hit **every** set and
/// therefore carries an `O(log n)` size factor; the *soft* hitting set
/// (Lemma 43) may miss a bounded mass and stays at `O(N/Δ)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LevelSelector {
    /// Definition 42 / Lemma 43 — the paper's construction.
    #[default]
    SoftHitting,
    /// Lemma 9 plain hitting sets — the pre-existing technique, kept for
    /// the A1 ablation.
    PlainHitting,
}

/// Builds the deterministic emulator (Thm 50). No randomness is consumed.
pub fn build(g: &Graph, config: &CliqueEmulatorConfig, ledger: &mut RoundLedger) -> Emulator {
    build_with_selector(g, config, LevelSelector::SoftHitting, ledger)
}

/// Builds the deterministic emulator with an explicit level-set selector
/// (see [`LevelSelector`]).
pub fn build_with_selector(
    g: &Graph,
    config: &CliqueEmulatorConfig,
    selector: LevelSelector,
    ledger: &mut RoundLedger,
) -> Emulator {
    let mut phase = ledger.enter("emulator-det");
    let params = &config.params;
    let n = g.n();
    let r = params.r();
    let k = config.k;

    let mut kn = KNearest::compute_with(
        g,
        k,
        params.delta(r),
        Strategy::TruncatedBfs,
        config.threads,
        &mut phase,
    );
    if config.record_paths {
        kn = kn.with_parents(g);
    }

    // Iteratively build S'₀ ⊃ S'₁ ⊃ … ⊃ S'_r via soft hitting sets.
    let mut s_prime: Vec<Vec<bool>> = vec![vec![true; n]];
    // First iteration at which each vertex is heavy while in S'ᵢ (drives A).
    let mut heavy_first: Vec<Option<usize>> = vec![None; n];
    for i in 0..r {
        let current = &s_prime[i];
        let delta_i = params.delta(i);
        let p_next = params.p(i + 1);
        let threshold = ((SOFT_HITTING_C as f64) / p_next).ceil() as usize;

        // Universe R = S'ᵢ, re-indexed densely.
        let members: Vec<usize> = (0..n).filter(|&v| current[v]).collect();
        let mut index_of = vec![usize::MAX; n];
        for (idx, &v) in members.iter().enumerate() {
            index_of[v] = idx;
        }

        let mut instance_sets: Vec<Vec<usize>> = Vec::new();
        for &v in &members {
            // Ball membership from the (k, δ_r)-nearest list.
            let within: Vec<usize> = kn
                .list(v)
                .iter()
                .take_while(|&&(_, d)| d <= delta_i)
                .map(|&(u, _)| u as usize)
                .collect();
            let heavy = within.len() >= k;
            if heavy {
                if heavy_first[v].is_none() {
                    heavy_first[v] = Some(i);
                }
                continue; // heavy vertices are covered by A, not by L
            }
            let t_v: Vec<usize> = within
                .iter()
                .copied()
                .filter(|&u| current[u])
                .map(|u| index_of[u])
                .collect();
            if t_v.len() >= threshold {
                instance_sets.push(t_v);
            }
        }

        let selected: Vec<bool> = if members.is_empty() {
            Vec::new()
        } else {
            let chosen: Vec<usize> = match selector {
                LevelSelector::SoftHitting => {
                    let inst =
                        SoftHittingInstance::new(members.len(), threshold.max(1), instance_sets)
                            .expect("threshold-filtered sets are valid by construction");
                    soft_hitting_set(&inst, &mut phase).set
                }
                LevelSelector::PlainHitting => {
                    // Ablation: Lemma 9 must hit every set — pays the log
                    // factor the soft relaxation avoids.
                    hitting::deterministic_hitting_set(
                        members.len(),
                        threshold.max(1),
                        &instance_sets,
                        &mut phase,
                    )
                    .expect("threshold-filtered sets are valid by construction")
                }
            };
            let mut sel = vec![false; members.len()];
            for idx in chosen {
                sel[idx] = true;
            }
            sel
        };
        let mut next = vec![false; n];
        for (idx, &v) in members.iter().enumerate() {
            if selected[idx] {
                next[v] = true;
            }
        }
        s_prime.push(next);
    }

    // A: deterministic hitting set of the heavy vertices' nearest-sets
    // (universe V, sets of size k = n^{2/3} → |A| = O(n^{1/3} log n)).
    let heavy_sets: Vec<Vec<usize>> = (0..n)
        .filter_map(|v| {
            heavy_first[v].map(|i| {
                kn.list(v)
                    .iter()
                    .take_while(|&&(_, d)| d <= params.delta(i))
                    .map(|&(u, _)| u as usize)
                    .collect()
            })
        })
        .collect();
    let a: Vec<usize> = if heavy_sets.is_empty() {
        Vec::new()
    } else {
        let min_size = heavy_sets.iter().map(Vec::len).min().unwrap_or(k).max(1);
        hitting::deterministic_hitting_set(n, min_size.min(k), &heavy_sets, &mut phase)
            .expect("heavy nearest-sets are valid hitting-set input")
    };

    // Levels: Sᵢ = S'ᵢ ∪ A, so members of A sit at the top level.
    let mut levels: Vec<u8> = (0..n)
        .map(|v| {
            let mut level = 0u8;
            for (i, set) in s_prime.iter().enumerate().skip(1) {
                if set[v] {
                    level = i as u8;
                }
            }
            level
        })
        .collect();
    for &v in &a {
        levels[v] = r as u8;
    }

    clique::build_with_levels_and_kn(g, config, levels, &kn, None, &mut phase)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::EmulatorParams;
    use cc_graphs::generators;

    fn config(n: usize, eps: f64, r: usize) -> CliqueEmulatorConfig {
        CliqueEmulatorConfig::paper(EmulatorParams::new(n, eps, r).unwrap())
    }

    #[test]
    fn deterministic_emulator_is_reproducible() {
        let g = generators::caveman(8, 8);
        let cfg = config(g.n(), 0.25, 2);
        let mut l1 = RoundLedger::new(g.n());
        let mut l2 = RoundLedger::new(g.n());
        let a = build(&g, &cfg, &mut l1);
        let b = build(&g, &cfg, &mut l2);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.levels, b.levels);
        assert_eq!(l1.total_rounds(), l2.total_rounds());
    }

    #[test]
    fn stretch_bound_holds_deterministically() {
        for (name, g) in [
            ("cycle", generators::cycle(64)),
            ("grid", generators::grid(8, 8)),
            ("caveman", generators::caveman(8, 8)),
            ("barbell", generators::barbell(10, 20)),
        ] {
            let cfg = config(g.n(), 0.25, 2);
            let mut ledger = RoundLedger::new(g.n());
            let emu = build(&g, &cfg, &mut ledger);
            let report = emu.verify_with_bounds(
                &g,
                cfg.params.clique_multiplicative_bound(cfg.eps_prime),
                cfg.params.clique_additive_bound(cfg.eps_prime),
                cfg.params.size_bound(),
            );
            assert!(report.within_bounds, "{name}: {report:?}");
        }
    }

    #[test]
    fn size_bound_holds_always_not_just_expectation() {
        // Claim 46 bounds the size outright.
        for (name, g) in [
            ("caveman", generators::caveman(16, 8)),
            ("grid", generators::grid(12, 12)),
        ] {
            let cfg = config(g.n(), 0.25, 2);
            let mut ledger = RoundLedger::new(g.n());
            let emu = build(&g, &cfg, &mut ledger);
            assert!(
                (emu.m() as f64) <= 12.0 * cfg.params.size_bound(),
                "{name}: edges = {} vs bound {}",
                emu.m(),
                cfg.params.size_bound()
            );
        }
    }

    #[test]
    fn level_sets_shrink_geometrically() {
        let g = generators::caveman(12, 8);
        let cfg = config(g.n(), 0.25, 2);
        let mut ledger = RoundLedger::new(g.n());
        let emu = build(&g, &cfg, &mut ledger);
        let s1 = emu.level_set(1).len();
        let s0 = g.n();
        // |S₁| ≤ p₁·n·c + |A|: geometric decay with generous slack.
        assert!(s1 < s0, "S₁ did not shrink: {s1} of {s0}");
    }

    #[test]
    fn plain_hitting_ablation_is_valid_but_no_sparser() {
        // The A1 ablation: plain hitting sets still give a correct emulator
        // but cannot beat the soft-hitting size (the paper's log-factor
        // argument; at small n the gap may be modest, so only assert the
        // ordering direction and validity).
        let g = generators::caveman(12, 8);
        let cfg = config(g.n(), 0.25, 2);
        let mut l1 = RoundLedger::new(g.n());
        let soft = build_with_selector(&g, &cfg, LevelSelector::SoftHitting, &mut l1);
        let mut l2 = RoundLedger::new(g.n());
        let plain = build_with_selector(&g, &cfg, LevelSelector::PlainHitting, &mut l2);
        for emu in [&soft, &plain] {
            let report = emu.verify_with_bounds(
                &g,
                cfg.params.clique_multiplicative_bound(cfg.eps_prime),
                cfg.params.clique_additive_bound(cfg.eps_prime),
                cfg.params.size_bound(),
            );
            assert!(report.within_bounds, "{report:?}");
        }
        // Soft hitting selects O(N/Δ) level members; plain needs the full
        // cover. The level-1 set must not be smaller under plain selection
        // by more than noise.
        assert!(plain.level_set(1).len() + 4 >= soft.level_set(1).len());
    }

    #[test]
    fn rounds_include_soft_hitting_charges() {
        let g = generators::grid(10, 10);
        let cfg = config(g.n(), 0.25, 2);
        let mut ledger = RoundLedger::new(g.n());
        let _ = build(&g, &cfg, &mut ledger);
        // The (log log n)³-style conditional-expectation charges dominate a
        // single broadcast but stay far below poly(n).
        let total = ledger.total_rounds();
        assert!(total > 10, "rounds = {total}");
        assert!(total < 2_000, "rounds = {total}");
    }
}
