//! The emulator object and its verification utilities.

use cc_graphs::{bfs, dijkstra, Dist, Graph, WeightedGraph, INF};

use crate::params::EmulatorParams;

/// A constructed near-additive emulator.
#[derive(Clone, Debug)]
pub struct Emulator {
    /// The weighted emulator graph `H` on the same vertex set as `G`.
    pub graph: WeightedGraph,
    /// `levels[v] = max{i : v ∈ Sᵢ}` for the hierarchy used.
    pub levels: Vec<u8>,
    /// Per-edge provenance when the emulator was built with
    /// [`crate::clique::CliqueEmulatorConfig::record_paths`]: every emulator
    /// edge unrolls into a real walk in `G` of weight at most the edge's
    /// (non-top-level edges via their `(k,δ)`-nearest parent chains,
    /// top-level edges via their hop-limited walks over `G` ∪ hopset).
    pub routes: Option<cc_routes::Unroller>,
}

impl Emulator {
    /// Number of emulator edges.
    pub fn m(&self) -> usize {
        self.graph.m()
    }

    /// Members of level set `Sᵢ` (vertices with level ≥ `i`).
    pub fn level_set(&self, i: usize) -> Vec<usize> {
        self.levels
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l as usize >= i)
            .map(|(v, _)| v)
            .collect()
    }

    /// All-pairs distances *in the emulator* (each vertex, having learned
    /// the whole emulator, runs Dijkstra locally — the computation behind
    /// Thm 32).
    pub fn apsp(&self) -> Vec<Vec<Dist>> {
        dijkstra::apsp_exact(&self.graph)
    }

    /// Single-source distances in the emulator.
    pub fn sssp(&self, src: usize) -> Vec<Dist> {
        dijkstra::sssp(&self.graph, src)
    }

    /// An emulator route from `u` to `v`: the vertex sequence of a shortest
    /// path *in the emulator* together with its length (which is the
    /// `(1+ε, β)`-approximate distance). Each emulator edge is a shortcut
    /// whose weight upper-bounds the corresponding `G`-distance, so the
    /// route is a valid high-level itinerary through `G`.
    pub fn route(&self, u: usize, v: usize) -> Option<(Vec<usize>, Dist)> {
        let tree = dijkstra::sssp_tree(&self.graph, u);
        if tree.dist(v) >= INF {
            return None;
        }
        tree.path_to(v).map(|p| (p, tree.dist(v)))
    }

    /// Verifies the emulator against its parameters on graph `g` (exact
    /// all-pairs comparison; `O(n·m)` — intended for tests/experiments).
    pub fn verify(&self, g: &Graph, params: &EmulatorParams) -> EmulatorReport {
        self.verify_with_bounds(
            g,
            params.multiplicative_bound(),
            params.additive_bound() as f64,
            params.size_bound(),
        )
    }

    /// Verifies against explicit `(1+ε̂, β̂)` bounds and a size bound.
    pub fn verify_with_bounds(
        &self,
        g: &Graph,
        mult_bound: f64,
        add_bound: f64,
        size_bound: f64,
    ) -> EmulatorReport {
        let exact = bfs::apsp_exact(g);
        let emud = self.apsp();
        let n = g.n();
        let mut max_add_err = 0.0f64;
        let mut max_ratio = 1.0f64;
        let mut lower_violations = 0usize;
        let mut missed = 0usize;
        let mut worst_pair = (0usize, 0usize);
        for u in 0..n {
            for v in (u + 1)..n {
                let d = exact[u][v];
                if d == 0 || d >= INF {
                    continue;
                }
                let h = emud[u][v];
                if h >= INF {
                    missed += 1;
                    continue;
                }
                if h < d {
                    lower_violations += 1;
                }
                let add_err = h as f64 - mult_bound * d as f64;
                if add_err > max_add_err {
                    max_add_err = add_err;
                    worst_pair = (u, v);
                }
                max_ratio = max_ratio.max(h as f64 / d as f64);
            }
        }
        EmulatorReport {
            edges: self.m(),
            size_bound,
            max_additive_error: max_add_err,
            additive_bound: add_bound,
            max_ratio,
            lower_violations,
            missed,
            worst_pair,
            within_bounds: lower_violations == 0 && missed == 0 && max_add_err <= add_bound + 1e-6,
        }
    }
}

/// Result of verifying an emulator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EmulatorReport {
    /// Number of emulator edges.
    pub edges: usize,
    /// The `O(r·n^{1+1/2^r})` size bound (without the hidden constant).
    pub size_bound: f64,
    /// Max over pairs of `d_H − (1+20εr)·d_G` (must be ≤ β).
    pub max_additive_error: f64,
    /// The additive bound `β` checked against.
    pub additive_bound: f64,
    /// Max `d_H/d_G` ratio observed.
    pub max_ratio: f64,
    /// Pairs with `d_H < d_G` (must be 0: emulator weights never undercut).
    pub lower_violations: usize,
    /// Finite pairs with no emulator path (must be 0 on connected inputs).
    pub missed: usize,
    /// The pair attaining the worst additive error.
    pub worst_pair: (usize, usize),
    /// `true` iff all of the above hold within the stated bounds.
    pub within_bounds: bool,
}

impl EmulatorReport {
    /// Measured edges divided by the (constant-free) size bound.
    pub fn size_ratio(&self) -> f64 {
        self.edges as f64 / self.size_bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graphs::generators;

    /// Hand-built emulator: the graph itself is always a (1+0, 0)-emulator.
    #[test]
    fn identity_emulator_verifies() {
        let g = generators::grid(4, 4);
        let emu = Emulator {
            routes: None,
            graph: WeightedGraph::from_unweighted(&g),
            levels: vec![0; g.n()],
        };
        let report = emu.verify_with_bounds(&g, 1.0, 0.0, g.m() as f64);
        assert!(report.within_bounds);
        assert_eq!(report.lower_violations, 0);
        assert!((report.max_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sparse_emulator_misses_are_counted() {
        let g = generators::path(4);
        // Emulator with a single edge: most pairs unreachable.
        let emu = Emulator {
            routes: None,
            graph: WeightedGraph::from_edges(4, &[(0, 1, 1)]),
            levels: vec![0; 4],
        };
        let report = emu.verify_with_bounds(&g, 1.0, 10.0, 10.0);
        assert!(report.missed > 0);
        assert!(!report.within_bounds);
    }

    #[test]
    fn undercutting_detected() {
        let g = generators::path(5);
        let mut wg = WeightedGraph::from_unweighted(&g);
        wg.add_edge(0, 4, 1); // cheats: true distance is 4
        let emu = Emulator {
            routes: None,
            graph: wg,
            levels: vec![0; 5],
        };
        let report = emu.verify_with_bounds(&g, 1.0, 10.0, 10.0);
        assert!(report.lower_violations > 0);
        assert!(!report.within_bounds);
    }

    #[test]
    fn route_matches_estimate_and_endpoints() {
        let g = generators::caveman(4, 4);
        let emu = Emulator {
            routes: None,
            graph: WeightedGraph::from_unweighted(&g),
            levels: vec![0; g.n()],
        };
        let apsp = emu.apsp();
        for u in [0usize, 5] {
            for v in [3usize, 12] {
                let (path, len) = emu.route(u, v).expect("connected");
                assert_eq!(path[0], u);
                assert_eq!(*path.last().unwrap(), v);
                assert_eq!(len, apsp[u][v]);
            }
        }
    }

    #[test]
    fn route_none_when_disconnected() {
        let emu = Emulator {
            routes: None,
            graph: WeightedGraph::from_edges(3, &[(0, 1, 1)]),
            levels: vec![0; 3],
        };
        assert!(emu.route(0, 2).is_none());
        assert_eq!(emu.route(0, 1).unwrap().1, 1);
    }

    #[test]
    fn level_sets_nest() {
        let emu = Emulator {
            routes: None,
            graph: WeightedGraph::new(5),
            levels: vec![0, 1, 2, 1, 0],
        };
        assert_eq!(emu.level_set(0).len(), 5);
        assert_eq!(emu.level_set(1), vec![1, 2, 3]);
        assert_eq!(emu.level_set(2), vec![2]);
        assert!(emu.level_set(3).is_empty());
    }
}
