//! The emulator parameter schedule (§3.2 of the paper, Claims 14–22).
//!
//! For `r` levels and accuracy `ε`:
//!
//! * sampling probabilities `pᵢ = n^{-2^{i-1}/2^r}` for `1 ≤ i ≤ r−1` and
//!   `p_r = n^{-1/2^r}` — so `E[|Sᵢ|] = n^{1-(2^i-1)/2^r}` (Claim 14) and
//!   `E[|S_r|] = √n` (Claim 15);
//! * radii `δᵢ = ⌈ε^{-i}⌉ + 2Rᵢ` with `R₀ = 0`, `Rᵢ = Σ_{j<i} δⱼ`
//!   (integer radii: rounding `ε^{-i}` **up** only enlarges balls, which
//!   preserves the stretch analysis and is absorbed by the size constants);
//! * stretch accumulators `β₀ = 0`, `βᵢ = 4·Σ_{j≤i} 2^{i-j}Rⱼ`
//!   (Claim 21: `βᵢ = 4Rᵢ + 2βᵢ₋₁`), giving the Lemma 23 guarantee
//!   `d_H ≤ (1+20εr)·d_G + β_r`.

use cc_graphs::Dist;
use rand::Rng;

/// Errors raised when constructing [`EmulatorParams`].
#[derive(Clone, PartialEq, Debug)]
pub enum ParamError {
    /// `ε` must lie in `(0, 1)`.
    BadEps(f64),
    /// `r` must be at least 1.
    BadLevels(usize),
    /// `n` must be at least 2.
    BadN(usize),
    /// The radius schedule overflowed the distance type (ε too small or `r`
    /// too large for practical use).
    RadiusOverflow,
}

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamError::BadEps(e) => write!(f, "epsilon {e} outside (0, 1)"),
            ParamError::BadLevels(r) => write!(f, "level count {r} must be ≥ 1"),
            ParamError::BadN(n) => write!(f, "graph order {n} must be ≥ 2"),
            ParamError::RadiusOverflow => {
                write!(f, "radius schedule overflows the distance type")
            }
        }
    }
}

impl std::error::Error for ParamError {}

/// The full parameter schedule of one emulator construction.
#[derive(Clone, Debug)]
pub struct EmulatorParams {
    n: usize,
    eps: f64,
    r: usize,
    delta: Vec<Dist>,
    big_r: Vec<Dist>,
    beta: Vec<u64>,
    p: Vec<f64>,
}

impl EmulatorParams {
    /// Builds the schedule for an `n`-vertex graph with accuracy `eps` and
    /// `r` levels.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] for `eps ∉ (0,1)`, `r = 0`, `n < 2`, or a
    /// schedule that overflows the distance type.
    pub fn new(n: usize, eps: f64, r: usize) -> Result<Self, ParamError> {
        if !(eps > 0.0 && eps < 1.0) {
            return Err(ParamError::BadEps(eps));
        }
        if r == 0 {
            return Err(ParamError::BadLevels(r));
        }
        if n < 2 {
            return Err(ParamError::BadN(n));
        }
        let mut delta: Vec<Dist> = Vec::with_capacity(r + 1);
        let mut big_r: Vec<Dist> = vec![0];
        for i in 0..=r {
            let base = (1.0 / eps.powi(i as i32)).ceil();
            if base > u32::MAX as f64 / 8.0 {
                return Err(ParamError::RadiusOverflow);
            }
            let d = (base as u64 + 2 * big_r[i] as u64).min(u32::MAX as u64 / 4) as Dist;
            if d >= cc_graphs::INF / 4 {
                return Err(ParamError::RadiusOverflow);
            }
            delta.push(d);
            big_r.push(big_r[i].saturating_add(d));
        }
        let mut beta: Vec<u64> = vec![0];
        for i in 1..=r {
            // Claim 21: βᵢ = 4Rᵢ + 2βᵢ₋₁.
            beta.push(4 * big_r[i] as u64 + 2 * beta[i - 1]);
        }
        let exp = |num: f64| (n as f64).powf(-num);
        let two_r = (1u64 << r) as f64;
        let mut p = vec![1.0]; // p₀ unused sentinel (S₀ = V)
        for i in 1..r {
            p.push(exp(((1u64 << (i - 1)) as f64) / two_r));
        }
        if r >= 1 {
            p.push(exp(1.0 / two_r)); // p_r = n^{-1/2^r}
        }
        Ok(EmulatorParams {
            n,
            eps,
            r,
            delta,
            big_r,
            beta,
            p,
        })
    }

    /// The paper's headline choice `r = max(2, ⌊log₂ log₂ n⌋)`.
    ///
    /// # Errors
    ///
    /// Propagates [`ParamError`] from [`EmulatorParams::new`].
    pub fn loglog(n: usize, eps: f64) -> Result<Self, ParamError> {
        let lg = (n.max(4) as f64).log2().log2().floor() as usize;
        Self::new(n, eps, lg.max(2))
    }

    /// Graph order `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Accuracy parameter `ε`.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Number of levels `r`.
    pub fn r(&self) -> usize {
        self.r
    }

    /// Exploration radius `δᵢ`.
    ///
    /// # Panics
    ///
    /// Panics if `i > r`.
    pub fn delta(&self, i: usize) -> Dist {
        self.delta[i]
    }

    /// Cluster radius bound `Rᵢ` (Claim 13: `d_H(v, cᵢ(v)) ≤ Rᵢ`).
    pub fn big_r(&self, i: usize) -> Dist {
        self.big_r[i]
    }

    /// Stretch accumulator `βᵢ` (Lemma 23).
    pub fn beta(&self, i: usize) -> u64 {
        self.beta[i]
    }

    /// Sampling probability `pᵢ` for level `i ≥ 1`.
    pub fn p(&self, i: usize) -> f64 {
        self.p[i]
    }

    /// The guaranteed multiplicative stretch `1 + 20εr` (Lemma 23 at `i=r`).
    pub fn multiplicative_bound(&self) -> f64 {
        1.0 + 20.0 * self.eps * self.r as f64
    }

    /// The guaranteed additive stretch `β_r` (Lemma 23 at `i=r`).
    pub fn additive_bound(&self) -> u64 {
        self.beta[self.r]
    }

    /// Multiplicative bound of the Congested Clique variant, whose top-level
    /// edges carry `(1+ε')`-approximate weights (Appendix C.3): every
    /// emulator path inflates by at most `(1+ε')`.
    pub fn clique_multiplicative_bound(&self, eps_prime: f64) -> f64 {
        self.multiplicative_bound() * (1.0 + eps_prime)
    }

    /// Additive bound of the Congested Clique variant (Appendix C.3).
    pub fn clique_additive_bound(&self, eps_prime: f64) -> f64 {
        (1.0 + eps_prime) * self.additive_bound() as f64
    }

    /// Expected size of `Sᵢ`: `n^{1-(2^i-1)/2^r}` (Claim 14); `√n` for
    /// `i = r` (Claim 15).
    pub fn expected_level_size(&self, i: usize) -> f64 {
        if i == 0 {
            return self.n as f64;
        }
        if i == self.r {
            return (self.n as f64).sqrt();
        }
        let two_r = (1u64 << self.r) as f64;
        (self.n as f64).powf(1.0 - (((1u64 << i) - 1) as f64) / two_r)
    }

    /// The size bound `O(r·n^{1+1/2^r})` — returned without the hidden
    /// constant (experiments report the measured ratio against it).
    pub fn size_bound(&self) -> f64 {
        let two_r = (1u64 << self.r) as f64;
        self.r as f64 * (self.n as f64).powf(1.0 + 1.0 / two_r)
    }

    /// Samples the level hierarchy: `level[v] = max{i : v ∈ Sᵢ}`.
    ///
    /// Sampling is a local computation; announcing levels costs one round
    /// (charged by callers).
    pub fn sample_levels(&self, rng: &mut impl Rng) -> Vec<u8> {
        (0..self.n)
            .map(|_| {
                let mut level = 0u8;
                for i in 1..=self.r {
                    if rng.gen_bool(self.p[i].clamp(0.0, 1.0)) {
                        level = i as u8;
                    } else {
                        break;
                    }
                }
                level
            })
            .collect()
    }

    /// Probability that a vertex reaches level `r`: `∏ pᵢ = n^{-1/2}`
    /// (Claim 15).
    pub fn top_level_probability(&self) -> f64 {
        (1..=self.r).map(|i| self.p[i]).product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn schedule_matches_hand_computation() {
        // ε = 0.25, r = 3: δ₀=1, R₁=1, δ₁=6, R₂=7, δ₂=30, R₃=37, δ₃=138.
        let p = EmulatorParams::new(1024, 0.25, 3).unwrap();
        assert_eq!(p.delta(0), 1);
        assert_eq!(p.big_r(1), 1);
        assert_eq!(p.delta(1), 6);
        assert_eq!(p.big_r(2), 7);
        assert_eq!(p.delta(2), 30);
        assert_eq!(p.big_r(3), 37);
        assert_eq!(p.delta(3), 138);
        // β₁ = 4R₁ = 4; β₂ = 4·7+2·4 = 36; β₃ = 4·37+2·36 = 220.
        assert_eq!(p.beta(1), 4);
        assert_eq!(p.beta(2), 36);
        assert_eq!(p.beta(3), 220);
    }

    #[test]
    fn claim_20_radius_bound() {
        // Claim 20: Rᵢ ≤ 2/ε^{i-1} for ε < 1/6 (integer rounding adds a
        // small constant slack).
        let eps = 0.1;
        let p = EmulatorParams::new(4096, eps, 4).unwrap();
        for i in 1..=4 {
            let bound = 2.0 / eps.powi(i as i32 - 1) + 3.0 * i as f64;
            assert!(
                (p.big_r(i) as f64) <= bound,
                "R_{i} = {} > {bound}",
                p.big_r(i)
            );
        }
    }

    #[test]
    fn claim_22_beta_bound() {
        // Claim 22: βᵢ ≤ 10/ε^{i-1} for ε < 1/10 (plus rounding slack).
        let eps = 0.05;
        let p = EmulatorParams::new(4096, eps, 4).unwrap();
        for i in 1..=4 {
            let bound = 10.0 / eps.powi(i as i32 - 1) + 10.0 * i as f64;
            assert!(
                (p.beta(i) as f64) <= bound,
                "β_{i} = {} > {bound}",
                p.beta(i)
            );
        }
    }

    #[test]
    fn sampling_probabilities_multiply_to_inverse_sqrt() {
        for r in 2..=4 {
            let p = EmulatorParams::new(4096, 0.25, r).unwrap();
            let total = p.top_level_probability();
            let want = 1.0 / (4096f64).sqrt();
            assert!(
                (total - want).abs() < 1e-9,
                "r={r}: ∏p = {total}, want {want}"
            );
        }
    }

    #[test]
    fn expected_level_sizes_decrease() {
        let p = EmulatorParams::new(4096, 0.25, 3).unwrap();
        let mut prev = p.expected_level_size(0);
        for i in 1..=3 {
            let s = p.expected_level_size(i);
            assert!(s < prev, "level {i}: {s} ≥ {prev}");
            prev = s;
        }
        assert!((p.expected_level_size(3) - 64.0).abs() < 1e-9);
    }

    #[test]
    fn sampled_levels_concentrate() {
        let p = EmulatorParams::new(4096, 0.25, 3).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let levels = p.sample_levels(&mut rng);
        assert_eq!(levels.len(), 4096);
        let top = levels.iter().filter(|&&l| l == 3).count() as f64;
        // E[|S_r|] = 64; allow generous concentration slack.
        assert!((20.0..160.0).contains(&top), "|S_r| = {top}");
        let s1 = levels.iter().filter(|&&l| l >= 1).count() as f64;
        let want = p.expected_level_size(1);
        assert!((s1 - want).abs() < 0.3 * want, "|S₁| = {s1}, want ≈ {want}");
    }

    #[test]
    fn loglog_choice() {
        let p = EmulatorParams::loglog(65536, 0.25).unwrap();
        assert_eq!(p.r(), 4); // log₂ log₂ 65536 = 4
        let p = EmulatorParams::loglog(64, 0.25).unwrap();
        assert_eq!(p.r(), 2); // clamped to ≥ 2
    }

    #[test]
    fn validation_errors() {
        assert!(matches!(
            EmulatorParams::new(100, 0.0, 2),
            Err(ParamError::BadEps(_))
        ));
        assert!(matches!(
            EmulatorParams::new(100, 1.5, 2),
            Err(ParamError::BadEps(_))
        ));
        assert!(matches!(
            EmulatorParams::new(100, 0.5, 0),
            Err(ParamError::BadLevels(0))
        ));
        assert!(matches!(
            EmulatorParams::new(1, 0.5, 2),
            Err(ParamError::BadN(1))
        ));
        assert!(matches!(
            EmulatorParams::new(100, 1e-9, 8),
            Err(ParamError::RadiusOverflow)
        ));
    }

    #[test]
    fn bounds_are_monotone_in_eps() {
        let tight = EmulatorParams::new(1024, 0.1, 3).unwrap();
        let loose = EmulatorParams::new(1024, 0.5, 3).unwrap();
        assert!(tight.additive_bound() > loose.additive_bound());
        assert!(tight.multiplicative_bound() < loose.multiplicative_bound());
    }
}
