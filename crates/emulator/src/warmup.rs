//! The §3.1 warm-up construction: a `(1+ε, Θ(1/ε))`-emulator with
//! `Õ(n^{5/4})` edges.
//!
//! Two sampled sets: `S₁` of expected size `n^{3/4}` and `S₂ ⊆ S₁` of
//! expected size `n^{1/4}`. Edges:
//!
//! 1. every edge incident to a low-degree vertex (degree ≤ `n^{1/4} log n`);
//!    high-degree vertices connect to a neighbor in `S₁`;
//! 2. `S₁` vertices with few `S₁` vertices in their `δ = 1/ε + 2` ball
//!    connect to all of them; the rest connect to the closest `S₂` vertex;
//! 3. `S₂` vertices connect to *all* vertices with exact distances.
//!
//! This simple construction already breaks the multiplicative-spanner
//! stretch barrier and motivates the full hierarchy of §3.2 (which is this
//! construction iterated `r` times).

use std::collections::BTreeMap;

use cc_graphs::{bfs, Dist, Graph, WeightedGraph};
use rand::Rng;

use crate::emulator::Emulator;

/// Parameters of the warm-up emulator.
#[derive(Clone, Copy, Debug)]
pub struct WarmupParams {
    /// Accuracy `ε ∈ (0, 1)`.
    pub eps: f64,
    /// Degree threshold for "low degree" (paper: `n^{1/4} log n`).
    pub degree_threshold: usize,
    /// `S₁` ball-population threshold (paper: `√n log n`).
    pub ball_threshold: usize,
}

impl WarmupParams {
    /// The paper's parameters for an `n`-vertex graph.
    ///
    /// # Panics
    ///
    /// Panics if `eps ∉ (0,1)`.
    pub fn paper(n: usize, eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must lie in (0,1)");
        let ln = (n.max(2) as f64).ln();
        WarmupParams {
            eps,
            degree_threshold: ((n as f64).powf(0.25) * ln).ceil() as usize,
            ball_threshold: ((n as f64).sqrt() * ln).ceil() as usize,
        }
    }

    /// The ball radius `δ = ⌈1/ε⌉ + 2`.
    pub fn delta(&self) -> Dist {
        (1.0 / self.eps).ceil() as Dist + 2
    }

    /// Verified multiplicative bound `1 + 5ε` (the sketch's `1+4ε` plus
    /// integer-rounding slack).
    pub fn multiplicative_bound(&self) -> f64 {
        1.0 + 5.0 * self.eps
    }

    /// Verified additive bound `4δ + 4 = Θ(1/ε)`.
    pub fn additive_bound(&self) -> f64 {
        4.0 * self.delta() as f64 + 4.0
    }
}

/// Builds the warm-up emulator. Levels in the returned [`Emulator`] encode
/// membership: 0 = plain, 1 = `S₁∖S₂`, 2 = `S₂`.
pub fn build(g: &Graph, params: &WarmupParams, rng: &mut impl Rng) -> Emulator {
    let n = g.n();
    let p1 = (n as f64).powf(-0.25);
    let p2 = (n as f64).powf(-0.5);
    let levels: Vec<u8> = (0..n)
        .map(|_| {
            if rng.gen_bool(p1) {
                if rng.gen_bool(p2) {
                    2
                } else {
                    1
                }
            } else {
                0
            }
        })
        .collect();
    build_with_levels(g, params, levels)
}

/// Builds the warm-up emulator for fixed set membership.
///
/// # Panics
///
/// Panics if `levels.len() != g.n()`.
pub fn build_with_levels(g: &Graph, params: &WarmupParams, levels: Vec<u8>) -> Emulator {
    assert_eq!(levels.len(), g.n(), "one level per vertex");
    let n = g.n();
    let delta = params.delta();
    let mut edges: BTreeMap<(u32, u32), Dist> = BTreeMap::new();
    let mut add = |u: usize, v: usize, w: Dist| {
        let key = if u < v {
            (u as u32, v as u32)
        } else {
            (v as u32, u as u32)
        };
        edges
            .entry(key)
            .and_modify(|cur| *cur = (*cur).min(w))
            .or_insert(w);
    };

    // Rule 1: low-degree vertices keep all incident edges; high-degree
    // vertices connect to an S₁ neighbor (fallback: keep incident edges when
    // the sampling missed — the w.h.p. tail case).
    for v in 0..n {
        if g.degree(v) <= params.degree_threshold {
            for &u in g.neighbors(v) {
                add(v, u as usize, 1);
            }
        } else if let Some(&u) = g.neighbors(v).iter().find(|&&u| levels[u as usize] >= 1) {
            add(v, u as usize, 1);
        } else {
            for &u in g.neighbors(v) {
                add(v, u as usize, 1);
            }
        }
    }

    // Rule 2: S₁ vertices look at their δ-ball.
    for v in 0..n {
        if levels[v] != 1 {
            continue;
        }
        let ball = bfs::ball(g, v, delta);
        let s1_in_ball: Vec<(u32, Dist)> = ball
            .iter()
            .copied()
            .filter(|&(u, _)| u as usize != v && levels[u as usize] >= 1)
            .collect();
        if s1_in_ball.len() <= params.ball_threshold {
            for &(u, d) in &s1_in_ball {
                add(v, u as usize, d);
            }
        } else if let Some(&(u, d)) = ball
            .iter()
            .find(|&&(u, _)| u as usize != v && levels[u as usize] == 2)
        {
            add(v, u as usize, d);
        } else {
            // Dense ball without an S₂ representative (tail case): connect
            // to all S₁ members to preserve the stretch argument.
            for &(u, d) in &s1_in_ball {
                add(v, u as usize, d);
            }
        }
    }

    // Rule 3: S₂ vertices connect to everything with exact distances.
    for v in 0..n {
        if levels[v] != 2 {
            continue;
        }
        let dist = bfs::sssp(g, v);
        for (u, &d) in dist.iter().enumerate() {
            if u != v && d < cc_graphs::INF {
                add(v, u, d);
            }
        }
    }

    let mut graph = WeightedGraph::new(n);
    for (&(u, v), &w) in &edges {
        graph.add_edge(u as usize, v as usize, w);
    }
    Emulator {
        graph,
        levels,
        routes: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn stretch_bound_holds() {
        let mut r = rng(5);
        for (name, g) in [
            ("grid", cc_graphs::generators::grid(9, 9)),
            ("caveman", cc_graphs::generators::caveman(10, 8)),
            (
                "gnp",
                cc_graphs::generators::connected_gnp(90, 0.06, &mut r),
            ),
        ] {
            let params = WarmupParams::paper(g.n(), 0.34);
            let emu = build(&g, &params, &mut r);
            let report = emu.verify_with_bounds(
                &g,
                params.multiplicative_bound(),
                params.additive_bound(),
                f64::INFINITY,
            );
            assert!(report.within_bounds, "{name}: {report:?}");
        }
    }

    #[test]
    fn size_is_subquadratic() {
        // Õ(n^{5/4}) edges: check against c·n^{5/4}·ln²n (generous constant
        // for small n where thresholds are coarse).
        let mut r = rng(2);
        let g = cc_graphs::generators::connected_gnp(256, 0.1, &mut r);
        let params = WarmupParams::paper(g.n(), 0.34);
        let emu = build(&g, &params, &mut r);
        let n = g.n() as f64;
        let bound = 2.0 * n.powf(1.25) * n.ln() * n.ln();
        assert!((emu.m() as f64) < bound, "edges {} vs {bound}", emu.m());
    }

    #[test]
    fn low_degree_graph_is_kept_verbatim() {
        // Every vertex of a cycle is low-degree: rule 1 keeps all edges and
        // rules 2–3 can only add weighted shortcuts above true distance.
        let g = cc_graphs::generators::cycle(40);
        let params = WarmupParams::paper(40, 0.4);
        let emu = build(&g, &params, &mut rng(3));
        for (u, v) in g.edges() {
            let has = emu
                .graph
                .neighbors(u)
                .iter()
                .any(|&(x, w)| x as usize == v && w == 1);
            assert!(has, "missing original edge ({u},{v})");
        }
    }

    #[test]
    fn s2_vertices_are_universal() {
        let g = cc_graphs::generators::grid(5, 5);
        let params = WarmupParams::paper(25, 0.4);
        let mut levels = vec![0u8; 25];
        levels[12] = 2;
        let emu = build_with_levels(&g, &params, levels);
        assert_eq!(emu.graph.neighbors(12).len(), 24);
    }

    #[test]
    #[should_panic(expected = "eps must lie in (0,1)")]
    fn bad_eps_rejected() {
        let _ = WarmupParams::paper(10, 0.0);
    }
}
