//! The §3.5 Congested Clique implementation of the emulator.
//!
//! The ideal construction (§3.2) lets every vertex inspect its exact
//! `δᵢ`-ball, which a clique algorithm cannot afford when balls are dense.
//! The implementation therefore splits vertices by ball population:
//!
//! * **light** (`|B(v, δ_{i_v})| ≤ n^{2/3}`): the `(k,d)`-nearest computation
//!   with `k = n^{2/3}`, `d = δ_r` reveals the whole ball — proceed exactly
//!   as in §3.2 (Claim 26);
//! * **heavy**: the ball contains ≥ `n^{2/3}` vertices, so w.h.p. it contains
//!   a top-level (`S_r`) vertex (Claim 25); since `S_r ⊆ S_{i+1}` the vertex
//!   is *i-dense* and only needs its closest `S_{i+1}` vertex, which is
//!   within its `(k,d)`-nearest list;
//! * **top level** (`v ∈ S_r`): all of `S_r` must be interconnected within
//!   distance `δ_r`. A bounded `(β, ε', δ_r)`-hopset plus one
//!   `(S_r, β)`-source detection yields `(1+ε')`-approximate weights
//!   (Claim 27).
//!
//! Total: `O(log²δ_r / ε')` rounds (Lemma 28).

use cc_clique::RoundLedger;
use cc_graphs::{Dist, Graph, WeightedGraph};
use cc_toolkit::hopset::{self, HopsetParams};
use cc_toolkit::knearest::{KNearest, Strategy};
use cc_toolkit::source_detection::SourceDetection;
use rand::{Rng, RngCore};

use crate::emulator::Emulator;
use crate::params::EmulatorParams;

/// Configuration of the Congested Clique emulator construction.
#[derive(Clone, Debug)]
pub struct CliqueEmulatorConfig {
    /// The emulator parameter schedule.
    pub params: EmulatorParams,
    /// Approximation `ε'` used for the top-level (`S_r × S_r`) edge weights
    /// (Appendix C.3 sets `ε' = 20ε(r−1)`, clamped below 1 here).
    pub eps_prime: f64,
    /// The `(k,d)`-nearest width (paper: `n^{2/3}`).
    pub k: usize,
    /// Use the benchmark-scale hopset profile
    /// ([`HopsetParams::scaled`]) for the top-level stage instead of the
    /// paper-constant one.
    pub scaled_hopset: bool,
    /// Worker threads for the local `(k,d)`-nearest and hopset computations
    /// (`0` and `1` both mean serial). Purely wall-clock: the constructed
    /// emulator and the rounds charged are identical at any thread count.
    pub threads: usize,
    /// Record per-edge provenance ([`Emulator::routes`]) so every emulator
    /// edge unrolls into a real walk in `G`. Purely local witness
    /// bookkeeping: the constructed edges and the rounds charged are
    /// identical with or without it.
    pub record_paths: bool,
}

impl CliqueEmulatorConfig {
    /// The paper's configuration: `k = ⌈n^{2/3}⌉` and
    /// `ε' = min(20ε(r−1), 0.9)`.
    pub fn paper(params: EmulatorParams) -> Self {
        let n = params.n();
        let k = ((n as f64).powf(2.0 / 3.0).ceil() as usize).clamp(1, n);
        let eps_prime = (20.0 * params.eps() * (params.r() as f64 - 1.0)).clamp(0.05, 0.9);
        CliqueEmulatorConfig {
            params,
            eps_prime,
            k,
            scaled_hopset: false,
            threads: 1,
            record_paths: false,
        }
    }

    /// Returns the configuration with the worker-thread count set.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Returns the configuration with per-edge path recording switched on or
    /// off.
    #[must_use]
    pub fn with_paths(mut self, record_paths: bool) -> Self {
        self.record_paths = record_paths;
        self
    }

    /// Benchmark-scale configuration: same exponents, tempered hopset
    /// constants (see `DESIGN.md` §6).
    pub fn scaled(params: EmulatorParams) -> Self {
        let mut c = Self::paper(params);
        c.scaled_hopset = true;
        c
    }
}

/// Builds the emulator in the Congested Clique cost model with freshly
/// sampled levels (Thm 29).
pub fn build(
    g: &Graph,
    config: &CliqueEmulatorConfig,
    rng: &mut impl Rng,
    ledger: &mut RoundLedger,
) -> Emulator {
    let levels = config.params.sample_levels(rng);
    build_with_levels(g, config, levels, Some(rng), ledger)
}

/// Builds the emulator for fixed levels. `rng = None` selects the
/// deterministic top-level machinery (deterministic hopset, Lemma 9 hitting
/// sets) — used by [`crate::deterministic`].
///
/// # Panics
///
/// Panics if `levels.len() != g.n()`.
pub fn build_with_levels(
    g: &Graph,
    config: &CliqueEmulatorConfig,
    levels: Vec<u8>,
    rng: Option<&mut dyn RngCore>,
    ledger: &mut RoundLedger,
) -> Emulator {
    let mut phase = ledger.enter("emulator");
    // One communication round: every vertex broadcasts its level in
    // parallel (grounded by the engine in `announce_round_is_grounded`).
    phase.charge_broadcast("announce level membership");
    let mut kn = KNearest::compute_with(
        g,
        config.k,
        config.params.delta(config.params.r()),
        Strategy::TruncatedBfs,
        config.threads,
        &mut phase,
    );
    if config.record_paths {
        kn = kn.with_parents(g);
    }
    build_with_levels_and_kn(g, config, levels, &kn, rng, &mut phase)
}

/// Core construction with a precomputed `(k, δ_r)`-nearest structure (shared
/// by the w.h.p. variant, which evaluates many level samples against one
/// `(k,d)`-nearest computation — Claim 30).
pub(crate) fn build_with_levels_and_kn(
    g: &Graph,
    config: &CliqueEmulatorConfig,
    levels: Vec<u8>,
    kn: &KNearest,
    rng: Option<&mut dyn RngCore>,
    ledger: &mut RoundLedger,
) -> Emulator {
    assert_eq!(levels.len(), g.n(), "one level per vertex");
    let params = &config.params;
    let r = params.r();
    // Witness bookkeeping is local-only: it must not change the edges built
    // or the rounds charged below.
    let mut routes = config.record_paths.then(cc_routes::Unroller::new);
    let mut edges: std::collections::BTreeMap<(u32, u32), Dist> = std::collections::BTreeMap::new();
    let mut add = |u: usize, v: usize, w: Dist| {
        let key = if u < v {
            (u as u32, v as u32)
        } else {
            (v as u32, u as u32)
        };
        edges
            .entry(key)
            .and_modify(|cur| *cur = (*cur).min(w))
            .or_insert(w);
    };

    // Non-top-level vertices via the (k,d)-nearest lists (Claim 26). When
    // recording, every edge registers its (k,d)-nearest parent chain: the
    // recorded walk's weight is the exact distance, i.e. the edge weight.
    for v in 0..g.n() {
        let i = levels[v] as usize;
        if i >= r {
            continue;
        }
        let plan = plan_for_vertex(kn, &levels, v, params.delta(i), config.k, i);
        let planned: Vec<(usize, Dist)> = match plan {
            VertexPlan::Dense { target, dist } => vec![(target, dist)],
            VertexPlan::Sparse { targets } => targets,
        };
        if planned.is_empty() {
            continue;
        }
        let recs = routes
            .as_mut()
            .map(|r| kn.route_recs(v, r.arena_mut()))
            .unwrap_or_default();
        for (u, d) in planned {
            add(v, u, d);
            if let Some(r) = routes.as_mut() {
                let idx = kn
                    .list(v)
                    .binary_search_by_key(&(d, u as u32), |&(c, dist)| (dist, c))
                    .expect("planned edge is a list entry");
                r.register(v, u, recs[idx].expect("non-root entry has a record"));
            }
        }
    }

    // Top level: S_r × S_r within δ_r via bounded hopset + source detection
    // (Claim 27). When recording, the hopset carries its own edge routes,
    // which the detection walks over G ∪ H resolve against.
    let sr: Vec<usize> = (0..g.n()).filter(|&v| levels[v] as usize >= r).collect();
    if sr.len() > 1 {
        let t = params.delta(r);
        let hp = if config.scaled_hopset {
            HopsetParams::scaled(g.n(), t, config.eps_prime)
        } else {
            HopsetParams::paper(g.n(), t, config.eps_prime)
        }
        .with_threads(config.threads)
        .with_paths(config.record_paths);
        let hs = match rng {
            Some(mut rng) => hopset::build_randomized(g, hp, &mut rng, ledger),
            None => hopset::build_deterministic(g, hp, ledger),
        };
        if let (Some(r), Some(hr)) = (routes.as_mut(), hs.routes.as_ref()) {
            r.absorb(hr);
        }
        let union = hs.union_with(g);
        let sd = match &routes {
            Some(_) => SourceDetection::run_with_parents(&union, &sr, hs.beta, ledger),
            None => SourceDetection::run(&union, &sr, hs.beta, ledger),
        };
        let threshold = ((1.0 + config.eps_prime) * t as f64).ceil() as Dist;
        for &v in &sr {
            for (i, &s) in sr.iter().enumerate() {
                let d = sd.dist_to_source_index(v, i);
                if s != v && d < cc_graphs::INF && d <= threshold {
                    add(v, s, d);
                    if let Some(r) = routes.as_mut() {
                        let chain: Vec<u32> = sd
                            .chain(i, v)
                            .expect("detected pair has a parent chain")
                            .into_iter()
                            .map(|x| x as u32)
                            .collect();
                        let rec = r
                            .intern_walk(g, &chain)
                            .expect("detection hops are G or hopset edges");
                        r.register(s, v, rec);
                    }
                }
            }
        }
        ledger.charge_lenzen("exchange top-level emulator edges", sr.len() as u64);
    }

    let mut graph = WeightedGraph::new(g.n());
    for (&(u, v), &w) in &edges {
        graph.add_edge(u as usize, v as usize, w);
    }
    Emulator {
        graph,
        levels,
        routes,
    }
}

/// What a non-top-level vertex contributes.
pub(crate) enum VertexPlan {
    /// i-dense: a single edge to the closest `S_{i+1}` vertex.
    Dense {
        /// The chosen `c_{i+1}(v)`.
        target: usize,
        /// Its exact distance.
        dist: Dist,
    },
    /// i-sparse: edges to every known `Sᵢ` vertex in the ball.
    Sparse {
        /// `(vertex, distance)` pairs.
        targets: Vec<(usize, Dist)>,
    },
}

/// Decides the edge plan of vertex `v` at level `i` from its `(k,d)`-nearest
/// list (Claims 25/26). Exposed crate-internally so the w.h.p. variant can
/// count edges per run without materializing emulators.
pub(crate) fn plan_for_vertex(
    kn: &KNearest,
    levels: &[u8],
    v: usize,
    delta_i: Dist,
    k: usize,
    i: usize,
) -> VertexPlan {
    let list = kn.list(v);
    let within: Vec<(usize, Dist)> = list
        .iter()
        .take_while(|&&(_, d)| d <= delta_i)
        .map(|&(u, d)| (u as usize, d))
        .collect();
    let heavy = within.len() >= k;
    // Dense check: closest vertex of level ≥ i+1 within δᵢ (the (dist, id)
    // order of the list makes the first hit the closest).
    let dense_target = within
        .iter()
        .find(|&&(u, _)| u != v && levels[u] as usize > i)
        .copied();
    if let Some((target, dist)) = dense_target {
        return VertexPlan::Dense { target, dist };
    }
    // Sparse: all known Sᵢ members of the ball. For a heavy vertex this
    // branch is the w.h.p. tail case (Claim 25 failed) — the known prefix of
    // the ball is used, which preserves weight correctness.
    let _ = heavy;
    let targets = within
        .into_iter()
        .filter(|&(u, _)| u != v && levels[u] as usize >= i)
        .collect();
    VertexPlan::Sparse { targets }
}

/// Returns the number of edges vertex `v` would add (Claim 30's per-run
/// accounting).
pub(crate) fn edge_count_for_vertex(
    kn: &KNearest,
    levels: &[u8],
    v: usize,
    delta_i: Dist,
    k: usize,
    i: usize,
) -> usize {
    match plan_for_vertex(kn, levels, v, delta_i, k, i) {
        VertexPlan::Dense { .. } => 1,
        VertexPlan::Sparse { targets } => targets.len(),
    }
}

/// `true` if every heavy vertex (full `(k, δ_{i_v})` prefix) sees a
/// top-level vertex in its list — the Claim 25 event.
pub(crate) fn heavy_vertices_hit(
    kn: &KNearest,
    levels: &[u8],
    params: &EmulatorParams,
    k: usize,
) -> bool {
    let r = params.r();
    for v in 0..levels.len() {
        let i = levels[v] as usize;
        if i >= r {
            continue;
        }
        let delta_i = params.delta(i);
        let list = kn.list(v);
        let within = list.iter().take_while(|&&(_, d)| d <= delta_i);
        let mut count = 0usize;
        let mut has_top = false;
        for &(u, _) in within {
            count += 1;
            if levels[u as usize] as usize >= r {
                has_top = true;
            }
        }
        if count >= k && !has_top {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graphs::{bfs, generators};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn config(n: usize, eps: f64, r: usize) -> CliqueEmulatorConfig {
        CliqueEmulatorConfig::paper(EmulatorParams::new(n, eps, r).unwrap())
    }

    #[test]
    fn clique_emulator_meets_relaxed_bounds() {
        let mut r = rng(13);
        for (name, g) in [
            ("cycle", generators::cycle(60)),
            ("grid", generators::grid(8, 8)),
            ("caveman", generators::caveman(8, 8)),
            ("gnp", generators::connected_gnp(70, 0.06, &mut r)),
        ] {
            let cfg = config(g.n(), 0.25, 2);
            let mut ledger = RoundLedger::new(g.n());
            let emu = build(&g, &cfg, &mut r, &mut ledger);
            let report = emu.verify_with_bounds(
                &g,
                cfg.params.clique_multiplicative_bound(cfg.eps_prime),
                cfg.params.clique_additive_bound(cfg.eps_prime),
                cfg.params.size_bound(),
            );
            assert!(report.within_bounds, "{name}: {report:?}");
            assert!(ledger.total_rounds() > 0);
        }
    }

    #[test]
    fn matches_ideal_when_all_balls_light() {
        // On a bounded-degree graph every ball is far below n^{2/3}: the
        // clique construction's light path must reproduce §3.2 exactly,
        // except for the S_r×S_r stage, whose weights may stretch by (1+ε').
        let g = generators::cycle(48);
        let cfg = config(48, 0.25, 2);
        let levels = cfg.params.sample_levels(&mut rng(4));
        let ideal = crate::ideal::build_with_levels(&g, &cfg.params, levels.clone());
        let mut ledger = RoundLedger::new(48);
        let mut r = rng(5);
        let clique = build_with_levels(&g, &cfg, levels, Some(&mut r), &mut ledger);
        // Compare non-top-level edges exactly.
        let top = |v: usize| clique.levels[v] as usize >= cfg.params.r();
        let mut ideal_low: Vec<_> = ideal
            .graph
            .edges()
            .filter(|&(u, v, _)| !(top(u) && top(v)))
            .collect();
        let mut clique_low: Vec<_> = clique
            .graph
            .edges()
            .filter(|&(u, v, _)| !(top(u) && top(v)))
            .collect();
        ideal_low.sort_unstable();
        clique_low.sort_unstable();
        assert_eq!(ideal_low, clique_low);
    }

    #[test]
    fn top_level_weights_respect_eps_prime() {
        let g = generators::grid(8, 8);
        let cfg = config(64, 0.25, 2);
        let mut r = rng(8);
        let mut ledger = RoundLedger::new(64);
        let emu = build(&g, &cfg, &mut r, &mut ledger);
        let exact = bfs::apsp_exact(&g);
        for (u, v, w) in emu.graph.edges() {
            assert!(w >= exact[u][v], "undercut at ({u},{v})");
            assert!(
                (w as f64) <= (1.0 + cfg.eps_prime) * exact[u][v] as f64 + 1.0,
                "edge ({u},{v}) weight {w} vs d {}",
                exact[u][v]
            );
        }
    }

    #[test]
    fn recorded_routes_unroll_every_emulator_edge() {
        let g = generators::caveman(7, 7);
        let cfg = config(g.n(), 0.25, 2);
        let levels = cfg.params.sample_levels(&mut rng(6));
        // Same levels, same seed: recording must not change edges or rounds.
        let mut l_plain = RoundLedger::new(g.n());
        let mut r1 = rng(9);
        let plain = build_with_levels(&g, &cfg, levels.clone(), Some(&mut r1), &mut l_plain);
        let rec_cfg = cfg.clone().with_paths(true);
        let mut l_rec = RoundLedger::new(g.n());
        let mut r2 = rng(9);
        let emu = build_with_levels(&g, &rec_cfg, levels, Some(&mut r2), &mut l_rec);
        assert_eq!(emu.graph, plain.graph, "recording changed the emulator");
        assert_eq!(l_plain.total_rounds(), l_rec.total_rounds());
        assert!(plain.routes.is_none());
        let routes = emu.routes.as_ref().expect("routes recorded");
        let exact = bfs::apsp_exact(&g);
        for (u, v, w) in emu.graph.edges() {
            let walk = routes
                .unroll(u, v)
                .unwrap_or_else(|| panic!("edge ({u},{v}) has no route"));
            assert_eq!(walk[0].0 as usize, u);
            assert_eq!(walk[walk.len() - 1].1 as usize, v);
            for win in walk.windows(2) {
                assert_eq!(win[0].1, win[1].0, "edges must chain");
            }
            for &(x, y) in &walk {
                assert!(g.has_edge(x as usize, y as usize), "real G edge");
            }
            assert!(walk.len() as Dist <= w, "route longer than edge weight");
            assert!(walk.len() as Dist >= exact[u][v], "route undercuts");
        }
    }

    #[test]
    fn deterministic_emulator_records_routes() {
        let g = generators::grid(6, 6);
        let cfg = CliqueEmulatorConfig::scaled(EmulatorParams::loglog(g.n(), 0.5).unwrap())
            .with_paths(true);
        let mut ledger = RoundLedger::new(g.n());
        let emu = crate::deterministic::build(&g, &cfg, &mut ledger);
        let routes = emu.routes.as_ref().expect("routes recorded");
        for (u, v, w) in emu.graph.edges() {
            let walk = routes.unroll(u, v).expect("every edge unrolls");
            assert!(walk.len() as Dist <= w);
        }
    }

    #[test]
    fn rounds_match_the_log_squared_formula() {
        // Lemma 28: O(log²δ_r/ε') rounds. With the paper constants the
        // hidden factor is ≈ 4·β·iterations = 48·log²δ_r/ε'; check the
        // ledger lands in that regime rather than anywhere near poly(n).
        let g = generators::cycle(400);
        let cfg = config(400, 0.25, 2);
        let dr = cfg.params.delta(2) as f64;
        let log2 = dr.log2();
        let formula = 48.0 * log2 * log2 / cfg.eps_prime;
        let mut r = rng(2);
        let mut ledger = RoundLedger::new(400);
        let _ = build(&g, &cfg, &mut r, &mut ledger);
        let total = ledger.total_rounds() as f64;
        assert!(
            total < 3.0 * formula,
            "rounds = {total}, formula ≈ {formula}"
        );
        // The scaled profile tempers the constant by 4×.
        let mut ledger2 = RoundLedger::new(400);
        let cfg2 = CliqueEmulatorConfig::scaled(cfg.params.clone());
        let _ = build(&g, &cfg2, &mut r, &mut ledger2);
        assert!(ledger2.total_rounds() < ledger.total_rounds());
    }

    #[test]
    fn plan_logic_dense_prefers_closest() {
        let g = generators::path(8);
        let mut ledger = RoundLedger::new(8);
        let kn = KNearest::compute(&g, 8, 7, Strategy::TruncatedBfs, &mut ledger);
        // Levels: v3 level 1; v1 and v5 level 2 (r = 2).
        let mut levels = vec![0u8; 8];
        levels[3] = 1;
        levels[1] = 2;
        levels[5] = 2;
        let params = EmulatorParams::new(8, 0.25, 2).unwrap();
        match plan_for_vertex(&kn, &levels, 3, params.delta(1), 8, 1) {
            VertexPlan::Dense { target, dist } => {
                // Both 1 and 5 are at distance 2: tie broken by id.
                assert_eq!(target, 1);
                assert_eq!(dist, 2);
            }
            VertexPlan::Sparse { .. } => panic!("expected dense"),
        }
    }

    #[test]
    fn announce_round_is_grounded() {
        // `build_with_levels` charges `broadcast_one()` for announcing level
        // membership: every vertex broadcasts its level simultaneously (one
        // word each). Run that step as a real message-passing program: the
        // engine reports exactly one communication round (its trailing drain
        // step is free local computation — see `RunStats::rounds`) and
        // n(n−1) delivered messages.
        use cc_clique::cost::model;
        use cc_clique::programs::AllGather;
        use cc_clique::{Engine, NodeId};
        let n = 24usize;
        let params = EmulatorParams::new(n, 0.25, 2).unwrap();
        let levels = params.sample_levels(&mut rng(3));
        let nodes = levels
            .iter()
            .enumerate()
            .map(|(v, &lvl)| AllGather::new(NodeId::new(v), vec![lvl as u64]))
            .collect();
        let mut engine = Engine::new(nodes);
        let stats = engine.run().unwrap();
        assert_eq!(stats.rounds, model::broadcast_one());
        assert_eq!(stats.messages, (n * (n - 1)) as u64);
        // Every node ends up knowing all n levels.
        assert!(engine.nodes().iter().all(|p| p.collected().len() == n));
    }

    #[test]
    fn heavy_hit_check_detects_misses() {
        let g = generators::complete(30);
        let params = EmulatorParams::new(30, 0.25, 2).unwrap();
        let mut ledger = RoundLedger::new(30);
        // k = 5: every ball (the whole graph) is "heavy".
        let kn = KNearest::compute(&g, 5, params.delta(2), Strategy::TruncatedBfs, &mut ledger);
        let no_top = vec![0u8; 30];
        assert!(!heavy_vertices_hit(&kn, &no_top, &params, 5));
        let mut with_top = vec![0u8; 30];
        // Vertices 0..5 at top level: every 5-list contains one of them.
        for v in 0..5 {
            with_top[v] = 2;
        }
        assert!(heavy_vertices_hit(&kn, &with_top, &params, 5));
    }
}
