//! A bounded ring of span events — the "last N requests" flight recorder.
//!
//! One ring per connection. Writers claim a monotonically increasing
//! sequence number, then `try_lock` the slot it maps to: on contention the
//! event is dropped (and counted), so recording never blocks the serving
//! hot path. Draining locks every slot (with poison recovery), empties it,
//! and returns the surviving events in push order — the stored sequence
//! number, not slot position, decides order, so wrap-around stays sorted.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// One recorded request: identifiers plus coarse timing, all integers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Client-assigned request id.
    pub req_id: u64,
    /// Wire op byte of the request.
    pub op: u8,
    /// Wire status byte of the answer.
    pub status: u8,
    /// Nanoseconds spent queued before a worker picked the job up.
    pub wait_ns: u64,
    /// Number of jobs coalesced into the batch that served this request
    /// (0 when the request never reached a worker, e.g. shed).
    pub batch: u64,
}

impl SpanEvent {
    /// Renders the event as one `span …` text line. Stable fields come
    /// first so consumers can assert on a deterministic prefix.
    pub fn render(&self) -> String {
        format!(
            "span req_id={} op={} status={} batch={} wait_ns={}",
            self.req_id, self.op, self.status, self.batch, self.wait_ns
        )
    }
}

/// A fixed-capacity, contention-dropping ring of [`SpanEvent`]s.
#[derive(Debug)]
pub struct TraceRing {
    slots: Vec<Mutex<Option<(u64, SpanEvent)>>>,
    cursor: AtomicU64,
    dropped: AtomicU64,
}

impl TraceRing {
    /// A ring holding the last `capacity.max(1)` events.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceRing {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Records `ev`, overwriting the oldest slot; drops the event (and
    /// counts the drop) if the slot is momentarily held by a drain or a
    /// wrapped-around writer.
    pub fn push(&self, ev: SpanEvent) {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        let len = self.slots.len() as u64;
        let Some(slot) = self.slots.get((seq % len) as usize) else {
            return;
        };
        match slot.try_lock() {
            Ok(mut g) => *g = Some((seq, ev)),
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Events dropped on slot contention so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Empties the ring, returning surviving events oldest-first.
    pub fn drain(&self) -> Vec<SpanEvent> {
        let mut taken: Vec<(u64, SpanEvent)> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().unwrap_or_else(PoisonError::into_inner).take())
            .collect();
        taken.sort_unstable_by_key(|(seq, _)| *seq);
        taken.into_iter().map(|(_, ev)| ev).collect()
    }

    /// Drains and renders one `span …` line per event (trailing newline
    /// on every line; empty string when no events survive).
    pub fn drain_text(&self) -> String {
        let mut out = String::new();
        for ev in self.drain() {
            out.push_str(&ev.render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(req_id: u64) -> SpanEvent {
        SpanEvent {
            req_id,
            op: 1,
            status: 0,
            wait_ns: req_id * 10,
            batch: 1,
        }
    }

    #[test]
    fn drain_returns_push_order_and_empties() {
        let ring = TraceRing::new(8);
        for i in 0..5 {
            ring.push(ev(i));
        }
        let got: Vec<u64> = ring.drain().iter().map(|e| e.req_id).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert!(ring.drain().is_empty());
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn wrap_around_keeps_the_newest_in_order() {
        let ring = TraceRing::new(4);
        for i in 0..10 {
            ring.push(ev(i));
        }
        let got: Vec<u64> = ring.drain().iter().map(|e| e.req_id).collect();
        assert_eq!(got, vec![6, 7, 8, 9]);
    }

    #[test]
    fn render_puts_stable_fields_first() {
        let line = ev(7).render();
        assert!(line.starts_with("span req_id=7 op=1 status=0 batch=1 "));
    }

    #[test]
    fn concurrent_pushes_never_block_and_account_for_drops() {
        let ring = std::sync::Arc::new(TraceRing::new(16));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let ring = std::sync::Arc::clone(&ring);
                s.spawn(move || {
                    for i in 0..100 {
                        ring.push(ev(t * 1000 + i));
                    }
                });
            }
        });
        let survived = ring.drain().len() as u64;
        assert!(survived <= 16);
        assert_eq!(ring.cursor.load(Ordering::Relaxed), 400);
        // Every push either landed in a slot (possibly overwritten later)
        // or was counted as dropped — nothing blocked.
        assert!(survived + ring.dropped() <= 400);
    }
}
