//! Dependency-free observability substrate for the congested-clique
//! workspace.
//!
//! Everything here is integer-only (`u64` counts and nanoseconds — the
//! workspace float-ban extends to this crate) and allocation-light:
//!
//! * [`registry`] — a named registry of atomic [`Counter`]s, [`Gauge`]s and
//!   fixed-boundary power-of-two [`Histogram`]s, rendered as
//!   Prometheus-style text exposition with integer sample values.
//! * [`trace`] — a bounded per-connection [`TraceRing`] of [`SpanEvent`]s:
//!   writers `try_lock` a slot and drop the event on contention, so the
//!   hot path never blocks on an observer.
//! * [`stage`] — [`StageTimes`], gated wall-clock stage accounting for the
//!   solver pipelines; disabled recorders never read the clock.
//! * [`text`] — a parser for the exposition format plus exact bucket-rank
//!   quantile extraction, shared by tests, benches and `cc-bench-diff`.
//!
//! Metric names are `&'static str` by construction: the registry cannot be
//! fed a formatted (per-request) name, which keeps lookups out of hot
//! paths and the exposition bounded.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod registry;
pub mod stage;
pub mod text;
pub mod trace;

pub use registry::{Counter, Gauge, Histogram, Registry};
pub use stage::{StageStat, StageTimes};
pub use text::{parse_exposition, HistSummary};
pub use trace::{SpanEvent, TraceRing};
