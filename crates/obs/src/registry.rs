//! Atomic metrics: counters, gauges, power-of-two histograms, and the
//! registry that names them.
//!
//! All samples are `u64` (counts or nanoseconds). Histograms use fixed
//! power-of-two bucket boundaries so recording is a `leading_zeros` plus
//! one relaxed `fetch_add` — no floats, no allocation, no locks. The
//! registry itself holds one `Mutex` around its name maps; it is taken
//! only at registration and render time, never per sample.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Number of histogram buckets: index 0 holds values `<= 1`, index `k`
/// holds `(2^(k-1), 2^k]`, and index 64 is the overflow bucket.
pub const BUCKETS: usize = 65;

/// A monotonically increasing atomic counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins atomic gauge.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistInner {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
    max: AtomicU64,
}

/// A fixed-boundary latency histogram over power-of-two buckets.
///
/// `record` costs a handful of relaxed atomic ops; quantiles are exact
/// integer bucket-rank walks (the reported quantile is the upper bound of
/// the bucket containing the target rank, capped at the exact observed
/// maximum).
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }
}

/// Bucket index for a sample: 0 for `v <= 1`, else `64 - clz(v - 1)`,
/// so bucket `k` covers `(2^(k-1), 2^k]` and 64 catches the overflow.
pub fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        64 - (v - 1).leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the overflow
/// bucket).
pub fn bucket_upper(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        1u64 << i
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        let inner = &self.0;
        if let Some(b) = inner.buckets.get(bucket_index(v)) {
            b.fetch_add(1, Ordering::Relaxed);
        }
        inner.sum.fetch_add(v, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Exact maximum recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Exact integer-rank quantile: the upper bound of the bucket holding
    /// the `ceil(count * pct / 100)`-th smallest sample, capped at the
    /// observed maximum. Returns 0 when empty. `pct` is clamped to 100.
    pub fn quantile(&self, pct: u64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let pct = pct.min(100);
        let target = (count.saturating_mul(pct)).div_ceil(100).max(1);
        let mut cum = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            cum = cum.saturating_add(b.load(Ordering::Relaxed));
            if cum >= target {
                return bucket_upper(i).min(self.max());
            }
        }
        self.max()
    }

    /// Snapshot of all bucket counts (non-cumulative).
    pub fn buckets(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| {
            self.0
                .buckets
                .get(i)
                .map_or(0, |b| b.load(Ordering::Relaxed))
        })
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<&'static str, Counter>,
    gauges: BTreeMap<&'static str, Gauge>,
    histograms: BTreeMap<&'static str, Histogram>,
}

/// A named registry of metrics.
///
/// Names are `&'static str` on purpose: callers register once at startup
/// and keep the returned handle — per-request lookups (or formatted
/// names) are a misuse that cc-analyze's `obs-hot-path` rule flags.
/// Registration is idempotent: the same name always yields handles to the
/// same underlying atomic.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers (or fetches) the counter `name`.
    pub fn counter(&self, name: &'static str) -> Counter {
        self.locked().counters.entry(name).or_default().clone()
    }

    /// Registers (or fetches) the gauge `name`.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        self.locked().gauges.entry(name).or_default().clone()
    }

    /// Registers (or fetches) the histogram `name`.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        self.locked().histograms.entry(name).or_default().clone()
    }

    /// Renders every metric as Prometheus-style text exposition with
    /// integer sample values. Histogram buckets are cumulative and only
    /// emitted up to the highest non-empty bucket (plus the `+Inf`
    /// total), so the text stays bounded.
    pub fn render(&self) -> String {
        let inner = self.locked();
        let mut out = String::new();
        for (name, c) in &inner.counters {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {}", c.get());
        }
        for (name, g) in &inner.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", g.get());
        }
        for (name, h) in &inner.histograms {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let buckets = h.buckets();
            let last = buckets.iter().rposition(|&b| b != 0).unwrap_or(0);
            let mut cum = 0u64;
            for (i, &b) in buckets.iter().enumerate().take(last + 1) {
                cum = cum.saturating_add(b);
                let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cum}", bucket_upper(i));
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
            let _ = writeln!(out, "{name}_sum {}", h.sum());
            let _ = writeln!(out, "{name}_count {}", h.count());
            let _ = writeln!(out, "{name}_max {}", h.max());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(1025), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..BUCKETS {
            let hi = bucket_upper(i);
            assert_eq!(bucket_index(hi), i, "upper bound of {i} maps back");
        }
    }

    #[test]
    fn counters_and_gauges_are_shared_by_name() {
        let r = Registry::new();
        let a = r.counter("requests_total");
        let b = r.counter("requests_total");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("requests_total").get(), 3);
        let g = r.gauge("depth");
        g.set(7);
        assert_eq!(r.gauge("depth").get(), 7);
    }

    #[test]
    fn histogram_quantiles_are_exact_bucket_ranks() {
        let h = Histogram::default();
        for v in [1u64, 2, 3, 100, 1000, 1000, 1000, 5000, 5000, 70000] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), 83106);
        assert_eq!(h.max(), 70000);
        // rank 5 of 10 → the 5th smallest (1000) lives in (512, 1024].
        assert_eq!(h.quantile(50), 1024);
        // rank 9 → 5000 lives in (4096, 8192].
        assert_eq!(h.quantile(90), 8192);
        // rank 10 → 70000 lives in (65536, 131072], capped at max.
        assert_eq!(h.quantile(99), 70000);
        assert_eq!(h.quantile(100), 70000);
        let empty = Histogram::default();
        assert_eq!(empty.quantile(50), 0);
    }

    #[test]
    fn render_is_integer_text_with_cumulative_buckets() {
        let r = Registry::new();
        r.counter("served_total").add(5);
        r.gauge("gen").set(3);
        let h = r.histogram("wait_ns");
        h.record(1);
        h.record(3);
        h.record(3);
        let text = r.render();
        assert!(text.contains("served_total 5\n"));
        assert!(text.contains("gen 3\n"));
        assert!(text.contains("wait_ns_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("wait_ns_bucket{le=\"4\"} 3\n"));
        assert!(text.contains("wait_ns_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("wait_ns_sum 7\n"));
        assert!(text.contains("wait_ns_count 3\n"));
        assert!(text.contains("wait_ns_max 3\n"));
        assert!(!text.contains('.'), "exposition must stay integer-only");
    }
}
