//! Gated wall-clock stage accounting for the solver pipelines.
//!
//! A [`StageTimes`] is owned single-threadedly (the `Solver` session holds
//! one through its `Substrates`), so there are no atomics here. The gate
//! is the point: when disabled, [`StageTimes::start`] returns `None`
//! without reading the clock, and [`StageTimes::stop`] is a no-op — the
//! instrumented pipelines cost nothing and, crucially, never perturb
//! charged rounds or bit-identical outputs (timing is observed, never fed
//! back).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

/// Accumulated wall-clock for one named stage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageStat {
    /// Number of recorded intervals.
    pub calls: u64,
    /// Total nanoseconds across all intervals.
    pub total_ns: u64,
}

/// Named stage timers, disabled by default.
#[derive(Debug, Default)]
pub struct StageTimes {
    enabled: bool,
    stages: BTreeMap<&'static str, StageStat>,
}

impl StageTimes {
    /// Enables or disables recording. Disabling keeps accumulated stats.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether recording is on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Starts an interval: `None` (and no clock read) when disabled.
    pub fn start(&self) -> Option<Instant> {
        self.enabled.then(Instant::now)
    }

    /// Stops an interval started by [`StageTimes::start`], crediting the
    /// elapsed nanoseconds to `name`. A `None` token is a no-op.
    pub fn stop(&mut self, name: &'static str, started: Option<Instant>) {
        let Some(started) = started else {
            return;
        };
        let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let stat = self.stages.entry(name).or_default();
        stat.calls = stat.calls.saturating_add(1);
        stat.total_ns = stat.total_ns.saturating_add(ns);
    }

    /// Accumulated stat for `name`, if any interval was recorded.
    pub fn get(&self, name: &str) -> Option<StageStat> {
        self.stages.get(name).copied()
    }

    /// All recorded stages, name-sorted.
    pub fn entries(&self) -> impl Iterator<Item = (&'static str, StageStat)> + '_ {
        self.stages.iter().map(|(n, s)| (*n, *s))
    }

    /// Renders the stages in the same integer text style as the metrics
    /// registry: `{prefix}_stage_ns{stage="…"}` and
    /// `{prefix}_stage_calls{stage="…"}` per stage.
    pub fn exposition(&self, prefix: &str) -> String {
        let mut out = String::new();
        for (name, stat) in &self.stages {
            let _ = writeln!(
                out,
                "{prefix}_stage_ns{{stage=\"{name}\"}} {}",
                stat.total_ns
            );
            let _ = writeln!(
                out,
                "{prefix}_stage_calls{{stage=\"{name}\"}} {}",
                stat.calls
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_never_starts_and_stop_is_a_noop() {
        let mut st = StageTimes::default();
        assert!(!st.enabled());
        let t = st.start();
        assert!(t.is_none());
        st.stop("hopset_build", t);
        assert!(st.get("hopset_build").is_none());
        assert!(st.exposition("cc").is_empty());
    }

    #[test]
    fn enabled_recorder_accumulates_calls_and_time() {
        let mut st = StageTimes::default();
        st.set_enabled(true);
        for _ in 0..3 {
            let t = st.start();
            st.stop("minplus_products", t);
        }
        let stat = st.get("minplus_products").expect("recorded");
        assert_eq!(stat.calls, 3);
        let text = st.exposition("cc_solver");
        assert!(text.contains("cc_solver_stage_calls{stage=\"minplus_products\"} 3"));
        assert!(text.contains("cc_solver_stage_ns{stage=\"minplus_products\"}"));
    }
}
