//! Parsing the integer text exposition back into samples — the shared
//! substrate for tests (chaos reconciliation), benches (quantile blocks
//! in BENCH_*.json) and `cc-bench-diff`.

use std::collections::BTreeMap;

/// Parses exposition text into `full-sample-name → value`. Comment lines
/// (`# …`), blank lines and non-integer samples are skipped; the key is
/// everything before the final space, labels included (e.g.
/// `wait_ns_bucket{le="1024"}`).
pub fn parse_exposition(text: &str) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((key, value)) = line.rsplit_once(' ') else {
            continue;
        };
        if let Ok(v) = value.parse::<u64>() {
            out.insert(key.to_string(), v);
        }
    }
    out
}

/// Exact bucket-rank summary of one histogram reconstructed from parsed
/// exposition text. Quantiles are bucket upper bounds capped at the exact
/// maximum — identical to what the live histogram reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistSummary {
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Exact maximum sample.
    pub max: u64,
    /// Median (bucket upper bound, capped at `max`).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
}

/// Reconstructs the summary of histogram `name` from samples produced by
/// [`parse_exposition`]. Returns `None` when `name_count` is absent.
pub fn histogram_summary(samples: &BTreeMap<String, u64>, name: &str) -> Option<HistSummary> {
    let count = *samples.get(&format!("{name}_count"))?;
    let sum = samples.get(&format!("{name}_sum")).copied().unwrap_or(0);
    let max = samples.get(&format!("{name}_max")).copied().unwrap_or(0);
    // Cumulative finite buckets, numerically sorted by upper bound.
    let prefix = format!("{name}_bucket{{le=\"");
    let mut buckets: Vec<(u64, u64)> = samples
        .iter()
        .filter_map(|(key, &cum)| {
            let rest = key.strip_prefix(&prefix)?;
            let le = rest.strip_suffix("\"}")?;
            le.parse::<u64>().ok().map(|le| (le, cum))
        })
        .collect();
    buckets.sort_unstable_by_key(|&(le, _)| le);
    let quantile = |pct: u64| -> u64 {
        if count == 0 {
            return 0;
        }
        let target = count.saturating_mul(pct).div_ceil(100).max(1);
        for &(le, cum) in &buckets {
            if cum >= target {
                return le.min(max);
            }
        }
        // Target rank lives past the last finite bucket (overflow).
        max
    };
    Some(HistSummary {
        count,
        sum,
        max,
        p50: quantile(50),
        p90: quantile(90),
        p99: quantile(99),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn parse_skips_comments_and_keeps_labels() {
        let text = "# TYPE a counter\na 5\nb{le=\"16\"} 2\nnot a sample line x\n";
        let s = parse_exposition(text);
        assert_eq!(s.get("a"), Some(&5));
        assert_eq!(s.get("b{le=\"16\"}"), Some(&2));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn summary_round_trips_the_live_histogram() {
        let r = Registry::new();
        let h = r.histogram("wait_ns");
        let values = [1u64, 2, 3, 100, 1000, 1000, 1000, 5000, 5000, 70000];
        for v in values {
            h.record(v);
        }
        let parsed = parse_exposition(&r.render());
        let s = histogram_summary(&parsed, "wait_ns").expect("histogram present");
        assert_eq!(s.count, h.count());
        assert_eq!(s.sum, h.sum());
        assert_eq!(s.max, h.max());
        assert_eq!(s.p50, h.quantile(50));
        assert_eq!(s.p90, h.quantile(90));
        assert_eq!(s.p99, h.quantile(99));
        assert_eq!((s.p50, s.p90, s.p99), (1024, 8192, 70000));
    }

    #[test]
    fn summary_of_missing_or_empty_histograms() {
        let parsed = parse_exposition("");
        assert!(histogram_summary(&parsed, "nope").is_none());
        let r = Registry::new();
        let _ = r.histogram("empty_ns");
        let parsed = parse_exposition(&r.render());
        let s = histogram_summary(&parsed, "empty_ns").expect("registered");
        assert_eq!(s, HistSummary::default());
    }
}
