//! A2 (ablation) — why the clique emulator splits vertices at ball size
//! `n^{2/3}` (§3.5): the `(k,d)`-nearest width `k` is the knob.
//!
//! * `k = n^{2/3}` (paper): the `k/n^{2/3}` term of Thm 10 is 1 — cheap —
//!   and heavy vertices fall back to the `S_r` hitting argument.
//! * `k = n` ("learn the whole ball"): every ball is known exactly, no
//!   heavy/light split needed — but the `(k,d)`-nearest cost explodes by
//!   the `k/n^{2/3} = n^{1/3}` factor.
//! * `k = n^{1/3}` (too small): cheap, but many vertices become "heavy" and
//!   depend on the top-level fallback; correctness still holds, edges may
//!   inflate.

#![forbid(unsafe_code)]

use cc_bench::{f3, rng, Table};
use cc_clique::RoundLedger;
use cc_emulator::clique::{self, CliqueEmulatorConfig};
use cc_emulator::EmulatorParams;
use cc_graphs::generators;

fn main() {
    let mut table = Table::new(
        "A2: clique emulator vs (k,d)-nearest width k (caveman graphs)",
        &["n", "k", "k label", "edges", "rounds", "within stretch"],
    );
    for n in [512usize, 1024] {
        let g = generators::caveman(n / 8, 8);
        let nn = g.n();
        let params = EmulatorParams::new(nn, 0.25, 2).expect("valid");
        let k_paper = (nn as f64).powf(2.0 / 3.0).ceil() as usize;
        let k_small = (nn as f64).powf(1.0 / 3.0).ceil() as usize;
        for (label, k) in [
            ("n^(2/3) paper", k_paper),
            ("n full", nn),
            ("n^(1/3) small", k_small),
        ] {
            let mut cfg = CliqueEmulatorConfig::scaled(params.clone());
            cfg.k = k;
            let mut r = rng(nn as u64);
            let mut ledger = RoundLedger::new(nn);
            let emu = clique::build(&g, &cfg, &mut r, &mut ledger);
            let report = emu.verify_with_bounds(
                &g,
                params.clique_multiplicative_bound(cfg.eps_prime),
                params.clique_additive_bound(cfg.eps_prime),
                params.size_bound(),
            );
            table.row(vec![
                nn.to_string(),
                k.to_string(),
                label.to_string(),
                emu.m().to_string(),
                ledger.total_rounds().to_string(),
                report.within_bounds.to_string(),
            ]);
            let _ = f3(0.0);
        }
    }
    table.print();
    println!(
        "paper claim: k = n^(2/3) balances the (k,d)-nearest round cost\n\
         against ball coverage; larger k wastes rounds on the k/n^(2/3)\n\
         term, smaller k leans on the heavy-vertex fallback."
    );
}
