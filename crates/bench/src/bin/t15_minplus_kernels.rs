//! T15 — min-plus kernel throughput: CSR vs legacy sparse, blocked vs
//! unblocked dense, serial vs row-sharded parallel.
//!
//! Sweeps `kernel × n × density × threads` over gnp adjacency matrices and
//! their squares, measuring semiring operations per second (one operation =
//! one `min(acc, a + b)` accumulation; the operation count is a property of
//! the inputs, so every kernel on a cell does identical work). Emits one
//! JSON document on stdout (human-readable table on stderr) with:
//!
//! * ops/sec per `(kernel, n, ρ, threads)` cell,
//! * the CSR-vs-legacy single-thread speedup per sparse cell (the kernel
//!   claim: ≥ 2× at `n = 1024`, ρ ≈ 32),
//! * the parallel-vs-serial speedup per dense cell (**hardware-dependent**:
//!   row shards are independent, so on a machine with ≥ 4 cores 4 threads
//!   approach 4×; on a single-core container it stays near 1 — the
//!   bit-identical cross-checks still validate the sharding either way),
//! * cross-checks: every CSR product is compared entry-for-entry against
//!   the legacy kernel's output, and every threaded product must be
//!   **bit-identical** (values and nnz) to its serial run. Any divergence
//!   fails the run.
//!
//! Run with: `cargo run --release --bin t15_minplus_kernels -- [--threads T] [--reps R] [--quick]`

#![forbid(unsafe_code)]

use std::time::Instant;

use cc_bench::rng;
use cc_graphs::{generators, Graph};
use cc_matrix::legacy::{dense_minplus_unblocked, LegacySparseMatrix};
use cc_matrix::{DenseMatrix, MinplusWorkspace, SparseMatrix};

/// Semiring operations of `a · b`: one per `(i, k, j)` with `(i,k)` finite
/// in `a` and `(k,j)` finite in `b` — identical for every sparse kernel.
fn sparse_ops(a: &SparseMatrix, b: &SparseMatrix) -> u64 {
    (0..a.n())
        .map(|i| {
            a.row(i)
                .iter()
                .map(|&(k, _)| b.row_nnz(k as usize) as u64)
                .sum::<u64>()
        })
        .sum()
}

/// Semiring operations of the dense kernels: finite `(i,k)` cells × row
/// length (the skip-∞ prefilter makes all-∞ `k` cells free in both kernels).
fn dense_ops(a: &DenseMatrix) -> u64 {
    a.finite_entries() as u64 * a.n() as u64
}

/// Best-of-`reps` wall time of `run`, seconds.
fn best_secs<T>(reps: usize, mut run: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let value = run();
        best = best.min(start.elapsed().as_secs_f64());
        out = Some(value);
    }
    (best, out.expect("reps >= 1"))
}

struct Row {
    kernel: &'static str,
    n: usize,
    rho: u64,
    threads: usize,
    ops: u64,
    wall_ms: f64,
    ops_per_sec: f64,
}

fn gnp_with_density(n: usize, target_rho: usize, seed: u64) -> Graph {
    // Adjacency rows carry the diagonal plus the degree, so aim the expected
    // degree at ρ − 1.
    let p = (target_rho.saturating_sub(1) as f64 / (n - 1) as f64).min(1.0);
    generators::gnp(n, p, &mut rng(seed))
}

fn main() {
    let mut max_threads = 4usize;
    let mut reps = 5usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                max_threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads N");
            }
            "--reps" => {
                reps = args.next().and_then(|v| v.parse().ok()).expect("--reps N");
            }
            "--quick" => reps = 2,
            other => panic!("unknown argument {other:?}"),
        }
    }
    assert!(max_threads >= 1, "--threads must be at least 1");
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());

    let mut thread_counts = vec![1usize];
    while let Some(&last) = thread_counts.last() {
        if last * 2 > max_threads {
            break;
        }
        thread_counts.push(last * 2);
    }

    let mut rows: Vec<Row> = Vec::new();
    let mut sparse_speedups: Vec<(usize, u64, f64)> = Vec::new(); // (n, rho, csr/legacy @ 1 thread)
    let mut dense_speedups: Vec<(usize, f64)> = Vec::new(); // (n, max-threads/serial)

    // ── Sparse: CSR vs legacy, per (n, ρ), threads sweep for CSR. ─────────
    for &n in &[256usize, 1024] {
        for &target_rho in &[8usize, 32] {
            let g = gnp_with_density(n, target_rho, (n + target_rho) as u64);
            let a = SparseMatrix::adjacency(&g);
            let rho = a.density();
            let legacy = LegacySparseMatrix::from_csr(&a);
            let ops = sparse_ops(&a, &a);

            let (legacy_secs, legacy_out) = best_secs(reps, || legacy.minplus(&legacy));
            rows.push(Row {
                kernel: "sparse-legacy",
                n,
                rho,
                threads: 1,
                ops,
                wall_ms: legacy_secs * 1e3,
                ops_per_sec: ops as f64 / legacy_secs,
            });

            let mut serial_out = None;
            let mut csr_serial_secs = 0.0;
            for &threads in &thread_counts {
                let mut ws = MinplusWorkspace::with_threads(threads);
                // Warm the workspace so steady-state (allocation-free)
                // products are what the timer sees.
                let _ = a.minplus_with(&a, &mut ws);
                let (secs, out) = best_secs(reps, || a.minplus_with(&a, &mut ws));
                if threads == 1 {
                    assert_eq!(
                        LegacySparseMatrix::from_csr(&out),
                        legacy_out,
                        "CSR and legacy kernels diverged at n={n} rho={rho}"
                    );
                    csr_serial_secs = secs;
                    serial_out = Some(out.clone());
                } else {
                    let serial = serial_out.as_ref().expect("serial ran first");
                    assert_eq!(
                        &out, serial,
                        "threaded sparse product not bit-identical at n={n} rho={rho} threads={threads}"
                    );
                    assert_eq!(out.nnz(), serial.nnz());
                }
                rows.push(Row {
                    kernel: "sparse-csr",
                    n,
                    rho,
                    threads,
                    ops,
                    wall_ms: secs * 1e3,
                    ops_per_sec: ops as f64 / secs,
                });
            }
            sparse_speedups.push((n, rho, legacy_secs / csr_serial_secs));
        }
    }

    // ── Dense: blocked vs unblocked, threads sweep for the blocked kernel. ─
    for &n in &[256usize, 1024] {
        let g = gnp_with_density(n, 32, n as u64);
        let a = DenseMatrix::adjacency(&g);
        let rho = (a.finite_entries() as u64).div_ceil(n as u64);
        let ops = dense_ops(&a);

        let (unblocked_secs, unblocked_out) = best_secs(reps, || dense_minplus_unblocked(&a, &a));
        rows.push(Row {
            kernel: "dense-legacy",
            n,
            rho,
            threads: 1,
            ops,
            wall_ms: unblocked_secs * 1e3,
            ops_per_sec: ops as f64 / unblocked_secs,
        });

        let mut serial_out = None;
        let mut serial_secs = 0.0;
        let mut max_threads_secs = 0.0;
        for &threads in &thread_counts {
            let ws = MinplusWorkspace::with_threads(threads);
            let (secs, out) = best_secs(reps, || a.minplus_with(&a, &ws));
            if threads == 1 {
                assert_eq!(
                    out, unblocked_out,
                    "blocked and unblocked dense kernels diverged at n={n}"
                );
                serial_secs = secs;
                serial_out = Some(out);
            } else {
                assert_eq!(
                    Some(&out),
                    serial_out.as_ref(),
                    "threaded dense product not bit-identical at n={n} threads={threads}"
                );
            }
            if threads == *thread_counts.last().expect("non-empty") {
                max_threads_secs = secs;
            }
            rows.push(Row {
                kernel: "dense-blocked",
                n,
                rho,
                threads,
                ops,
                wall_ms: secs * 1e3,
                ops_per_sec: ops as f64 / secs,
            });
        }
        dense_speedups.push((n, serial_secs / max_threads_secs));
    }

    // ── Report. ───────────────────────────────────────────────────────────
    let max_threads_swept = *thread_counts.last().expect("non-empty");
    eprintln!(
        "{:>14}  {:>5}  {:>4}  {:>7}  {:>12}  {:>10}  {:>14}",
        "kernel", "n", "rho", "threads", "ops", "wall_ms", "ops/sec"
    );
    for row in &rows {
        eprintln!(
            "{:>14}  {:>5}  {:>4}  {:>7}  {:>12}  {:>10.2}  {:>14.0}",
            row.kernel, row.n, row.rho, row.threads, row.ops, row.wall_ms, row.ops_per_sec
        );
    }
    for &(n, rho, s) in &sparse_speedups {
        eprintln!("sparse n={n} rho={rho}: CSR vs legacy (1 thread) = {s:.2}x");
    }
    for &(n, s) in &dense_speedups {
        eprintln!("dense n={n}: {max_threads_swept} threads vs serial = {s:.2}x (cores available: {cores})");
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"t15_minplus_kernels\",\n");
    json.push_str(&format!("  \"max_threads\": {max_threads_swept},\n"));
    json.push_str(&format!("  \"available_cores\": {cores},\n"));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str("  \"cross_checks_ok\": true,\n");
    json.push_str(&format!(
        "  \"sparse_csr_vs_legacy_speedup\": {{{}}},\n",
        sparse_speedups
            .iter()
            .map(|(n, rho, s)| format!("\"n{n}_rho{rho}\": {s:.3}"))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str(&format!(
        "  \"dense_parallel_vs_serial_speedup\": {{{}}},\n",
        dense_speedups
            .iter()
            .map(|(n, s)| format!("\"n{n}\": {s:.3}"))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"n\": {}, \"rho\": {}, \"threads\": {}, \"ops\": {}, \"wall_ms\": {:.3}, \"ops_per_sec\": {:.0}}}{}\n",
            row.kernel,
            row.n,
            row.rho,
            row.threads,
            row.ops,
            row.wall_ms,
            row.ops_per_sec,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}");
    println!("{json}");
}
