//! T12 — model validation: the message-level engine realizes the round
//! constants the ledger charges.
//!
//! Each row runs a *real* distributed program under the engine's bandwidth
//! enforcement and compares its measured rounds with the cost-model formula
//! the algorithm layer charges for the same primitive.

#![forbid(unsafe_code)]

use cc_bench::Table;
use cc_clique::cost::model;
use cc_clique::programs::{
    AllGather, Broadcast, DistributedBfs, MinAggregate, RoutedWord, TwoPhaseRouting,
};
use cc_clique::{Engine, NodeId};
use cc_graphs::{bfs, generators};

fn main() {
    let n = 64usize;
    let mut table = Table::new(
        "T12: engine-measured rounds vs ledger formulas (n = 64)",
        &[
            "primitive",
            "engine rounds",
            "ledger formula",
            "formula covers",
        ],
    );

    // Broadcast: exactly 1 communication round (the engine's drain step
    // is free local computation — see `RunStats::rounds`).
    let nodes = (0..n)
        .map(|i| Broadcast::new(NodeId::new(i), NodeId::new(0), 1))
        .collect();
    let stats = Engine::new(nodes).run().expect("broadcast");
    table.row(vec![
        "broadcast".into(),
        stats.rounds.to_string(),
        model::broadcast_one().to_string(),
        (stats.rounds == model::broadcast_one()).to_string(),
    ]);

    // Min aggregation: exactly the 2 rounds the ledger charges.
    let nodes = (0..n)
        .map(|i| MinAggregate::new(NodeId::new(i), i as u64 + 5))
        .collect();
    let stats = Engine::new(nodes).run().expect("min-agg");
    table.row(vec![
        "min aggregation".into(),
        stats.rounds.to_string(),
        "2".into(),
        (stats.rounds == 2).to_string(),
    ]);

    // All-gather of K = 4n words: learn_all formula.
    let per = 4usize;
    let nodes: Vec<AllGather> = (0..n)
        .map(|i| {
            AllGather::new(
                NodeId::new(i),
                (0..per).map(|j| (i * per + j) as u64).collect(),
            )
        })
        .collect();
    let stats = Engine::new(nodes).run().expect("allgather");
    let formula = model::learn_all((n * per) as u64, n as u64);
    table.row(vec![
        format!("all-gather K={}", n * per),
        stats.rounds.to_string(),
        formula.to_string(),
        (stats.rounds <= formula).to_string(),
    ]);

    // Two-phase routing, balanced permutation load: lenzen_route formula.
    let nodes: Vec<TwoPhaseRouting> = (0..n)
        .map(|i| {
            let words = (0..n)
                .filter(|&j| j != i)
                .map(|j| RoutedWord {
                    dest: NodeId::new(j),
                    payload: j as u64,
                })
                .collect();
            TwoPhaseRouting::new(NodeId::new(i), n, words, 9)
        })
        .collect();
    let stats = Engine::new(nodes).run().expect("routing");
    let formula = model::lenzen_route(n as u64, n as u64);
    table.row(vec![
        "routing (load n)".into(),
        stats.rounds.to_string(),
        formula.to_string(),
        // Randomized two-phase pays a small constant over Lenzen's
        // deterministic 2; the formula is per normalized load unit.
        (stats.rounds <= 8 * formula).to_string(),
    ]);

    // Distributed BFS: ecc(s) rounds — the cost the bounded tools avoid.
    let g = generators::grid(8, 8);
    let nodes: Vec<DistributedBfs> = (0..g.n())
        .map(|v| {
            DistributedBfs::new(
                NodeId::new(v),
                NodeId::new(0),
                g.neighbors(v)
                    .iter()
                    .map(|&u| NodeId::new(u as usize))
                    .collect(),
                None,
            )
        })
        .collect();
    let stats = Engine::new(nodes).run().expect("bfs");
    let ecc = bfs::eccentricity(&g, 0) as u64;
    table.row(vec![
        "hop-by-hop BFS (grid 8x8)".into(),
        stats.rounds.to_string(),
        format!("ecc = {ecc}"),
        (stats.rounds <= ecc + 4).to_string(),
    ]);

    table.print();
    println!(
        "claim (DESIGN.md §1): the ledger's formulas are realized by real\n\
         message-passing programs under bandwidth enforcement — every\n\
         'formula covers' column must read true."
    );
}
