//! T5 — Thm 10: the (k,d)-nearest problem in
//! `O((k/n^{2/3} + log d)·log d)` rounds.

#![forbid(unsafe_code)]

use cc_bench::{rng, Table};
use cc_clique::RoundLedger;
use cc_graphs::generators;
use cc_toolkit::knearest::{KNearest, Strategy};

fn main() {
    let n = 1024;
    let mut r = rng(5);
    let g = generators::connected_gnp(n, 6.0 / n as f64, &mut r);
    let mut table = Table::new(
        "T5: (k,d)-nearest rounds (Thm 10), gnp n=1024",
        &["k", "d", "rounds", "formula", "strategies agree"],
    );
    for k in [16usize, 101, 256] {
        for d in [4u32, 16, 64] {
            let mut l1 = RoundLedger::new(n);
            let a = KNearest::compute(&g, k, d, Strategy::TruncatedBfs, &mut l1);
            let mut l2 = RoundLedger::new(n);
            let b = KNearest::compute(&g, k, d, Strategy::Filtered, &mut l2);
            table.row(vec![
                k.to_string(),
                d.to_string(),
                l1.total_rounds().to_string(),
                KNearest::rounds(n, k, d).to_string(),
                (a == b && l1.total_rounds() == l2.total_rounds()).to_string(),
            ]);
        }
    }
    table.print();
    println!(
        "paper claim: rounds grow as log^2 d for k <= n^(2/3) and pick up a\n\
         k/n^(2/3) term beyond; the filtered-squaring and truncated-BFS\n\
         strategies compute identical outputs (Claim 59)."
    );
}
