//! T2 — Thm 4/34: (2+ε)-APSP in Õ((log log n)²) rounds, with the (3+ε)
//! warm-up pipeline for comparison.

#![forbid(unsafe_code)]

use cc_bench::{f3, rng, Table};
use cc_clique::RoundLedger;
use cc_core::apsp2::{self, Apsp2Config};
use cc_core::apsp3::{self, Apsp3Config};
use cc_graphs::{bfs, generators, stretch};

fn main() {
    let eps = 0.5;
    let mut table = Table::new(
        "T2: (2+eps)-APSP vs the (3+eps) warm-up (Thm 4/34), eps = 0.5",
        &[
            "graph",
            "n",
            "max str 2+e",
            "mean str 2+e",
            "rounds 2+e",
            "max str 3+e",
            "rounds 3+e",
            "ok",
        ],
    );
    for n in [256usize, 400] {
        let mut r = rng(3 + n as u64);
        let side = (n as f64).sqrt().round() as usize;
        for (name, g) in [
            ("gnp", generators::connected_gnp(n, 6.0 / n as f64, &mut r)),
            ("grid", generators::grid(side, side)),
            ("caveman", generators::caveman(n / 8, 8)),
        ] {
            let nn = g.n();
            let exact = bfs::apsp_exact(&g);

            let cfg2 = Apsp2Config::scaled(nn, eps).expect("valid");
            let mut l2 = RoundLedger::new(nn);
            let out2 = apsp2::run(&g, &cfg2, &mut r, &mut l2).expect("apsp2");
            let rep2 = stretch::evaluate_range(&exact, out2.estimates.as_fn(), 0.0, 1, out2.t);

            let cfg3 = Apsp3Config::scaled(nn, eps).expect("valid");
            let mut l3 = RoundLedger::new(nn);
            let out3 = apsp3::run(&g, &cfg3, &mut r, &mut l3).expect("apsp3");
            let rep3 = stretch::evaluate_range(&exact, out3.estimates.as_fn(), 0.0, 1, out3.t);

            let ok = rep2.lower_violations == 0
                && rep2.max_multiplicative <= out2.short_range_guarantee + 1e-9
                && rep3.max_multiplicative <= out3.short_range_guarantee + 1e-9;
            table.row(vec![
                name.to_string(),
                nn.to_string(),
                f3(rep2.max_multiplicative),
                f3(rep2.mean_multiplicative),
                l2.total_rounds().to_string(),
                f3(rep3.max_multiplicative),
                l3.total_rounds().to_string(),
                ok.to_string(),
            ]);
        }
    }
    table.print();
    println!(
        "paper claim: stretch <= 2+eps for pairs within t (here: all pairs,\n\
         since diameters < t); the (3+eps) warm-up is measurably worse on\n\
         dense-cluster graphs while the refined pipeline stays within 2+eps."
    );
}
