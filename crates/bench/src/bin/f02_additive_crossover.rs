//! F2 — §4.1/4.2: the near-additive guarantee `(1+ε)d + β` approaches
//! `(1+ε)` as `d` grows, crossing below the multiplicative `(2+ε)` line once
//! `d > β/(1−ε)` — the paper's answer to its Question 2.
//!
//! On a long cycle (diameter `n/2`), bucket the measured approximation
//! ratio of the (1+ε, β)-APSP by true distance and compare with the
//! `(2+ε)`-line and with a Baswana–Sen 3-spanner baseline.

#![forbid(unsafe_code)]

use cc_bench::{f3, rng, Table};
use cc_clique::RoundLedger;
use cc_core::apsp_additive::{self, AdditiveApspConfig};
use cc_graphs::{bfs, generators, stretch};

fn main() {
    let eps = 0.25;
    let n = 512;
    let g = generators::cycle(n);
    let exact = bfs::apsp_exact(&g);
    let mut r = rng(2);

    let acfg = AdditiveApspConfig::scaled(n, eps).expect("valid");
    let mut la = RoundLedger::new(n);
    let additive = apsp_additive::run(&g, &acfg, &mut r, &mut la);

    // A genuinely multiplicative comparator: a (2k−1)-spanner with k = 2 on
    // a denser graph would show stretch ≈ 3; on the cycle the relevant
    // comparison is the analytic (2+eps) line.
    let ab = stretch::bucketed_profile(&exact, additive.estimates.as_fn());
    let mut table = Table::new(
        "F2: (1+eps, beta)-APSP ratio by distance (cycle n=512, eps=0.25)",
        &[
            "d in",
            "pairs",
            "measured mean",
            "measured max",
            "additive bound @d_lo",
            "(2+eps) line",
        ],
    );
    let beta = additive.additive_bound;
    let m = additive.multiplicative_bound;
    for a in ab.iter() {
        if a.pairs == 0 {
            continue;
        }
        // The proven ratio bound at distance d: (1+epŝ) + beta/d — report it
        // at the bucket's lower end.
        let bound = m + beta / a.lo as f64;
        table.row(vec![
            format!("[{},{}]", a.lo, a.hi),
            a.pairs.to_string(),
            f3(a.mean_ratio),
            f3(a.max_ratio),
            f3(bound),
            f3(2.0 + eps),
        ]);
    }
    table.print();
    // The empirical crossover: smallest d from which every later bucket's
    // max ratio stays below the (2+eps) line.
    let mut crossover = None;
    for (i, b) in ab.iter().enumerate() {
        if b.pairs == 0 {
            continue;
        }
        if ab[i..]
            .iter()
            .all(|c| c.pairs == 0 || c.max_ratio <= 2.0 + eps)
        {
            crossover = Some(b.lo);
            break;
        }
    }
    println!(
        "empirical crossover (max ratio <= 2+eps from here on) at d >= {:?}.\n\
         paper claim: near-additive beats any multiplicative guarantee for\n\
         long distances — the measured ratio column must decrease toward 1+eps.",
        crossover
    );
    println!("rounds: {}", la.total_rounds());
}
