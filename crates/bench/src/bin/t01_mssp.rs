#![forbid(unsafe_code)]
#![allow(clippy::needless_range_loop)]
//! T1 — Thm 3/33: (1+ε)-MSSP from O(√n) sources in Õ((log log n)²) rounds.

use cc_bench::{f3, rng, Table};
use cc_clique::RoundLedger;
use cc_core::mssp::{self, MsspConfig};
use cc_graphs::{bfs, generators, INF};

fn main() {
    let eps = 0.25;
    let mut table = Table::new(
        "T1: (1+eps)-MSSP from ~sqrt(n) sources (Thm 3/33), eps = 0.25",
        &[
            "graph",
            "n",
            "|S|",
            "pairs",
            "max stretch",
            "mean stretch",
            "guar(short)",
            "rounds",
        ],
    );
    for n in [256usize, 512, 1024] {
        let mut r = rng(n as u64);
        let side = (n as f64).sqrt().round() as usize;
        for (name, g) in [
            ("gnp", generators::connected_gnp(n, 6.0 / n as f64, &mut r)),
            ("grid", generators::grid(side, side)),
            ("caveman", generators::caveman(n / 8, 8)),
        ] {
            let nn = g.n();
            let s_count = (nn as f64).sqrt().ceil() as usize;
            let sources: Vec<usize> = (0..nn).step_by((nn / s_count).max(1)).collect();
            let cfg = MsspConfig::scaled(nn, eps).expect("valid");
            let mut ledger = RoundLedger::new(nn);
            let out = mssp::run(&g, &sources, &cfg, &mut r, &mut ledger).expect("mssp");
            let mut worst: f64 = 1.0;
            let mut sum = 0.0;
            let mut pairs = 0usize;
            for (i, &s) in out.sources.iter().enumerate() {
                let exact = bfs::sssp(&g, s);
                for v in 0..nn {
                    if exact[v] == 0 || exact[v] >= INF {
                        continue;
                    }
                    let ratio = out.dist(i, v) as f64 / exact[v] as f64;
                    worst = worst.max(ratio);
                    sum += ratio;
                    pairs += 1;
                }
            }
            table.row(vec![
                name.to_string(),
                nn.to_string(),
                out.sources.len().to_string(),
                pairs.to_string(),
                f3(worst),
                f3(sum / pairs.max(1) as f64),
                f3(1.0 + eps),
                ledger.total_rounds().to_string(),
            ]);
        }
    }
    table.print();
    println!(
        "paper claim: (1+eps) stretch for pairs within t (w.h.p.) from up to\n\
         O(sqrt(n)) sources; rounds Õ((log log n)^2). Long pairs fall back to\n\
         the emulator, whose *measured* stretch stays near 1+eps."
    );
}
