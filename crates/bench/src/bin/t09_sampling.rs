//! T9 — Claims 14–16: the sampling hierarchy concentrates —
//! `E[|Sᵢ|] = n^{1-(2^i-1)/2^r}` and `|S_r| = O(√n)` w.h.p.

#![forbid(unsafe_code)]

use cc_bench::{f2, rng, Table};
use cc_emulator::EmulatorParams;

fn main() {
    let mut table = Table::new(
        "T9: level-set concentration (Claims 14-16), 32 trials each",
        &[
            "n",
            "r",
            "i",
            "E[|S_i|] (paper)",
            "mean measured",
            "min",
            "max",
        ],
    );
    for n in [1024usize, 4096, 16384] {
        let r_levels = 3usize;
        let params = EmulatorParams::new(n, 0.25, r_levels).expect("valid");
        let trials = 32;
        for i in 1..=r_levels {
            let mut sizes = Vec::new();
            for t in 0..trials {
                let levels = params.sample_levels(&mut rng(n as u64 * 100 + t));
                sizes.push(levels.iter().filter(|&&l| l as usize >= i).count());
            }
            let mean = sizes.iter().sum::<usize>() as f64 / trials as f64;
            table.row(vec![
                n.to_string(),
                r_levels.to_string(),
                i.to_string(),
                f2(params.expected_level_size(i)),
                f2(mean),
                sizes.iter().min().unwrap().to_string(),
                sizes.iter().max().unwrap().to_string(),
            ]);
        }
    }
    table.print();
    println!(
        "paper claim: |S_i| concentrates at n^(1-(2^i-1)/2^r) and the top\n\
         level at sqrt(n) (Claims 14-16). Mean-vs-paper columns should match\n\
         to within sampling noise."
    );
}
