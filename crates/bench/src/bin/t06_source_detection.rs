//! T6 — Thm 11: (S,d)-source detection in
//! `O((m^{1/3}|S|^{2/3}/n + 1)·d)` rounds — linear in `d`, which is why the
//! paper pairs it with hopsets.

#![forbid(unsafe_code)]

use cc_bench::{rng, Table};
use cc_clique::RoundLedger;
use cc_graphs::{generators, WeightedGraph};
use cc_toolkit::source_detection::SourceDetection;

fn main() {
    let n = 1024;
    let mut r = rng(6);
    let g = generators::connected_gnp(n, 8.0 / n as f64, &mut r);
    let wg = WeightedGraph::from_unweighted(&g);
    let mut table = Table::new(
        "T6: (S,d)-source detection rounds (Thm 11), gnp n=1024 m~4096",
        &["|S|", "d", "rounds", "rounds/d"],
    );
    for s_count in [8usize, 32, 128] {
        let sources: Vec<usize> = (0..n).step_by(n / s_count).take(s_count).collect();
        for d in [4usize, 16, 64] {
            let mut ledger = RoundLedger::new(n);
            let _ = SourceDetection::run(&wg, &sources, d, &mut ledger);
            let rounds = ledger.total_rounds();
            table.row(vec![
                s_count.to_string(),
                d.to_string(),
                rounds.to_string(),
                format!("{:.2}", rounds as f64 / d as f64),
            ]);
        }
    }
    table.print();
    println!(
        "paper claim: rounds/d is constant in d (linear dependence) and grows\n\
         with |S|^(2/3); with |S| = O(sqrt n) on a sparse graph the per-hop\n\
         cost is O(1)."
    );
}
