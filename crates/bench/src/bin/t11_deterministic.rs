//! T11 — Thms 50–53: deterministic variants match the randomized guarantees
//! at an extra `O((log log n)³)`–`O((log log n)⁴)` round overhead.

#![forbid(unsafe_code)]

use cc_bench::{f3, rng, Table};
use cc_clique::RoundLedger;
use cc_core::apsp2::{self, Apsp2Config};
use cc_core::apsp_additive::{self, AdditiveApspConfig};
use cc_graphs::{bfs, generators, stretch};

fn main() {
    let mut table = Table::new(
        "T11: deterministic vs randomized (Thm 50-53)",
        &[
            "algorithm",
            "graph",
            "n",
            "max stretch rand",
            "rounds rand",
            "max stretch det",
            "rounds det",
            "det overhead",
        ],
    );
    for n in [240usize, 504] {
        // Cliques of 24: dense enough for the deterministic level hierarchy
        // (soft hitting sets) to engage — see experiment A1.
        let g = generators::caveman(n / 24, 24);
        let nn = g.n();
        let exact = bfs::apsp_exact(&g);
        let mut r = rng(n as u64);

        // (1+eps, beta)-APSP.
        let cfg = AdditiveApspConfig::scaled(nn, 0.25).expect("valid");
        let mut lr = RoundLedger::new(nn);
        let rand_out = apsp_additive::run(&g, &cfg, &mut r, &mut lr);
        let mut ld = RoundLedger::new(nn);
        let det_out = apsp_additive::run_deterministic(&g, &cfg, &mut ld);
        let rep_r = stretch::evaluate(&exact, rand_out.estimates.as_fn(), 0.0);
        let rep_d = stretch::evaluate(&exact, det_out.estimates.as_fn(), 0.0);
        table.row(vec![
            "(1+e,b)-APSP".into(),
            "caveman".into(),
            nn.to_string(),
            f3(rep_r.max_multiplicative),
            lr.total_rounds().to_string(),
            f3(rep_d.max_multiplicative),
            ld.total_rounds().to_string(),
            format!("{:+}", ld.total_rounds() as i64 - lr.total_rounds() as i64),
        ]);

        // (2+eps)-APSP.
        let cfg2 = Apsp2Config::scaled(nn, 0.5).expect("valid");
        let mut lr2 = RoundLedger::new(nn);
        let rand2 = apsp2::run(&g, &cfg2, &mut r, &mut lr2).expect("apsp2");
        let mut ld2 = RoundLedger::new(nn);
        let det2 = apsp2::run_deterministic(&g, &cfg2, &mut ld2).expect("apsp2 det");
        let rep_r2 = stretch::evaluate_range(&exact, rand2.estimates.as_fn(), 0.0, 1, rand2.t);
        let rep_d2 = stretch::evaluate_range(&exact, det2.estimates.as_fn(), 0.0, 1, det2.t);
        table.row(vec![
            "(2+e)-APSP".into(),
            "caveman".into(),
            nn.to_string(),
            f3(rep_r2.max_multiplicative),
            lr2.total_rounds().to_string(),
            f3(rep_d2.max_multiplicative),
            ld2.total_rounds().to_string(),
            format!(
                "{:+}",
                ld2.total_rounds() as i64 - lr2.total_rounds() as i64
            ),
        ]);
    }
    table.print();
    println!(
        "paper claim: identical stretch guarantees, deterministically, for an\n\
         additive poly(log log n) round overhead (soft hitting sets +\n\
         Lemma 9 + deterministic hopsets). Deterministic runs are also\n\
         bit-for-bit reproducible."
    );
}
