//! F3 — Thm 29 vs the non-distance-sensitive route: emulator construction
//! rounds grow as `poly(log log n)`, the CHKL19-style hopset pipeline as
//! `poly(log n)`.

#![forbid(unsafe_code)]

use cc_bench::{f2, rng, Table};
use cc_clique::RoundLedger;
use cc_emulator::clique::CliqueEmulatorConfig;
use cc_emulator::{whp, EmulatorParams};
use cc_graphs::generators;
use cc_toolkit::hopset::{self, HopsetParams};

fn main() {
    let eps = 0.25;
    let mut table = Table::new(
        "F3: emulator rounds (Thm 29) vs unbounded-hopset pipeline",
        &[
            "n",
            "delta_r",
            "emulator rounds",
            "t=n hopset rounds",
            "log^2(delta_r)",
            "log^2(n)",
        ],
    );
    for n in [256usize, 512, 1024, 2048] {
        let mut r = rng(n as u64);
        let g = generators::connected_gnp(n, 6.0 / n as f64, &mut r);
        let params = EmulatorParams::new(n, eps, 2).expect("valid");
        let cfg = CliqueEmulatorConfig::scaled(params.clone());
        let mut le = RoundLedger::new(n);
        let _ = whp::build(&g, &cfg, &mut r, &mut le);

        // The same hopset primitive *without* the distance bound (t = n):
        // what a non-distance-sensitive pipeline pays.
        let mut lh = RoundLedger::new(n);
        let hp = HopsetParams::scaled(n, n as u32, eps);
        let _ = hopset::build_randomized(&g, hp, &mut r, &mut lh);

        let dr = params.delta(2) as f64;
        table.row(vec![
            n.to_string(),
            params.delta(2).to_string(),
            le.total_rounds().to_string(),
            lh.total_rounds().to_string(),
            f2(dr.log2().powi(2)),
            f2((n as f64).log2().powi(2)),
        ]);
    }
    table.print();
    println!(
        "paper claim: the emulator's round count tracks log^2(delta_r) —\n\
         independent of n for fixed (eps, r) — while the unbounded pipeline\n\
         tracks log^2(n) and keeps growing."
    );
}
