//! T3 — Thm 5/32: (1+ε, β)-APSP — the first sub-polynomial near-additive
//! APSP.

#![forbid(unsafe_code)]

use cc_bench::{f2, f3, rng, Table};
use cc_clique::RoundLedger;
use cc_core::apsp_additive::{self, AdditiveApspConfig};
use cc_graphs::{bfs, generators, stretch};

fn main() {
    let eps = 0.25;
    let mut table = Table::new(
        "T3: (1+eps, beta)-APSP (Thm 5/32), eps = 0.25, r = 2",
        &[
            "graph",
            "n",
            "add err vs (1+eps)d",
            "beta bound",
            "max ratio",
            "mean ratio",
            "rounds",
            "ok",
        ],
    );
    for n in [256usize, 512, 1024] {
        let mut r = rng(11 + n as u64);
        let side = (n as f64).sqrt().round() as usize;
        for (name, g) in [
            ("gnp", generators::connected_gnp(n, 6.0 / n as f64, &mut r)),
            ("grid", generators::grid(side, side)),
            ("cycle", generators::cycle(n)),
        ] {
            let nn = g.n();
            let cfg = AdditiveApspConfig::scaled(nn, eps).expect("valid");
            let mut ledger = RoundLedger::new(nn);
            let out = apsp_additive::run(&g, &cfg, &mut r, &mut ledger);
            let exact = bfs::apsp_exact(&g);
            // Measured additive error over the *user* (1+eps) line — the
            // paper's beta is the worst case for this quantity.
            let report = stretch::evaluate(&exact, out.estimates.as_fn(), eps);
            let formal = stretch::evaluate(
                &exact,
                out.estimates.as_fn(),
                out.multiplicative_bound - 1.0,
            );
            let ok = formal.satisfies(out.multiplicative_bound - 1.0, out.additive_bound);
            table.row(vec![
                name.to_string(),
                nn.to_string(),
                f2(report.max_additive_residual),
                f2(out.additive_bound),
                f3(report.max_multiplicative),
                f3(report.mean_multiplicative),
                ledger.total_rounds().to_string(),
                ok.to_string(),
            ]);
        }
    }
    table.print();
    println!(
        "paper claim: d <= delta <= (1+eps)d + beta with beta = O(log log n / eps)^(log log n);\n\
         measured additive error sits far below the worst-case beta bound."
    );
}
