//! T13 — engine stress: the flat-mailbox message plane vs the pre-refactor
//! allocation-bound engine.
//!
//! Sweeps `n ∈ {128, 256, 512}` × `{allgather, broadcast, bfs}` ×
//! `{serial, threaded, legacy}` and emits one JSON document on stdout for
//! the bench trajectory (a human-readable table goes to stderr). `legacy`
//! is a faithful copy of the engine before the flat-mailbox rewrite — it
//! heap-allocates per-round inboxes and clones broadcast payloads `n − 1`
//! times — kept here as the baseline the speedup is measured against.
//!
//! The run also cross-checks the engines: program outputs and message
//! counts must agree, serial and threaded flat-mailbox runs must be
//! bit-identical, and the legacy engine must report exactly one more round
//! (it counted the final drain step, which the flat-mailbox engine treats
//! as free local computation — see `RunStats::rounds`).
//!
//! Run with: `cargo run --release --bin t13_engine_stress -- [--threads T] [--reps R] [--quick]`

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

use cc_bench::rng;
use cc_clique::programs::{AllGather, Broadcast, DistributedBfs};
use cc_clique::{Engine, EngineConfig, NodeId};
use cc_graphs::{generators, Graph};

/// Words initially held per node in the allgather workload.
const ALLGATHER_WORDS_PER_NODE: usize = 8;

/// The engine exactly as it was before the flat-mailbox rewrite: per-round
/// `vec![Vec::new(); n]` inboxes, a `sent_to` vector per node, and
/// `send_all` cloning its payload (tag + `Vec<u64>`) once per peer — Θ(n²)
/// heap allocations per broadcast round.
mod legacy {
    #[derive(Clone, PartialEq, Eq, Debug)]
    pub struct Msg {
        pub tag: u16,
        pub words: Vec<u64>,
    }

    impl Msg {
        pub fn word(tag: u16, w: u64) -> Self {
            Msg {
                tag,
                words: vec![w],
            }
        }

        pub fn first(&self) -> Option<u64> {
            self.words.first().copied()
        }
    }

    pub struct Ctx<'a> {
        pub me: usize,
        pub n: usize,
        pub inbox: &'a [(usize, Msg)],
        pub outbox: Vec<(usize, Msg)>,
    }

    impl Ctx<'_> {
        pub fn send(&mut self, to: usize, msg: Msg) {
            self.outbox.push((to, msg));
        }

        pub fn send_all(&mut self, msg: Msg) {
            for i in 0..self.n {
                if i != self.me {
                    self.outbox.push((i, msg.clone()));
                }
            }
        }
    }

    pub trait Program {
        fn on_round(&mut self, ctx: &mut Ctx<'_>);
        fn is_done(&self) -> bool;
    }

    pub struct Stats {
        pub rounds: u64,
        pub messages: u64,
        pub max_in_degree: u64,
    }

    pub fn run<P: Program>(nodes: &mut [P], max_words: usize) -> Stats {
        let n = nodes.len();
        let mut inboxes: Vec<Vec<(usize, Msg)>> = vec![Vec::new(); n];
        let mut round = 0u64;
        let mut messages = 0u64;
        let mut max_in_degree = 0u64;
        loop {
            let inflight: usize = inboxes.iter().map(Vec::len).sum();
            if inflight == 0 && nodes.iter().all(|p| p.is_done()) {
                return Stats {
                    rounds: round,
                    messages,
                    max_in_degree,
                };
            }
            round += 1;
            let mut next_inboxes: Vec<Vec<(usize, Msg)>> = vec![Vec::new(); n];
            for (i, node) in nodes.iter_mut().enumerate() {
                let mut ctx = Ctx {
                    me: i,
                    n,
                    inbox: &inboxes[i],
                    outbox: Vec::new(),
                };
                node.on_round(&mut ctx);
                let mut sent_to = vec![false; n];
                for (to, msg) in ctx.outbox {
                    assert!(to != i && to < n, "invalid destination");
                    assert!(!sent_to[to], "duplicate message");
                    assert!(msg.words.len() <= max_words, "bandwidth exceeded");
                    sent_to[to] = true;
                    messages += 1;
                    next_inboxes[to].push((i, msg));
                }
            }
            for inbox in &next_inboxes {
                max_in_degree = max_in_degree.max(inbox.len() as u64);
            }
            inboxes = next_inboxes;
        }
    }

    /// All-gather mirroring `cc_clique::programs::AllGather`.
    pub struct Gather {
        pending: Vec<u64>,
        pub collected: Vec<u64>,
    }

    impl Gather {
        pub fn new(words: Vec<u64>) -> Self {
            Gather {
                collected: words.clone(),
                pending: words,
            }
        }
    }

    impl Program for Gather {
        fn on_round(&mut self, ctx: &mut Ctx<'_>) {
            for (_, msg) in ctx.inbox {
                if msg.tag == 7 {
                    if let Some(w) = msg.first() {
                        self.collected.push(w);
                    }
                }
            }
            if let Some(w) = self.pending.pop() {
                ctx.send_all(Msg::word(7, w));
            }
        }

        fn is_done(&self) -> bool {
            self.pending.is_empty()
        }
    }

    /// Broadcast mirroring `cc_clique::programs::Broadcast`.
    pub struct Bcast {
        me: usize,
        source: usize,
        value: u64,
        pub received: Option<u64>,
        sent: bool,
    }

    impl Bcast {
        pub fn new(me: usize, source: usize, value: u64) -> Self {
            Bcast {
                me,
                source,
                value,
                received: if me == source { Some(value) } else { None },
                sent: false,
            }
        }
    }

    impl Program for Bcast {
        fn on_round(&mut self, ctx: &mut Ctx<'_>) {
            if self.me == self.source && !self.sent {
                ctx.send_all(Msg::word(1, self.value));
                self.sent = true;
            }
            for (_, msg) in ctx.inbox {
                if msg.tag == 1 {
                    self.received = msg.first();
                }
            }
        }

        fn is_done(&self) -> bool {
            self.me != self.source || self.sent
        }
    }

    /// Hop-by-hop BFS mirroring `cc_clique::programs::DistributedBfs`.
    pub struct Bfs {
        me: usize,
        neighbors: Vec<usize>,
        pub dist: Option<u64>,
        announced: bool,
    }

    impl Bfs {
        pub fn new(me: usize, source: usize, neighbors: Vec<usize>) -> Self {
            Bfs {
                me,
                neighbors,
                dist: if me == source { Some(0) } else { None },
                announced: false,
            }
        }
    }

    impl Program for Bfs {
        fn on_round(&mut self, ctx: &mut Ctx<'_>) {
            for (_, msg) in ctx.inbox {
                if msg.tag == 4 {
                    if let Some(d) = msg.first() {
                        let candidate = d + 1;
                        if self.dist.is_none_or(|cur| candidate < cur) {
                            self.dist = Some(candidate);
                            self.announced = false;
                        }
                    }
                }
            }
            if let Some(d) = self.dist {
                if !self.announced {
                    for &nbr in &self.neighbors {
                        if nbr != self.me {
                            ctx.send(nbr, Msg::word(4, d));
                        }
                    }
                    self.announced = true;
                }
            }
        }

        fn is_done(&self) -> bool {
            self.dist.is_none() || self.announced
        }
    }
}

#[derive(Clone, Copy)]
struct Measured {
    rounds: u64,
    messages: u64,
    max_in_degree: u64,
    wall: Duration,
}

fn allgather_words(n: usize) -> Vec<Vec<u64>> {
    (0..n)
        .map(|i| {
            (0..ALLGATHER_WORDS_PER_NODE)
                .map(|j| (i * ALLGATHER_WORDS_PER_NODE + j) as u64)
                .collect()
        })
        .collect()
}

fn bfs_graph(n: usize) -> Graph {
    generators::connected_gnp(n, 8.0 / n as f64, &mut rng(n as u64))
}

/// Runs `make()` → engine → stats, `reps` times, keeping the best wall time.
fn measure_flat<P, F>(reps: usize, config: EngineConfig, make: F) -> (Measured, Vec<P>)
where
    P: cc_clique::NodeProgram,
    F: Fn() -> Vec<P>,
{
    let mut best: Option<Measured> = None;
    let mut last_nodes = None;
    for _ in 0..reps {
        let mut engine = Engine::with_config(make(), config);
        let start = Instant::now();
        let stats = engine.run().expect("program respects the model");
        let wall = start.elapsed();
        let m = Measured {
            rounds: stats.rounds,
            messages: stats.messages,
            max_in_degree: stats.max_in_degree,
            wall,
        };
        if best.is_none_or(|b| wall < b.wall) {
            best = Some(m);
        }
        last_nodes = Some(engine.into_nodes());
    }
    (best.unwrap(), last_nodes.unwrap())
}

fn measure_legacy<P, F>(reps: usize, make: F) -> (Measured, Vec<P>)
where
    P: legacy::Program,
    F: Fn() -> Vec<P>,
{
    let mut best: Option<Measured> = None;
    let mut last_nodes = None;
    for _ in 0..reps {
        let mut nodes = make();
        let start = Instant::now();
        let stats = legacy::run(&mut nodes, 4);
        let wall = start.elapsed();
        let m = Measured {
            rounds: stats.rounds,
            messages: stats.messages,
            max_in_degree: stats.max_in_degree,
            wall,
        };
        if best.is_none_or(|b| wall < b.wall) {
            best = Some(m);
        }
        last_nodes = Some(nodes);
    }
    (best.unwrap(), last_nodes.unwrap())
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

struct Row {
    n: usize,
    program: &'static str,
    mode: String,
    m: Measured,
}

fn main() {
    let mut threads = 4usize;
    let mut reps = 3usize;
    let mut sizes = vec![128usize, 256, 512];
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads N");
            }
            "--reps" => {
                reps = args.next().and_then(|v| v.parse().ok()).expect("--reps N");
            }
            "--quick" => sizes = vec![128, 256],
            other => panic!("unknown argument {other:?}"),
        }
    }

    let serial_cfg = EngineConfig::default();
    let threaded_cfg = EngineConfig::threaded(threads);
    let mut rows: Vec<Row> = Vec::new();
    let mut speedup_512 = None;

    for &n in &sizes {
        // --- allgather ---
        let words = allgather_words(n);
        let make_flat = || -> Vec<AllGather> {
            words
                .iter()
                .enumerate()
                .map(|(i, w)| AllGather::new(NodeId::new(i), w.clone()))
                .collect()
        };
        let make_legacy = || -> Vec<legacy::Gather> {
            words
                .iter()
                .map(|w| legacy::Gather::new(w.clone()))
                .collect()
        };
        let (serial, serial_out) = measure_flat(reps, serial_cfg, make_flat);
        let (threaded, threaded_out) = measure_flat(reps, threaded_cfg, make_flat);
        let (old, old_out) = measure_legacy(reps, make_legacy);
        // Cross-check: identical outputs, identical traffic; the legacy
        // engine counted the final drain step as a round.
        for ((a, b), c) in serial_out.iter().zip(&threaded_out).zip(&old_out) {
            assert_eq!(a.collected(), b.collected(), "serial vs threaded");
            assert_eq!(a.collected(), &c.collected[..], "flat vs legacy");
        }
        assert_eq!(serial.rounds, threaded.rounds);
        assert_eq!(serial.messages, threaded.messages);
        assert_eq!(serial.max_in_degree, threaded.max_in_degree);
        assert_eq!(old.rounds, serial.rounds + 1, "legacy counted the drain");
        assert_eq!(old.messages, serial.messages);
        if n == 512 {
            speedup_512 = Some(old.wall.as_secs_f64() / threaded.wall.as_secs_f64());
        }
        rows.push(Row {
            n,
            program: "allgather",
            mode: "serial".into(),
            m: serial,
        });
        rows.push(Row {
            n,
            program: "allgather",
            mode: format!("threaded({threads})"),
            m: threaded,
        });
        rows.push(Row {
            n,
            program: "allgather",
            mode: "legacy".into(),
            m: old,
        });

        // --- broadcast ---
        let make_flat = || -> Vec<Broadcast> {
            (0..n)
                .map(|i| Broadcast::new(NodeId::new(i), NodeId::new(0), 42))
                .collect()
        };
        let make_legacy =
            || -> Vec<legacy::Bcast> { (0..n).map(|i| legacy::Bcast::new(i, 0, 42)).collect() };
        let (serial, serial_out) = measure_flat(reps, serial_cfg, make_flat);
        let (threaded, _) = measure_flat(reps, threaded_cfg, make_flat);
        let (old, old_out) = measure_legacy(reps, make_legacy);
        for (a, c) in serial_out.iter().zip(&old_out) {
            assert_eq!(a.received(), c.received);
        }
        assert_eq!(serial.rounds, threaded.rounds);
        assert_eq!(old.rounds, serial.rounds + 1, "legacy counted the drain");
        rows.push(Row {
            n,
            program: "broadcast",
            mode: "serial".into(),
            m: serial,
        });
        rows.push(Row {
            n,
            program: "broadcast",
            mode: format!("threaded({threads})"),
            m: threaded,
        });
        rows.push(Row {
            n,
            program: "broadcast",
            mode: "legacy".into(),
            m: old,
        });

        // --- bfs ---
        let g = bfs_graph(n);
        let make_flat = || -> Vec<DistributedBfs> {
            (0..n)
                .map(|v| {
                    DistributedBfs::new(
                        NodeId::new(v),
                        NodeId::new(0),
                        g.neighbors(v)
                            .iter()
                            .map(|&u| NodeId::new(u as usize))
                            .collect(),
                        None,
                    )
                })
                .collect()
        };
        let make_legacy = || -> Vec<legacy::Bfs> {
            (0..n)
                .map(|v| {
                    legacy::Bfs::new(v, 0, g.neighbors(v).iter().map(|&u| u as usize).collect())
                })
                .collect()
        };
        let (serial, serial_out) = measure_flat(reps, serial_cfg, make_flat);
        let (threaded, threaded_out) = measure_flat(reps, threaded_cfg, make_flat);
        let (old, old_out) = measure_legacy(reps, make_legacy);
        for ((a, b), c) in serial_out.iter().zip(&threaded_out).zip(&old_out) {
            assert_eq!(a.distance(), b.distance(), "serial vs threaded");
            assert_eq!(a.distance(), c.dist, "flat vs legacy");
        }
        assert_eq!(serial.rounds, threaded.rounds);
        assert_eq!(old.rounds, serial.rounds + 1, "legacy counted the drain");
        rows.push(Row {
            n,
            program: "bfs",
            mode: "serial".into(),
            m: serial,
        });
        rows.push(Row {
            n,
            program: "bfs",
            mode: format!("threaded({threads})"),
            m: threaded,
        });
        rows.push(Row {
            n,
            program: "bfs",
            mode: "legacy".into(),
            m: old,
        });
    }

    // Human-readable table on stderr; JSON trajectory document on stdout.
    eprintln!(
        "{:>4}  {:>10}  {:>12}  {:>7}  {:>9}  {:>6}  {:>10}",
        "n", "program", "mode", "rounds", "messages", "maxin", "wall_ms"
    );
    for r in &rows {
        eprintln!(
            "{:>4}  {:>10}  {:>12}  {:>7}  {:>9}  {:>6}  {:>10.3}",
            r.n,
            r.program,
            r.mode,
            r.m.rounds,
            r.m.messages,
            r.m.max_in_degree,
            ms(r.m.wall)
        );
    }
    if let Some(s) = speedup_512 {
        eprintln!("allgather n=512: threaded flat mailbox is {s:.1}x the legacy engine");
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"t13_engine_stress\",\n");
    json.push_str(&format!("  \"threads\": {threads},\n  \"reps\": {reps},\n"));
    if let Some(s) = speedup_512 {
        json.push_str(&format!(
            "  \"speedup_allgather_n512_threaded_vs_legacy\": {s:.3},\n"
        ));
    }
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"n\": {}, \"program\": \"{}\", \"mode\": \"{}\", \"rounds\": {}, \"messages\": {}, \"max_in_degree\": {}, \"wall_ms\": {:.4}}}{}\n",
            r.n,
            r.program,
            r.mode,
            r.m.rounds,
            r.m.messages,
            r.m.max_in_degree,
            ms(r.m.wall),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}");
    println!("{json}");
}
