//! A1 (ablation) — why the paper invented *soft* hitting sets: building the
//! deterministic emulator's level hierarchy with plain (Lemma 9) hitting
//! sets instead of soft (Lemma 43) ones inflates the level sets — and hence
//! the emulator — by the very `log n` factor the paper set out to avoid
//! (§5, "the standard hitting set based arguments lead to a logarithmic
//! overhead in the size of the emulator").

#![forbid(unsafe_code)]

use cc_bench::{f3, Table};
use cc_clique::RoundLedger;
use cc_emulator::clique::CliqueEmulatorConfig;
use cc_emulator::deterministic::{build_with_selector, LevelSelector};
use cc_emulator::EmulatorParams;
use cc_graphs::generators;

fn main() {
    let mut table = Table::new(
        "A1: deterministic emulator, soft vs plain hitting level selection",
        &[
            "graph",
            "n",
            "|S1| soft",
            "|S1| plain",
            "edges soft",
            "edges plain",
            "plain/soft",
            "both within stretch",
        ],
    );
    for n in [240usize, 504, 1008] {
        // Dense local neighborhoods are required for the hierarchy to
        // engage: the level-selection instance only contains vertices whose
        // radius-δ₀ ball holds ≥ Δ = 3/p₁ ≈ 3·n^{1/4} members of S'ᵢ.
        let clique_size = 24;
        let mut r = cc_bench::rng(n as u64);
        for (name, g) in [
            (
                "caveman-24",
                generators::caveman(n / clique_size, clique_size),
            ),
            (
                "gnp-dense",
                generators::connected_gnp(n, 24.0 / n as f64, &mut r),
            ),
        ] {
            let params = EmulatorParams::new(g.n(), 0.25, 2).expect("valid");
            let cfg = CliqueEmulatorConfig::scaled(params.clone());
            let mult = params.clique_multiplicative_bound(cfg.eps_prime);
            let add = params.clique_additive_bound(cfg.eps_prime);

            let mut l1 = RoundLedger::new(g.n());
            let soft = build_with_selector(&g, &cfg, LevelSelector::SoftHitting, &mut l1);
            let mut l2 = RoundLedger::new(g.n());
            let plain = build_with_selector(&g, &cfg, LevelSelector::PlainHitting, &mut l2);

            let ok = soft
                .verify_with_bounds(&g, mult, add, params.size_bound())
                .within_bounds
                && plain
                    .verify_with_bounds(&g, mult, add, params.size_bound())
                    .within_bounds;
            table.row(vec![
                name.to_string(),
                g.n().to_string(),
                soft.level_set(1).len().to_string(),
                plain.level_set(1).len().to_string(),
                soft.m().to_string(),
                plain.m().to_string(),
                f3(plain.m() as f64 / soft.m().max(1) as f64),
                ok.to_string(),
            ]);
        }
    }
    table.print();
    println!(
        "paper claim: plain hitting sets inflate the *hierarchy* |S'_i| by an\n\
         O(log n) factor (visible in the |S1| columns), which compounds per\n\
         level for larger r; the soft relaxation keeps |S'_i| at the sampled\n\
         rate, paying instead a bounded un-hit edge mass (Definition 42(ii),\n\
         visible as extra low-level edges at this scale). Both satisfy the\n\
         stretch and size bounds."
    );
}
