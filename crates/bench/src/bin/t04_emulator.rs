//! T4 — the emulator theorems (Thm 24 / 29 / 31): size `O(r·n^{1+1/2^r})`,
//! stretch `(1+ε, β)`, rounds `O(log²β/ε)`.

#![forbid(unsafe_code)]

use cc_bench::{f2, f3, rng, Table};
use cc_clique::RoundLedger;
use cc_emulator::clique::CliqueEmulatorConfig;
use cc_emulator::{ideal, whp, EmulatorParams};
use cc_graphs::generators;

fn main() {
    let eps = 0.25;
    let mut table = Table::new(
        "T4: emulator size / stretch / rounds (Thm 24, 29, 31)",
        &[
            "graph",
            "n",
            "r",
            "edges",
            "size/bound",
            "max add err",
            "beta bound",
            "max ratio",
            "rounds",
            "ok",
        ],
    );
    for n in [256usize, 512, 1024] {
        let mut r = rng(7 + n as u64);
        let side = (n as f64).sqrt().round() as usize;
        for (name, g) in [
            ("gnp", generators::connected_gnp(n, 6.0 / n as f64, &mut r)),
            ("grid", generators::grid(side, side)),
            ("caveman", generators::caveman(n / 8, 8)),
        ] {
            let params = EmulatorParams::new(g.n(), eps, 2).expect("valid");
            let cfg = CliqueEmulatorConfig::scaled(params.clone());
            let mut ledger = RoundLedger::new(g.n());
            let (emu, _) = whp::build(&g, &cfg, &mut r, &mut ledger);
            let report = emu.verify_with_bounds(
                &g,
                params.clique_multiplicative_bound(cfg.eps_prime),
                params.clique_additive_bound(cfg.eps_prime),
                params.size_bound(),
            );
            table.row(vec![
                name.to_string(),
                g.n().to_string(),
                params.r().to_string(),
                report.edges.to_string(),
                f3(report.size_ratio()),
                f2(report.max_additive_error),
                f2(report.additive_bound),
                f3(report.max_ratio),
                ledger.total_rounds().to_string(),
                report.within_bounds.to_string(),
            ]);
        }
    }
    table.print();

    // Ideal construction: expected-size across seeds (Thm 24 is an
    // expectation bound).
    let g = generators::caveman(64, 8);
    let params = EmulatorParams::new(g.n(), eps, 2).expect("valid");
    let runs = 8;
    let total: usize = (0..runs)
        .map(|s| ideal::build(&g, &params, &mut rng(s)).m())
        .sum();
    println!(
        "ideal construction, caveman n=512: mean edges over {runs} seeds = {:.0} (bound r*n^(1+1/2^r) = {:.0})",
        total as f64 / runs as f64,
        params.size_bound()
    );
    println!("paper claim: edges = O(r n^{{1+1/2^r}}), stretch (1+eps, beta), rounds O(log^2 beta / eps).");
}
