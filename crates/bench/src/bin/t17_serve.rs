//! T17 — the serving daemon end to end: mixed dist/path traffic over
//! loopback TCP from a memory-mapped v2 snapshot.
//!
//! The pipeline under test is the full deployment path: a `record_paths`
//! session solves near-additive APSP on a grid, freezes a `PathOracle`,
//! saves it as **snapshot format v2**, and the server re-opens that file
//! `mmap`'d — on little-endian hosts the distance entries, guarantee tags,
//! and route arenas are served in place, zero-copy (asserted). Then:
//!
//! 1. **Sustained load** — `C` concurrent clients send mixed traffic
//!    (batched dist and path requests) over loopback. Every response is
//!    compared against a serial in-process replay on the *pre-snapshot*
//!    oracle, so any divergence anywhere in the snapshot → mmap → scheduler
//!    → wire chain fails the run. Reports sustained qps (queries and
//!    requests per second) and client-observed p50/p95/p99 latency.
//! 2. **Oversubscription** — a second server with a deliberately tiny
//!    admission queue and one worker takes `2C` flooding clients; the
//!    bench asserts the overload is answered with explicit `Overloaded`
//!    responses (never silent drops: every request gets exactly one
//!    answer) while admitted work still serves bit-identically.
//!
//! One JSON document on stdout; human-readable notes on stderr.
//!
//! Run with: `cargo run --release --bin t17_serve -- [--threads T] [--clients C] [--requests R] [--quick] [--metrics-out FILE]`

#![forbid(unsafe_code)]

use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

use cc_core::{Execution, PathOracle, SolverBuilder};
use cc_graphs::generators;
use cc_obs::{parse_exposition, HistSummary};
use cc_serve::protocol::{read_frame, write_frame, Op, Payload, Request, Response, Status};
use cc_serve::{server, snapshot, Client, ServerConfig};

/// Deterministic query-pair stream (splitmix-style, no RNG dependency).
fn pairs_for(seed: u64, n: usize, count: usize) -> Vec<(u32, u32)> {
    let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    (0..count)
        .map(|_| {
            let r = next();
            ((r % n as u64) as u32, ((r >> 32) % n as u64) as u32)
        })
        .collect()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One client's sustained-phase work: alternating dist/path batches, each
/// response verified against the in-process reference oracle.
#[allow(clippy::type_complexity)]
fn client_run(
    addr: std::net::SocketAddr,
    reference: &PathOracle,
    id: u64,
    n: usize,
    requests: usize,
    dist_batch: usize,
    path_batch: usize,
) -> (Vec<f64>, Vec<f64>, usize) {
    let mut client = Client::connect(addr).expect("connect");
    let mut dist_lat = Vec::with_capacity(requests / 2 + 1);
    let mut path_lat = Vec::with_capacity(requests / 2 + 1);
    let mut queries = 0usize;
    for round in 0..requests {
        if round % 2 == 0 {
            let pairs = pairs_for(id * 10_000 + round as u64, n, dist_batch);
            let start = Instant::now();
            let got = client
                .dist_batch(&pairs, 0)
                .expect("transport")
                .expect("no shedding in the sustained phase");
            dist_lat.push(start.elapsed().as_secs_f64() * 1e6);
            queries += pairs.len();
            let upairs: Vec<(usize, usize)> = pairs
                .iter()
                .map(|&(u, v)| (u as usize, v as usize))
                .collect();
            assert_eq!(
                got,
                reference.dist_oracle().dist_batch(&upairs),
                "served dists diverged from the serial replay"
            );
        } else {
            let pairs = pairs_for(id * 10_000 + round as u64, n, path_batch);
            let start = Instant::now();
            let got = client
                .path_batch(&pairs, 0)
                .expect("transport")
                .expect("no shedding in the sustained phase");
            path_lat.push(start.elapsed().as_secs_f64() * 1e6);
            queries += pairs.len();
            let upairs: Vec<(usize, usize)> = pairs
                .iter()
                .map(|&(u, v)| (u as usize, v as usize))
                .collect();
            let want = reference.path_batch(&upairs);
            for (g, w) in got.iter().zip(want.iter()) {
                match (g, w) {
                    (None, None) => {}
                    (Some((weight, guar, edges)), Some(route)) => {
                        assert_eq!(*weight, route.weight, "served route weight diverged");
                        assert_eq!(*guar, route.guarantee, "served guarantee diverged");
                        assert_eq!(*edges, route.edges, "served route edges diverged");
                    }
                    _ => panic!("served route presence diverged"),
                }
            }
        }
    }
    (dist_lat, path_lat, queries)
}

/// Renders a histogram summary as an all-integer JSON object (quantiles are
/// exact power-of-two bucket uppers, capped at the observed max).
fn hist_json(h: &HistSummary) -> String {
    format!(
        "{{\"count\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}",
        h.count, h.p50, h.p90, h.p99, h.max
    )
}

fn main() {
    let mut server_threads = 4usize;
    let mut clients = 0usize; // 0 = derive from server_threads
    let mut requests = 0usize; // 0 = derive from --quick
    let mut quick = false;
    let mut metrics_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--metrics-out" => {
                metrics_out = Some(args.next().expect("--metrics-out FILE"));
            }
            "--threads" => {
                server_threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads N");
            }
            "--clients" => {
                clients = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--clients N");
            }
            "--requests" => {
                requests = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--requests N");
            }
            "--quick" => quick = true,
            other => panic!("unknown argument {other:?}"),
        }
    }
    assert!(server_threads >= 1, "--threads must be at least 1");
    if clients == 0 {
        clients = (server_threads * 2).max(4);
    }
    if requests == 0 {
        requests = if quick { 120 } else { 400 };
    }
    let side = if quick { 16 } else { 32 };
    let (dist_batch, path_batch) = (64usize, 16usize);

    // ── Freeze a route oracle from a real session. ────────────────────────
    let g = generators::grid(side, side);
    let n = g.n();
    let start = Instant::now();
    let mut solver = SolverBuilder::new(g)
        .eps(0.5)
        .execution(Execution::Seeded(17))
        .threads(server_threads)
        .record_paths(true)
        .build()
        .expect("valid configuration");
    solver.apsp_near_additive().expect("additive apsp");
    let reference = Arc::new(solver.freeze_with_paths().expect("paths recorded"));
    let solve_secs = start.elapsed().as_secs_f64();

    // ── Snapshot v2 on disk, reopened through the serving path. ───────────
    let snap_path = std::env::temp_dir().join(format!("t17_oracle_{}.ccro", std::process::id()));
    reference
        .save_v2_to_path(&snap_path)
        .expect("write snapshot");
    let snap_bytes = std::fs::metadata(&snap_path).expect("stat snapshot").len();
    let opened = snapshot::open(&snap_path).expect("open snapshot");
    assert_eq!(opened.version, 2, "the server must see a v2 snapshot");
    let mapped = opened.mapped;
    let zero_copy = opened
        .oracles
        .paths()
        .expect("CCRO carries routes")
        .dist_oracle()
        .storage()
        .is_shared();
    if cfg!(target_endian = "little") && mapped {
        assert!(
            zero_copy,
            "v2 snapshot must serve its hot tables zero-copy on LE hosts"
        );
    }
    // The snapshot itself must answer identically to the in-process oracle.
    assert_eq!(
        **opened.oracles.paths().expect("routes"),
        *reference,
        "snapshot load diverged from the frozen oracle"
    );

    // ── Phase 1: sustained mixed load. ────────────────────────────────────
    let handle = server::serve(
        opened.oracles,
        "127.0.0.1:0",
        ServerConfig {
            threads: server_threads,
            queue_capacity: 4096,
            batch_max: 64,
            default_deadline_ms: 0,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = handle.addr();

    let wall_start = Instant::now();
    let outcomes: Vec<(Vec<f64>, Vec<f64>, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let reference = Arc::clone(&reference);
                scope.spawn(move || {
                    client_run(
                        addr,
                        &reference,
                        c as u64 + 1,
                        n,
                        requests,
                        dist_batch,
                        path_batch,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let wall = wall_start.elapsed().as_secs_f64();
    let stats = handle.stats();
    assert_eq!(stats.shed, 0, "sustained phase must not shed");
    assert_eq!(stats.malformed, 0);

    // Drain the daemon's own request-lifecycle accounting over the wire
    // (`Op::Metrics`): integer text exposition, histogram quantiles as
    // exact bucket ranks — no floats anywhere in this path.
    let metrics_text = Client::connect(addr)
        .expect("metrics connect")
        .metrics()
        .expect("metrics op");
    let samples = parse_exposition(&metrics_text);
    let queue_wait =
        cc_obs::text::histogram_summary(&samples, "ccd_queue_wait_ns").expect("histogram exposed");
    let oracle_batch = cc_obs::text::histogram_summary(&samples, "ccd_oracle_batch_ns")
        .expect("histogram exposed");
    let outbox_write = cc_obs::text::histogram_summary(&samples, "ccd_outbox_write_ns")
        .expect("histogram exposed");
    assert!(
        queue_wait.count > 0 && oracle_batch.count > 0,
        "the sustained phase must populate the lifecycle histograms"
    );
    assert_eq!(
        samples.get("ccd_served_total").copied(),
        Some(stats.served),
        "metrics and Op::Stats disagree on served count"
    );
    if let Some(path) = &metrics_out {
        std::fs::write(path, &metrics_text).expect("write --metrics-out");
        eprintln!("metrics dump: {path}");
    }
    handle.shutdown();

    let mut dist_lat: Vec<f64> = Vec::new();
    let mut path_lat: Vec<f64> = Vec::new();
    let mut total_queries = 0usize;
    for (d, p, q) in outcomes {
        dist_lat.extend(d);
        path_lat.extend(p);
        total_queries += q;
    }
    dist_lat.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    path_lat.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let total_requests = clients * requests;
    let rps = total_requests as f64 / wall;
    let qps = total_queries as f64 / wall;

    // ── Phase 2: 2× oversubscription must shed explicitly. ───────────────
    let opened2 = snapshot::open(&snap_path).expect("reopen snapshot");
    let handle2 = server::serve(
        opened2.oracles,
        "127.0.0.1:0",
        ServerConfig {
            threads: 1,
            queue_capacity: 4,
            batch_max: 1,
            default_deadline_ms: 0,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr2 = handle2.addr();
    let flood_clients = clients * 2;
    let flood_requests = if quick { 24 } else { 48 };
    let heavy = pairs_for(99, n, 300);
    let heavy_upairs: Vec<(usize, usize)> = heavy
        .iter()
        .map(|&(u, v)| (u as usize, v as usize))
        .collect();
    let want_heavy = reference.path_batch(&heavy_upairs);

    let flood_counts: Vec<(usize, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..flood_clients)
            .map(|_| {
                let heavy = heavy.clone();
                let want_heavy = &want_heavy;
                scope.spawn(move || {
                    let stream = TcpStream::connect(addr2).expect("connect");
                    stream.set_nodelay(true).expect("nodelay");
                    for i in 0..flood_requests {
                        let req = Request {
                            req_id: i as u64,
                            op: Op::Path,
                            deadline_ms: 0,
                            pairs: heavy.clone(),
                        };
                        write_frame(&mut &stream, &req.encode()).expect("write");
                    }
                    let (mut ok, mut shed) = (0usize, 0usize);
                    for _ in 0..flood_requests {
                        let body = read_frame(&mut &stream)
                            .expect("read")
                            .expect("every request gets exactly one answer");
                        let resp = Response::decode(&body).expect("decodable response");
                        match resp.status {
                            Status::Ok => {
                                ok += 1;
                                let Payload::Paths(items) = resp.payload else {
                                    panic!("wrong payload kind");
                                };
                                for (g, w) in items.iter().zip(want_heavy.iter()) {
                                    assert_eq!(g.is_some(), w.is_some());
                                    if let (Some((weight, _, edges)), Some(route)) = (g, w) {
                                        assert_eq!(*weight, route.weight);
                                        assert_eq!(*edges, route.edges);
                                    }
                                }
                            }
                            Status::Overloaded => shed += 1,
                            other => panic!("unexpected status under overload: {other:?}"),
                        }
                    }
                    (ok, shed)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("flood client"))
            .collect()
    });
    let flood_ok: usize = flood_counts.iter().map(|&(ok, _)| ok).sum();
    let flood_shed: usize = flood_counts.iter().map(|&(_, s)| s).sum();
    assert_eq!(flood_ok + flood_shed, flood_clients * flood_requests);
    assert!(
        flood_shed > 0,
        "2x oversubscription against a 4-deep queue must shed"
    );
    assert!(flood_ok > 0, "admitted work must still be served");
    let stats2 = handle2.stats();
    assert_eq!(stats2.shed, flood_shed as u64);
    handle2.shutdown();
    std::fs::remove_file(&snap_path).ok();

    // ── Report. ───────────────────────────────────────────────────────────
    eprintln!(
        "t17: n={n} solve={solve_secs:.2}s snapshot={snap_bytes}B mapped={mapped} zero_copy={zero_copy}"
    );
    eprintln!(
        "sustained: {clients} clients x {requests} requests in {wall:.2}s -> {rps:.0} req/s, {qps:.0} queries/s"
    );
    eprintln!(
        "dist latency us: p50={:.0} p95={:.0} p99={:.0}",
        percentile(&dist_lat, 0.50),
        percentile(&dist_lat, 0.95),
        percentile(&dist_lat, 0.99)
    );
    eprintln!(
        "path latency us: p50={:.0} p95={:.0} p99={:.0}",
        percentile(&path_lat, 0.50),
        percentile(&path_lat, 0.95),
        percentile(&path_lat, 0.99)
    );
    eprintln!(
        "overload: {flood_clients} clients flooding -> ok={flood_ok} shed={flood_shed} (explicit Overloaded)"
    );

    let available_cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"t17_serve\",\n");
    json.push_str(&format!("  \"n\": {n},\n"));
    json.push_str(&format!("  \"available_cores\": {available_cores},\n"));
    json.push_str(&format!("  \"server_threads\": {server_threads},\n"));
    json.push_str(&format!("  \"clients\": {clients},\n"));
    json.push_str(&format!("  \"requests_per_client\": {requests},\n"));
    json.push_str(&format!("  \"dist_batch\": {dist_batch},\n"));
    json.push_str(&format!("  \"path_batch\": {path_batch},\n"));
    json.push_str(&format!("  \"snapshot_bytes\": {snap_bytes},\n"));
    json.push_str(&format!("  \"snapshot_mapped\": {mapped},\n"));
    json.push_str(&format!("  \"zero_copy_storage\": {zero_copy},\n"));
    json.push_str(&format!("  \"solve_secs\": {solve_secs:.3},\n"));
    json.push_str(&format!("  \"wall_secs\": {wall:.3},\n"));
    json.push_str(&format!("  \"requests_per_sec\": {rps:.0},\n"));
    json.push_str(&format!("  \"queries_per_sec\": {qps:.0},\n"));
    json.push_str(&format!(
        "  \"dist_latency_us\": {{\"p50\": {:.1}, \"p95\": {:.1}, \"p99\": {:.1}}},\n",
        percentile(&dist_lat, 0.50),
        percentile(&dist_lat, 0.95),
        percentile(&dist_lat, 0.99)
    ));
    json.push_str(&format!(
        "  \"path_latency_us\": {{\"p50\": {:.1}, \"p95\": {:.1}, \"p99\": {:.1}}},\n",
        percentile(&path_lat, 0.50),
        percentile(&path_lat, 0.95),
        percentile(&path_lat, 0.99)
    ));
    json.push_str(&format!(
        "  \"queue_wait_ns\": {},\n",
        hist_json(&queue_wait)
    ));
    json.push_str(&format!(
        "  \"oracle_batch_ns\": {},\n",
        hist_json(&oracle_batch)
    ));
    json.push_str(&format!(
        "  \"outbox_write_ns\": {},\n",
        hist_json(&outbox_write)
    ));
    json.push_str(&format!(
        "  \"served_ok\": {},\n",
        stats.served + stats2.served
    ));
    json.push_str(&format!(
        "  \"overload\": {{\"clients\": {flood_clients}, \"requests\": {}, \"ok\": {flood_ok}, \"shed\": {flood_shed}}},\n",
        flood_clients * flood_requests
    ));
    json.push_str("  \"bit_identical\": true\n");
    json.push('}');
    println!("{json}");
}
