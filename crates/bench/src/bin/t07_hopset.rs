//! T7 — Thm 12: bounded (β, ε, t)-hopsets — `O(n^{3/2} log n)` edges,
//! `β = O(log t/ε)`, `O(log²t/ε)` rounds, verified stretch ≤ 1+ε.

#![forbid(unsafe_code)]

use cc_bench::{f3, rng, Table};
use cc_clique::RoundLedger;
use cc_graphs::generators;
use cc_toolkit::hopset::{self, HopsetParams};

fn main() {
    let n = 512;
    let eps = 0.5;
    let mut table = Table::new(
        "T7: bounded hopsets (Thm 12), cycle n=512, eps = 0.5",
        &[
            "t",
            "profile",
            "edges",
            "edge bound",
            "beta",
            "worst ratio",
            "guar",
            "rounds",
        ],
    );
    let g = generators::cycle(n);
    let bound = (4.0 * (n as f64).powf(1.5) * (n as f64).ln()) as u64;
    for t in [8u32, 32, 128] {
        for (profile, params) in [
            ("paper", HopsetParams::paper(n, t, eps)),
            ("scaled", HopsetParams::scaled(n, t, eps)),
        ] {
            let mut r = rng(t as u64);
            let mut ledger = RoundLedger::new(n);
            let hs = hopset::build_randomized(&g, params, &mut r, &mut ledger);
            let samples: Vec<usize> = (0..n).step_by(23).collect();
            let worst = hs.verify_from(&g, &samples);
            table.row(vec![
                t.to_string(),
                profile.to_string(),
                hs.edges.m().to_string(),
                bound.to_string(),
                hs.beta.to_string(),
                f3(worst),
                f3(1.0 + eps),
                ledger.total_rounds().to_string(),
            ]);
        }
    }
    table.print();
    println!(
        "paper claim: beta-hop distances in G ∪ H (1+eps)-approximate all\n\
         pairs within t; rounds grow as log^2 t; size stays under\n\
         O(n^(3/2) log n). The scaled profile shows the same shape at a\n\
         quarter of the hop budget."
    );
}
