//! F1 — the headline comparison (§1 of the paper): simulated round counts
//! of (2+ε)-APSP-class algorithms as `n` grows.
//!
//! Series: Dory–Parter (2+ε)-APSP (poly(log log n)); the CHKL19-style
//! poly-log pipeline (same tool-kit, no distance sensitivity); the algebraic
//! exact baseline (`n^{1/3} log n`); Baswana–Sen spanner collection (log-
//! stretch); and the trivial full gather (`m/n`).
//!
//! Every contender runs through the shared [`Algorithm`] interface — one
//! loop, no per-algorithm wiring.
//!
//! Expected shape: the distance-sensitive pipeline's rounds barely move with
//! `n` while the poly-log pipeline grows with `log²n` and the algebraic one
//! polynomially. (At these `n` the trivial gather is cheapest on sparse
//! inputs — the asymptotic ordering is the object of the experiment, not
//! small-`n` constants.)

#![forbid(unsafe_code)]

use cc_bench::{f2, rng, Table};
use cc_clique::RoundLedger;
use cc_core::algorithm::TwoPlusEpsApsp;
use cc_core::{Algorithm, Execution};
use cc_graphs::generators;

fn main() {
    let eps = 0.5;
    let algorithms: Vec<Box<dyn Algorithm>> = vec![
        Box::new(TwoPlusEpsApsp { eps }),
        Box::new(cc_baselines::PolylogApsp { eps }),
        Box::new(cc_baselines::MatrixSquaring),
        Box::new(cc_baselines::SpannerApsp { k: 2 }),
        Box::new(cc_baselines::FullGather),
    ];
    let mut headers: Vec<String> = vec!["n".into()];
    headers.extend(algorithms.iter().map(|a| a.name()));
    headers.push("log^2 n".into());
    headers.push("(log log n)^2".into());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "F1: rounds vs n for (2+eps)-class APSP (gnp, avg degree 8)",
        &header_refs,
    );
    for n in [256usize, 512, 1024, 2048] {
        let mut r = rng(n as u64);
        let g = generators::connected_gnp(n, 8.0 / n as f64, &mut r);

        let mut row = vec![n.to_string()];
        for alg in &algorithms {
            let mut ledger = RoundLedger::new(n);
            alg.run(&g, Execution::Seeded(n as u64), &mut ledger)
                .expect("algorithm run");
            row.push(ledger.total_rounds().to_string());
        }
        row.push(f2((n as f64).log2().powi(2)));
        row.push(f2((n as f64).log2().log2().powi(2)));
        table.row(row);
    }
    table.print();
    println!(
        "paper claim: DP20 rounds ~ poly(log log n) — near-flat in n; the\n\
         CHKL19-style pipeline grows with log^2 n and the algebraic baseline\n\
         polynomially. Compare growth *ratios* down each column."
    );
}
