//! F1 — the headline comparison (§1 of the paper): simulated round counts
//! of (2+ε)-APSP-class algorithms as `n` grows.
//!
//! Series: Dory–Parter (2+ε)-APSP (poly(log log n)); the CHKL19-style
//! poly-log pipeline (same tool-kit, no distance sensitivity); the algebraic
//! exact baseline (`n^{1/3} log n`); Baswana–Sen spanner collection (log-
//! stretch); and the trivial full gather (`m/n`).
//!
//! Expected shape: the distance-sensitive pipeline's rounds barely move with
//! `n` while the poly-log pipeline grows with `log²n` and the algebraic one
//! polynomially. (At these `n` the trivial gather is cheapest on sparse
//! inputs — the asymptotic ordering is the object of the experiment, not
//! small-`n` constants.)

use cc_bench::{f2, rng, Table};
use cc_clique::RoundLedger;
use cc_core::apsp2::{self, Apsp2Config};
use cc_graphs::generators;

fn main() {
    let eps = 0.5;
    let mut table = Table::new(
        "F1: rounds vs n for (2+eps)-class APSP (gnp, avg degree 8)",
        &[
            "n",
            "DP20 (2+eps)",
            "CHKL19-style",
            "algebraic exact",
            "spanner k=2",
            "full gather",
            "log^2 n",
            "(log log n)^2",
        ],
    );
    for n in [256usize, 512, 1024, 2048] {
        let mut r = rng(n as u64);
        let g = generators::connected_gnp(n, 8.0 / n as f64, &mut r);

        let mut dp = RoundLedger::new(n);
        let cfg = Apsp2Config::scaled(n, eps).expect("valid config");
        let _ = apsp2::run(&g, &cfg, &mut r, &mut dp);

        let mut chkl = RoundLedger::new(n);
        let _ = cc_baselines::polylog::apsp(&g, eps, &mut r, &mut chkl);

        let algebraic = cc_baselines::matrix_squaring::rounds(n);

        let mut sp = RoundLedger::new(n);
        let _ = cc_baselines::spanner::apsp(&g, 2, &mut r, &mut sp);

        let gather = cc_baselines::full_gather::rounds(g.m(), n);

        let log2n = (n as f64).log2().powi(2);
        let loglog2 = (n as f64).log2().log2().powi(2);
        table.row(vec![
            n.to_string(),
            dp.total_rounds().to_string(),
            chkl.total_rounds().to_string(),
            algebraic.to_string(),
            sp.total_rounds().to_string(),
            gather.to_string(),
            f2(log2n),
            f2(loglog2),
        ]);
    }
    table.print();
    println!(
        "paper claim: DP20 rounds ~ poly(log log n) — near-flat in n; the\n\
         CHKL19-style pipeline grows with log^2 n and the algebraic baseline\n\
         polynomially. Compare growth *ratios* down each column."
    );
}
