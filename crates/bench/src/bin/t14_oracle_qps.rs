//! T14 — frozen-oracle query throughput: threads × storage layout × batch
//! size over one `Arc<DistOracle>`.
//!
//! Freezes exact APSP distances of a 32×32 grid (`n = 1024`) into all three
//! storage layouts (full square, symmetric-packed triangle, and a row-sparse
//! `√n`-source MSSP shape), then hammers each oracle with pre-generated
//! point/batch queries from 1–8 threads sharing the oracle behind an `Arc`.
//! Emits one JSON document on stdout (human-readable table on stderr) with:
//!
//! * queries/second per `(layout, threads, batch)` cell,
//! * payload bytes per layout (the symmetric-packed / full ratio is the
//!   memory claim: ~50% at `n = 1024`),
//! * the 8-thread/1-thread speedup for batched queries per layout
//!   (**hardware-dependent**: the oracle is lock-free, so on a machine with
//!   `≥ 8` cores this approaches the core count; on a single-core container
//!   it stays near 1),
//! * a snapshot round-trip check: every layout is saved, re-loaded, and
//!   must compare bit-identical (including a byte-identical re-save).
//!
//! Per-thread answer checksums are compared against a serial replay of the
//! same query stream, so any cross-thread divergence fails the run.
//!
//! Run with: `cargo run --release --bin t14_oracle_qps -- [--threads T] [--queries Q] [--quick]`

#![forbid(unsafe_code)]

use std::sync::Arc;
use std::time::Instant;

use cc_bench::rng;
use cc_core::{DistOracle, DistanceMatrix, Guarantee};
use cc_graphs::{bfs, generators, DistStorage, StorageKind};
use rand::Rng;

/// Grid side: `n = SIDE²` vertices.
const SIDE: usize = 32;

/// Row-sparse source count (`√n`).
const N_SOURCES: usize = 32;

struct Workload {
    label: &'static str,
    oracle: Arc<DistOracle>,
    pairs: Vec<(usize, usize)>,
}

/// Folds one answer stream into a checksum (order-independent sum, so the
/// thread partition does not affect it, plus a presence count).
#[inline]
fn fold(acc: (u64, u64), answer: Option<cc_core::PointEstimate>) -> (u64, u64) {
    match answer {
        Some(est) => (acc.0 + est.dist as u64, acc.1 + 1),
        None => acc,
    }
}

/// Runs `pairs` through `oracle` in `batch`-sized `dist_batch` calls on
/// `threads` worker threads (contiguous partition). Returns (wall seconds,
/// checksum).
fn run_threads(
    oracle: &Arc<DistOracle>,
    pairs: &[(usize, usize)],
    threads: usize,
    batch: usize,
) -> (f64, (u64, u64)) {
    let chunk = pairs.len().div_ceil(threads);
    let start = Instant::now();
    let partials: Vec<(u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = pairs
            .chunks(chunk)
            .map(|part| {
                let oracle = Arc::clone(oracle);
                scope.spawn(move || {
                    let mut acc = (0u64, 0u64);
                    for window in part.chunks(batch) {
                        for answer in oracle.dist_batch(window) {
                            acc = fold(acc, answer);
                        }
                    }
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    });
    let wall = start.elapsed().as_secs_f64();
    let checksum = partials
        .into_iter()
        .fold((0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
    (wall, checksum)
}

/// Serial replay with plain `dist` calls — the reference answer stream.
fn serial_replay(oracle: &DistOracle, pairs: &[(usize, usize)]) -> (u64, u64) {
    pairs
        .iter()
        .fold((0, 0), |acc, &(u, v)| fold(acc, oracle.dist(u, v)))
}

fn snapshot_roundtrip(oracle: &DistOracle) -> bool {
    let mut buf = Vec::new();
    oracle.save(&mut buf).expect("save to memory");
    let back = match DistOracle::load(&mut &buf[..]) {
        Ok(o) => o,
        Err(_) => return false,
    };
    let mut again = Vec::new();
    back.save(&mut again).expect("re-save to memory");
    back == *oracle && buf == again
}

struct Row {
    layout: &'static str,
    threads: usize,
    batch: usize,
    queries: usize,
    wall_ms: f64,
    qps: f64,
}

fn main() {
    let mut max_threads = 8usize;
    let mut queries = 2_000_000usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                max_threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads N");
            }
            "--queries" => {
                queries = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--queries N");
            }
            "--quick" => queries = 400_000,
            other => panic!("unknown argument {other:?}"),
        }
    }
    assert!(max_threads >= 1, "--threads must be at least 1");

    // ── Freeze the workloads. ─────────────────────────────────────────────
    let g = generators::grid(SIDE, SIDE);
    let n = g.n();
    let exact = bfs::apsp_exact(&g);
    let mut matrix = DistanceMatrix::new(n);
    matrix.merge_rows(&exact);

    let full = Arc::new(DistOracle::from_matrix(
        &matrix,
        Guarantee::mult2(0.5),
        StorageKind::Full,
    ));
    let sym = Arc::new(DistOracle::from_matrix(
        &matrix,
        Guarantee::mult2(0.5),
        StorageKind::SymmetricPacked,
    ));
    // MSSP shape: √n evenly spread sources, rows of exact distances.
    let sources: Vec<u32> = (0..N_SOURCES).map(|i| (i * n / N_SOURCES) as u32).collect();
    let mut rows = Vec::with_capacity(sources.len() * n);
    for &s in &sources {
        rows.extend_from_slice(&exact[s as usize]);
    }
    let sparse = Arc::new(DistOracle::from_storage(
        DistStorage::row_sparse(n, sources.clone(), rows),
        Guarantee::mssp(0.5),
    ));

    // ── Query streams (generated outside the timed region). ──────────────
    let mut r = rng(14);
    let square_pairs: Vec<(usize, usize)> = (0..queries)
        .map(|_| (r.gen_range(0..n), r.gen_range(0..n)))
        .collect();
    // Row-sparse serving traffic is source-anchored; mix both orientations.
    let sparse_pairs: Vec<(usize, usize)> = (0..queries)
        .map(|_| {
            let s = sources[r.gen_range(0..sources.len())] as usize;
            let v = r.gen_range(0..n);
            if r.gen_range(0..2) == 0 {
                (s, v)
            } else {
                (v, s)
            }
        })
        .collect();

    let workloads = [
        Workload {
            label: "full",
            oracle: Arc::clone(&full),
            pairs: square_pairs.clone(),
        },
        Workload {
            label: "symmetric",
            oracle: Arc::clone(&sym),
            pairs: square_pairs,
        },
        Workload {
            label: "rowsparse",
            oracle: Arc::clone(&sparse),
            pairs: sparse_pairs,
        },
    ];

    // ── Snapshot round-trips. ─────────────────────────────────────────────
    let roundtrip_ok = workloads.iter().all(|w| snapshot_roundtrip(&w.oracle));
    assert!(roundtrip_ok, "snapshot round-trip must be bit-identical");

    // ── Sweep. ────────────────────────────────────────────────────────────
    let mut thread_counts = vec![1usize];
    while let Some(&last) = thread_counts.last() {
        if last * 2 > max_threads {
            break;
        }
        thread_counts.push(last * 2);
    }
    let batches = [1usize, 16, 256];
    let max_batch = *batches.last().expect("non-empty");
    let mut rows: Vec<Row> = Vec::new();
    let mut speedups: Vec<(&'static str, f64)> = Vec::new();

    for w in &workloads {
        let reference = serial_replay(&w.oracle, &w.pairs);
        let mut single_qps_batched = None;
        let mut max_qps_batched = None;
        for &threads in &thread_counts {
            for &batch in &batches {
                let (wall, checksum) = run_threads(&w.oracle, &w.pairs, threads, batch);
                assert_eq!(
                    checksum, reference,
                    "{}: threads={threads} batch={batch} diverged from serial replay",
                    w.label
                );
                let qps = w.pairs.len() as f64 / wall;
                if batch == max_batch {
                    if threads == 1 {
                        single_qps_batched = Some(qps);
                    }
                    if threads == *thread_counts.last().expect("non-empty") {
                        max_qps_batched = Some(qps);
                    }
                }
                rows.push(Row {
                    layout: w.label,
                    threads,
                    batch,
                    queries: w.pairs.len(),
                    wall_ms: wall * 1e3,
                    qps,
                });
            }
        }
        if let (Some(single), Some(max)) = (single_qps_batched, max_qps_batched) {
            speedups.push((w.label, max / single));
        }
    }

    // ── Whole-row reads (`dists_from`). ───────────────────────────────────
    //
    // The symmetric-packed layout materializes a row with a strided walk
    // over the triangle plus one contiguous copy — this measures that fast
    // path against the full layout's plain row slice, and cross-checks
    // both against point lookups.
    let row_reps = if queries <= 400_000 { 20 } else { 100 };
    let mut row_rates: Vec<(&'static str, f64)> = Vec::new();
    for (label, oracle) in [("full", &full), ("symmetric", &sym)] {
        for u in (0..n).step_by(n / 16) {
            let row = oracle.dists_from(u);
            for v in 0..n {
                let expected = oracle.dist(u, v).map(|e| e.dist);
                let got = (row[v] != cc_graphs::INF).then_some(row[v]);
                assert_eq!(got, expected, "{label}: dists_from({u})[{v}] diverged");
            }
        }
        let start = Instant::now();
        let mut sink = 0u64;
        for _ in 0..row_reps {
            for u in 0..n {
                let row = oracle.dists_from(u);
                sink = sink.wrapping_add(row[u % n] as u64);
            }
        }
        let wall = start.elapsed().as_secs_f64();
        std::hint::black_box(sink);
        row_rates.push((label, (row_reps * n) as f64 / wall));
    }

    // ── Report. ───────────────────────────────────────────────────────────
    let max_threads_swept = *thread_counts.last().expect("non-empty");
    let bytes_full = full.storage_bytes();
    let bytes_sym = sym.storage_bytes();
    let bytes_sparse = sparse.storage_bytes();
    let ratio = bytes_sym as f64 / bytes_full as f64;

    eprintln!(
        "{:>10}  {:>7}  {:>5}  {:>9}  {:>9}  {:>12}",
        "layout", "threads", "batch", "queries", "wall_ms", "qps"
    );
    for row in &rows {
        eprintln!(
            "{:>10}  {:>7}  {:>5}  {:>9}  {:>9.2}  {:>12.0}",
            row.layout, row.threads, row.batch, row.queries, row.wall_ms, row.qps
        );
    }
    eprintln!(
        "bytes: full={bytes_full} symmetric={bytes_sym} ({:.1}% of full) rowsparse={bytes_sparse}",
        ratio * 100.0
    );
    for (label, s) in &speedups {
        eprintln!("{label}: {max_threads_swept}-thread batched speedup over 1 thread = {s:.2}x");
    }
    for (label, rate) in &row_rates {
        eprintln!("{label}: dists_from = {rate:.0} rows/sec");
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"t14_oracle_qps\",\n");
    json.push_str(&format!("  \"n\": {n},\n"));
    json.push_str(&format!("  \"max_threads\": {max_threads_swept},\n"));
    json.push_str(&format!(
        "  \"bytes\": {{\"full\": {bytes_full}, \"symmetric\": {bytes_sym}, \"rowsparse\": {bytes_sparse}}},\n"
    ));
    json.push_str(&format!(
        "  \"symmetric_vs_full_bytes_ratio\": {ratio:.4},\n"
    ));
    json.push_str(&format!("  \"snapshot_roundtrip_ok\": {roundtrip_ok},\n"));
    json.push_str(&format!(
        "  \"speedup_batched_max_threads\": {{{}}},\n",
        speedups
            .iter()
            .map(|(label, s)| format!("\"{label}\": {s:.3}"))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str(&format!(
        "  \"dists_from_rows_per_sec\": {{{}}},\n",
        row_rates
            .iter()
            .map(|(label, rate)| format!("\"{label}\": {rate:.0}"))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"layout\": \"{}\", \"threads\": {}, \"batch\": {}, \"queries\": {}, \"wall_ms\": {:.3}, \"qps\": {:.0}}}{}\n",
            row.layout,
            row.threads,
            row.batch,
            row.queries,
            row.wall_ms,
            row.qps,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}");
    println!("{json}");
}
