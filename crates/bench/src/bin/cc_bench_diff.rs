//! `cc-bench-diff` — the CI perf-regression gate over BENCH_*.json files.
//!
//! ```text
//! cc-bench-diff BASELINE.json CURRENT.json
//! ```
//!
//! Compares a freshly produced bench document against the committed
//! baseline and exits non-zero on a regression beyond tolerance. The
//! tolerances are deliberately loose — CI runners are noisy, often
//! single-core boxes (the documents record `available_cores` for exactly
//! this reason) — so the gate catches *order-of-magnitude* breakage
//! (an accidental O(n²) in the hot path, a lost zero-copy path, serving
//! suddenly shedding), not microbenchmark jitter:
//!
//! * **Correctness booleans** (`bit_identical`, `cross_checks_ok`,
//!   `dropped_requests == 0`): must not flip. Zero tolerance.
//! * **Latency quantiles** (`*_latency_us.p50/p95/p99`, `*_ns.p50/p90/p99`,
//!   lower is better): current ≤ 2× baseline + 500 (absolute grace for
//!   near-zero baselines).
//! * **Throughput** (`requests_per_sec`, `queries_per_sec`, `*ops_per_sec`,
//!   higher is better): current ≥ 0.5× baseline.
//!
//! Fields present in only one document are reported but never fail the
//! gate (so adding a metric to a bench does not break the first CI run
//! that carries it).

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::process::ExitCode;

/// A leaf value of the flattened JSON document.
#[derive(Clone, Debug, PartialEq)]
enum Leaf {
    Num(f64),
    Bool(bool),
    Str(String),
}

/// Minimal recursive-descent JSON reader producing `dotted.path → leaf`
/// (arrays indexed numerically: `results.3.wall_ms`). Only what the bench
/// documents need; unknown escapes pass through verbatim.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(text: &'a str) -> Self {
        Reader {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", char::from(b), self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    // Pass escapes through structurally; bench keys never
                    // contain them, values may.
                    if let Some(&next) = self.bytes.get(self.pos + 1) {
                        out.push(char::from(next));
                        self.pos += 2;
                    } else {
                        return Err("dangling escape".into());
                    }
                }
                Some(b) => {
                    out.push(char::from(b));
                    self.pos += 1;
                }
            }
        }
    }

    fn value(&mut self, path: &str, out: &mut BTreeMap<String, Leaf>) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => {
                self.expect(b'{')?;
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(());
                }
                loop {
                    let key = self.string()?;
                    self.expect(b':')?;
                    let child = if path.is_empty() {
                        key
                    } else {
                        format!("{path}.{key}")
                    };
                    self.value(&child, out)?;
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(());
                        }
                        other => return Err(format!("bad object separator {other:?}")),
                    }
                }
            }
            Some(b'[') => {
                self.expect(b'[')?;
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(());
                }
                let mut i = 0usize;
                loop {
                    self.value(&format!("{path}.{i}"), out)?;
                    i += 1;
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(());
                        }
                        other => return Err(format!("bad array separator {other:?}")),
                    }
                }
            }
            Some(b'"') => {
                let s = self.string()?;
                out.insert(path.to_string(), Leaf::Str(s));
                Ok(())
            }
            Some(b't') | Some(b'f') => {
                let word = if self.bytes[self.pos..].starts_with(b"true") {
                    self.pos += 4;
                    true
                } else if self.bytes[self.pos..].starts_with(b"false") {
                    self.pos += 5;
                    false
                } else {
                    return Err(format!("bad literal at byte {}", self.pos));
                };
                out.insert(path.to_string(), Leaf::Bool(word));
                Ok(())
            }
            Some(b'n') => {
                if self.bytes[self.pos..].starts_with(b"null") {
                    self.pos += 4;
                    Ok(())
                } else {
                    Err(format!("bad literal at byte {}", self.pos))
                }
            }
            Some(_) => {
                let start = self.pos;
                while self.bytes.get(self.pos).is_some_and(|&b| {
                    b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
                }) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "non-utf8 number".to_string())?;
                let num: f64 = text
                    .parse()
                    .map_err(|_| format!("bad number {text:?} at byte {start}"))?;
                out.insert(path.to_string(), Leaf::Num(num));
                Ok(())
            }
            None => Err("unexpected end of document".into()),
        }
    }
}

fn flatten(text: &str) -> Result<BTreeMap<String, Leaf>, String> {
    let mut out = BTreeMap::new();
    let mut r = Reader::new(text);
    r.value("", &mut out)?;
    Ok(out)
}

/// Correctness booleans that must never flip away from the baseline `true`.
const PINNED_TRUE: &[&str] = &["bit_identical", "cross_checks_ok", "zero_copy_storage"];

/// Lower-is-better when the key's last segment is a latency quantile and
/// the containing object is a latency/duration block.
fn is_latency(key: &str) -> bool {
    let Some((parent, leaf)) = key.rsplit_once('.') else {
        return false;
    };
    matches!(leaf, "p50" | "p90" | "p95" | "p99" | "max")
        && (parent.ends_with("_latency_us") || parent.ends_with("_ns"))
}

/// Higher-is-better throughput scalars (`*_per_sec`, `*qps*` — including
/// leaves of a `*_qps_by_threads` block).
fn is_throughput(key: &str) -> bool {
    key == "requests_per_sec"
        || key == "queries_per_sec"
        || key.contains("qps")
        || key.rsplit('.').next().is_some_and(|l| l == "ops_per_sec")
}

/// Latency tolerance: 2× the baseline plus an absolute grace (µs-scale
/// numbers sit near zero on fast runs; ns-scale numbers dwarf it either way).
const LAT_FACTOR: f64 = 2.0;
const LAT_GRACE: f64 = 500.0;
/// Throughput floor relative to baseline.
const TPUT_FLOOR: f64 = 0.5;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, current_path] = &args[..] else {
        eprintln!("usage: cc-bench-diff BASELINE.json CURRENT.json");
        return ExitCode::from(2);
    };
    let read = |path: &str| -> Result<BTreeMap<String, Leaf>, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        flatten(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (base, cur) = match (read(baseline_path), read(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("cc-bench-diff: {e}");
            return ExitCode::FAILURE;
        }
    };
    match (base.get("bench"), cur.get("bench")) {
        (Some(b), Some(c)) if b == c => {}
        (b, c) => {
            eprintln!("cc-bench-diff: bench name mismatch: {b:?} vs {c:?}");
            return ExitCode::FAILURE;
        }
    }

    let mut failures = 0usize;
    let mut checks = 0usize;
    for (key, base_leaf) in &base {
        let Some(cur_leaf) = cur.get(key) else {
            eprintln!("  [skip] {key}: absent in current run");
            continue;
        };
        if PINNED_TRUE.contains(&key.as_str()) {
            checks += 1;
            if *base_leaf == Leaf::Bool(true) && *cur_leaf != Leaf::Bool(true) {
                eprintln!("  [FAIL] {key}: baseline true, current {cur_leaf:?}");
                failures += 1;
            }
            continue;
        }
        if key == "dropped_requests" {
            checks += 1;
            if let (Leaf::Num(b), Leaf::Num(c)) = (base_leaf, cur_leaf) {
                if *b == 0.0 && *c != 0.0 {
                    eprintln!("  [FAIL] {key}: baseline 0, current {c}");
                    failures += 1;
                }
            }
            continue;
        }
        let (Leaf::Num(b), Leaf::Num(c)) = (base_leaf, cur_leaf) else {
            continue;
        };
        if is_latency(key) {
            checks += 1;
            let limit = b * LAT_FACTOR + LAT_GRACE;
            if *c > limit {
                eprintln!(
                    "  [FAIL] {key}: {c} > {limit:.1} (baseline {b} x{LAT_FACTOR} + {LAT_GRACE})"
                );
                failures += 1;
            }
        } else if is_throughput(key) {
            checks += 1;
            let floor = b * TPUT_FLOOR;
            if *c < floor {
                eprintln!("  [FAIL] {key}: {c} < {floor:.1} (baseline {b} x{TPUT_FLOOR})");
                failures += 1;
            }
        }
    }
    let bench = match base.get("bench") {
        Some(Leaf::Str(s)) => s.as_str(),
        _ => "?",
    };
    if failures == 0 {
        println!(
            "cc-bench-diff: {bench}: {checks} checks passed ({baseline_path} vs {current_path})"
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("cc-bench-diff: {bench}: {failures} of {checks} checks FAILED");
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_walks_nested_objects_and_arrays() {
        let doc = r#"{"bench": "x", "lat_us": {"p50": 1.5}, "results": [{"a": 1}, {"a": 2}], "ok": true}"#;
        let m = flatten(doc).unwrap();
        assert_eq!(m.get("bench"), Some(&Leaf::Str("x".into())));
        assert_eq!(m.get("lat_us.p50"), Some(&Leaf::Num(1.5)));
        assert_eq!(m.get("results.1.a"), Some(&Leaf::Num(2.0)));
        assert_eq!(m.get("ok"), Some(&Leaf::Bool(true)));
    }

    #[test]
    fn key_classifiers() {
        assert!(is_latency("dist_latency_us.p50"));
        assert!(is_latency("queue_wait_ns.p99"));
        assert!(is_latency("queue_wait_ns.max"));
        assert!(!is_latency("overload.ok"));
        assert!(!is_latency("p50_ratio"));
        assert!(is_throughput("requests_per_sec"));
        assert!(is_throughput("results.3.ops_per_sec"));
        assert!(is_throughput("path_qps_batch"));
        assert!(is_throughput("path_qps_by_threads.t2"));
        assert!(!is_throughput("requests_per_client"));
    }
}
