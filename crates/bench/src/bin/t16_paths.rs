//! T16 — route serving: witness-kernel overhead and `PathOracle` query
//! throughput.
//!
//! Two measurement families, one JSON document on stdout (human-readable
//! table on stderr):
//!
//! 1. **Witness-kernel overhead** — the sparse CSR and blocked dense
//!    min-plus kernels with and without witness tracking, at `n = 1024`
//!    (gnp, ρ ≈ 32). The witness outputs are cross-checked to be
//!    bit-identical in values to the distance-only kernels, threaded runs
//!    must be bit-identical (values *and* witnesses) to serial, and the
//!    per-kernel overhead factor is reported (kernel claim: ≤ 2×).
//! 2. **Path qps** — a `record_paths` session solves near-additive APSP on
//!    an `n = 1024` grid, freezes a [`PathOracle`], and serves point and
//!    batched route queries from 1..T threads over one `Arc`. Sampled
//!    routes are verified edge-by-edge against the input graph and a
//!    Dijkstra tree; the snapshot round-trip is exercised; the recording
//!    overhead (solve wall time with vs without witnesses) is reported.
//!
//! Run with: `cargo run --release --bin t16_paths -- [--threads T] [--reps R] [--quick]`

#![forbid(unsafe_code)]

use std::sync::Arc;
use std::time::Instant;

use cc_bench::rng;
use cc_core::{Execution, PathOracle, SolverBuilder};
use cc_graphs::{dijkstra, generators, Dist, Graph, WeightedGraph};
use cc_matrix::{DenseMatrix, MinplusWorkspace, SparseMatrix};
use rand::Rng;

/// Best-of-`reps` wall time of `run`, seconds.
fn best_secs<T>(reps: usize, mut run: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let value = run();
        best = best.min(start.elapsed().as_secs_f64());
        out = Some(value);
    }
    (best, out.expect("reps >= 1"))
}

fn gnp_with_density(n: usize, target_rho: usize, seed: u64) -> Graph {
    let p = (target_rho.saturating_sub(1) as f64 / (n - 1) as f64).min(1.0);
    generators::gnp(n, p, &mut rng(seed))
}

/// Verifies a sampled set of routes end-to-end against the graph and exact
/// Dijkstra trees. Panics (failing the bench) on any violation.
fn verify_routes(g: &Graph, oracle: &PathOracle, samples: usize, seed: u64) {
    let wg = WeightedGraph::from_unweighted(g);
    let mut r = rng(seed);
    for _ in 0..samples {
        let u = r.gen_range(0..g.n());
        let tree = dijkstra::sssp_tree(&wg, u);
        let v = r.gen_range(0..g.n());
        let est = oracle.dist(u, v);
        let route = oracle.path(u, v);
        assert_eq!(est.is_some(), route.is_some(), "coverage at ({u},{v})");
        let (Some(route), Some(est)) = (route, est) else {
            continue;
        };
        if u == v {
            assert_eq!(route.weight, 0);
            continue;
        }
        assert_eq!(route.edges[0].0 as usize, u);
        assert_eq!(route.edges[route.edges.len() - 1].1 as usize, v);
        for w in route.edges.windows(2) {
            assert_eq!(w[0].1, w[1].0, "edges must chain at ({u},{v})");
        }
        for &(x, y) in &route.edges {
            assert!(g.has_edge(x as usize, y as usize), "({x},{y}) not in G");
        }
        assert_eq!(route.weight, route.edges.len() as Dist);
        assert!(route.weight >= tree.dist(v), "undercut at ({u},{v})");
        assert!(
            route.weight <= est.dist,
            "heavier than estimate at ({u},{v})"
        );
        assert!(
            (route.weight as f64) <= est.guarantee.bound(tree.dist(v)) + 1e-9,
            "guarantee violated at ({u},{v})"
        );
    }
}

fn main() {
    let mut max_threads = 4usize;
    let mut reps = 5usize;
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                max_threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads N");
            }
            "--reps" => {
                reps = args.next().and_then(|v| v.parse().ok()).expect("--reps N");
            }
            "--quick" => {
                reps = 2;
                quick = true;
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    assert!(max_threads >= 1, "--threads must be at least 1");
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let kernel_n = 1024usize;

    // ── 1. Witness-kernel overhead (sparse + dense, n = 1024). ────────────
    let g = gnp_with_density(kernel_n, 32, 7);
    let a = SparseMatrix::adjacency(&g);
    let mut ws = MinplusWorkspace::new();
    let _ = a.minplus_with(&a, &mut ws); // warm scratch
    let (plain_secs, plain_out) = best_secs(reps, || a.minplus_with(&a, &mut ws));
    let (wit_secs, wit_out) = best_secs(reps, || a.minplus_with_witness(&a, &mut ws));
    assert_eq!(
        wit_out.0, plain_out,
        "sparse witness kernel changed the values"
    );
    assert_eq!(wit_out.1.len(), plain_out.nnz(), "one witness per entry");
    // Threaded witness products must be bit-identical to serial.
    for threads in [2usize, max_threads.max(2)] {
        let mut tws = MinplusWorkspace::with_threads(threads);
        assert_eq!(
            a.minplus_with_witness(&a, &mut tws),
            wit_out,
            "sparse witness product not bit-identical at {threads} threads"
        );
    }
    let sparse_overhead = wit_secs / plain_secs;

    // The dense kernel is measured on its home regime — a repeated-squaring
    // step (the square of the adjacency power, mostly-finite entries). On
    // ρ ≈ 32 inputs the CSR kernel is the right tool (t15: 3–6× faster), so
    // sparse inputs are the sparse kernel's cell above.
    let adj = DenseMatrix::adjacency(&g);
    let d = adj.minplus(&adj);
    let dws = MinplusWorkspace::new();
    let (dplain_secs, dplain_out) = best_secs(reps, || d.minplus_with(&d, &dws));
    let (dwit_secs, dwit_out) = best_secs(reps, || d.minplus_with_witness(&d, &dws));
    assert_eq!(
        dwit_out.0, dplain_out,
        "dense witness kernel changed the values"
    );
    for threads in [2usize, max_threads.max(2)] {
        let tws = MinplusWorkspace::with_threads(threads);
        assert_eq!(
            d.minplus_with_witness(&d, &tws),
            dwit_out,
            "dense witness product not bit-identical at {threads} threads"
        );
    }
    let dense_overhead = dwit_secs / dplain_secs;

    // ── 2. Path oracle build + qps (grid, record_paths session). ──────────
    let side = if quick { 16 } else { 32 };
    let gg = generators::grid(side, side);
    let n = gg.n();
    let solve = |record: bool| {
        let mut solver = SolverBuilder::new(gg.clone())
            .eps(0.5)
            .execution(Execution::Seeded(11))
            .threads(max_threads)
            .record_paths(record)
            .build()
            .expect("valid configuration");
        solver.apsp_near_additive().expect("additive apsp");
        solver
    };
    let start = Instant::now();
    let plain_solver = solve(false);
    let solve_plain_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let solver = solve(true);
    let solve_record_secs = start.elapsed().as_secs_f64();
    assert_eq!(
        plain_solver.total_rounds(),
        solver.total_rounds(),
        "recording changed the charged rounds"
    );
    let start = Instant::now();
    let oracle = Arc::new(solver.freeze_with_paths().expect("paths recorded"));
    let freeze_secs = start.elapsed().as_secs_f64();
    verify_routes(&gg, &oracle, if quick { 100 } else { 400 }, 23);

    // Snapshot round trip.
    let mut snap = Vec::new();
    oracle.save(&mut snap).expect("save snapshot");
    let back = PathOracle::load(&mut &snap[..]).expect("load snapshot");
    assert_eq!(back, *oracle, "snapshot round trip diverged");

    // Query streams (reproducible per thread).
    let make_queries = |t: u64, count: usize| -> Vec<(usize, usize)> {
        let mut r = rng(0x716 ^ t);
        (0..count)
            .map(|_| (r.gen_range(0..n), r.gen_range(0..n)))
            .collect()
    };
    let point_queries = if quick { 20_000 } else { 100_000 };
    let queries = make_queries(0, point_queries);
    let (point_secs, hits) = best_secs(reps, || {
        let mut hits = 0usize;
        for &(u, v) in &queries {
            if let Some(route) = oracle.path(u, v) {
                hits += route.edges.len();
            }
        }
        hits
    });
    let point_qps = point_queries as f64 / point_secs;
    let (batch_secs, _) = best_secs(reps, || oracle.path_batch(&queries));
    let batch_qps = point_queries as f64 / batch_secs;

    let mut thread_counts = vec![1usize];
    while let Some(&last) = thread_counts.last() {
        if last * 2 > max_threads {
            break;
        }
        thread_counts.push(last * 2);
    }
    let mut thread_qps: Vec<(usize, f64)> = Vec::new();
    for &threads in &thread_counts {
        let streams: Vec<Vec<(usize, usize)>> = (0..threads)
            .map(|t| make_queries(t as u64 + 1, point_queries / threads))
            .collect();
        let (secs, _) = best_secs(reps, || {
            std::thread::scope(|scope| {
                let handles: Vec<_> = streams
                    .iter()
                    .map(|qs| {
                        let oracle = Arc::clone(&oracle);
                        scope.spawn(move || {
                            qs.iter()
                                .filter_map(|&(u, v)| oracle.path(u, v))
                                .map(|r| r.edges.len())
                                .sum::<usize>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .sum::<usize>()
            })
        });
        let total = (point_queries / threads * threads) as f64;
        thread_qps.push((threads, total / secs));
    }

    // ── Report. ───────────────────────────────────────────────────────────
    eprintln!(
        "witness-kernel overhead (n = {kernel_n}, rho = {}):",
        a.density()
    );
    eprintln!(
        "  sparse: plain {:.2} ms, witness {:.2} ms → {sparse_overhead:.2}x",
        plain_secs * 1e3,
        wit_secs * 1e3
    );
    eprintln!(
        "  dense:  plain {:.2} ms, witness {:.2} ms → {dense_overhead:.2}x",
        dplain_secs * 1e3,
        dwit_secs * 1e3
    );
    eprintln!("path oracle (grid n = {n}):");
    eprintln!("  solve: {solve_plain_secs:.2}s plain, {solve_record_secs:.2}s recording; freeze {freeze_secs:.3}s");
    eprintln!(
        "  witness bytes: {}, snapshot bytes: {}",
        oracle.witness_bytes(),
        snap.len()
    );
    eprintln!("  point {point_qps:.0} qps, batch {batch_qps:.0} qps (sample edge mass {hits})");
    for &(t, qps) in &thread_qps {
        eprintln!("  {t} threads: {qps:.0} qps (cores available: {cores})");
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"t16_paths\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"available_cores\": {cores},\n"));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str("  \"cross_checks_ok\": true,\n");
    json.push_str(&format!("  \"kernel_n\": {kernel_n},\n"));
    json.push_str(&format!(
        "  \"witness_overhead\": {{\"sparse\": {sparse_overhead:.3}, \"dense\": {dense_overhead:.3}}},\n"
    ));
    json.push_str(&format!("  \"oracle_n\": {n},\n"));
    json.push_str(&format!(
        "  \"solve_secs\": {{\"plain\": {solve_plain_secs:.4}, \"recording\": {solve_record_secs:.4}, \"freeze\": {freeze_secs:.4}}},\n"
    ));
    json.push_str(&format!(
        "  \"witness_bytes\": {},\n",
        oracle.witness_bytes()
    ));
    json.push_str(&format!("  \"snapshot_bytes\": {},\n", snap.len()));
    json.push_str(&format!("  \"path_qps_point\": {point_qps:.0},\n"));
    json.push_str(&format!("  \"path_qps_batch\": {batch_qps:.0},\n"));
    json.push_str(&format!(
        "  \"path_qps_by_threads\": {{{}}}\n",
        thread_qps
            .iter()
            .map(|(t, q)| format!("\"t{t}\": {q:.0}"))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push('}');
    println!("{json}");
}
