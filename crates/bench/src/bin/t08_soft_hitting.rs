//! T8 — Lemma 43/56 and Thm 57: soft hitting sets. The headline property is
//! the **missing `log N` factor** in the selected-set size, versus plain
//! hitting sets.

#![forbid(unsafe_code)]

use cc_bench::{f2, rng, Table};
use cc_clique::RoundLedger;
use cc_derand::soft_hitting::{soft_hitting_set, SoftHittingInstance};
use cc_derand::{deterministic_hitting_set, random_hitting_set};
use rand::Rng;

fn instance(universe: usize, delta: usize, l: usize, seed: u64) -> SoftHittingInstance {
    let mut r = rng(seed);
    let sets: Vec<Vec<usize>> = (0..l)
        .map(|_| {
            let mut s: Vec<usize> = Vec::new();
            while s.len() < delta + r.gen_range(0..delta) {
                let e = r.gen_range(0..universe);
                if !s.contains(&e) {
                    s.push(e);
                }
            }
            s
        })
        .collect();
    SoftHittingInstance::new(universe, delta, sets).expect("valid instance")
}

fn main() {
    let mut table = Table::new(
        "T8: soft hitting sets vs plain hitting sets (Lemma 43 vs Lemma 8/9)",
        &[
            "N",
            "delta",
            "|L|",
            "|Z| soft",
            "3N/delta",
            "unhit/(delta|L|)",
            "|A| rand",
            "|A| det",
            "N lnN/delta",
            "rounds",
        ],
    );
    for (universe, delta, l) in [
        (512usize, 16usize, 128usize),
        (2048, 32, 512),
        (4096, 64, 1024),
    ] {
        let inst = instance(universe, delta, l, universe as u64);
        let mut ledger = RoundLedger::new(universe);
        let z = soft_hitting_set(&inst, &mut ledger);
        assert!(z.verify(&inst, 3.0), "Definition 42 must hold");
        let mut r = rng(1);
        let mut scratch = RoundLedger::new(universe);
        let a_rand = random_hitting_set(universe, delta, inst.sets(), 2.0, &mut r, &mut scratch)
            .expect("valid");
        let a_det =
            deterministic_hitting_set(universe, delta, inst.sets(), &mut scratch).expect("valid");
        table.row(vec![
            universe.to_string(),
            delta.to_string(),
            l.to_string(),
            z.set.len().to_string(),
            (3 * universe / delta).to_string(),
            f2(z.unhit_mass as f64 / (delta * l) as f64),
            a_rand.len().to_string(),
            a_det.len().to_string(),
            f2(universe as f64 * (universe as f64).ln() / delta as f64),
            ledger.total_rounds().to_string(),
        ]);
    }
    table.print();
    println!(
        "paper claim: |Z| = O(N/delta) with NO log factor (vs O(N log N/delta)\n\
         for plain hitting sets) while the un-hit mass stays O(delta*|L|);\n\
         selection runs in O((log log n)^3) rounds (Thm 57)."
    );
}
