//! T10 — §3.1: the warm-up `(1+ε, Θ(1/ε))`-emulator with `Õ(n^{5/4})`
//! edges.

#![forbid(unsafe_code)]

use cc_bench::{f2, f3, rng, Table};
use cc_emulator::warmup::{self, WarmupParams};
use cc_graphs::generators;

fn main() {
    let eps = 0.34;
    let mut table = Table::new(
        "T10: warm-up emulator (S1/S2 construction, §3.1), eps = 0.34",
        &[
            "graph",
            "n",
            "edges",
            "n^(5/4)lnn",
            "max add err",
            "add bound",
            "max ratio",
            "ok",
        ],
    );
    for n in [256usize, 512, 1024] {
        let mut r = rng(n as u64);
        let side = (n as f64).sqrt().round() as usize;
        for (name, g) in [
            ("gnp", generators::connected_gnp(n, 8.0 / n as f64, &mut r)),
            ("grid", generators::grid(side, side)),
        ] {
            let params = WarmupParams::paper(g.n(), eps);
            let emu = warmup::build(&g, &params, &mut r);
            let report = emu.verify_with_bounds(
                &g,
                params.multiplicative_bound(),
                params.additive_bound(),
                f64::INFINITY,
            );
            let size_ref = (g.n() as f64).powf(1.25) * (g.n() as f64).ln();
            table.row(vec![
                name.to_string(),
                g.n().to_string(),
                emu.m().to_string(),
                f2(size_ref),
                f2(report.max_additive_error),
                f2(params.additive_bound()),
                f3(report.max_ratio),
                report.within_bounds.to_string(),
            ]);
        }
    }
    table.print();
    println!(
        "paper claim: Õ(n^(5/4)) edges with stretch (1+eps, Theta(1/eps)) —\n\
         the two-level special case of the general hierarchy."
    );
}
