//! T18 — hot snapshot reload under load: swap latency tax, zero dropped
//! requests, and a seeded chaos phase.
//!
//! Three phases against a `ccd` server over loopback, serving a
//! memory-mapped v2 `CCDO` snapshot:
//!
//! 1. **Baseline** — `C` clients send dist batches with no reloads;
//!    client-observed p50/p95/p99 is the reference.
//! 2. **Reload storm** — the same traffic while an admin connection
//!    performs ≥10 confirmed hot reloads, alternating between two
//!    bit-distinguishable snapshot generations (dist = `|u−v|` vs
//!    `2|u−v|`). Every response must be `Ok`, bit-identical to one
//!    *whole* generation — zero shed, zero transport errors, zero
//!    dropped in-flight requests — and the storm-phase p50 must stay
//!    within 1.2× of baseline (hot reload is not a stop-the-world).
//!    After the storm, a final reload publishes the base generation and
//!    a serial replay must match it bit for bit.
//! 3. **Seeded chaos** — a compact `FaultPlan` run (worker panics,
//!    connection resets, torn frames both ways) with retrying clients;
//!    the seed is printed as replay coordinates and every outcome is
//!    accounted.
//!
//! One JSON document on stdout; human-readable notes on stderr.
//!
//! Run with: `cargo run --release --bin t18_reload -- [--threads T] [--clients C] [--requests R] [--seed S] [--quick]`

#![forbid(unsafe_code)]

use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cc_core::{DistOracle, DistanceMatrix, Guarantee, PointEstimate};
use cc_graphs::StorageKind;
use cc_obs::{parse_exposition, HistSummary};
use cc_serve::{
    server, snapshot, Client, ClientError, FaultPlan, FaultSite, ReloadConfig, RetryPolicy,
    ServerConfig, Status,
};

/// Deterministic query-pair stream (splitmix-style, no RNG dependency).
fn pairs_for(seed: u64, n: usize, count: usize) -> Vec<(u32, u32)> {
    let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    (0..count)
        .map(|_| {
            let r = next();
            ((r % n as u64) as u32, ((r >> 32) % n as u64) as u32)
        })
        .collect()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Renders a histogram summary as an all-integer JSON object (quantiles are
/// exact power-of-two bucket uppers, capped at the observed max).
fn hist_json(h: &HistSummary) -> String {
    format!(
        "{{\"count\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}",
        h.count, h.p50, h.p90, h.p99, h.max
    )
}

/// `dist(u, v) = |u − v| * scale`: generations are bit-distinguishable.
fn scaled_oracle(n: usize, scale: u32) -> DistOracle {
    let mut m = DistanceMatrix::new(n);
    for u in 0..n {
        for v in 0..n {
            m.improve(u, v, u.abs_diff(v) as u32 * scale);
        }
    }
    DistOracle::from_matrix(&m, Guarantee::mult2(0.25), StorageKind::Full)
}

fn publish(oracle: &DistOracle, path: &Path) {
    oracle.save_v2_to_path(path).expect("atomic snapshot write");
}

fn matches_generation(
    got: &[Option<PointEstimate>],
    pairs: &[(u32, u32)],
    refs: &[DistOracle],
) -> Option<usize> {
    let upairs: Vec<(usize, usize)> = pairs
        .iter()
        .map(|&(u, v)| (u as usize, v as usize))
        .collect();
    refs.iter().position(|r| r.dist_batch(&upairs) == *got)
}

/// One client's latency samples for one phase; every answer verified
/// bitwise against a whole generation.
fn traffic_phase(
    addr: std::net::SocketAddr,
    refs: &[DistOracle],
    n: usize,
    id: u64,
    requests: usize,
    batch: usize,
) -> Vec<f64> {
    let mut client = Client::connect(addr).expect("connect");
    let mut lat = Vec::with_capacity(requests);
    for round in 0..requests {
        let pairs = pairs_for(id * 100_000 + round as u64, n, batch);
        let start = Instant::now();
        let got = client
            .dist_batch(&pairs, 0)
            .expect("no transport faults in the timed phases")
            .expect("queue sized to never shed — zero dropped requests");
        lat.push(start.elapsed().as_secs_f64() * 1e6);
        assert!(
            matches_generation(&got, &pairs, refs).is_some(),
            "client {id} round {round}: answer matches no whole snapshot generation"
        );
    }
    lat
}

#[allow(clippy::too_many_lines)]
fn main() {
    let mut server_threads = 4usize;
    let mut clients = 0usize;
    let mut requests = 0usize;
    let mut seed = 0x11u64;
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                server_threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads N");
            }
            "--clients" => {
                clients = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--clients N");
            }
            "--requests" => {
                requests = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--requests N");
            }
            "--seed" => {
                seed = args.next().and_then(|v| v.parse().ok()).expect("--seed S");
            }
            "--quick" => quick = true,
            other => panic!("unknown argument {other:?}"),
        }
    }
    if clients == 0 {
        clients = (server_threads * 2).max(4);
    }
    if requests == 0 {
        requests = if quick { 150 } else { 600 };
    }
    let n = if quick { 96 } else { 256 };
    let batch = 48usize;

    // ── Snapshot generations on disk. ─────────────────────────────────────
    let gen_a = scaled_oracle(n, 1);
    let snap_path = std::env::temp_dir().join(format!("t18_oracle_{}.ccdo", std::process::id()));
    publish(&gen_a, &snap_path);
    let snap_bytes = std::fs::metadata(&snap_path).expect("stat snapshot").len();
    let opened = snapshot::open(&snap_path).expect("open snapshot");
    assert_eq!(opened.version, 2);
    let mapped = opened.mapped;

    let handle = server::serve(
        opened.oracles,
        "127.0.0.1:0",
        ServerConfig {
            threads: server_threads,
            queue_capacity: 8192,
            batch_max: 64,
            reload: Some(ReloadConfig::at(&snap_path)),
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = handle.addr();

    // ── Phase 1: baseline, no reloads. ────────────────────────────────────
    let refs_a = [scaled_oracle(n, 1)];
    let mut base_lat: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let refs_a = &refs_a;
                scope.spawn(move || traffic_phase(addr, refs_a, n, c as u64 + 1, requests, batch))
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("baseline client"))
            .collect()
    });
    base_lat.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let base_p50 = percentile(&base_lat, 0.50);

    // ── Phase 2: the same traffic under a reload storm. ───────────────────
    let storm_start = Instant::now();
    let refs_ab = [scaled_oracle(n, 1), scaled_oracle(n, 2)];
    let (mut storm_lat, confirmed_reloads): (Vec<f64>, u64) = std::thread::scope(|scope| {
        let reloader = {
            let snap_path = snap_path.clone();
            let gens = [scaled_oracle(n, 1), scaled_oracle(n, 2)];
            scope.spawn(move || {
                let mut admin = Client::connect(addr).expect("admin connect");
                let mut confirmed = 0u64;
                for round in 0..u64::MAX {
                    if confirmed >= 10 && storm_start.elapsed() > Duration::from_millis(50) {
                        break;
                    }
                    publish(&gens[(1 + round as usize) % 2], &snap_path);
                    let info = admin
                        .reload()
                        .expect("admin transport")
                        .expect("valid snapshot accepted");
                    assert_eq!(info.n as usize, n);
                    confirmed += 1;
                    std::thread::sleep(Duration::from_millis(3));
                }
                confirmed
            })
        };
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let refs_ab = &refs_ab;
                scope.spawn(move || {
                    traffic_phase(addr, refs_ab, n, 1000 + c as u64, requests, batch)
                })
            })
            .collect();
        let lat = handles
            .into_iter()
            .flat_map(|h| h.join().expect("storm client"))
            .collect();
        (lat, reloader.join().expect("reloader"))
    });
    storm_lat.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let storm_p50 = percentile(&storm_lat, 0.50);
    assert!(confirmed_reloads >= 10, "need ≥10 confirmed hot reloads");

    let stats = handle.stats();
    assert_eq!(
        stats.shed, 0,
        "zero dropped or shed requests during reloads"
    );
    assert_eq!(stats.malformed, 0);
    assert_eq!(stats.worker_panics, 0, "no faults armed yet");
    assert_eq!(
        stats.served,
        2 * (clients * requests) as u64,
        "every in-flight request during the storm was answered"
    );
    assert_eq!(stats.reloads_ok, confirmed_reloads);

    // The swap is a narrow Arc exchange; in-flight batches finish on
    // their pinned generation. p50 must not regress past 1.2× baseline
    // (a 25µs grace absorbs scheduler noise on near-zero baselines).
    let p50_ratio = storm_p50 / base_p50.max(1.0);
    assert!(
        storm_p50 <= base_p50 * 1.2 + 25.0,
        "reload-storm p50 {storm_p50:.1}us vs baseline {base_p50:.1}us exceeds the 1.2x budget"
    );

    // Post-storm: publish the base generation, reload, serial replay.
    publish(&gen_a, &snap_path);
    let mut probe = Client::connect(addr).expect("probe connect");
    probe.reload().expect("transport").expect("final reload");
    let final_gen = probe.version().expect("version").generation;
    let pairs = pairs_for(0xf17a1, n, 256);
    let upairs: Vec<(usize, usize)> = pairs
        .iter()
        .map(|&(u, v)| (u as usize, v as usize))
        .collect();
    let got = probe.dist_batch(&pairs, 0).expect("probe").expect("ok");
    assert_eq!(
        got,
        gen_a.dist_batch(&upairs),
        "post-swap answers must be bit-identical to a serial replay"
    );

    // ── Phase 3: seeded chaos (compact; the full suite is `tests/chaos.rs`).
    eprintln!("t18: chaos phase seed {seed:#018x} (replay: --seed {seed})");
    let plan = Arc::new(
        FaultPlan::new(seed)
            .with_site(FaultSite::WorkerPanic, 120, 40)
            .with_site(FaultSite::ConnReset, 30, 100)
            .with_site(FaultSite::PartialWrite, 20, 100)
            .with_site(FaultSite::ClientTornWrite, 40, 80),
    );
    let opened = snapshot::open(&snap_path).expect("reopen snapshot");
    let chaos_handle = server::serve(
        opened.oracles,
        "127.0.0.1:0",
        ServerConfig {
            threads: 2,
            queue_capacity: 4096,
            batch_max: 4,
            reload: Some(ReloadConfig::at(&snap_path)),
            fault: Some(Arc::clone(&plan)),
            ..ServerConfig::default()
        },
    )
    .expect("bind chaos server");
    let chaos_addr = chaos_handle.addr();
    let chaos_rounds = if quick { 60 } else { 120 };
    let tallies: Vec<(u64, u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4u64)
            .map(|c| {
                let plan = Arc::clone(&plan);
                let refs = [scaled_oracle(n, 1)];
                scope.spawn(move || {
                    let policy = RetryPolicy {
                        max_retries: 4,
                        base_delay: Duration::from_millis(1),
                        max_delay: Duration::from_millis(20),
                        jitter_seed: c,
                    };
                    let (mut ok, mut contained, mut unknown) = (0u64, 0u64, 0u64);
                    let mut client = Client::connect(chaos_addr).expect("connect");
                    client.set_fault(Arc::clone(&plan));
                    for round in 0..chaos_rounds {
                        let pairs = pairs_for(c * 7919 + round, n, 16);
                        match client.dist_batch_retry(&pairs, 0, &policy) {
                            Ok(Ok(items)) => {
                                assert!(
                                    matches_generation(&items, &pairs, &refs).is_some(),
                                    "chaos answer diverged (replay: --seed {})",
                                    plan.seed()
                                );
                                ok += 1;
                            }
                            Ok(Err(
                                Status::Internal
                                | Status::Overloaded
                                | Status::DeadlineExceeded
                                | Status::ShuttingDown,
                            )) => contained += 1,
                            Ok(Err(status)) => {
                                panic!("invalid chaos status {status:?} (--seed {})", plan.seed())
                            }
                            Err(ClientError::Protocol(msg)) => {
                                panic!(
                                    "protocol violation under chaos: {msg} (--seed {})",
                                    plan.seed()
                                )
                            }
                            Err(_transport) => {
                                unknown += 1;
                                let mut fresh = Client::connect(chaos_addr).expect("reconnect");
                                fresh.set_fault(Arc::clone(&plan));
                                client = fresh;
                            }
                        }
                    }
                    (ok, contained, unknown)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("chaos client"))
            .collect()
    });
    let chaos_ok: u64 = tallies.iter().map(|t| t.0).sum();
    let chaos_contained: u64 = tallies.iter().map(|t| t.1).sum();
    let chaos_unknown: u64 = tallies.iter().map(|t| t.2).sum();
    assert_eq!(chaos_ok + chaos_contained + chaos_unknown, 4 * chaos_rounds);
    let chaos_stats = chaos_handle.stats();
    assert_eq!(
        chaos_stats.worker_panics,
        plan.fires(FaultSite::WorkerPanic)
    );
    chaos_handle.shutdown();

    // Lifecycle histograms from the storm server (`Op::Metrics`): integer
    // exposition, exact bucket-rank quantiles.
    let metrics_text = probe.metrics().expect("metrics op");
    let samples = parse_exposition(&metrics_text);
    let queue_wait =
        cc_obs::text::histogram_summary(&samples, "ccd_queue_wait_ns").expect("histogram exposed");
    let oracle_batch = cc_obs::text::histogram_summary(&samples, "ccd_oracle_batch_ns")
        .expect("histogram exposed");
    assert!(
        queue_wait.count > 0 && oracle_batch.count > 0,
        "baseline + storm traffic must populate the lifecycle histograms"
    );
    handle.shutdown();
    std::fs::remove_file(&snap_path).ok();

    // ── Report. ───────────────────────────────────────────────────────────
    eprintln!(
        "t18: n={n} snapshot={snap_bytes}B mapped={mapped} clients={clients} requests={requests}"
    );
    eprintln!(
        "baseline p50={base_p50:.1}us; storm p50={storm_p50:.1}us over {confirmed_reloads} reloads (ratio {p50_ratio:.2})"
    );
    eprintln!(
        "chaos: ok={chaos_ok} contained={chaos_contained} unknown={chaos_unknown} panics={} resets={}",
        plan.fires(FaultSite::WorkerPanic),
        plan.fires(FaultSite::ConnReset)
    );

    let available_cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"t18_reload\",\n");
    json.push_str(&format!("  \"n\": {n},\n"));
    json.push_str(&format!("  \"available_cores\": {available_cores},\n"));
    json.push_str(&format!("  \"server_threads\": {server_threads},\n"));
    json.push_str(&format!("  \"clients\": {clients},\n"));
    json.push_str(&format!("  \"requests_per_client\": {requests},\n"));
    json.push_str(&format!("  \"dist_batch\": {batch},\n"));
    json.push_str(&format!("  \"snapshot_bytes\": {snap_bytes},\n"));
    json.push_str(&format!("  \"snapshot_mapped\": {mapped},\n"));
    json.push_str(&format!("  \"reloads_confirmed\": {confirmed_reloads},\n"));
    json.push_str(&format!("  \"final_generation\": {final_gen},\n"));
    json.push_str(&format!(
        "  \"baseline_latency_us\": {{\"p50\": {:.1}, \"p95\": {:.1}, \"p99\": {:.1}}},\n",
        percentile(&base_lat, 0.50),
        percentile(&base_lat, 0.95),
        percentile(&base_lat, 0.99)
    ));
    json.push_str(&format!(
        "  \"reload_storm_latency_us\": {{\"p50\": {:.1}, \"p95\": {:.1}, \"p99\": {:.1}}},\n",
        percentile(&storm_lat, 0.50),
        percentile(&storm_lat, 0.95),
        percentile(&storm_lat, 0.99)
    ));
    json.push_str(&format!("  \"p50_ratio\": {p50_ratio:.3},\n"));
    json.push_str(&format!(
        "  \"queue_wait_ns\": {},\n",
        hist_json(&queue_wait)
    ));
    json.push_str(&format!(
        "  \"oracle_batch_ns\": {},\n",
        hist_json(&oracle_batch)
    ));
    json.push_str("  \"dropped_requests\": 0,\n");
    json.push_str(&format!(
        "  \"chaos\": {{\"seed\": {seed}, \"ok\": {chaos_ok}, \"contained\": {chaos_contained}, \"unknown\": {chaos_unknown}, \"worker_panics\": {}, \"conn_resets\": {}, \"torn_writes\": {}}},\n",
        plan.fires(FaultSite::WorkerPanic),
        plan.fires(FaultSite::ConnReset),
        plan.fires(FaultSite::PartialWrite) + plan.fires(FaultSite::ClientTornWrite)
    ));
    json.push_str("  \"bit_identical\": true\n");
    json.push('}');
    println!("{json}");
}
