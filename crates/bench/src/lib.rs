//! Experiment harness for the Dory–Parter reproduction.
//!
//! Each theorem-level claim of the paper maps to one experiment binary in
//! `src/bin/` (see `DESIGN.md` §5 for the index and `EXPERIMENTS.md` for
//! recorded results). This library provides the shared scaffolding: aligned
//! text tables, seeded RNGs, and the standard graph suite.

#![forbid(unsafe_code)]
// Index-based loops are the clearest idiom for the dense adjacency/matrix
// code in this workspace.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// An aligned text table for experiment output.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (cell, w) in cells.iter().zip(widths.iter()) {
                line.push_str(&format!("{cell:>w$}  ", w = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// A reproducible RNG for experiment `seed`.
pub fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Standard `n` sweep for scaling experiments.
pub fn n_sweep() -> Vec<usize> {
    vec![128, 256, 512, 1024]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["n", "value"]);
        t.row(vec!["128".into(), "1.5".into()]);
        t.row(vec!["1024".into(), "12.25".into()]);
        let r = t.render();
        assert!(r.contains("demo"));
        assert!(r.contains("1024"));
        assert!(r.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn wrong_arity_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn rng_is_reproducible() {
        use rand::Rng;
        let a: u64 = rng(5).gen();
        let b: u64 = rng(5).gen();
        assert_eq!(a, b);
    }
}
