//! Criterion wall-clock benchmarks for the APSP/MSSP applications.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use cc_clique::RoundLedger;
use cc_core::apsp2::{self, Apsp2Config};
use cc_core::apsp_additive::{self, AdditiveApspConfig};
use cc_core::mssp::{self, MsspConfig};
use cc_graphs::generators;

fn bench_apsp(c: &mut Criterion) {
    let mut group = c.benchmark_group("apsp");
    group.sample_size(10);
    for n in [128usize, 256] {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = generators::caveman(n / 8, 8);
        let nn = g.n();

        group.bench_with_input(BenchmarkId::new("additive", nn), &nn, |b, _| {
            let cfg = AdditiveApspConfig::scaled(nn, 0.25).expect("valid");
            b.iter(|| {
                let mut ledger = RoundLedger::new(nn);
                apsp_additive::run(&g, &cfg, &mut rng, &mut ledger)
            })
        });
        group.bench_with_input(BenchmarkId::new("two-plus-eps", nn), &nn, |b, _| {
            let cfg = Apsp2Config::scaled(nn, 0.5).expect("valid");
            b.iter(|| {
                let mut ledger = RoundLedger::new(nn);
                apsp2::run(&g, &cfg, &mut rng, &mut ledger).expect("apsp2")
            })
        });
        group.bench_with_input(BenchmarkId::new("mssp", nn), &nn, |b, _| {
            let cfg = MsspConfig::scaled(nn, 0.25).expect("valid");
            let sources: Vec<usize> = (0..nn).step_by(11).take(12).collect();
            b.iter(|| {
                let mut ledger = RoundLedger::new(nn);
                mssp::run(&g, &sources, &cfg, &mut rng, &mut ledger).expect("mssp")
            })
        });
        group.bench_with_input(BenchmarkId::new("baseline-polylog", nn), &nn, |b, _| {
            b.iter(|| {
                let mut ledger = RoundLedger::new(nn);
                cc_baselines::polylog::apsp(&g, 0.5, &mut rng, &mut ledger)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_apsp);
criterion_main!(benches);
