//! Criterion wall-clock benchmarks for emulator constructions.
//!
//! The model metric is *rounds* (see the experiment binaries); these
//! benchmarks track the simulator's own compute cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use cc_clique::RoundLedger;
use cc_emulator::clique::CliqueEmulatorConfig;
use cc_emulator::{clique, deterministic, ideal, whp, EmulatorParams};
use cc_graphs::generators;

fn bench_constructions(c: &mut Criterion) {
    let mut group = c.benchmark_group("emulator");
    group.sample_size(10);
    for n in [256usize, 512] {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = generators::connected_gnp(n, 6.0 / n as f64, &mut rng);
        let params = EmulatorParams::new(n, 0.25, 2).expect("valid");
        let cfg = CliqueEmulatorConfig::scaled(params.clone());

        group.bench_with_input(BenchmarkId::new("ideal", n), &n, |b, _| {
            b.iter(|| ideal::build(&g, &params, &mut rng))
        });
        group.bench_with_input(BenchmarkId::new("clique", n), &n, |b, _| {
            b.iter(|| {
                let mut ledger = RoundLedger::new(n);
                clique::build(&g, &cfg, &mut rng, &mut ledger)
            })
        });
        group.bench_with_input(BenchmarkId::new("whp", n), &n, |b, _| {
            b.iter(|| {
                let mut ledger = RoundLedger::new(n);
                whp::build(&g, &cfg, &mut rng, &mut ledger)
            })
        });
        group.bench_with_input(BenchmarkId::new("deterministic", n), &n, |b, _| {
            b.iter(|| {
                let mut ledger = RoundLedger::new(n);
                deterministic::build(&g, &cfg, &mut ledger)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_constructions);
criterion_main!(benches);
