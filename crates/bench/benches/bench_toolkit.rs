//! Criterion wall-clock benchmarks for the distance-sensitive tool-kit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use cc_clique::RoundLedger;
use cc_graphs::{generators, WeightedGraph};
use cc_toolkit::hopset::{self, HopsetParams};
use cc_toolkit::knearest::{KNearest, Strategy};
use cc_toolkit::source_detection::SourceDetection;

fn bench_toolkit(c: &mut Criterion) {
    let n = 512;
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let g = generators::connected_gnp(n, 6.0 / n as f64, &mut rng);
    let wg = WeightedGraph::from_unweighted(&g);
    let sources: Vec<usize> = (0..n).step_by(23).collect();

    let mut group = c.benchmark_group("toolkit");
    group.sample_size(10);
    for d in [8u32, 32] {
        group.bench_with_input(BenchmarkId::new("knearest-bfs", d), &d, |b, &d| {
            b.iter(|| {
                let mut ledger = RoundLedger::new(n);
                KNearest::compute(&g, 64, d, Strategy::TruncatedBfs, &mut ledger)
            })
        });
        group.bench_with_input(BenchmarkId::new("knearest-filtered", d), &d, |b, &d| {
            b.iter(|| {
                let mut ledger = RoundLedger::new(n);
                KNearest::compute(&g, 64, d, Strategy::Filtered, &mut ledger)
            })
        });
    }
    group.bench_function("source-detection-d16", |b| {
        b.iter(|| {
            let mut ledger = RoundLedger::new(n);
            SourceDetection::run(&wg, &sources, 16, &mut ledger)
        })
    });
    group.bench_function("hopset-t32-scaled", |b| {
        b.iter(|| {
            let mut ledger = RoundLedger::new(n);
            let params = HopsetParams::scaled(n, 32, 0.5);
            hopset::build_randomized(&g, params, &mut rng, &mut ledger)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_toolkit);
criterion_main!(benches);
