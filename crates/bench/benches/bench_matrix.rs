//! Criterion wall-clock benchmarks for the min-plus matrix machinery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use cc_clique::RoundLedger;
use cc_graphs::generators;
use cc_matrix::filtered::{filter_rows, knearest_matrix};
use cc_matrix::{DenseMatrix, SparseMatrix};

fn bench_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("matrix");
    group.sample_size(10);
    for n in [128usize, 256] {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = generators::connected_gnp(n, 8.0 / n as f64, &mut rng);

        let dense = DenseMatrix::adjacency(&g);
        group.bench_with_input(BenchmarkId::new("dense-square", n), &n, |b, _| {
            b.iter(|| dense.minplus(&dense))
        });

        let sparse = SparseMatrix::adjacency(&g);
        group.bench_with_input(BenchmarkId::new("sparse-square", n), &n, |b, _| {
            b.iter(|| sparse.minplus(&sparse))
        });

        group.bench_with_input(BenchmarkId::new("filter-rows", n), &n, |b, _| {
            let sq = sparse.minplus(&sparse);
            b.iter(|| filter_rows(&sq, 16))
        });

        group.bench_with_input(BenchmarkId::new("knearest-matrix-d16", n), &n, |b, _| {
            b.iter(|| {
                let mut ledger = RoundLedger::new(n);
                knearest_matrix(&g, 32, 16, &mut ledger)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matrix);
criterion_main!(benches);
