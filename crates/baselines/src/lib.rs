//! Baseline Congested Clique shortest-path algorithms.
//!
//! The paper's contribution is meaningful relative to three earlier
//! approaches, all implemented here with the same round-ledger accounting so
//! experiments can compare growth shapes (experiment F1):
//!
//! * [`full_gather`] — the trivial exact algorithm: collect the entire graph
//!   at every node (`O(m/n)` rounds — unbeatable for sparse inputs, `Θ(n)`
//!   for dense ones).
//! * [`matrix_squaring`] — the "first era" algebraic approach: `⌈log₂ n⌉`
//!   dense min-plus squarings at `Θ(n^{1/3})` rounds each.
//! * [`spanner`] — Baswana–Sen `(2k−1)`-spanners: `poly(k)` rounds but
//!   stretch `Ω(log n)` at near-linear size — the trade-off that motivated
//!   the search for `O(1)`-stretch sub-polynomial algorithms.
//! * [`polylog`] — a Censor-Hillel-et-al.-PODC19-style pipeline: the same
//!   tool-kit as `cc-toolkit` but **without** distance sensitivity
//!   (`t = n`), which is precisely what pins it at `poly(log n)` rounds.

#![forbid(unsafe_code)]
// Index-based loops are the clearest idiom for the dense adjacency/matrix
// code in this workspace.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod full_gather;
pub mod matrix_squaring;
pub mod polylog;
pub mod spanner;

pub use algorithms::{FullGather, MatrixSquaring, PolylogApsp, SpannerApsp};
