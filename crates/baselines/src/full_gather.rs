//! The trivial exact baseline: gather the whole graph everywhere.
//!
//! Every vertex broadcasts its adjacency list; Lenzen routing distributes
//! the `2m` edge words so that every vertex holds the full edge list after
//! `O(⌈m/n⌉)` rounds, then computes exact APSP locally. For sparse graphs
//! this is unbeatable (constant rounds); for dense graphs it degrades to
//! `Θ(n)` rounds — the regime where the paper's sub-logarithmic algorithms
//! win.

use cc_clique::RoundLedger;
use cc_graphs::{bfs, Dist, Graph};

/// Exact APSP by full-graph gather. Returns the exact distance matrix.
pub fn apsp(g: &Graph, ledger: &mut RoundLedger) -> Vec<Vec<Dist>> {
    let mut phase = ledger.enter("full-gather");
    phase.charge_learn_all("gather all edges", 2 * g.m() as u64);
    bfs::apsp_exact(g)
}

/// The round formula of the gather baseline: `2⌈2m/n⌉ + 2`.
pub fn rounds(m: usize, n: usize) -> u64 {
    cc_clique::cost::model::learn_all(2 * m as u64, n as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graphs::generators;

    #[test]
    fn exact_on_all_families() {
        for (name, g) in [
            ("grid", generators::grid(6, 6)),
            ("caveman", generators::caveman(5, 5)),
        ] {
            let mut ledger = RoundLedger::new(g.n());
            let d = apsp(&g, &mut ledger);
            let want = bfs::apsp_exact(&g);
            assert_eq!(d, want, "{name}");
            assert_eq!(ledger.total_rounds(), rounds(g.m(), g.n()), "{name}");
        }
    }

    #[test]
    fn dense_graphs_cost_linear_rounds() {
        // Complete graph: m = n(n−1)/2 → Θ(n) rounds.
        let n = 64;
        let g = generators::complete(n);
        let mut ledger = RoundLedger::new(n);
        let _ = apsp(&g, &mut ledger);
        assert!(ledger.total_rounds() >= n as u64 - 2);
    }

    #[test]
    fn sparse_graphs_cost_constant_rounds() {
        let g = generators::cycle(4096);
        let mut ledger = RoundLedger::new(4096);
        let _ = apsp(&g, &mut ledger);
        assert!(ledger.total_rounds() <= 6);
    }
}
