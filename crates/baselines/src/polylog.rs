//! A Censor-Hillel-et-al.-PODC19-style poly-logarithmic pipeline: the same
//! tool-kit as `cc-toolkit`, **without distance sensitivity**.
//!
//! This is the headline comparator of experiment F1. The pipeline mirrors
//! the `(3+ε)` pivot scheme of §4.3 but sets the distance bound to `t = n`
//! (i.e., uses the *unbounded* `k`-nearest and hopset of \[3\]), so:
//!
//! * the `k`-nearest computation iterates `⌈log₂ n⌉` filtered products
//!   instead of `⌈log₂ t⌉`,
//! * the hopset performs `⌈log₂ n⌉` interconnection sweeps at
//!   `4β = O(log n/ε)` hops each,
//!
//! landing at `Θ(log²n/ε)` rounds — versus `Θ(log²β/ε) = poly(log log n)`
//! for the distance-sensitive version. The *stretch* delivered is the same
//! class (`O(1)`), which isolates the round-complexity comparison.

use cc_clique::RoundLedger;
use cc_graphs::{Dist, Graph, INF};
use cc_toolkit::hopset::{self, HopsetParams};
use cc_toolkit::knearest::{KNearest, Strategy};
use cc_toolkit::source_detection::SourceDetection;
use rand::Rng;

use cc_derand::hitting;

/// Result of the poly-log pipeline.
#[derive(Clone, Debug)]
pub struct PolylogApsp {
    /// Distance estimates (symmetric, `≥` true distances).
    pub estimates: Vec<Vec<Dist>>,
    /// The short-range multiplicative guarantee (`3+ε`).
    pub guarantee: f64,
}

/// `(3+ε)`-APSP with the unbounded (poly-log-round) tool-kit.
pub fn apsp(g: &Graph, eps: f64, rng: &mut impl Rng, ledger: &mut RoundLedger) -> PolylogApsp {
    let mut phase = ledger.enter("polylog-apsp");
    let n = g.n();
    let t = n as Dist; // the whole point: no distance sensitivity
    let k = (((n as f64).sqrt() * (n.max(2) as f64).ln()).ceil() as usize).clamp(2, n);

    let mut est = vec![vec![INF; n]; n];
    for (i, row) in est.iter_mut().enumerate() {
        row[i] = 0;
    }
    let improve = |est: &mut Vec<Vec<Dist>>, u: usize, v: usize, d: Dist| {
        if d < est[u][v] {
            est[u][v] = d;
            est[v][u] = d;
        }
    };
    for (u, v) in g.edges() {
        improve(&mut est, u, v, 1);
    }

    // Unbounded k-nearest (d = n).
    let kn = KNearest::compute(g, k, t, Strategy::TruncatedBfs, &mut phase);
    for u in 0..n {
        for &(v, d) in kn.list(u) {
            if v as usize != u {
                improve(&mut est, u, v as usize, d);
            }
        }
    }

    // Pivots hitting full lists.
    let full_sets: Vec<Vec<usize>> = (0..n)
        .filter(|&v| kn.list(v).len() >= k)
        .map(|v| kn.list(v).iter().map(|&(u, _)| u as usize).collect())
        .collect();
    let pivots = if full_sets.is_empty() {
        Vec::new()
    } else {
        hitting::random_hitting_set(n, k, &full_sets, 2.5, rng, &mut phase)
            .expect("nearest lists are valid")
    };

    if !pivots.is_empty() {
        // Unbounded hopset (t = n): Θ(log²n/ε) rounds.
        let hp = HopsetParams::paper(n, t, (eps / 2.0).min(0.9));
        let hs = hopset::build_randomized(g, hp, rng, &mut phase);
        let union = hs.union_with(g);
        let sd = SourceDetection::run(&union, &pivots, hs.beta, &mut phase);
        for v in 0..n {
            for (a, d) in sd.detected(v) {
                improve(&mut est, v, a, d);
            }
        }
        phase.charge_broadcast("announce nearest pivots");
        let mut mask = vec![false; n];
        for &a in &pivots {
            mask[a] = true;
        }
        for u in 0..n {
            if let Some((a, _)) = kn.nearest_in(u, &mask) {
                let a = a as usize;
                let via = est[u][a];
                if via >= INF {
                    continue;
                }
                for v in 0..n {
                    if v != u {
                        let leg = est[a][v];
                        if leg < INF {
                            improve(&mut est, u, v, via.saturating_add(leg).min(INF));
                        }
                    }
                }
            }
        }
    }

    PolylogApsp {
        estimates: est,
        guarantee: 3.0 + eps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graphs::{bfs, generators};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn stretch_holds() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for (name, g) in [
            ("grid", generators::grid(7, 7)),
            ("caveman", generators::caveman(6, 6)),
        ] {
            let mut ledger = RoundLedger::new(g.n());
            let out = apsp(&g, 0.5, &mut rng, &mut ledger);
            let exact = bfs::apsp_exact(&g);
            for u in 0..g.n() {
                for v in 0..g.n() {
                    if u == v {
                        continue;
                    }
                    assert!(out.estimates[u][v] >= exact[u][v], "{name}");
                    assert!(
                        (out.estimates[u][v] as f64) <= out.guarantee * exact[u][v] as f64 + 1e-9,
                        "{name}: ({u},{v}) est {} d {}",
                        out.estimates[u][v],
                        exact[u][v]
                    );
                }
            }
        }
    }

    #[test]
    fn rounds_scale_with_log_squared_n() {
        // The defining property: rounds grow with log²n, not log²t.
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g_small = generators::cycle(64);
        let g_large = generators::cycle(512);
        let mut l_small = RoundLedger::new(64);
        let mut l_large = RoundLedger::new(512);
        let _ = apsp(&g_small, 0.5, &mut rng, &mut l_small);
        let _ = apsp(&g_large, 0.5, &mut rng, &mut l_large);
        // log²(512)/log²(64) = 81/36 = 2.25: expect meaningful growth.
        assert!(
            l_large.total_rounds() as f64 >= 1.5 * l_small.total_rounds() as f64,
            "small {} large {}",
            l_small.total_rounds(),
            l_large.total_rounds()
        );
    }
}
