//! The algebraic "first era" baseline: exact APSP by repeated dense
//! min-plus squaring.
//!
//! `⌈log₂ n⌉` squarings of the adjacency matrix compute exact APSP; each
//! dense semiring product costs `Θ(n^{1/3})` rounds \[Censor-Hillel et al.,
//! *Algebraic methods in the congested clique*\], for a total of
//! `Θ(n^{1/3} log n)` — polynomial, the complexity class the paper's
//! poly(log log n) algorithms escape.

use cc_clique::RoundLedger;
use cc_graphs::{Dist, Graph};
use cc_matrix::{DenseMatrix, MinplusWorkspace};

/// Exact APSP by iterated dense squaring. Returns the exact distance matrix
/// (as a [`DenseMatrix`] in min-plus form).
pub fn apsp(g: &Graph, ledger: &mut RoundLedger) -> DenseMatrix {
    apsp_with(g, ledger, &MinplusWorkspace::new())
}

/// [`apsp`] with a caller-provided workspace: the squaring loop runs on
/// `ws.threads()` worker threads with bit-identical results (and identical
/// round charges) at any thread count.
pub fn apsp_with(g: &Graph, ledger: &mut RoundLedger, ws: &MinplusWorkspace) -> DenseMatrix {
    let mut phase = ledger.enter("matrix-squaring");
    let mut a = DenseMatrix::adjacency(g);
    let mut reach = 1usize;
    while reach < g.n().max(2) - 1 {
        a = a.square_charged_with(&mut phase, ws);
        reach *= 2;
    }
    a
}

/// The round formula: `⌈log₂ n⌉ · ⌈n^{1/3}⌉`.
pub fn rounds(n: usize) -> u64 {
    let iters = cc_clique::cost::model::log2_ceil(n.max(2) as u64 - 1);
    iters * cc_clique::cost::model::dense_minplus(n as u64)
}

/// Exact distances as plain vectors (convenience for comparisons).
pub fn apsp_rows(g: &Graph, ledger: &mut RoundLedger) -> Vec<Vec<Dist>> {
    let m = apsp(g, ledger);
    (0..g.n())
        .map(|u| (0..g.n()).map(|v| m.get(u, v)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graphs::{bfs, generators};

    #[test]
    fn matches_bfs_ground_truth() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        let g = cc_graphs::generators::connected_gnp(40, 0.08, &mut rng);
        let mut ledger = RoundLedger::new(40);
        let got = apsp_rows(&g, &mut ledger);
        assert_eq!(got, bfs::apsp_exact(&g));
    }

    #[test]
    fn rounds_are_polynomial() {
        let g = generators::cycle(1000);
        let mut ledger = RoundLedger::new(1000);
        let _ = apsp(&g, &mut ledger);
        assert_eq!(ledger.total_rounds(), rounds(1000));
        assert!(ledger.total_rounds() >= 10 * 10); // log n · n^{1/3}
    }
}
