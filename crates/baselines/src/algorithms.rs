//! [`Algorithm`] adapters: every baseline driven through the same interface
//! as the paper's pipelines.
//!
//! Experiment binaries and integration tests iterate a
//! `Vec<Box<dyn Algorithm>>` mixing these with the `cc_core` pipelines
//! instead of hand-wiring each baseline's ad-hoc entry point.

use cc_clique::RoundLedger;
use cc_core::{Algorithm, AlgorithmOutput, CcError, Execution};
use cc_graphs::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{full_gather, matrix_squaring, polylog, spanner};

/// For baselines without a deterministic variant,
/// [`Execution::Deterministic`] falls back to this fixed seed (the run is
/// still reproducible, just not derandomized in the paper's sense).
const DETERMINISTIC_FALLBACK_SEED: u64 = 0;

fn rng_for(execution: Execution) -> StdRng {
    match execution {
        Execution::Seeded(seed) => StdRng::seed_from_u64(seed),
        Execution::Deterministic => StdRng::seed_from_u64(DETERMINISTIC_FALLBACK_SEED),
    }
}

/// The trivial exact baseline: gather the whole graph everywhere.
#[derive(Clone, Copy, Debug, Default)]
pub struct FullGather;

impl Algorithm for FullGather {
    fn name(&self) -> String {
        "full gather (exact)".to_string()
    }

    fn run(
        &self,
        g: &Graph,
        _execution: Execution,
        ledger: &mut RoundLedger,
    ) -> Result<AlgorithmOutput, CcError> {
        Ok(AlgorithmOutput {
            estimates: full_gather::apsp(g, ledger),
            guarantee: (1.0, 0.0),
        })
    }
}

/// The algebraic exact baseline: `⌈log₂ n⌉` dense min-plus squarings.
#[derive(Clone, Copy, Debug, Default)]
pub struct MatrixSquaring;

impl Algorithm for MatrixSquaring {
    fn name(&self) -> String {
        "algebraic squaring (exact)".to_string()
    }

    fn run(
        &self,
        g: &Graph,
        _execution: Execution,
        ledger: &mut RoundLedger,
    ) -> Result<AlgorithmOutput, CcError> {
        Ok(AlgorithmOutput {
            estimates: matrix_squaring::apsp_rows(g, ledger),
            guarantee: (1.0, 0.0),
        })
    }
}

/// Baswana–Sen `(2k−1)`-spanner collection. Randomized only; deterministic
/// execution falls back to a fixed seed.
#[derive(Clone, Copy, Debug)]
pub struct SpannerApsp {
    /// Stretch parameter `k` (stretch `2k−1`).
    pub k: usize,
}

impl Algorithm for SpannerApsp {
    fn name(&self) -> String {
        format!("Baswana–Sen spanner k={}", self.k)
    }

    fn run(
        &self,
        g: &Graph,
        execution: Execution,
        ledger: &mut RoundLedger,
    ) -> Result<AlgorithmOutput, CcError> {
        let mut rng = rng_for(execution);
        let (estimates, s) = spanner::apsp(g, self.k, &mut rng, ledger);
        Ok(AlgorithmOutput {
            estimates,
            guarantee: (2.0 * s.k as f64 - 1.0, 0.0),
        })
    }
}

/// The CHKL19-style poly-log pipeline (no distance sensitivity). Randomized
/// only; deterministic execution falls back to a fixed seed.
#[derive(Clone, Copy, Debug)]
pub struct PolylogApsp {
    /// Accuracy `ε` of the `(3+ε)` guarantee.
    pub eps: f64,
}

impl Algorithm for PolylogApsp {
    fn name(&self) -> String {
        format!("CHKL19-style (3+{})", self.eps)
    }

    fn run(
        &self,
        g: &Graph,
        execution: Execution,
        ledger: &mut RoundLedger,
    ) -> Result<AlgorithmOutput, CcError> {
        let mut rng = rng_for(execution);
        let out = polylog::apsp(g, self.eps, &mut rng, ledger);
        Ok(AlgorithmOutput {
            estimates: out.estimates,
            guarantee: (out.guarantee, 0.0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graphs::{bfs, generators};

    #[test]
    fn baselines_run_through_the_trait_and_never_undercut() {
        let g = generators::caveman(5, 6);
        let exact = bfs::apsp_exact(&g);
        let algorithms: Vec<Box<dyn Algorithm>> = vec![
            Box::new(FullGather),
            Box::new(MatrixSquaring),
            Box::new(SpannerApsp { k: 2 }),
            Box::new(PolylogApsp { eps: 0.5 }),
        ];
        for alg in &algorithms {
            let mut ledger = RoundLedger::new(g.n());
            let out = alg.run(&g, Execution::Seeded(11), &mut ledger).unwrap();
            assert!(ledger.total_rounds() > 0, "{}", alg.name());
            for u in 0..g.n() {
                for v in 0..g.n() {
                    assert!(
                        out.estimates[u][v] >= exact[u][v],
                        "{} undercuts at ({u},{v})",
                        alg.name()
                    );
                }
            }
        }
    }

    #[test]
    fn exact_baselines_match_ground_truth() {
        let g = generators::grid(5, 5);
        let exact = bfs::apsp_exact(&g);
        for alg in [&FullGather as &dyn Algorithm, &MatrixSquaring] {
            let mut ledger = RoundLedger::new(g.n());
            let out = alg.run(&g, Execution::Deterministic, &mut ledger).unwrap();
            assert_eq!(out.estimates, exact, "{}", alg.name());
            assert_eq!(out.guarantee, (1.0, 0.0));
        }
    }
}
