//! Baswana–Sen `(2k−1)`-spanners and spanner-based approximate APSP.
//!
//! The "multiplicative spanner" route to APSP (§1 of the paper): compute a
//! `(2k−1)`-spanner with `O(k·n^{1+1/k})` edges, collect it everywhere, and
//! answer queries on the spanner. For near-linear size one needs
//! `k = Θ(log n)`, i.e. **logarithmic stretch** — the barrier that motivated
//! `(2+ε)` in sub-polynomial rounds.
//!
//! The construction is the classic two-phase random-cluster algorithm of
//! Baswana & Sen (2007); in the Congested Clique it runs in `O(k)` rounds
//! (each phase is one round of cluster announcements).

use cc_clique::RoundLedger;
use cc_graphs::{bfs, Dist, Graph};
use rand::Rng;

/// A multiplicative spanner with its stretch certificate.
#[derive(Clone, Debug)]
pub struct Spanner {
    /// The spanner edges (a subgraph of the input).
    pub graph: Graph,
    /// The stretch parameter `k` (stretch `2k−1`).
    pub k: usize,
}

/// Builds a `(2k−1)`-spanner by the Baswana–Sen clustering algorithm.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn baswana_sen(g: &Graph, k: usize, rng: &mut impl Rng, ledger: &mut RoundLedger) -> Spanner {
    assert!(k >= 1, "stretch parameter k must be positive");
    let mut phase = ledger.enter("baswana-sen");
    let n = g.n();
    let p = (n as f64).powf(-1.0 / k as f64);
    let mut spanner_edges: Vec<(usize, usize)> = Vec::new();
    // cluster[v] = Some(center) while v is clustered; None once discarded.
    let mut cluster: Vec<Option<u32>> = (0..n).map(|v| Some(v as u32)).collect();
    // Edges still under consideration.
    let mut alive: Vec<(usize, usize)> = g.edges().collect();

    // Phase 1: k−1 sampling rounds.
    for _ in 1..k {
        phase.charge_broadcast("announce sampled clusters");
        let sampled: Vec<bool> = (0..n).map(|_| rng.gen_bool(p)).collect();
        let is_sampled = |v: usize, cl: &[Option<u32>]| cl[v].is_some_and(|c| sampled[c as usize]);
        let mut next_cluster: Vec<Option<u32>> = cluster.clone();
        for v in 0..n {
            let Some(c) = cluster[v] else { continue };
            if sampled[c as usize] {
                continue; // stays in its (sampled) cluster
            }
            // Neighbors of v among alive edges, grouped by their cluster.
            let nbrs: Vec<usize> = alive
                .iter()
                .filter_map(|&(a, b)| {
                    if a == v {
                        Some(b)
                    } else if b == v {
                        Some(a)
                    } else {
                        None
                    }
                })
                .collect();
            if let Some(&u) = nbrs.iter().find(|&&u| is_sampled(u, &cluster)) {
                // Join the sampled cluster through u.
                spanner_edges.push((v, u));
                next_cluster[v] = cluster[u];
            } else {
                // No sampled neighbor cluster: add one edge per adjacent
                // cluster, then retire v.
                let mut seen: Vec<u32> = Vec::new();
                for &u in &nbrs {
                    if let Some(cu) = cluster[u] {
                        if !seen.contains(&cu) {
                            seen.push(cu);
                            spanner_edges.push((v, u));
                        }
                    }
                }
                next_cluster[v] = None;
            }
        }
        cluster = next_cluster;
        // Drop edges inside a cluster or touching retired vertices.
        alive.retain(|&(a, b)| {
            cluster[a].is_some() && cluster[b].is_some() && cluster[a] != cluster[b]
        });
    }

    // Phase 2: each remaining vertex keeps one edge to every adjacent
    // cluster.
    phase.charge_broadcast("phase-2 cluster adjacency");
    for v in 0..n {
        if cluster[v].is_none() {
            continue;
        }
        let mut seen: Vec<u32> = Vec::new();
        for &(a, b) in &alive {
            let u = if a == v {
                b
            } else if b == v {
                a
            } else {
                continue;
            };
            if let Some(cu) = cluster[u] {
                if !seen.contains(&cu) {
                    seen.push(cu);
                    spanner_edges.push((v, u));
                }
            }
        }
    }

    Spanner {
        graph: Graph::from_edges(n, &spanner_edges),
        k,
    }
}

/// Spanner-based approximate APSP: build the spanner, collect it at every
/// vertex (`O(|E_S|/n)` rounds), answer locally. Stretch `2k−1`.
pub fn apsp(
    g: &Graph,
    k: usize,
    rng: &mut impl Rng,
    ledger: &mut RoundLedger,
) -> (Vec<Vec<Dist>>, Spanner) {
    let spanner = baswana_sen(g, k, rng, ledger);
    ledger.charge_learn_all("collect spanner", spanner.graph.m() as u64);
    let d = bfs::apsp_exact(&spanner.graph);
    (d, spanner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graphs::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn spanner_is_subgraph_with_bounded_stretch() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for k in [1usize, 2, 3] {
            let g = generators::connected_gnp(60, 0.15, &mut rng);
            let mut ledger = RoundLedger::new(60);
            let s = baswana_sen(&g, k, &mut rng, &mut ledger);
            for (u, v) in s.graph.edges() {
                assert!(g.has_edge(u, v), "k={k}: ({u},{v}) not in G");
            }
            let exact = bfs::apsp_exact(&g);
            let sd = bfs::apsp_exact(&s.graph);
            for u in 0..g.n() {
                for v in 0..g.n() {
                    assert!(
                        sd[u][v] <= exact[u][v] * (2 * k as Dist - 1),
                        "k={k}: stretch violated at ({u},{v}): {} vs {}",
                        sd[u][v],
                        exact[u][v]
                    );
                }
            }
        }
    }

    #[test]
    fn k1_keeps_every_edge() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = generators::grid(5, 5);
        let mut ledger = RoundLedger::new(25);
        let s = baswana_sen(&g, 1, &mut rng, &mut ledger);
        assert_eq!(s.graph.m(), g.m());
    }

    #[test]
    fn size_shrinks_with_k() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let g = generators::connected_gnp(120, 0.3, &mut rng);
        let mut ledger = RoundLedger::new(120);
        let s2 = baswana_sen(&g, 2, &mut rng, &mut ledger);
        // O(k n^{1+1/k}): for k=2 about n^{3/2}; generous constant.
        let bound = 4.0 * (120f64).powf(1.5);
        assert!((s2.graph.m() as f64) < bound, "m = {}", s2.graph.m());
        assert!(s2.graph.m() < g.m());
    }

    #[test]
    fn apsp_respects_spanner_stretch() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = generators::caveman(6, 6);
        let mut ledger = RoundLedger::new(g.n());
        let (d, s) = apsp(&g, 2, &mut rng, &mut ledger);
        let exact = bfs::apsp_exact(&g);
        for u in 0..g.n() {
            for v in 0..g.n() {
                assert!(d[u][v] >= exact[u][v]);
                assert!(d[u][v] <= exact[u][v] * (2 * s.k as Dist - 1));
            }
        }
        assert!(ledger.total_rounds() > 0);
    }
}
