//! The `(S,d)`-source detection problem (Thm 11 of the paper, from \[3\]).
//!
//! Given a set `S` of sources and a hop bound `d`, every vertex learns, for
//! each source, the length of the shortest path to it that uses at most `d`
//! edges. Works on weighted graphs (in this workspace: unions `G ∪ H` of the
//! input graph with hopset/emulator edges).
//!
//! Round cost: `O((m^{1/3}|S|^{2/3}/n + 1)·d)` — linear in `d`, which is
//! exactly why the paper pairs it with hopsets: a `(β, ε, t)`-hopset lets one
//! call it with `d = β = O(log t / ε)` instead of `d = t`.

use cc_clique::RoundLedger;
use cc_graphs::{dijkstra, Dist, WeightedGraph, INF};

/// Result of an `(S,d)`-source detection run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SourceDetection {
    sources: Vec<usize>,
    hops: usize,
    /// `dist[v][i]` = length of the shortest `≤ hops`-edge path from `v` to
    /// `sources[i]`.
    dist: Vec<Vec<Dist>>,
    /// Per-source predecessor rows (see [`SourceDetection::run_with_parents`]).
    parents: Option<Vec<Vec<u32>>>,
}

impl SourceDetection {
    /// Runs `(S,d)`-source detection on the weighted graph `g`, charging the
    /// Thm 11 round cost to `ledger`.
    ///
    /// # Panics
    ///
    /// Panics if `sources` is empty or contains an out-of-range vertex.
    pub fn run(
        g: &WeightedGraph,
        sources: &[usize],
        hops: usize,
        ledger: &mut RoundLedger,
    ) -> Self {
        Self::run_impl(g, sources, hops, false, ledger)
    }

    /// [`SourceDetection::run`] with per-source predecessor tracking, so
    /// every detected distance comes with a reconstructible walk over `g`
    /// ([`SourceDetection::chain`]). Distances and charged rounds are
    /// identical to [`SourceDetection::run`] — in the model the witnesses
    /// ride the very messages that carry the distances.
    ///
    /// # Panics
    ///
    /// Panics if `sources` is empty or contains an out-of-range vertex.
    pub fn run_with_parents(
        g: &WeightedGraph,
        sources: &[usize],
        hops: usize,
        ledger: &mut RoundLedger,
    ) -> Self {
        Self::run_impl(g, sources, hops, true, ledger)
    }

    fn run_impl(
        g: &WeightedGraph,
        sources: &[usize],
        hops: usize,
        with_parents: bool,
        ledger: &mut RoundLedger,
    ) -> Self {
        assert!(!sources.is_empty(), "source detection needs ≥ 1 source");
        assert!(
            sources.iter().all(|&s| s < g.n()),
            "source out of range for n = {}",
            g.n()
        );
        ledger.charge_source_detection(
            "(S,d)-source detection",
            g.m() as u64,
            sources.len() as u64,
            hops as u64,
        );
        let (dist, parents) = if with_parents {
            let (dist, parents) = dijkstra::hop_limited_from_sources_with_parents(g, sources, hops);
            (dist, Some(parents))
        } else {
            (dijkstra::hop_limited_from_sources(g, sources, hops), None)
        };
        SourceDetection {
            sources: sources.to_vec(),
            hops,
            dist,
            parents,
        }
    }

    /// The walk behind the detected distance of `(v, sources[i])`: the
    /// vertex sequence `sources[i], …, v` over `g`, whose weight is at most
    /// `dist_to_source_index(v, i)`. `None` when `v` was not detected or
    /// parents were not recorded.
    pub fn chain(&self, i: usize, v: usize) -> Option<Vec<usize>> {
        let parents = self.parents.as_ref()?;
        dijkstra::chain_from_hop_parents(&parents[i], self.sources[i], v)
    }

    /// The sources, in the order used for indexing.
    pub fn sources(&self) -> &[usize] {
        &self.sources
    }

    /// The hop bound `d`.
    pub fn hops(&self) -> usize {
        self.hops
    }

    /// Distance from `v` to the `i`-th source (`INF` if unreachable within
    /// the hop bound).
    pub fn dist_to_source_index(&self, v: usize, i: usize) -> Dist {
        self.dist[v][i]
    }

    /// Distance from `v` to source vertex `s` (`None` if `s` is not a
    /// source).
    pub fn dist_to(&self, v: usize, s: usize) -> Option<Dist> {
        self.sources
            .iter()
            .position(|&x| x == s)
            .map(|i| self.dist[v][i])
    }

    /// Iterator over `(source, distance)` pairs of `v`, skipping `INF`.
    pub fn detected(&self, v: usize) -> impl Iterator<Item = (usize, Dist)> + '_ {
        self.sources
            .iter()
            .zip(self.dist[v].iter())
            .filter(|&(_, &d)| d < INF)
            .map(|(&s, &d)| (s, d))
    }

    /// The nearest source to `v` (ties by source order), if any is within
    /// the hop bound.
    pub fn nearest_source(&self, v: usize) -> Option<(usize, Dist)> {
        self.nearest_sources(v, 1).into_iter().next()
    }

    /// The `k` nearest detected sources to `v`, sorted by
    /// `(distance, source id)` — the `(S, d, k)`-source detection output of
    /// \[3\] (footnote 7 of the paper: the applications use `k = |S|`, but
    /// the general variant restricts each vertex's output to its `k`
    /// closest sources).
    pub fn nearest_sources(&self, v: usize, k: usize) -> Vec<(usize, Dist)> {
        let mut found: Vec<(Dist, usize)> = self
            .sources
            .iter()
            .zip(self.dist[v].iter())
            .filter(|&(_, &d)| d < INF)
            .map(|(&s, &d)| (d, s))
            .collect();
        found.sort_unstable();
        found.truncate(k);
        found.into_iter().map(|(d, s)| (s, d)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graphs::{bfs, generators, Graph};

    fn weighted(g: &Graph) -> WeightedGraph {
        WeightedGraph::from_unweighted(g)
    }

    #[test]
    fn full_hops_matches_bfs() {
        let g = generators::grid(5, 4);
        let wg = weighted(&g);
        let sources = [0usize, 7, 19];
        let mut ledger = RoundLedger::new(g.n());
        let sd = SourceDetection::run(&wg, &sources, g.n(), &mut ledger);
        for &s in &sources {
            let exact = bfs::sssp(&g, s);
            for v in 0..g.n() {
                assert_eq!(sd.dist_to(v, s), Some(exact[v]));
            }
        }
    }

    #[test]
    fn hop_bound_truncates() {
        let g = generators::path(8);
        let wg = weighted(&g);
        let mut ledger = RoundLedger::new(8);
        let sd = SourceDetection::run(&wg, &[0], 3, &mut ledger);
        assert_eq!(sd.dist_to(3, 0), Some(3));
        assert_eq!(sd.dist_to(4, 0), Some(INF));
        assert_eq!(sd.detected(4).count(), 0);
    }

    #[test]
    fn weighted_hops_count_edges_not_weight() {
        // One heavy edge: 2 hops reach weight-10 path.
        let wg = WeightedGraph::from_edges(3, &[(0, 1, 10), (1, 2, 10)]);
        let mut ledger = RoundLedger::new(3);
        let sd = SourceDetection::run(&wg, &[0], 2, &mut ledger);
        assert_eq!(sd.dist_to(2, 0), Some(20));
        let sd = SourceDetection::run(&wg, &[0], 1, &mut ledger);
        assert_eq!(sd.dist_to(2, 0), Some(INF));
    }

    #[test]
    fn nearest_source_picks_minimum() {
        let g = generators::path(9);
        let wg = weighted(&g);
        let mut ledger = RoundLedger::new(9);
        let sd = SourceDetection::run(&wg, &[0, 8], 8, &mut ledger);
        assert_eq!(sd.nearest_source(1), Some((0, 1)));
        assert_eq!(sd.nearest_source(7), Some((8, 1)));
        // Midpoint ties break by source order.
        assert_eq!(sd.nearest_source(4), Some((0, 4)));
    }

    #[test]
    fn nearest_k_sources_sorted_and_truncated() {
        let g = generators::path(9);
        let wg = weighted(&g);
        let mut ledger = RoundLedger::new(9);
        let sd = SourceDetection::run(&wg, &[0, 4, 8], 8, &mut ledger);
        // From vertex 3: sources at distances 3 (v0), 1 (v4), 5 (v8).
        assert_eq!(sd.nearest_sources(3, 2), vec![(4, 1), (0, 3)]);
        assert_eq!(sd.nearest_sources(3, 10).len(), 3);
        // Hop-bounded: from vertex 0 with 2 hops only sources within 2 hops.
        let sd = SourceDetection::run(&wg, &[0, 4, 8], 2, &mut ledger);
        assert_eq!(sd.nearest_sources(3, 10), vec![(4, 1)]);
    }

    #[test]
    fn parent_chains_are_real_bounded_walks() {
        let g = generators::caveman(4, 5);
        let wg = weighted(&g);
        let sources = [0usize, 9, 17];
        let mut l1 = RoundLedger::new(g.n());
        let mut l2 = RoundLedger::new(g.n());
        let plain = SourceDetection::run(&wg, &sources, 6, &mut l1);
        let sd = SourceDetection::run_with_parents(&wg, &sources, 6, &mut l2);
        assert_eq!(l1.total_rounds(), l2.total_rounds(), "same charge");
        assert!(plain.chain(0, 3).is_none(), "no parents recorded");
        for (i, &s) in sources.iter().enumerate() {
            for v in 0..g.n() {
                let d = sd.dist_to_source_index(v, i);
                assert_eq!(d, plain.dist_to_source_index(v, i), "same distances");
                if d >= INF {
                    continue;
                }
                let chain = sd.chain(i, v).expect("detected vertices have chains");
                assert_eq!(chain[0], s);
                assert_eq!(*chain.last().unwrap(), v);
                let weight: Dist = chain
                    .windows(2)
                    .map(|w| {
                        wg.neighbors(w[0])
                            .iter()
                            .filter(|&&(x, _)| x as usize == w[1])
                            .map(|&(_, wt)| wt)
                            .min()
                            .expect("chain hop is an edge")
                    })
                    .sum();
                assert!(weight <= d, "chain weight {weight} exceeds estimate {d}");
            }
        }
    }

    #[test]
    fn rounds_linear_in_hops() {
        let g = generators::cycle(64);
        let wg = weighted(&g);
        let mut l1 = RoundLedger::new(64);
        let mut l2 = RoundLedger::new(64);
        let _ = SourceDetection::run(&wg, &[0, 1], 10, &mut l1);
        let _ = SourceDetection::run(&wg, &[0, 1], 20, &mut l2);
        assert_eq!(l2.total_rounds(), 2 * l1.total_rounds());
    }

    #[test]
    #[should_panic(expected = "≥ 1 source")]
    fn empty_sources_rejected() {
        let g = generators::path(4);
        let wg = weighted(&g);
        let mut ledger = RoundLedger::new(4);
        let _ = SourceDetection::run(&wg, &[], 2, &mut ledger);
    }
}
