//! The distance-sensitive tool-kit of Dory–Parter (PODC 2020), §2 and
//! Appendix B.
//!
//! Censor-Hillel et al. (PODC 2019) built a tool-kit for distance computation
//! in the Congested Clique — `k`-nearest neighbors, source detection,
//! hopsets — with `poly(log n)` round complexity. The key idea of
//! Dory–Parter is that their applications only ever query distances up to a
//! small threshold `t = O(β/ε)`, so the tools can be made *distance
//! sensitive*: their round complexity drops from `poly(log n)` to
//! `poly(log t)`.
//!
//! This crate implements the three bounded tools plus one unbounded helper:
//!
//! * [`knearest`] — the `(k,d)`-nearest problem (Thm 10):
//!   `O((k/n^{2/3} + log d)·log d)` rounds.
//! * [`source_detection`] — the `(S,d)`-source detection problem (Thm 11):
//!   `O((m^{1/3}|S|^{2/3}/n + 1)·d)` rounds.
//! * [`hopset`] — bounded `(β, ε, t)`-hopsets (Thm 12): `O(log²t/ε)` rounds,
//!   `O(n^{3/2} log n)` edges, `β = O(log t / ε)`.
//! * [`through_sets`] — distance-through-sets (Thm 35): `O(ρ^{2/3}/n^{1/3})`
//!   rounds.
//!
//! # Example
//!
//! ```
//! use cc_clique::RoundLedger;
//! use cc_graphs::generators;
//! use cc_toolkit::knearest::{KNearest, Strategy};
//!
//! let g = generators::grid(6, 6);
//! let mut ledger = RoundLedger::new(g.n());
//! let kn = KNearest::compute(&g, 5, 3, Strategy::TruncatedBfs, &mut ledger);
//! assert_eq!(kn.list(0).len(), 5);
//! assert_eq!(kn.dist(0, 0), Some(0));
//! ```

#![forbid(unsafe_code)]
// Index-based loops are the clearest idiom for the dense adjacency/matrix
// code in this workspace.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod hopset;
pub mod knearest;
pub mod source_detection;
pub mod through_sets;

pub use hopset::{BoundedHopset, HopsetParams};
pub use knearest::{KNearest, Strategy};
pub use source_detection::SourceDetection;
