//! Bounded hopsets (Thm 12 of the paper, Appendix B.3).
//!
//! A `(β, ε, t)`-hopset `H` of `G` is a weighted edge set on `V(G)` such
//! that for every pair with `d_G(u,v) = d^t_G(u,v)` (in unweighted graphs:
//! every pair at distance ≤ `t`),
//!
//! ```text
//! d_G(u,v) ≤ d^β_{G∪H}(u,v) ≤ (1+ε)·d_G(u,v),
//! ```
//!
//! i.e. `β` hops in `G ∪ H` suffice for a `(1+ε)`-approximation. Construction
//! (following \[3\], restricted to distance `t`):
//!
//! 1. `A₁` = hitting set of the `(k, t)`-nearest sets (`k = √n·log n`):
//!    every vertex with a full `k`-list has an `A₁` member among its nearest.
//! 2. Non-`A₁` vertices add their *bounded bunch*: edges to every vertex
//!    strictly closer than their nearest `A₁` vertex (Thorup–Zwick shape),
//!    plus the nearest `A₁` vertex itself — all within distance `t`.
//! 3. `⌈log₂ t⌉` iterations: in iteration `ℓ`, `A₁`-vertices learn their
//!    `≤ 4β`-hop distances in `G ∪ H^{(ℓ-1)}` to all of `A₁` by
//!    `(S,d)`-source detection and interconnect; `H^{(ℓ)}` is a
//!    `(β, ℓ·ε₀, 2^ℓ)`-hopset (Lemma 65).
//!
//! Rounds: `O(log²t / ε)` (+`O((log log n)³)` for the deterministic hitting
//! set). Size: `O(n^{3/2} log n)` edges. `β = O(log t / ε)`.

use cc_clique::RoundLedger;
use cc_derand::hitting;
use cc_graphs::{dijkstra, Dist, Graph, WeightedGraph, INF};
use cc_routes::Unroller;
use rand::Rng;

use crate::knearest::{KNearest, Strategy};

/// Parameters of a bounded-hopset construction.
#[derive(Clone, Copy, Debug)]
pub struct HopsetParams {
    /// Distance bound `t`: pairs within distance `t` get the guarantee.
    pub t: Dist,
    /// Target stretch `ε ∈ (0, 1)`.
    pub eps: f64,
    /// Pivot-hitting parameter `k` (paper: `√n·log n`).
    pub k: usize,
    /// Oversampling constant of the randomized hitting set (Lemma 8).
    pub hitting_c: f64,
    /// Constant of the hop bound `β = beta_factor/δ·…`; the paper's Lemma 65
    /// analysis uses 12 (from `β = 3/δ`, `δ = ε₀/4`). The `scaled` profile
    /// uses a smaller factor — worst-case-loose but empirically sufficient
    /// (every experiment re-verifies the guarantee).
    pub beta_factor: f64,
    /// Worker threads for the local `(k,t)`-nearest computation (`0` and `1`
    /// both mean serial). Purely wall-clock: the constructed hopset and the
    /// rounds charged are identical at any thread count.
    pub threads: usize,
    /// Record, per hopset edge, the walk in `G` that realizes it (an
    /// [`Unroller`] on [`BoundedHopset::routes`]). Purely local witness
    /// bookkeeping: the constructed edges and the rounds charged are
    /// identical with or without it.
    pub record_paths: bool,
}

impl HopsetParams {
    /// The paper's parameters for an `n`-vertex graph: `k = √n·ln n`
    /// (clamped to `n`), `β = 12·log t / ε`.
    ///
    /// # Panics
    ///
    /// Panics if `eps ∉ (0,1)` or `t = 0`.
    pub fn paper(n: usize, t: Dist, eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must lie in (0,1)");
        assert!(t >= 1, "t must be at least 1");
        let k = (((n as f64).sqrt() * (n.max(2) as f64).ln()).ceil() as usize).clamp(1, n);
        HopsetParams {
            t,
            eps,
            k,
            hitting_c: 2.0,
            beta_factor: 12.0,
            threads: 1,
            record_paths: false,
        }
    }

    /// Returns the parameters with the worker-thread count set.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Returns the parameters with per-edge path recording switched on or
    /// off.
    #[must_use]
    pub fn with_paths(mut self, record_paths: bool) -> Self {
        self.record_paths = record_paths;
        self
    }

    /// Benchmark-scale profile: identical exponents and pivot density,
    /// tempered hop-bound constant (`β = 3·log t / ε` instead of the
    /// worst-case `12·log t / ε`). The guarantee is re-verified empirically
    /// wherever this profile is used (DESIGN.md §6).
    ///
    /// # Panics
    ///
    /// Panics if `eps ∉ (0,1)` or `t = 0`.
    pub fn scaled(n: usize, t: Dist, eps: f64) -> Self {
        let mut p = Self::paper(n, t, eps);
        p.beta_factor = 3.0;
        p
    }

    /// Number of squaring iterations `⌈log₂ t⌉` (at least 1).
    pub fn iterations(&self) -> usize {
        (self.t.max(2) as f64).log2().ceil() as usize
    }

    /// Per-iteration stretch `ε₀ = ε / ⌈log₂ t⌉` (Lemma 65 requires
    /// `ε₀ < 1/log t`).
    pub fn eps_iter(&self) -> f64 {
        self.eps / self.iterations() as f64
    }

    /// The hop bound `β = beta_factor / ε₀`, i.e. `O(log t / ε)`.
    pub fn beta(&self) -> usize {
        (self.beta_factor / self.eps_iter()).ceil() as usize
    }
}

/// A constructed `(β, ε, t)`-hopset.
#[derive(Clone, Debug)]
pub struct BoundedHopset {
    /// The hopset edges `H` (weights are `≥` true `G`-distances).
    pub edges: WeightedGraph,
    /// The hop bound `β`.
    pub beta: usize,
    /// The parameters used.
    pub params: HopsetParams,
    /// The pivot set `A₁`.
    pub a1: Vec<usize>,
    /// Per-edge provenance ([`HopsetParams::record_paths`]): every hopset
    /// edge unrolls into a real walk in `G` of weight at most the edge's.
    /// Bunch edges intern their `(k,t)`-nearest parent chains; iteration-`ℓ`
    /// interconnection edges intern their `≤ 4β`-hop walks over
    /// `G ∪ H^{(ℓ-1)}`, whose shortcut hops resolve against the records of
    /// earlier iterations — the arena's append-only order is the
    /// termination argument (`DESIGN.md` §8.2).
    pub routes: Option<Unroller>,
}

impl BoundedHopset {
    /// `G ∪ H`: the input graph with the hopset overlaid.
    pub fn union_with(&self, g: &Graph) -> WeightedGraph {
        let mut u = WeightedGraph::from_unweighted(g);
        u.union_with(&self.edges);
        u
    }

    /// Verifies the hopset guarantee from the given sample vertices: for
    /// every pair `(s, v)` with `s` a sample and `d_G(s,v) ≤ t`,
    /// `d^β_{G∪H}(s,v) ≤ (1+ε)·d_G(s,v)` and `≥ d_G(s,v)`.
    ///
    /// Returns the worst ratio observed.
    pub fn verify_from(&self, g: &Graph, samples: &[usize]) -> f64 {
        let union = self.union_with(g);
        let hop_dist = dijkstra::hop_limited_from_sources(&union, samples, self.beta);
        let mut worst: f64 = 1.0;
        for (i, &s) in samples.iter().enumerate() {
            let exact = cc_graphs::bfs::sssp(g, s);
            for v in 0..g.n() {
                if v == s || exact[v] > self.params.t || exact[v] >= INF {
                    continue;
                }
                let got = hop_dist[v][i];
                assert!(got >= exact[v], "hopset below true distance at ({s},{v})");
                worst = worst.max(got as f64 / exact[v] as f64);
            }
        }
        worst
    }
}

/// Builds a `(β, ε, t)`-hopset with a randomized hitting set (Thm 12.1):
/// `O(log²t/ε)` rounds w.h.p.
pub fn build_randomized(
    g: &Graph,
    params: HopsetParams,
    rng: &mut impl Rng,
    ledger: &mut RoundLedger,
) -> BoundedHopset {
    let mut phase = ledger.enter("hopset");
    let kn = KNearest::compute_with(
        g,
        params.k,
        params.t,
        Strategy::TruncatedBfs,
        params.threads,
        &mut phase,
    );
    let full_sets = full_knearest_sets(&kn, g.n(), params.k);
    let a1 = hitting::random_hitting_set(
        g.n(),
        params.k.min(full_min_size(&full_sets, params.k)),
        &sets_only(&full_sets),
        params.hitting_c,
        rng,
        &mut phase,
    )
    .expect("(k,t)-nearest sets are valid hitting-set input");
    build_from_pivots(g, params, a1, kn, &mut phase)
}

/// Builds a `(β, ε, t)`-hopset with the deterministic hitting set of
/// Lemma 9 (Thm 12.2): `O(log²t/ε + (log log n)³)` rounds.
pub fn build_deterministic(
    g: &Graph,
    params: HopsetParams,
    ledger: &mut RoundLedger,
) -> BoundedHopset {
    let mut phase = ledger.enter("hopset");
    let kn = KNearest::compute_with(
        g,
        params.k,
        params.t,
        Strategy::TruncatedBfs,
        params.threads,
        &mut phase,
    );
    let full_sets = full_knearest_sets(&kn, g.n(), params.k);
    let a1 = hitting::deterministic_hitting_set(
        g.n(),
        params.k.min(full_min_size(&full_sets, params.k)),
        &sets_only(&full_sets),
        &mut phase,
    )
    .expect("(k,t)-nearest sets are valid hitting-set input");
    build_from_pivots(g, params, a1, kn, &mut phase)
}

/// The `(k,t)`-nearest sets of vertices whose list is full (size `k`) —
/// exactly the sets `A₁` must hit.
fn full_knearest_sets(kn: &KNearest, n: usize, k: usize) -> Vec<(usize, Vec<usize>)> {
    (0..n)
        .filter(|&v| kn.list(v).len() >= k)
        .map(|v| {
            (
                v,
                kn.list(v)
                    .iter()
                    .map(|&(c, _)| c as usize)
                    .collect::<Vec<_>>(),
            )
        })
        .collect()
}

fn sets_only(full: &[(usize, Vec<usize>)]) -> Vec<Vec<usize>> {
    full.iter().map(|(_, s)| s.clone()).collect()
}

fn full_min_size(full: &[(usize, Vec<usize>)], k: usize) -> usize {
    full.iter().map(|(_, s)| s.len()).min().unwrap_or(k).max(1)
}

/// Shared construction once the pivot set `A₁` is fixed.
fn build_from_pivots(
    g: &Graph,
    params: HopsetParams,
    a1: Vec<usize>,
    kn: KNearest,
    ledger: &mut RoundLedger,
) -> BoundedHopset {
    let n = g.n();
    let beta = params.beta();
    // Witness bookkeeping is local-only: it must not change the edges built
    // or the rounds charged below.
    let kn = if params.record_paths && !kn.has_parents() {
        kn.with_parents(g)
    } else {
        kn
    };
    let mut routes = params.record_paths.then(Unroller::new);
    let mut in_a1 = vec![false; n];
    for &a in &a1 {
        in_a1[a] = true;
    }

    // H⁰: bounded bunches of non-pivot vertices (exact distances — they come
    // from the (k,t)-nearest computation). When recording, each bunch edge
    // registers its (k,t)-nearest parent chain as provenance.
    let mut h = WeightedGraph::new(n);
    for v in 0..n {
        if in_a1[v] {
            continue;
        }
        let list = kn.list(v);
        let recs = routes
            .as_mut()
            .map(|r| kn.route_recs(v, r.arena_mut()))
            .unwrap_or_default();
        let mut add_bunch_edge = |routes: &mut Option<Unroller>, idx: usize, u: usize, du: Dist| {
            h.add_edge(v, u, du);
            if let Some(r) = routes.as_mut() {
                r.register(v, u, recs[idx].expect("non-root bunch entry has a record"));
            }
        };
        match kn.nearest_in(v, &in_a1) {
            Some((pivot, pd)) => {
                let mut pivot_idx = usize::MAX;
                for (idx, &(u, du)) in list.iter().enumerate() {
                    if u as usize == v {
                        continue;
                    }
                    if u == pivot && du == pd {
                        pivot_idx = pivot_idx.min(idx);
                    }
                    if du < pd {
                        add_bunch_edge(&mut routes, idx, u as usize, du);
                    }
                }
                add_bunch_edge(&mut routes, pivot_idx, pivot as usize, pd);
            }
            None => {
                // No pivot within the (k,t)-list: the list covers the whole
                // t-ball (or the hitting set missed — randomized tail case);
                // connect the full known bunch.
                for (idx, &(u, du)) in list.iter().enumerate() {
                    if u as usize != v {
                        add_bunch_edge(&mut routes, idx, u as usize, du);
                    }
                }
            }
        }
    }

    // Iterated pivot interconnection: ℓ = 1..⌈log₂ t⌉. Interconnection
    // walks step over G ∪ H^{(ℓ-1)}; their shortcut hops resolve against
    // records registered in earlier iterations (or the bunches), so
    // unrolling strictly descends through the layering.
    if !a1.is_empty() {
        let iterations = params.iterations();
        for ell in 1..=iterations {
            let union = {
                let mut u = WeightedGraph::from_unweighted(g);
                u.union_with(&h);
                u
            };
            ledger.charge_source_detection(
                format!("pivot interconnection #{ell}"),
                union.m() as u64,
                a1.len() as u64,
                4 * beta as u64,
            );
            let (dist, parents) = match &routes {
                Some(_) => {
                    let (d, p) =
                        dijkstra::hop_limited_from_sources_with_parents(&union, &a1, 4 * beta);
                    (d, Some(p))
                }
                None => (
                    dijkstra::hop_limited_from_sources(&union, &a1, 4 * beta),
                    None,
                ),
            };
            for (i, &a) in a1.iter().enumerate() {
                for &b in &a1 {
                    if b <= a {
                        continue;
                    }
                    let d = dist[b][i];
                    if d < INF {
                        h.add_edge(a, b, d);
                        if let (Some(r), Some(parents)) = (routes.as_mut(), parents.as_ref()) {
                            let chain: Vec<u32> =
                                dijkstra::chain_from_hop_parents(&parents[i], a, b)
                                    .expect("detected pivot has a parent chain")
                                    .into_iter()
                                    .map(|x| x as u32)
                                    .collect();
                            let rec = r
                                .intern_walk(g, &chain)
                                .expect("interconnection hops are G or earlier-H edges");
                            r.register(a, b, rec);
                        }
                    }
                }
            }
        }
    }

    BoundedHopset {
        edges: h,
        beta,
        params,
        a1,
        routes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graphs::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn check_params(n: usize, t: Dist, eps: f64) -> HopsetParams {
        HopsetParams::paper(n, t, eps)
    }

    #[test]
    fn params_shapes() {
        let p = check_params(1024, 64, 0.5);
        assert_eq!(p.iterations(), 6);
        assert!(p.eps_iter() < 1.0 / 6.0 + 1e-9);
        assert_eq!(p.beta(), (12.0 * 6.0 / 0.5) as usize);
        assert!(p.k <= 1024);
    }

    #[test]
    #[should_panic(expected = "eps must lie in (0,1)")]
    fn bad_eps_rejected() {
        let _ = check_params(64, 8, 1.5);
    }

    #[test]
    fn randomized_hopset_guarantee_holds() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        for (name, g) in [
            ("cycle", generators::cycle(48)),
            ("grid", generators::grid(7, 7)),
            ("caveman", generators::caveman(6, 6)),
        ] {
            let params = check_params(g.n(), 8, 0.5);
            let mut ledger = RoundLedger::new(g.n());
            let hs = build_randomized(&g, params, &mut rng, &mut ledger);
            let samples: Vec<usize> = (0..g.n()).step_by(5).collect();
            let worst = hs.verify_from(&g, &samples);
            assert!(worst <= 1.5 + 1e-9, "{name}: worst ratio {worst}");
        }
    }

    #[test]
    fn deterministic_hopset_guarantee_holds() {
        let g = generators::caveman(5, 6);
        let params = check_params(g.n(), 6, 0.4);
        let mut ledger = RoundLedger::new(g.n());
        let hs = build_deterministic(&g, params, &mut ledger);
        let samples: Vec<usize> = (0..g.n()).collect();
        let worst = hs.verify_from(&g, &samples);
        assert!(worst <= 1.4 + 1e-9, "worst ratio {worst}");
    }

    #[test]
    fn hopset_size_bound() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = generators::connected_gnp(120, 0.05, &mut rng);
        let params = check_params(g.n(), 8, 0.5);
        let mut ledger = RoundLedger::new(g.n());
        let hs = build_randomized(&g, params, &mut rng, &mut ledger);
        let n = g.n() as f64;
        let bound = 4.0 * n.powf(1.5) * n.ln();
        assert!(
            (hs.edges.m() as f64) < bound,
            "hopset has {} edges, bound {bound}",
            hs.edges.m()
        );
    }

    #[test]
    fn pivots_interconnected_within_t() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let g = generators::cycle(32);
        let params = check_params(32, 8, 0.5);
        let mut ledger = RoundLedger::new(32);
        let hs = build_randomized(&g, params, &mut rng, &mut ledger);
        // Every pair of pivots within distance t must be ≤ 2 hops apart in H
        // (they share a direct edge after the final interconnection).
        let exact = cc_graphs::bfs::apsp_exact(&g);
        for &a in &hs.a1 {
            for &b in &hs.a1 {
                if a < b && exact[a][b] <= params.t {
                    let w = hs
                        .edges
                        .neighbors(a)
                        .iter()
                        .filter(|&&(x, _)| x as usize == b)
                        .map(|&(_, w)| w)
                        .min();
                    assert!(w.is_some(), "pivots {a},{b} not interconnected");
                    assert!(w.unwrap() >= exact[a][b]);
                }
            }
        }
    }

    #[test]
    fn recorded_routes_unroll_every_hopset_edge() {
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        for (name, g) in [
            ("cycle", generators::cycle(40)),
            ("caveman", generators::caveman(5, 6)),
            ("gnp", generators::connected_gnp(50, 0.08, &mut rng)),
        ] {
            let params = check_params(g.n(), 8, 0.5);
            let mut rng_a = ChaCha8Rng::seed_from_u64(77);
            let mut rng_b = ChaCha8Rng::seed_from_u64(77);
            let mut l_plain = RoundLedger::new(g.n());
            let mut l_rec = RoundLedger::new(g.n());
            let plain = build_randomized(&g, params, &mut rng_a, &mut l_plain);
            let hs = build_randomized(&g, params.with_paths(true), &mut rng_b, &mut l_rec);
            // Recording is wall-clock only: same edges, same rounds.
            assert_eq!(hs.edges, plain.edges, "{name}: recording changed edges");
            assert_eq!(
                l_plain.total_rounds(),
                l_rec.total_rounds(),
                "{name}: recording changed rounds"
            );
            assert!(plain.routes.is_none());
            let routes = hs.routes.as_ref().expect("routes recorded");
            for (u, v, w) in hs.edges.edges() {
                let walk = routes
                    .unroll(u, v)
                    .unwrap_or_else(|| panic!("{name}: edge ({u},{v}) has no route"));
                assert_eq!(walk[0].0 as usize, u, "{name}");
                assert_eq!(walk[walk.len() - 1].1 as usize, v, "{name}");
                for win in walk.windows(2) {
                    assert_eq!(win[0].1, win[1].0, "{name}: edges must chain");
                }
                for &(x, y) in &walk {
                    assert!(g.has_edge(x as usize, y as usize), "{name}: real G edge");
                }
                // Unweighted G: walk weight = edge count ≤ the edge weight.
                assert!(
                    walk.len() as Dist <= w,
                    "{name}: route of ({u},{v}) weighs {} > {w}",
                    walk.len()
                );
            }
        }
    }

    #[test]
    fn deterministic_build_also_records_routes() {
        let g = generators::caveman(5, 5);
        let params = check_params(g.n(), 6, 0.4).with_paths(true);
        let mut ledger = RoundLedger::new(g.n());
        let hs = build_deterministic(&g, params, &mut ledger);
        let routes = hs.routes.as_ref().expect("routes recorded");
        let exact = cc_graphs::bfs::apsp_exact(&g);
        for (u, v, w) in hs.edges.edges() {
            let walk = routes.unroll(u, v).expect("every edge unrolls");
            assert!(walk.len() as Dist >= exact[u][v], "walks cannot undercut");
            assert!(walk.len() as Dist <= w);
        }
    }

    #[test]
    fn rounds_scale_with_log_t_squared() {
        let g = generators::cycle(200);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut l_small = RoundLedger::new(200);
        let _ = build_randomized(&g, check_params(200, 4, 0.5), &mut rng, &mut l_small);
        let mut l_big = RoundLedger::new(200);
        let _ = build_randomized(&g, check_params(200, 64, 0.5), &mut rng, &mut l_big);
        assert!(l_big.total_rounds() > l_small.total_rounds());
    }

    #[test]
    fn weights_never_undercut_distances() {
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let g = generators::connected_gnp(60, 0.06, &mut rng);
        let params = check_params(60, 8, 0.5);
        let mut ledger = RoundLedger::new(60);
        let hs = build_randomized(&g, params, &mut rng, &mut ledger);
        let exact = cc_graphs::bfs::apsp_exact(&g);
        for (u, v, w) in hs.edges.edges() {
            assert!(
                w >= exact[u][v],
                "edge ({u},{v}) weight {w} < {}",
                exact[u][v]
            );
        }
    }
}
