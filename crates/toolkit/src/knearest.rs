//! The `(k,d)`-nearest problem (Thm 10 of the paper).
//!
//! Every vertex learns the distances to its `k` closest vertices among those
//! within distance `d` (all of them if fewer than `k`). The distributed
//! implementation iterates filtered min-plus squaring (Appendix B.2,
//! Claim 59) for `⌈log₂ d⌉` iterations, giving
//! `O((k/n^{2/3} + log d)·log d)` rounds.

use cc_clique::{cost::model, RoundLedger};
use cc_graphs::{bfs, Dist, Graph, INF};
use cc_matrix::filtered::knearest_matrix_with;
use cc_matrix::MinplusWorkspace;
use cc_routes::{RecId, RouteArena};

/// How to compute the `(k,d)`-nearest sets.
///
/// Both strategies compute *exactly the same object* (verified by tests) and
/// charge the same Thm 10 round cost; they differ only in centralized
/// compute time.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Strategy {
    /// Iterated filtered min-plus squaring — the literal distributed
    /// algorithm of Appendix B.2.
    Filtered,
    /// Per-vertex truncated BFS — the fast centralized equivalent
    /// (Claim 59 proves the filtered iteration computes the truncated-BFS
    /// object).
    #[default]
    TruncatedBfs,
}

/// The `(k,d)`-nearest sets of every vertex.
///
/// Lists are sorted by `(distance, vertex id)` and include the vertex itself
/// at distance 0.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct KNearest {
    k: usize,
    d: Dist,
    lists: Vec<Vec<(u32, Dist)>>,
    /// Per-entry predecessors (see [`KNearest::with_parents`]); aligned with
    /// `lists`.
    parents: Option<Vec<Vec<u32>>>,
}

impl KNearest {
    /// Solves the `(k,d)`-nearest problem on `g`, charging the Thm 10 cost
    /// `O((k/n^{2/3} + log d)·log d)` to `ledger`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn compute(
        g: &Graph,
        k: usize,
        d: Dist,
        strategy: Strategy,
        ledger: &mut RoundLedger,
    ) -> Self {
        Self::compute_with(g, k, d, strategy, 1, ledger)
    }

    /// [`KNearest::compute`] on `threads` worker threads (`0` and `1` both
    /// mean serial). Per-vertex truncated BFS runs are independent and the
    /// filtered squaring shards output rows, so the computed object — and
    /// the rounds charged — are **identical** at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn compute_with(
        g: &Graph,
        k: usize,
        d: Dist,
        strategy: Strategy,
        threads: usize,
        ledger: &mut RoundLedger,
    ) -> Self {
        assert!(k > 0, "k must be positive");
        let n = g.n();
        ledger.charge("(k,d)-nearest", Self::rounds(n, k, d));
        let threads = threads.clamp(1, n.max(1));
        let lists: Vec<Vec<(u32, Dist)>> = match strategy {
            Strategy::TruncatedBfs if threads <= 1 => (0..n)
                .map(|v| bfs::knearest_reference(g, v, k, d))
                .collect(),
            Strategy::TruncatedBfs => {
                let shard = n.div_ceil(threads);
                let chunks: Vec<Vec<Vec<(u32, Dist)>>> = std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..threads)
                        .map(|t| {
                            let lo = (t * shard).min(n);
                            let hi = ((t + 1) * shard).min(n);
                            scope.spawn(move || {
                                (lo..hi)
                                    .map(|v| bfs::knearest_reference(g, v, k, d))
                                    .collect()
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("knearest worker panicked"))
                        .collect()
                });
                chunks.into_iter().flatten().collect()
            }
            Strategy::Filtered => {
                // The per-product charges of the matrix path are replaced by
                // the single Thm 10 aggregate above, so use a scratch ledger.
                let mut scratch = RoundLedger::new(n);
                let mut ws = MinplusWorkspace::with_threads(threads);
                let m = knearest_matrix_with(g, k, d, &mut ws, &mut scratch);
                (0..n)
                    .map(|v| {
                        let mut row: Vec<(u32, Dist)> = m.row(v).to_vec();
                        row.sort_unstable_by_key(|&(c, dist)| (dist, c));
                        row
                    })
                    .collect()
            }
        };
        KNearest {
            k,
            d,
            lists,
            parents: None,
        }
    }

    /// Derives, for every list entry, the **predecessor** of the entry's
    /// vertex on a shortest path from the list's root: the smallest-id
    /// neighbor at distance `d − 1`. This is the witness that turns every
    /// exact `(k,d)`-nearest distance into a reconstructible path
    /// (`DESIGN.md` §8.1): the predecessor is itself a list entry (everything
    /// strictly closer than an entry precedes it in the `(distance, id)`
    /// order), so parent chains stay inside the list until they reach the
    /// root.
    ///
    /// Purely local post-processing on the already-computed object — no
    /// rounds, identical lists, works for either [`Strategy`] — so recording
    /// paths never changes what was computed or charged.
    #[must_use]
    pub fn with_parents(mut self, g: &Graph) -> Self {
        let n = g.n();
        let mut dist_of: Vec<Dist> = vec![INF; n];
        let mut parents = Vec::with_capacity(self.lists.len());
        for (v, list) in self.lists.iter().enumerate() {
            for &(u, du) in list {
                dist_of[u as usize] = du;
            }
            let row = list
                .iter()
                .map(|&(u, du)| {
                    if u as usize == v {
                        return u;
                    }
                    g.neighbors(u as usize)
                        .iter()
                        .copied()
                        .find(|&w| dist_of[w as usize] + 1 == du)
                        .expect("every non-root entry has an in-list predecessor")
                })
                .collect();
            for &(u, _) in list {
                dist_of[u as usize] = INF;
            }
            parents.push(row);
        }
        self.parents = Some(parents);
        self
    }

    /// `true` once [`KNearest::with_parents`] has run.
    pub fn has_parents(&self) -> bool {
        self.parents.is_some()
    }

    /// Interns, for every entry of `v`'s list, the shortest path from `v` to
    /// the entry as a record in `arena` (`None` for the root entry itself).
    /// Parent chains share structure: each record extends the predecessor's
    /// record by one `G` edge.
    ///
    /// # Panics
    ///
    /// Panics if [`KNearest::with_parents`] has not run.
    pub fn route_recs(&self, v: usize, arena: &mut RouteArena) -> Vec<Option<RecId>> {
        let parents = self
            .parents
            .as_ref()
            .expect("route_recs requires with_parents");
        let list = &self.lists[v];
        let prow = &parents[v];
        let mut recs: Vec<Option<RecId>> = Vec::with_capacity(list.len());
        for (i, &(u, du)) in list.iter().enumerate() {
            if u as usize == v {
                recs.push(None);
                continue;
            }
            let p = prow[i];
            let hop = arena.edge(p, u);
            if du == 1 {
                debug_assert_eq!(p as usize, v);
                recs.push(Some(hop));
                continue;
            }
            // The predecessor sits earlier in the (distance, id)-sorted list.
            let pidx = list
                .binary_search_by_key(&(du - 1, p), |&(c, dist)| (dist, c))
                .expect("predecessor is a list entry");
            let prefix = recs[pidx].expect("predecessor record interned earlier");
            recs.push(Some(arena.cat(prefix, hop)));
        }
        recs
    }

    /// The Thm 10 round formula.
    pub fn rounds(n: usize, k: usize, d: Dist) -> u64 {
        let logd = model::log2_ceil(d.max(2) as u64);
        let k_term = (k as f64 / (n.max(1) as f64).powf(2.0 / 3.0)).ceil() as u64;
        (k_term + logd) * logd.max(1)
    }

    /// The `k` requested.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The distance bound `d`.
    pub fn d(&self) -> Dist {
        self.d
    }

    /// The `(k,d)`-nearest list of `v`, sorted by `(distance, id)`,
    /// including `v` itself at distance 0.
    pub fn list(&self, v: usize) -> &[(u32, Dist)] {
        &self.lists[v]
    }

    /// `true` when the list of `v` covers its whole `d`-ball (fewer than `k`
    /// vertices within distance `d`).
    pub fn covers_ball(&self, v: usize) -> bool {
        self.lists[v].len() < self.k
    }

    /// Distance from `v` to `u` if `u` is among the `(k,d)`-nearest of `v`.
    pub fn dist(&self, v: usize, u: usize) -> Option<Dist> {
        self.lists[v]
            .iter()
            .find(|&&(c, _)| c as usize == u)
            .map(|&(_, dist)| dist)
    }

    /// The farthest distance in `v`'s list (0 if the list is only `v`).
    pub fn radius(&self, v: usize) -> Dist {
        self.lists[v].last().map_or(0, |&(_, dist)| dist)
    }

    /// The closest member of `targets` (given as a boolean mask) in `v`'s
    /// list, with its distance — ties broken by `(distance, id)` order.
    pub fn nearest_in(&self, v: usize, targets: &[bool]) -> Option<(u32, Dist)> {
        self.lists[v]
            .iter()
            .find(|&&(c, _)| targets[c as usize])
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graphs::generators;

    #[test]
    fn strategies_agree() {
        let mut rng = seeded(31);
        for (name, g) in [
            ("grid", generators::grid(5, 5)),
            ("caveman", generators::caveman(4, 5)),
            ("gnp", generators::connected_gnp(40, 0.07, &mut rng)),
        ] {
            for (k, d) in [(4usize, 3u32), (9, 6), (60, 2)] {
                let mut l1 = RoundLedger::new(g.n());
                let mut l2 = RoundLedger::new(g.n());
                let a = KNearest::compute(&g, k, d, Strategy::TruncatedBfs, &mut l1);
                let b = KNearest::compute(&g, k, d, Strategy::Filtered, &mut l2);
                assert_eq!(a, b, "{name} k={k} d={d}");
                assert_eq!(l1.total_rounds(), l2.total_rounds());
            }
        }
    }

    #[test]
    fn lists_are_sorted_and_self_rooted() {
        let g = generators::grid(4, 4);
        let mut ledger = RoundLedger::new(g.n());
        let kn = KNearest::compute(&g, 6, 4, Strategy::TruncatedBfs, &mut ledger);
        for v in 0..g.n() {
            let list = kn.list(v);
            assert_eq!(list[0], (v as u32, 0));
            assert!(list.windows(2).all(|w| (w[0].1, w[0].0) < (w[1].1, w[1].0)));
            assert!(list.len() <= 6);
        }
    }

    #[test]
    fn covers_ball_detection() {
        let g = generators::path(10);
        let mut ledger = RoundLedger::new(10);
        // d = 1: ball of interior vertex has 3 members < k = 5.
        let kn = KNearest::compute(&g, 5, 1, Strategy::TruncatedBfs, &mut ledger);
        assert!(kn.covers_ball(5));
        // d = 4: ball of interior vertex has 9 members ≥ k = 5.
        let kn = KNearest::compute(&g, 5, 4, Strategy::TruncatedBfs, &mut ledger);
        assert!(!kn.covers_ball(5));
    }

    #[test]
    fn dist_and_radius_queries() {
        let g = generators::cycle(8);
        let mut ledger = RoundLedger::new(8);
        let kn = KNearest::compute(&g, 5, 2, Strategy::TruncatedBfs, &mut ledger);
        assert_eq!(kn.dist(0, 2), Some(2));
        assert_eq!(kn.dist(0, 4), None);
        assert_eq!(kn.radius(0), 2);
    }

    #[test]
    fn nearest_in_respects_order() {
        let g = generators::path(8);
        let mut ledger = RoundLedger::new(8);
        let kn = KNearest::compute(&g, 8, 7, Strategy::TruncatedBfs, &mut ledger);
        let mut mask = vec![false; 8];
        mask[6] = true;
        mask[2] = true;
        // From vertex 3: distance 1 to 2, distance 3 to 6.
        assert_eq!(kn.nearest_in(3, &mask), Some((2, 1)));
        let empty = vec![false; 8];
        assert_eq!(kn.nearest_in(3, &empty), None);
    }

    #[test]
    fn threaded_compute_is_identical() {
        let mut rng = seeded(47);
        let g = generators::connected_gnp(40, 0.08, &mut rng);
        for strategy in [Strategy::TruncatedBfs, Strategy::Filtered] {
            let mut l0 = RoundLedger::new(g.n());
            let serial = KNearest::compute(&g, 7, 5, strategy, &mut l0);
            for threads in [2, 3, 64] {
                let mut l1 = RoundLedger::new(g.n());
                let par = KNearest::compute_with(&g, 7, 5, strategy, threads, &mut l1);
                assert_eq!(par, serial, "{strategy:?} threads={threads}");
                assert_eq!(l0.total_rounds(), l1.total_rounds());
            }
        }
    }

    #[test]
    fn parents_are_in_list_predecessors() {
        let mut rng = seeded(9);
        let g = generators::connected_gnp(36, 0.1, &mut rng);
        let mut ledger = RoundLedger::new(g.n());
        let plain = KNearest::compute(&g, 8, 5, Strategy::TruncatedBfs, &mut ledger);
        let kn = plain.clone().with_parents(&g);
        assert!(kn.has_parents() && !plain.has_parents());
        for v in 0..g.n() {
            assert_eq!(kn.list(v), plain.list(v), "parents must not change lists");
            for (i, &(u, du)) in kn.list(v).iter().enumerate() {
                let p = kn.parents.as_ref().unwrap()[v][i];
                if u as usize == v {
                    assert_eq!(p, u);
                    continue;
                }
                assert!(g.has_edge(p as usize, u as usize), "parent is a neighbor");
                assert_eq!(kn.dist(v, p as usize), Some(du - 1), "parent is closer");
            }
        }
    }

    #[test]
    fn route_recs_expand_to_shortest_paths() {
        use cc_routes::RouteArena;
        let g = generators::caveman(4, 5);
        let mut ledger = RoundLedger::new(g.n());
        let kn = KNearest::compute(&g, 9, 6, Strategy::TruncatedBfs, &mut ledger).with_parents(&g);
        let mut arena = RouteArena::new();
        for v in 0..g.n() {
            let recs = kn.route_recs(v, &mut arena);
            for (&(u, du), rec) in kn.list(v).iter().zip(&recs) {
                if u as usize == v {
                    assert!(rec.is_none());
                    continue;
                }
                let rec = rec.expect("non-root entries carry a record");
                assert_eq!(arena.len_of(rec), du, "record length = exact distance");
                let edges = arena.emit(rec, false);
                assert_eq!(edges[0].0 as usize, v);
                assert_eq!(edges[edges.len() - 1].1, u);
                for win in edges.windows(2) {
                    assert_eq!(win[0].1, win[1].0, "consecutive edges chain");
                }
                for &(x, y) in &edges {
                    assert!(g.has_edge(x as usize, y as usize), "real G edge");
                }
            }
        }
    }

    #[test]
    fn round_formula_shape() {
        // Rounds grow like log²d when k ≤ n^{2/3} …
        let r1 = KNearest::rounds(4096, 16, 4);
        let r2 = KNearest::rounds(4096, 16, 256);
        assert!(r2 > r1);
        // … and pick up a k/n^{2/3} term for large k.
        let r3 = KNearest::rounds(4096, 4096, 256);
        assert!(r3 > r2);
    }

    fn seeded(s: u64) -> rand_chacha::ChaCha8Rng {
        use rand::SeedableRng;
        rand_chacha::ChaCha8Rng::seed_from_u64(s)
    }
}
