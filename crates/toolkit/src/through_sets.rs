//! The distance-through-sets problem (Thm 35 of the paper, from \[3\]).
//!
//! Every vertex `v` holds a set `W_v` and distance estimates `δ(v, w)` for
//! `w ∈ W_v`. The task: for every ordered pair `(u, v)`, compute
//! `min_{w ∈ W_u ∩ W_v} (δ(u,w) + δ(w,v))`.
//!
//! Round cost: `O(ρ^{2/3}/n^{1/3} + 1)` where `ρ` is the average set size —
//! constant for `ρ = O(√n)`, which is how the APSP algorithms use it
//! (`W_v = S` for a hitting set `S` of size `O(√n)`, or `W_v = N_{k,t}(v)`).

use cc_clique::RoundLedger;
use cc_graphs::{dadd, Dist, INF};

/// Solves distance-through-sets: `out[u][v] = min_{w ∈ W_u ∩ W_v}
/// (δ(u,w) + δ(w,v))`, with `INF` when the intersection is empty or no
/// finite estimates exist.
///
/// `estimate(v, w)` supplies `δ(v, w)` and is only queried for `w ∈ W_v`.
/// The Thm 35 round cost is charged to `ledger`.
///
/// # Panics
///
/// Panics if a set contains an element `≥ n`.
pub fn distance_through_sets<F>(
    n: usize,
    sets: &[Vec<usize>],
    estimate: F,
    ledger: &mut RoundLedger,
) -> Vec<Vec<Dist>>
where
    F: Fn(usize, usize) -> Dist,
{
    assert_eq!(sets.len(), n, "one set per vertex required");
    let total: usize = sets.iter().map(Vec::len).sum();
    let rho = (total as u64 / n.max(1) as u64).max(1);
    ledger.charge_through_sets("distance through sets", rho);

    // Invert: for each w, the vertices whose set contains w, with δ(v, w).
    let mut members: Vec<Vec<(u32, Dist)>> = vec![Vec::new(); n];
    for (v, set) in sets.iter().enumerate() {
        for &w in set {
            assert!(w < n, "set element {w} out of range");
            let d = estimate(v, w);
            if d < INF {
                members[w].push((v as u32, d));
            }
        }
    }
    let mut out = vec![vec![INF; n]; n];
    for v in 0..n {
        out[v][v] = 0;
    }
    for w in 0..n {
        let list = &members[w];
        for &(u, du) in list {
            let row = &mut out[u as usize];
            for &(v, dv) in list {
                let cand = dadd(du, dv);
                if cand < row[v as usize] {
                    row[v as usize] = cand;
                }
            }
        }
    }
    out
}

/// [`distance_through_sets`] that additionally reports, per ordered pair,
/// the **witness** `w` that realized the minimum (`u32::MAX` where no finite
/// route exists, and on the diagonal). Distances are identical to the plain
/// variant; the intermediate vertices are swept in ascending order with
/// strict improvement, so the witness is the smallest realizing `w` —
/// deterministic regardless of set order.
///
/// The round charge is unchanged: in the model the witness ids ride the same
/// messages as the sums they annotate.
///
/// # Panics
///
/// Panics if a set contains an element `≥ n`.
pub fn distance_through_sets_with_witness<F>(
    n: usize,
    sets: &[Vec<usize>],
    estimate: F,
    ledger: &mut RoundLedger,
) -> (Vec<Vec<Dist>>, Vec<Vec<u32>>)
where
    F: Fn(usize, usize) -> Dist,
{
    assert_eq!(sets.len(), n, "one set per vertex required");
    let total: usize = sets.iter().map(Vec::len).sum();
    let rho = (total as u64 / n.max(1) as u64).max(1);
    ledger.charge_through_sets("distance through sets", rho);

    let mut members: Vec<Vec<(u32, Dist)>> = vec![Vec::new(); n];
    for (v, set) in sets.iter().enumerate() {
        for &w in set {
            assert!(w < n, "set element {w} out of range");
            let d = estimate(v, w);
            if d < INF {
                members[w].push((v as u32, d));
            }
        }
    }
    let mut out = vec![vec![INF; n]; n];
    let mut wit = vec![vec![u32::MAX; n]; n];
    for v in 0..n {
        out[v][v] = 0;
    }
    for w in 0..n {
        let list = &members[w];
        for &(u, du) in list {
            let row = &mut out[u as usize];
            let wrow = &mut wit[u as usize];
            for &(v, dv) in list {
                let cand = dadd(du, dv);
                if cand < row[v as usize] {
                    row[v as usize] = cand;
                    wrow[v as usize] = w as u32;
                }
            }
        }
    }
    (out, wit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graphs::{bfs, generators};

    #[test]
    fn through_single_shared_vertex() {
        // W_0 = W_2 = {1}; δ taken from the path 0-1-2.
        let g = generators::path(3);
        let exact = bfs::apsp_exact(&g);
        let sets = vec![vec![1], vec![1], vec![1]];
        let mut ledger = RoundLedger::new(3);
        let out = distance_through_sets(3, &sets, |u, v| exact[u][v], &mut ledger);
        assert_eq!(out[0][2], 2);
        assert_eq!(out[2][0], 2);
        assert_eq!(out[0][0], 0);
    }

    #[test]
    fn empty_intersection_gives_inf() {
        let sets = vec![vec![0], vec![1], vec![]];
        let mut ledger = RoundLedger::new(3);
        let out = distance_through_sets(3, &sets, |_, _| 1, &mut ledger);
        assert_eq!(out[0][1], INF);
        assert_eq!(out[0][2], INF);
    }

    #[test]
    fn matches_bruteforce_on_random_instance() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let n = 24;
        let g = generators::connected_gnp(n, 0.12, &mut rng);
        let exact = bfs::apsp_exact(&g);
        let sets: Vec<Vec<usize>> = (0..n)
            .map(|_| {
                let size = rng.gen_range(1..5);
                (0..size).map(|_| rng.gen_range(0..n)).collect::<Vec<_>>()
            })
            .map(|mut s| {
                s.sort_unstable();
                s.dedup();
                s
            })
            .collect();
        let mut ledger = RoundLedger::new(n);
        let out = distance_through_sets(n, &sets, |u, v| exact[u][v], &mut ledger);
        for u in 0..n {
            for v in 0..n {
                if u == v {
                    continue;
                }
                let mut want = INF;
                for &w in &sets[u] {
                    if sets[v].contains(&w) {
                        want = want.min(dadd(exact[u][w], exact[w][v]));
                    }
                }
                assert_eq!(out[u][v], want, "({u},{v})");
            }
        }
    }

    #[test]
    fn witness_variant_matches_plain_and_realizes_minima() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let n = 20;
        let g = generators::connected_gnp(n, 0.15, &mut rng);
        let exact = bfs::apsp_exact(&g);
        let sets: Vec<Vec<usize>> = (0..n)
            .map(|_| {
                let mut s: Vec<usize> = (0..rng.gen_range(1..4))
                    .map(|_| rng.gen_range(0..n))
                    .collect();
                s.sort_unstable();
                s.dedup();
                s
            })
            .collect();
        let mut l1 = RoundLedger::new(n);
        let mut l2 = RoundLedger::new(n);
        let plain = distance_through_sets(n, &sets, |u, v| exact[u][v], &mut l1);
        let (rows, wit) = distance_through_sets_with_witness(n, &sets, |u, v| exact[u][v], &mut l2);
        assert_eq!(rows, plain, "witness tracking must not change distances");
        assert_eq!(l1.total_rounds(), l2.total_rounds());
        for u in 0..n {
            for v in 0..n {
                if u == v || rows[u][v] >= INF {
                    assert_eq!(wit[u][v], u32::MAX, "({u},{v})");
                    continue;
                }
                let w = wit[u][v] as usize;
                assert!(sets[u].contains(&w) && sets[v].contains(&w));
                assert_eq!(dadd(exact[u][w], exact[w][v]), rows[u][v], "({u},{v})");
                // Smallest realizing witness.
                for smaller in 0..w {
                    if sets[u].contains(&smaller) && sets[v].contains(&smaller) {
                        assert!(
                            dadd(exact[u][smaller], exact[smaller][v]) > rows[u][v],
                            "({u},{v}): {smaller} also realizes"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn infinite_estimates_are_skipped() {
        let sets = vec![vec![1], vec![1]];
        let mut ledger = RoundLedger::new(2);
        let out = distance_through_sets(2, &sets, |_, _| INF, &mut ledger);
        assert_eq!(out[0][1], INF);
    }

    #[test]
    fn constant_rounds_for_sqrt_sets() {
        let n = 4096;
        let sets: Vec<Vec<usize>> = (0..n).map(|v| vec![v % 64]).collect();
        let mut ledger = RoundLedger::new(n);
        let _ = distance_through_sets(n, &sets, |_, _| 1, &mut ledger);
        assert!(ledger.total_rounds() <= 2);
    }

    #[test]
    #[should_panic(expected = "one set per vertex")]
    fn wrong_set_count_panics() {
        let mut ledger = RoundLedger::new(3);
        let _ = distance_through_sets(3, &[vec![]], |_, _| 1, &mut ledger);
    }
}
