//! Derandomization substrate for the Congested Clique algorithms of
//! Dory–Parter (PODC 2020), §5.
//!
//! The paper derandomizes its constructions through three devices:
//!
//! * **Hitting sets** (Lemmas 8/9): a random set of rate `Θ(log n / k)` hits
//!   every given set of size ≥ k w.h.p.; deterministically, \[Parter–Yogev\]
//!   compute one in `O((log log n)³)` rounds from a short PRG seed.
//! * **Soft hitting sets** (Definition 42, Lemma 43): the paper's new
//!   relaxation — the selected set has size `O(N/Δ)` with **no** `log n`
//!   factor, and the total size of un-hit sets is bounded by `O(Δ·|L|)`
//!   instead of being zero. This is exactly the property the emulator's
//!   sampling hierarchy needs, and avoiding the `log n` factor is what keeps
//!   the deterministic emulator at `O(n log log n)` edges.
//! * **PRGs fooling read-once DNFs** (Thm 55, \[Gopalan et al.\]) driving a
//!   distributed method of conditional expectations (Thm 57).
//!
//! This crate implements the soft hitting set selection by the method of
//! conditional expectations with *exact* conditional probabilities
//! (independent bits), which yields Definition 42 deterministically — the
//! same guarantee the PRG route provides. The PRG's role in the paper is to
//! compress the seed so the distributed protocol runs in `O((log log n)³)`
//! rounds; we charge exactly those rounds
//! ([`cc_clique::cost::model::conditional_expectation_rounds`]) and document
//! the substitution in `DESIGN.md` §3.
//!
//! # Example
//!
//! ```
//! use cc_clique::RoundLedger;
//! use cc_derand::soft_hitting::{soft_hitting_set, SoftHittingInstance};
//!
//! // 8 sets, each of size 4, over a universe of 32 elements.
//! let sets: Vec<Vec<usize>> = (0..8).map(|u| (0..4).map(|i| (4 * u + i) % 32).collect()).collect();
//! let inst = SoftHittingInstance::new(32, 4, sets).unwrap();
//! let mut ledger = RoundLedger::new(32);
//! let z = soft_hitting_set(&inst, &mut ledger);
//! assert!(z.verify(&inst, 3.0));
//! ```

#![forbid(unsafe_code)]
// Index-based loops are the clearest idiom for the dense adjacency/matrix
// code in this workspace.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod dnf;
pub mod hitting;
pub mod prg;
pub mod soft_hitting;

pub use hitting::{deterministic_hitting_set, random_hitting_set};
pub use soft_hitting::{soft_hitting_set, SoftHittingInstance, SoftHittingSet};
