//! Pseudorandom generators behind the derandomization layer.
//!
//! The paper uses the PRG of Gopalan et al. (FOCS 2012), which ε-fools
//! read-once DNFs with seed length `O(log(n/ε) · (log log(n/ε))³)` (Thm 55).
//! Its role in the algorithms is purely to *shorten the random string* so
//! that a seed can be fixed by distributed conditional expectations in
//! `O((log log n)³)` rounds.
//!
//! [`BlockPrg`] is this workspace's stand-in: a hash-based generator that
//! expands a 64-bit seed into any number of bits. It is **not** a proven
//! DNF-fooler; the deterministic guarantees of this workspace never rely on
//! it (they come from exact conditional expectations — see
//! [`crate::soft_hitting`]). It exists to (a) make randomized variants
//! reproducible from a small seed and (b) make the seed-length/round
//! bookkeeping of the paper concrete ([`seed_bits`]).

use cc_clique::cost::model;

/// Seed length, in bits, of the Gopalan et al. PRG for universe size `n`
/// (Lemma 56's `g(N, Δ) = O(log N · (log log N)³)`).
pub fn seed_bits(n: u64) -> u64 {
    model::prg_seed_bits(n)
}

/// A deterministic bit generator expanding a 64-bit seed.
///
/// # Example
///
/// ```
/// use cc_derand::prg::BlockPrg;
///
/// let prg = BlockPrg::new(7);
/// let a: Vec<bool> = (0..16).map(|i| prg.bit(i)).collect();
/// let b: Vec<bool> = (0..16).map(|i| prg.bit(i)).collect();
/// assert_eq!(a, b); // deterministic in (seed, index)
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockPrg {
    seed: u64,
}

impl BlockPrg {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        BlockPrg { seed }
    }

    /// The `index`-th pseudorandom bit.
    pub fn bit(&self, index: u64) -> bool {
        self.word(index / 64) >> (index % 64) & 1 == 1
    }

    /// The `index`-th pseudorandom 64-bit word (splitmix64 over seed‖index).
    pub fn word(&self, index: u64) -> u64 {
        let mut z = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index.wrapping_add(1)));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// `true` with probability `2^{-ell}`: the AND of `ell` fresh bits drawn
    /// from block `block` — the hash-function shape `h_s(i)` of Lemma 56.
    pub fn block_and(&self, block: u64, ell: u32) -> bool {
        if ell == 0 {
            return true;
        }
        (0..ell).all(|b| self.bit(block * 64 + b as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = BlockPrg::new(1);
        let b = BlockPrg::new(1);
        let c = BlockPrg::new(2);
        let bits_a: Vec<bool> = (0..256).map(|i| a.bit(i)).collect();
        let bits_b: Vec<bool> = (0..256).map(|i| b.bit(i)).collect();
        let bits_c: Vec<bool> = (0..256).map(|i| c.bit(i)).collect();
        assert_eq!(bits_a, bits_b);
        assert_ne!(bits_a, bits_c);
    }

    #[test]
    fn bits_are_roughly_balanced() {
        let prg = BlockPrg::new(99);
        let ones = (0..10_000).filter(|&i| prg.bit(i)).count();
        assert!((4_000..6_000).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn block_and_rate_matches_two_to_minus_ell() {
        let prg = BlockPrg::new(5);
        let ell = 3;
        let hits = (0..8_000u64).filter(|&b| prg.block_and(b, ell)).count();
        let expected = 8_000.0 / 8.0;
        assert!(
            (hits as f64 - expected).abs() < 0.35 * expected,
            "hits = {hits}"
        );
    }

    #[test]
    fn ell_zero_always_true() {
        let prg = BlockPrg::new(5);
        assert!((0..50).all(|b| prg.block_and(b, 0)));
    }

    #[test]
    fn seed_bits_matches_cost_model() {
        assert_eq!(seed_bits(4096), model::prg_seed_bits(4096));
        assert!(seed_bits(1 << 20) > seed_bits(1 << 10));
    }
}
